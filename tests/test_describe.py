"""Tests for the one-pass describe() report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import Description, describe
from repro.core.errors import EmptySummaryError


class TestDescribe:
    def test_array_input(self, permutation_100k):
        report = describe(permutation_100k, epsilon=0.005)
        assert report.n == 100_000
        assert report.minimum == 0.0
        assert report.maximum == 99_999.0
        assert abs(report.median - 50_000) <= 0.005 * 100_000 + 1
        assert report.certified_error <= 0.005

    def test_quantiles_are_monotone(self, rng):
        report = describe(rng.lognormal(0, 2, 50_000), epsilon=0.01)
        values = [v for _phi, v in report.quantiles]
        assert values == sorted(values)
        assert report.minimum <= values[0]
        assert values[-1] <= report.maximum

    def test_iqr(self):
        data = np.arange(10_000, dtype=np.float64)
        report = describe(data, epsilon=0.01)
        assert report.iqr == pytest.approx(5_000, abs=0.02 * 10_000)

    def test_custom_phis(self, permutation_10k):
        report = describe(
            permutation_10k, epsilon=0.01, phis=[0.5, 0.9]
        )
        assert [p for p, _v in report.quantiles] == [0.5, 0.9]
        assert report.value(0.9) == pytest.approx(9_000, abs=200)
        with pytest.raises(KeyError):
            report.value(0.25)

    def test_iterable_of_chunks(self, permutation_10k):
        chunks = [permutation_10k[i : i + 1000] for i in range(0, 10_000, 1000)]
        report = describe(iter(chunks), epsilon=0.01, n=10_000)
        assert report.n == 10_000
        assert report.minimum == 0.0

    def test_iterable_of_scalars(self):
        report = describe(iter([3.0, 1.0, 2.0, 5.0, 4.0]), epsilon=0.2, n=5)
        assert report.n == 5
        assert report.minimum == 1.0
        assert report.maximum == 5.0
        assert report.median == 3.0

    def test_mixed_scalars_and_chunks(self):
        def source():
            yield 1.0
            yield np.array([5.0, 3.0])
            yield 2.0
            yield 4.0

        report = describe(source(), epsilon=0.2, n=5)
        assert report.n == 5
        assert report.median == 3.0

    def test_memory_is_bounded(self, rng):
        report = describe(rng.normal(0, 1, 200_000), epsilon=0.005)
        assert report.memory_elements < 10_000

    def test_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            describe(np.array([]))
        with pytest.raises(EmptySummaryError):
            describe(iter([]))

    def test_str_rendering(self, permutation_10k):
        text = str(describe(permutation_10k, epsilon=0.01))
        assert "n  " in text
        assert "min" in text
        assert "max" in text
        assert "p50" in text

    def test_is_frozen_dataclass(self, permutation_10k):
        report = describe(permutation_10k, epsilon=0.05)
        assert isinstance(report, Description)
        with pytest.raises(AttributeError):
            report.n = 5  # type: ignore[misc]
