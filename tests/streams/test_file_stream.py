"""Tests for the disk-resident stream format."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, StorageError
from repro.streams import FileStream, sorted_stream, write_stream


class TestRoundTrip:
    def test_write_and_read_back(self, tmp_path):
        path = tmp_path / "s.bin"
        data = np.arange(1000, dtype=np.float64)
        n = write_stream(path, [data[:400], data[400:]])
        assert n == 1000
        fs = FileStream(path)
        assert fs.n == 1000
        assert np.array_equal(fs.materialize(), data)

    def test_chunked_reads_respect_size(self, tmp_path):
        path = tmp_path / "s.bin"
        write_stream(path, [np.arange(100, dtype=np.float64)])
        chunks = list(FileStream(path).chunks(chunk_size=33))
        assert [len(c) for c in chunks] == [33, 33, 33, 1]

    def test_from_stream_helper(self, tmp_path):
        fs = FileStream.from_stream(tmp_path / "x.bin", sorted_stream(256))
        assert fs.n == 256
        assert fs.exact_quantile(0.5) == 127.0

    def test_empty_stream(self, tmp_path):
        path = tmp_path / "empty.bin"
        write_stream(path, [])
        fs = FileStream(path)
        assert fs.n == 0
        assert list(fs.chunks()) == []

    def test_iter_protocol(self, tmp_path):
        path = tmp_path / "s.bin"
        write_stream(path, [np.array([1.0, 2.0, 3.0])])
        assert list(FileStream(path)) == [1.0, 2.0, 3.0]

    def test_exact_quantiles_list(self, tmp_path):
        fs = FileStream.from_stream(tmp_path / "x.bin", sorted_stream(100))
        assert fs.exact_quantiles([0.1, 0.9]) == [9.0, 89.0]


class TestCorruptionHandling:
    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            FileStream(tmp_path / "nope.bin")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTMRL00" + b"\x00" * 24)
        with pytest.raises(StorageError, match="bad magic"):
            FileStream(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.bin"
        path.write_bytes(b"MRL")
        with pytest.raises(StorageError, match="truncated"):
            FileStream(path)

    def test_payload_size_mismatch(self, tmp_path):
        path = tmp_path / "mismatch.bin"
        header = struct.pack("<8sQQQ", b"MRLSTRM1", 1, 10, 0)
        path.write_bytes(header + b"\x00" * 8 * 3)  # says 10, holds 3
        with pytest.raises(StorageError, match="payload"):
            FileStream(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "v9.bin"
        header = struct.pack("<8sQQQ", b"MRLSTRM1", 9, 0, 0)
        path.write_bytes(header)
        with pytest.raises(StorageError, match="version"):
            FileStream(path)

    def test_rejects_2d_chunks(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_stream(tmp_path / "x.bin", [np.ones((2, 2))])

    def test_invalid_chunk_size(self, tmp_path):
        fs = FileStream.from_stream(tmp_path / "x.bin", sorted_stream(10))
        with pytest.raises(ConfigurationError):
            list(fs.chunks(0))


class TestIntegrationWithFramework:
    def test_quantiles_from_disk(self, tmp_path):
        """The paper's headline scenario: a disk-resident dataset summarised
        in one pass with bounded memory."""
        from repro.core import QuantileFramework
        from repro.streams import random_permutation_stream

        n = 50_000
        fs = FileStream.from_stream(
            tmp_path / "big.bin", random_permutation_stream(n, seed=8)
        )
        fw = QuantileFramework.from_accuracy(0.01, n)
        for chunk in fs.chunks():
            fw.extend(chunk)
        med = fw.query(0.5)
        assert abs((med + 1) - n // 2) / n <= 0.01
