"""Tests for the workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.streams import (
    STANDARD_ORDERS,
    alternating_extremes_stream,
    clustered_stream,
    correlated_stream,
    normal_stream,
    random_permutation_stream,
    reverse_sorted_stream,
    sorted_stream,
    uniform_stream,
    zipf_stream,
)


class TestRankPermutations:
    """Every rank-permutation stream must enumerate 0..n-1 exactly once."""

    @pytest.mark.parametrize("n", [1, 2, 17, 1000, 12345])
    def test_standard_orders_are_permutations(self, n):
        for stream in STANDARD_ORDERS(n, seed=3):
            values = stream.materialize()
            assert len(values) == n, stream.name
            assert np.array_equal(
                np.sort(values), np.arange(n, dtype=np.float64)
            ), stream.name

    def test_sorted_is_ascending(self):
        assert np.array_equal(
            sorted_stream(100).materialize(), np.arange(100.0)
        )

    def test_reverse_is_descending(self):
        values = reverse_sorted_stream(100).materialize()
        assert np.array_equal(values, np.arange(99, -1, -1, dtype=np.float64))

    def test_random_permutation_seeded(self):
        a = random_permutation_stream(500, seed=1).materialize()
        b = random_permutation_stream(500, seed=1).materialize()
        c = random_permutation_stream(500, seed=2).materialize()
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_clustered_has_ascending_runs(self):
        values = clustered_stream(1000, n_clusters=10, seed=0).materialize()
        ascents = np.sum(np.diff(values) > 0)
        assert ascents > 900  # overwhelmingly ascending within runs

    def test_alternating_extremes_pattern(self):
        values = alternating_extremes_stream(6).materialize()
        assert list(values) == [0, 5, 1, 4, 2, 3]

    def test_analytic_exact_quantiles(self):
        for stream in STANDARD_ORDERS(997, seed=1):
            for phi in (0.0, 0.25, 0.5, 1.0):
                import math

                rank = min(max(math.ceil(phi * 997), 1), 997)
                assert stream.exact_quantile(phi) == float(rank - 1)


class TestChunking:
    def test_chunks_cover_stream_exactly(self):
        stream = sorted_stream(1000)
        chunks = list(stream.chunks(chunk_size=333))
        assert [len(c) for c in chunks] == [333, 333, 333, 1]
        assert np.array_equal(np.concatenate(chunks), stream.materialize())

    def test_chunking_invariant_to_chunk_size(self):
        stream = random_permutation_stream(2000, seed=4)
        a = np.concatenate(list(stream.chunks(chunk_size=100)))
        b = np.concatenate(list(stream.chunks(chunk_size=999)))
        assert np.array_equal(a, b)

    def test_iter_protocol(self):
        assert list(sorted_stream(5)) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            list(sorted_stream(10).chunks(0))

    def test_len(self):
        assert len(sorted_stream(42)) == 42


class TestValueDistributions:
    def test_uniform_bounds(self):
        values = uniform_stream(5000, low=2.0, high=3.0, seed=1).materialize()
        assert values.min() >= 2.0
        assert values.max() < 3.0

    def test_uniform_chunks_deterministic(self):
        a = np.concatenate(list(uniform_stream(1000, seed=5).chunks(128)))
        b = np.concatenate(list(uniform_stream(1000, seed=5).chunks(128)))
        assert np.array_equal(a, b)

    def test_normal_moments(self):
        values = normal_stream(50_000, mean=10, std=2, seed=2).materialize()
        assert abs(values.mean() - 10) < 0.1
        assert abs(values.std() - 2) < 0.1

    def test_zipf_is_heavily_duplicated(self):
        values = zipf_stream(10_000, exponent=1.5, seed=3).materialize()
        top_share = np.mean(values == 0.0)
        assert top_share > 0.3  # rank-1 item dominates

    def test_zipf_values_in_domain(self):
        values = zipf_stream(1000, n_distinct=50, seed=1).materialize()
        assert values.min() >= 0
        assert values.max() < 50

    def test_correlated_trends_upward(self):
        values = correlated_stream(10_000, trend=1.0, noise=0.01, seed=0).materialize()
        first, last = values[:1000].mean(), values[-1000:].mean()
        assert last > first

    def test_sort_based_exact_quantile(self):
        stream = uniform_stream(999, seed=7)
        values = np.sort(stream.materialize())
        assert stream.exact_quantile(0.5) == values[499]  # ceil(.5*999)=500

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            uniform_stream(100, low=1.0, high=1.0)
        with pytest.raises(ConfigurationError):
            normal_stream(100, std=0.0)
        with pytest.raises(ConfigurationError):
            zipf_stream(100, exponent=1.0)
        with pytest.raises(ConfigurationError):
            sorted_stream(0)
