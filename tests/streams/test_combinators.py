"""Tests for stream combinators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.streams import (
    concat,
    interleave,
    random_permutation_stream,
    repeat,
    reverse_sorted_stream,
    sorted_stream,
    take,
    transform,
)


class TestConcat:
    def test_order_and_length(self):
        stream = concat(sorted_stream(100), reverse_sorted_stream(50))
        data = stream.materialize()
        assert len(stream) == 150
        assert np.array_equal(data[:100], np.arange(100.0))
        assert data[100] == 49.0

    def test_chunking_across_segment_boundary(self):
        stream = concat(sorted_stream(10), sorted_stream(10))
        whole = stream.materialize()
        pieced = np.concatenate(list(stream.chunks(chunk_size=7)))
        assert np.array_equal(whole, pieced)

    def test_single_stream(self):
        stream = concat(sorted_stream(5))
        assert np.array_equal(stream.materialize(), np.arange(5.0))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            concat()

    def test_exact_quantile_via_sort(self):
        stream = concat(sorted_stream(100), sorted_stream(100))
        # the union holds each of 0..99 twice; median is 49
        assert stream.exact_quantile(0.5) == 49.0


class TestInterleave:
    def test_round_robin_blocks(self):
        stream = interleave(
            [sorted_stream(6), reverse_sorted_stream(6)], block=2
        )
        assert list(stream.materialize()) == [0, 1, 5, 4, 2, 3, 3, 2, 4, 5, 1, 0]

    def test_uneven_lengths(self):
        stream = interleave([sorted_stream(5), sorted_stream(2)], block=2)
        assert len(stream) == 7
        assert sorted(stream.materialize().tolist()) == [0, 0, 1, 1, 2, 3, 4]

    def test_replay_deterministic(self):
        stream = interleave(
            [random_permutation_stream(100, seed=1), sorted_stream(100)],
            block=13,
        )
        assert np.array_equal(stream.materialize(), stream.materialize())

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            interleave([])
        with pytest.raises(ConfigurationError):
            interleave([sorted_stream(5)], block=0)


class TestTakeRepeatTransform:
    def test_take_prefix(self):
        assert list(take(sorted_stream(100), 3).materialize()) == [0, 1, 2]

    def test_take_bounds(self):
        with pytest.raises(ConfigurationError):
            take(sorted_stream(10), 0)
        with pytest.raises(ConfigurationError):
            take(sorted_stream(10), 11)

    def test_repeat(self):
        stream = repeat(sorted_stream(3), 3)
        assert len(stream) == 9
        assert list(stream.materialize()) == [0, 1, 2] * 3

    def test_repeat_validation(self):
        with pytest.raises(ConfigurationError):
            repeat(sorted_stream(3), 0)

    def test_transform_elementwise(self):
        stream = transform(sorted_stream(4), lambda a: a + 10.0)
        assert list(stream.materialize()) == [10, 11, 12, 13]

    def test_transform_must_preserve_length(self):
        stream = transform(sorted_stream(4), lambda a: a[:-1])
        with pytest.raises(ConfigurationError):
            stream.materialize()


class TestCompoundWorkloads:
    def test_guarantee_on_compound_stream(self):
        """The whole point: adversarially composed arrival orders still
        respect the guarantee."""
        from repro.core import QuantileFramework

        stream = interleave(
            [
                sorted_stream(20_000),
                reverse_sorted_stream(20_000),
                random_permutation_stream(20_000, seed=3),
            ],
            block=512,
        )
        # the union holds each rank of 0..19999 three times
        n = len(stream)
        fw = QuantileFramework.from_accuracy(0.01, n)
        for chunk in stream.chunks():
            fw.extend(chunk)
        data = np.sort(stream.materialize())
        for phi in (0.1, 0.5, 0.9):
            got = fw.query(phi)
            target = int(np.ceil(phi * n))
            lo = int(np.searchsorted(data, got, side="left")) + 1
            hi = int(np.searchsorted(data, got, side="right"))
            err = 0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            assert err <= 0.01 * n + 1
