"""Integration tests tying the library to the paper's evaluation claims.

These are scaled-down versions of the benchmark harness runs -- small
enough for the test suite, but asserting the same *shapes* the paper's
tables and figures report.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis import evaluate
from repro.core import (
    QuantileFramework,
    QuantileSketch,
    optimal_parameters,
)
from repro.core.sampling import optimize_alpha, sampling_threshold
from repro.streams import (
    STANDARD_ORDERS,
    random_permutation_stream,
    sorted_stream,
)

PHIS_15 = [q / 16 for q in range(1, 16)]


class TestTable3Shape:
    """Section 6: observed error is far below the stipulated epsilon."""

    @pytest.mark.parametrize("order", ["sorted", "random"])
    def test_observed_error_much_better_than_epsilon(self, order):
        n, eps = 10**5, 1e-3
        stream = (
            sorted_stream(n)
            if order == "sorted"
            else random_permutation_stream(n, seed=42)
        )
        fw = QuantileFramework.from_accuracy(eps, n)
        for chunk in stream.chunks():
            fw.extend(chunk)
        estimates = fw.quantiles(PHIS_15)
        errors = [
            abs((v + 1) - math.ceil(phi * n)) / n
            for phi, v in zip(PHIS_15, estimates)
        ]
        assert max(errors) <= eps  # the guarantee
        assert np.mean(errors) < eps / 2  # the Section 6 observation

    def test_every_standard_order_respects_epsilon(self):
        n, eps = 50_000, 0.005
        for stream in STANDARD_ORDERS(n, seed=9):
            fw = QuantileFramework.from_accuracy(eps, n)
            for chunk in stream.chunks():
                fw.extend(chunk)
            values = fw.quantiles(PHIS_15)
            errors = [
                abs((v + 1) - math.ceil(phi * n)) / n
                for phi, v in zip(PHIS_15, values)
            ]
            assert max(errors) <= eps, stream.name


class TestFigure7Shape:
    """Memory vs N at eps=0.01: New < MP < ARS; ARS explodes."""

    def test_ordering_and_growth(self):
        eps = 0.01
        ns = [10**5, 10**6, 10**7, 10**8, 10**9]
        new = [optimal_parameters(eps, n, policy="new").memory for n in ns]
        mp = [optimal_parameters(eps, n, policy="mp").memory for n in ns]
        ars = [optimal_parameters(eps, n, policy="ars").memory for n in ns]
        for a, b, c in zip(new, mp, ars):
            assert a <= b
            assert a <= c
        # ARS grows ~sqrt(N): x10 data -> ~x3.16 memory
        assert ars[-1] / ars[0] > 50
        # New grows polylog: x10000 data -> far less than x100 memory
        assert new[-1] / new[0] < 40

    def test_mp_kinks_exist(self):
        # Section 4.6: MP memory *drops* when the optimal b increments.
        eps = 0.01
        ns = np.logspace(5, 9, 60)
        memories = [
            optimal_parameters(eps, int(n), policy="mp").memory for n in ns
        ]
        drops = sum(1 for a, b in zip(memories, memories[1:]) if b < a)
        assert drops >= 2


class TestFigure8Shape:
    """Sampling threshold: exists, and rises as epsilon shrinks."""

    def test_thresholds_monotone_in_epsilon(self):
        delta = 1e-4
        ts = [
            sampling_threshold(eps, delta)
            for eps in (0.1, 0.05, 0.01, 0.005)
        ]
        assert all(a < b for a, b in zip(ts, ts[1:]))

    def test_sampling_memory_independent_of_n(self):
        plan = optimize_alpha(0.01, 1e-4)
        # the plan never references N at all; the sketch built from it
        # reports identical memory for wildly different populations
        sk_small = QuantileSketch(0.01, n=10**7, delta=1e-4)
        sk_large = QuantileSketch(0.01, n=10**9, delta=1e-4)
        assert sk_small.memory_elements == sk_large.memory_elements
        assert sk_small.memory_elements == plan.memory


class TestMultipleQuantilesFree:
    """Section 4.7: multiple quantiles, same summary, same guarantee."""

    def test_fifteen_quantiles_single_pass(self):
        n, eps = 30_000, 0.01
        stream = random_permutation_stream(n, seed=17)
        fw = QuantileFramework.from_accuracy(eps, n)
        for chunk in stream.chunks():
            fw.extend(chunk)
        values = fw.quantiles(PHIS_15)
        data = stream.materialize()
        report = evaluate(data, PHIS_15, values)
        assert report.max_error <= eps
        # memory did not grow with the number of quantiles
        assert fw.memory_elements == optimal_parameters(eps, n).memory


class TestBaselineContrast:
    """The framework's guarantee vs the antecedents' lack of one."""

    def test_guaranteed_summary_beats_p2_on_adversarial_order(self):
        from repro.baselines import P2Quantile
        from repro.streams import alternating_extremes_stream

        n = 40_000
        stream = alternating_extremes_stream(n)
        data = stream.materialize()

        fw = QuantileFramework.from_accuracy(0.01, n)
        p2 = P2Quantile(0.5)
        for chunk in stream.chunks():
            fw.extend(chunk)
        for v in data:
            p2.update(float(v))

        fw_err = evaluate(data, [0.5], [fw.query(0.5)]).max_error
        p2_err = evaluate(data, [0.5], [p2.query()]).max_error
        assert fw_err <= 0.01
        # P2 may do anything; the framework must never exceed epsilon.
        assert fw_err <= p2_err + 0.01
