"""Randomised stress: arbitrary operation sequences against an oracle.

A long, seeded, randomly generated interleaving of everything a summary
supports -- scalar updates, chunked extends, mid-stream queries, rank
queries, serialisation round-trips, merges -- executed side by side with
an exact oracle that stores everything.  After every step the certified
bound must cover every answer.  This is the closest the suite gets to a
fuzzer for the stateful API surface.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import QuantileFramework
from repro.core.serialize import dumps, loads


class _Oracle:
    """Stores everything; answers ranks exactly."""

    def __init__(self) -> None:
        self.values: list = []

    def extend(self, data) -> None:
        self.values.extend(float(v) for v in data)

    def rank_error(self, phi: float, answer: float) -> int:
        ordered = np.sort(np.asarray(self.values))
        n = len(ordered)
        target = min(max(math.ceil(phi * n), 1), n)
        lo = int(np.searchsorted(ordered, answer, side="left")) + 1
        hi = int(np.searchsorted(ordered, answer, side="right"))
        if lo <= target <= hi:
            return 0
        return min(abs(target - lo), abs(target - hi))


@pytest.mark.parametrize("seed", [1, 7, 42, 1998])
def test_random_operation_soup(seed):
    rng = np.random.default_rng(seed)
    fw = QuantileFramework(
        b=int(rng.integers(2, 8)),
        k=int(rng.integers(4, 200)),
        policy=str(
            rng.choice(["new", "munro-paterson", "alsabti-ranka-singh"])
        ),
    )
    oracle = _Oracle()
    side = None  # an occasional second summary for merging
    for _step in range(120):
        op = rng.choice(
            ["update", "extend", "query", "rank", "serialize", "merge"],
            p=[0.25, 0.3, 0.2, 0.1, 0.1, 0.05],
        )
        if op == "update":
            v = float(rng.normal(0, 1000))
            fw.update(v)
            oracle.extend([v])
        elif op == "extend":
            chunk = rng.normal(0, 1000, int(rng.integers(1, 500)))
            fw.extend(chunk)
            oracle.extend(chunk)
        elif op == "query" and oracle.values:
            phis = sorted(rng.random(3))
            answers = fw.quantiles(list(phis))
            bound = fw.error_bound()
            for phi, got in zip(phis, answers):
                assert oracle.rank_error(phi, got) <= bound + 1
            assert answers == sorted(answers)
        elif op == "rank" and oracle.values:
            probe = float(rng.normal(0, 1000))
            got = fw.rank(probe)
            ordered = np.sort(np.asarray(oracle.values))
            true_le = int(np.searchsorted(ordered, probe, side="right"))
            assert abs(got - true_le) <= fw.error_bound() + 1
        elif op == "serialize":
            fw = loads(dumps(fw))  # hot-swap through the wire format
        elif op == "merge":
            if side is None:
                # build a side summary; its elements join the oracle only
                # when it is actually absorbed into the main summary
                side = QuantileFramework(fw.b, fw.k, policy=fw.policy.name)
                side_chunk = rng.normal(5000, 100, int(rng.integers(1, 300)))
                side.extend(side_chunk)
            else:
                fw.absorb(side)
                oracle.extend(side_chunk)
                side = None
    # drain any pending side summary so counts line up, then final check
    if side is not None:
        fw.absorb(side)
        oracle.extend(side_chunk)
    assert fw.n == len(oracle.values)
    if oracle.values:
        final = fw.quantiles([0.1, 0.5, 0.9])
        bound = fw.error_bound()
        for phi, got in zip([0.1, 0.5, 0.9], final):
            assert oracle.rank_error(phi, got) <= bound + 1
        assert fw.min() == min(oracle.values)
        assert fw.max() == max(oracle.values)


def test_pathological_constant_stream():
    fw = QuantileFramework(b=3, k=7)
    fw.extend(np.full(10_000, 3.14))
    for phi in (0.0, 0.3, 1.0):
        assert fw.query(phi) == 3.14
    assert fw.rank(3.14) >= 1
    assert fw.cdf(3.13) == 0.0
    assert fw.cdf(3.14) == 1.0


def test_alternating_merge_chain():
    """Absorb in a long chain; counts, extremes and bounds must hold up."""
    rng = np.random.default_rng(0)
    base = QuantileFramework(b=5, k=64)
    total = 0
    values = []
    for i in range(12):
        other = QuantileFramework(b=5, k=64)
        chunk = rng.normal(i * 10, 1, 500)
        other.extend(chunk)
        values.extend(chunk.tolist())
        total += 500
        base.absorb(other)
        assert base.n == total
        assert len(base.full_buffers) <= base.b
    ordered = np.sort(np.asarray(values))
    answers = base.quantiles([0.25, 0.5, 0.75])
    bound = base.error_bound()
    for phi, got in zip([0.25, 0.5, 0.75], answers):
        target = min(max(math.ceil(phi * total), 1), total)
        lo = int(np.searchsorted(ordered, got, side="left")) + 1
        assert abs(lo - target) <= bound + 1
