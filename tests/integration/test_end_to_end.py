"""Cross-module integration: disk tables, SQL, histograms, partitioning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuantileSketch
from repro.engine import StoredTable, Table, execute_sql, save_table
from repro.histogram import build_histogram, selectivity_experiment
from repro.partitioning import simulate_parallel_sort
from repro.streams import FileStream, zipf_stream


class TestDiskToAnswerPipeline:
    """stream -> disk -> one pass -> quantiles, like a real deployment."""

    def test_disk_resident_quantile_pipeline(self, tmp_path, rng):
        n = 80_000
        data = rng.lognormal(2, 1.2, n)
        path = tmp_path / "col.bin"
        from repro.streams import write_stream

        write_stream(path, [data[i : i + 8192] for i in range(0, n, 8192)])
        fs = FileStream(path)
        sk = QuantileSketch(epsilon=0.005, n=n)
        for chunk in fs.chunks():
            sk.extend(chunk)
        ordered = np.sort(data)
        for phi in (0.1, 0.5, 0.9, 0.99):
            got = sk.query(phi)
            rank = int(np.searchsorted(ordered, got, side="left")) + 1
            target = int(np.ceil(phi * n))
            assert abs(rank - target) <= 0.005 * n + 1

    def test_one_sketch_feeds_all_three_applications(self, rng):
        """Section 1.1's three applications off a single pass: statistics,
        histograms (optimizer) and splitters (partitioning)."""
        n = 60_000
        data = rng.normal(100, 25, n)
        sk = QuantileSketch(epsilon=0.005, n=n)
        sk.extend(data)

        # 1. statistics
        assert data.min() <= sk.median() <= data.max()

        # 2. query optimisation
        hist = build_histogram(data, 20, epsilon=0.005, sketch=sk)
        results = selectivity_experiment(data, hist, n_predicates=50, seed=3)
        assert max(r.absolute_error for r in results) <= (
            hist.selectivity_error_bound()
        )

        # 3. partitioning (reuse boundaries as splitters)
        splitters = sk.equidepth_boundaries(8)
        sort = simulate_parallel_sort(data, 8, splitters=splitters)
        assert sort.correct
        assert sort.report.imbalance <= 2 * 0.005 + 1e-9


class TestSQLOverDiskTables:
    def test_group_by_quantiles_disk_vs_memory(self, tmp_path, rng):
        n = 20_000
        groups = np.array(["a", "b", "c", "d"])[rng.integers(0, 4, n)]
        values = rng.gamma(2.0, 10.0, n)
        table = Table.from_dict(
            "metrics", {"grp": list(groups), "value": values}
        )
        save_table(table, tmp_path / "metrics", page_rows=1024)
        stored = StoredTable(tmp_path / "metrics")

        sql = (
            "SELECT QUANTILE(0.9, value, 0.005) AS p90, COUNT(*)"
            " FROM metrics GROUP BY grp"
        )
        disk = execute_sql(sql, {"metrics": stored})
        assert len(disk) == 4
        for row in disk.sorted_rows():
            mask = groups == row["grp"]
            exact = np.sort(values[mask])
            rank = int(np.searchsorted(exact, row["p90"], side="left")) + 1
            target = int(np.ceil(0.9 * mask.sum()))
            assert abs(rank - target) <= 0.005 * n + 1
            assert row["count"] == int(mask.sum())


class TestHeavySkew:
    def test_zipf_end_to_end(self):
        """Heavy duplication end to end: guarantee must hold under ties."""
        n = 50_000
        stream = zipf_stream(n, exponent=1.2, n_distinct=100, seed=5)
        data = stream.materialize()
        sk = QuantileSketch(epsilon=0.01, n=n)
        for chunk in stream.chunks():
            sk.extend(chunk)
        ordered = np.sort(data)
        for phi in (0.25, 0.5, 0.75, 0.95):
            got = sk.query(phi)
            lo = int(np.searchsorted(ordered, got, side="left")) + 1
            hi = int(np.searchsorted(ordered, got, side="right"))
            target = int(np.ceil(phi * n))
            err = 0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            assert err <= 0.01 * n + 1


class TestScaleSmoke:
    @pytest.mark.slow
    def test_ten_million_elements(self):
        """A genuinely large single-pass run (the paper's N=1e7 row)."""
        from repro.streams import random_permutation_stream

        n = 10**7
        stream = random_permutation_stream(n, seed=1)
        sk = QuantileSketch(epsilon=0.001, n=n)
        for chunk in stream.chunks(1 << 20):
            sk.extend(chunk)
        med = sk.median()
        assert abs((med + 1) - n / 2) / n <= 0.001
