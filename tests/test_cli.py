"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.streams import FileStream


@pytest.fixture
def stream_file(tmp_path):
    path = str(tmp_path / "data.bin")
    assert main(["generate", path, "--kind", "random", "--n", "20000",
                 "--seed", "3"]) == 0
    return path


class TestPlan:
    def test_prints_all_policies(self, capsys):
        assert main(["plan", "--epsilon", "0.01", "--n", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "new" in out
        assert "munro-paterson" in out
        assert "alsabti-ranka-singh" in out

    def test_sampling_recommendation(self, capsys):
        assert main(
            ["plan", "--epsilon", "0.01", "--n", "100000000",
             "--delta", "1e-4"]
        ) == 0
        out = capsys.readouterr().out
        assert "recommended for N=100000000: sampling" in out

    def test_direct_recommendation_below_threshold(self, capsys):
        assert main(
            ["plan", "--epsilon", "0.01", "--n", "100000",
             "--delta", "1e-4"]
        ) == 0
        out = capsys.readouterr().out
        assert "recommended for N=100000: direct" in out

    def test_invalid_epsilon_is_clean_error(self, capsys):
        assert main(["plan", "--epsilon", "7", "--n", "100"]) == 1
        assert "error" in capsys.readouterr().err


class TestGenerate:
    @pytest.mark.parametrize(
        "kind",
        ["sorted", "reverse", "random", "uniform", "normal", "zipf",
         "clustered", "alternating"],
    )
    def test_every_generator(self, tmp_path, kind):
        path = str(tmp_path / f"{kind}.bin")
        assert main(
            ["generate", path, "--kind", kind, "--n", "1000"]
        ) == 0
        assert FileStream(path).n == 1000

    def test_deterministic_given_seed(self, tmp_path):
        p1, p2 = str(tmp_path / "a.bin"), str(tmp_path / "b.bin")
        main(["generate", p1, "--kind", "random", "--n", "500", "--seed", "9"])
        main(["generate", p2, "--kind", "random", "--n", "500", "--seed", "9"])
        assert np.array_equal(
            FileStream(p1).materialize(), FileStream(p2).materialize()
        )


class TestQuantile:
    def test_answers_within_epsilon(self, stream_file, capsys):
        assert main(
            ["quantile", stream_file, "--epsilon", "0.01",
             "--phi", "0.5", "--phi", "0.9"]
        ) == 0
        out = capsys.readouterr().out
        assert "phi=0.5:" in out
        assert "certified rank bound" in out
        # the stream is a permutation of 0..19999: parse and check rank
        median_line = next(
            line for line in out.splitlines() if line.startswith("phi=0.5")
        )
        value = float(median_line.split(":")[1])
        assert abs((value + 1) - 10_000) / 20_000 <= 0.01

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(
            ["quantile", str(tmp_path / "nope.bin"), "--epsilon", "0.01",
             "--phi", "0.5"]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_file_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"garbage here" * 4)
        assert main(
            ["quantile", str(bad), "--epsilon", "0.01", "--phi", "0.5"]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestHistogram:
    def test_boundaries_printed_sorted(self, stream_file, capsys):
        assert main(
            ["histogram", stream_file, "--epsilon", "0.01", "--buckets", "8"]
        ) == 0
        out = capsys.readouterr().out
        values = [
            float(line.split()[-1])
            for line in out.splitlines()
            if "-quantile" in line
        ]
        assert len(values) == 7
        assert values == sorted(values)


class TestDescribe:
    def test_report_printed(self, stream_file, capsys):
        assert main(["describe", stream_file, "--epsilon", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "min" in out and "max" in out and "p50" in out
        assert "certified rank error" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["describe", str(tmp_path / "none.bin")]) == 1
        assert "error" in capsys.readouterr().err
