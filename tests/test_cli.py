"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.streams import FileStream


@pytest.fixture
def stream_file(tmp_path):
    path = str(tmp_path / "data.bin")
    assert main(["generate", path, "--kind", "random", "--n", "20000",
                 "--seed", "3"]) == 0
    return path


class TestPlan:
    def test_prints_all_policies(self, capsys):
        assert main(["plan", "--epsilon", "0.01", "--n", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "new" in out
        assert "munro-paterson" in out
        assert "alsabti-ranka-singh" in out

    def test_sampling_recommendation(self, capsys):
        assert main(
            ["plan", "--epsilon", "0.01", "--n", "100000000",
             "--delta", "1e-4"]
        ) == 0
        out = capsys.readouterr().out
        assert "recommended for N=100000000: sampling" in out

    def test_direct_recommendation_below_threshold(self, capsys):
        assert main(
            ["plan", "--epsilon", "0.01", "--n", "100000",
             "--delta", "1e-4"]
        ) == 0
        out = capsys.readouterr().out
        assert "recommended for N=100000: direct" in out

    def test_invalid_epsilon_is_clean_error(self, capsys):
        assert main(["plan", "--epsilon", "7", "--n", "100"]) == 1
        assert "error" in capsys.readouterr().err


class TestGenerate:
    @pytest.mark.parametrize(
        "kind",
        ["sorted", "reverse", "random", "uniform", "normal", "zipf",
         "clustered", "alternating"],
    )
    def test_every_generator(self, tmp_path, kind):
        path = str(tmp_path / f"{kind}.bin")
        assert main(
            ["generate", path, "--kind", kind, "--n", "1000"]
        ) == 0
        assert FileStream(path).n == 1000

    def test_deterministic_given_seed(self, tmp_path):
        p1, p2 = str(tmp_path / "a.bin"), str(tmp_path / "b.bin")
        main(["generate", p1, "--kind", "random", "--n", "500", "--seed", "9"])
        main(["generate", p2, "--kind", "random", "--n", "500", "--seed", "9"])
        assert np.array_equal(
            FileStream(p1).materialize(), FileStream(p2).materialize()
        )


class TestQuantile:
    def test_answers_within_epsilon(self, stream_file, capsys):
        assert main(
            ["quantile", stream_file, "--epsilon", "0.01",
             "--phi", "0.5", "--phi", "0.9"]
        ) == 0
        out = capsys.readouterr().out
        assert "phi=0.5:" in out
        assert "certified rank bound" in out
        # the stream is a permutation of 0..19999: parse and check rank
        median_line = next(
            line for line in out.splitlines() if line.startswith("phi=0.5")
        )
        value = float(median_line.split(":")[1])
        assert abs((value + 1) - 10_000) / 20_000 <= 0.01

    def test_missing_file_is_clean_error(self, tmp_path, capsys):
        assert main(
            ["quantile", str(tmp_path / "nope.bin"), "--epsilon", "0.01",
             "--phi", "0.5"]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_corrupt_file_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"garbage here" * 4)
        assert main(
            ["quantile", str(bad), "--epsilon", "0.01", "--phi", "0.5"]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestHistogram:
    def test_boundaries_printed_sorted(self, stream_file, capsys):
        assert main(
            ["histogram", stream_file, "--epsilon", "0.01", "--buckets", "8"]
        ) == 0
        out = capsys.readouterr().out
        values = [
            float(line.split()[-1])
            for line in out.splitlines()
            if "-quantile" in line
        ]
        assert len(values) == 7
        assert values == sorted(values)


class TestDescribe:
    def test_report_printed(self, stream_file, capsys):
        assert main(["describe", stream_file, "--epsilon", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "min" in out and "max" in out and "p50" in out
        assert "certified rank error" in out

    def test_missing_file(self, tmp_path, capsys):
        assert main(["describe", str(tmp_path / "none.bin")]) == 1
        assert "error" in capsys.readouterr().err


class TestStdinInput:
    """`quantile -` / `describe -` read whitespace-separated stdin values."""

    def _feed(self, monkeypatch, text):
        import io
        monkeypatch.setattr("sys.stdin", io.StringIO(text))

    def test_quantile_from_stdin(self, monkeypatch, capsys):
        values = " ".join(str(v) for v in range(1, 1001))
        self._feed(monkeypatch, values)
        assert main(["quantile", "-", "--epsilon", "0.05",
                     "--phi", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "n=1000" in out
        median = float(
            next(l for l in out.splitlines() if l.startswith("phi=0.5"))
            .split(":")[1]
        )
        assert abs(median - 500) <= 0.05 * 1000

    def test_describe_from_stdin(self, monkeypatch, capsys):
        self._feed(monkeypatch, "\n".join(str(v) for v in range(500)))
        assert main(["describe", "-", "--epsilon", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "n " in out and "p50" in out

    def test_newlines_and_spaces_both_split(self, monkeypatch, capsys):
        self._feed(monkeypatch, "1 2\n3\t4\n5 6 7 8 9 10")
        assert main(["quantile", "-", "--epsilon", "0.2",
                     "--phi", "0.5"]) == 0
        assert "n=10" in capsys.readouterr().out

    def test_non_numeric_stdin_is_clean_error(self, monkeypatch, capsys):
        self._feed(monkeypatch, "1.5 oops 2.5")
        assert main(["quantile", "-", "--epsilon", "0.1",
                     "--phi", "0.5"]) == 1
        assert "not numbers" in capsys.readouterr().err

    def test_non_finite_stdin_is_clean_error(self, monkeypatch, capsys):
        self._feed(monkeypatch, "1 2 inf")
        assert main(["quantile", "-", "--epsilon", "0.1",
                     "--phi", "0.5"]) == 1
        assert "finite" in capsys.readouterr().err

    def test_empty_stdin_is_clean_error(self, monkeypatch, capsys):
        self._feed(monkeypatch, "")
        assert main(["quantile", "-", "--epsilon", "0.1",
                     "--phi", "0.5"]) == 1
        assert "empty" in capsys.readouterr().err


class TestExitCodeConsistency:
    """Every subcommand exits 1 on ConfigurationError and OS errors."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["plan", "--epsilon", "0", "--n", "100"],
            ["plan", "--epsilon", "0.01", "--n", "0"],
            ["generate", "/tmp/x.bin", "--n", "0"],
            ["histogram", "IGNORED", "--epsilon", "0.01", "--buckets", "1"],
            ["quantile", "IGNORED", "--epsilon", "0.01", "--phi", "1.5"],
            ["quantile", "IGNORED", "--epsilon", "2.0", "--phi", "0.5"],
            ["describe", "IGNORED", "--epsilon", "0"],
        ],
    )
    def test_configuration_errors(self, argv, stream_file, capsys):
        argv = [stream_file if a == "IGNORED" else a for a in argv]
        assert main(argv) == 1
        assert "error" in capsys.readouterr().err

    def test_directory_input_is_clean_error(self, tmp_path, capsys):
        assert main(
            ["quantile", str(tmp_path), "--epsilon", "0.01", "--phi", "0.5"]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_client_connection_refused_is_clean_error(self, capsys):
        # typed exit code: 2 = ServiceConnectionError (vs 1 = ReproError,
        # 3 = ServiceTimeoutError), so scripts can tell "down" from "bad
        # arguments"; --retries 0 keeps the refused connect immediate
        assert main(
            ["client", "--port", "1", "--retries", "0", "list"]
        ) == 2
        assert "connection failed" in capsys.readouterr().err


class TestServeAndClient:
    """The CLI client against an in-process server."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import ServerThread

        with ServerThread(
            data_dir=str(tmp_path / "srv"), snapshot_interval_s=None
        ) as srv:
            yield srv

    def _client(self, server, *argv):
        return main(["client", "--port", str(server.port), *argv])

    def test_full_session(self, server, capsys, monkeypatch):
        assert self._client(
            server, "create", "api/latency", "--kind", "adaptive",
            "--epsilon", "0.02",
        ) == 0
        assert "created" in capsys.readouterr().out

        assert self._client(
            server, "ingest", "api/latency",
            *[str(v) for v in range(1, 101)],
        ) == 0
        assert "ingested 100 values" in capsys.readouterr().out

        import io
        monkeypatch.setattr(
            "sys.stdin", io.StringIO(" ".join(str(v) for v in range(200)))
        )
        assert self._client(server, "ingest", "api/latency", "-") == 0
        assert "ingested 200 values" in capsys.readouterr().out

        assert self._client(
            server, "query", "api/latency", "--phi", "0.5"
        ) == 0
        out = capsys.readouterr().out
        assert "phi=0.5" in out and "certified rank bound" in out

        assert self._client(server, "cdf", "api/latency", "50") == 0
        assert "rank" in capsys.readouterr().out

        assert self._client(server, "list") == 0
        assert "api/latency" in capsys.readouterr().out

        assert self._client(server, "stats") == 0
        import json
        stats = json.loads(capsys.readouterr().out)
        assert stats["ingest"]["elements"] == 300

        assert self._client(server, "snapshot") == 0
        assert "snapshot at seq" in capsys.readouterr().out

        assert self._client(server, "drain") == 0
        assert "drained" in capsys.readouterr().out

    def test_query_unknown_metric_exits_1(self, server, capsys):
        assert self._client(server, "query", "nope", "--phi", "0.5") == 1
        assert "unknown metric" in capsys.readouterr().err


class TestClientEngines:
    """`client create --engine` selects the sketch engine end to end."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import ServerThread

        with ServerThread(
            data_dir=str(tmp_path / "srv"), snapshot_interval_s=None
        ) as srv:
            yield srv

    def _client(self, server, *argv):
        return main(["client", "--port", str(server.port), *argv])

    @pytest.mark.parametrize("engine", ["kll", "frugal"])
    def test_create_ingest_query(self, server, engine, capsys):
        # non-paper engines default --kind to "fixed" (they size
        # themselves; "adaptive" staging is a paper-engine concept)
        assert self._client(
            server, "create", f"cli/{engine}", "--engine", engine
        ) == 0
        assert "created" in capsys.readouterr().out
        assert self._client(
            server, "ingest", f"cli/{engine}",
            *[str(v) for v in range(500)],
        ) == 0
        capsys.readouterr()
        assert self._client(
            server, "query", f"cli/{engine}", "--phi", "0.5"
        ) == 0
        assert "phi=0.5" in capsys.readouterr().out

    def test_engine_rejects_explicit_adaptive_kind(self, server, capsys):
        assert self._client(
            server, "create", "cli/bad", "--engine", "kll",
            "--kind", "adaptive",
        ) == 1
        assert "fixed" in capsys.readouterr().err

    def test_stats_text_reports_engine_counts(self, server, capsys):
        assert self._client(
            server, "create", "cli/k", "--engine", "kll") == 0
        assert self._client(
            server, "create", "cli/p", "--kind", "adaptive") == 0
        capsys.readouterr()
        assert main(["stats", "--port", str(server.port)]) == 0
        out = capsys.readouterr().out
        assert "engines:" in out
        assert "kll=1" in out and "paper=1" in out


class TestWatchCLI:
    """The ``repro watch`` family: add/rm/ls and the exit-code contract."""

    @pytest.fixture
    def server(self, tmp_path):
        from repro.service import ServerThread

        with ServerThread(
            data_dir=str(tmp_path / "srv"), snapshot_interval_s=None,
            watch_interval_s=None,
        ) as srv:
            yield srv

    def _watch(self, server, *argv):
        return main(["watch", "--port", str(server.port), *argv])

    def _client(self, server, *argv):
        return main(["client", "--port", str(server.port), *argv])

    def test_add_ls_rm_round_trip(self, server, capsys):
        assert self._client(
            server, "create", "api/latency", "--kind", "adaptive"
        ) == 0
        assert self._client(
            server, "ingest", "api/latency",
            *[str(v) for v in range(500)],
        ) == 0
        capsys.readouterr()
        assert self._watch(
            server, "add", "hot", "api/latency",
            "--phi", "0.99", "--threshold", "10",
        ) == 0
        assert "added" in capsys.readouterr().out
        assert self._watch(server, "ls", "--evaluate") == 0
        out = capsys.readouterr().out
        assert "hot" in out and "state=definite" in out
        assert self._watch(server, "rm", "hot") == 0
        assert "removed" in capsys.readouterr().out
        assert self._watch(server, "rm", "hot") == 0
        assert "no such rule" in capsys.readouterr().out

    def test_shell_friendly_operator_spellings(self, server, capsys):
        self._client(server, "create", "m", "--kind", "adaptive")
        capsys.readouterr()
        assert self._watch(
            server, "add", "low", "m",
            "--phi", "0.5", "--threshold", "1", "--op", "lt",
        ) == 0
        assert self._watch(server, "ls", "--json") == 0
        out = capsys.readouterr().out
        assert '"op": "<"' in out

    def test_conflicting_rule_is_clean_error(self, server, capsys):
        self._client(server, "create", "m", "--kind", "adaptive")
        self._watch(server, "add", "r", "m",
                    "--phi", "0.5", "--threshold", "1")
        capsys.readouterr()
        # identical re-add: idempotent, exit 0
        assert self._watch(server, "add", "r", "m",
                           "--phi", "0.5", "--threshold", "1") == 0
        assert "exists" in capsys.readouterr().out
        # different config under the same id: ReproError, exit 1
        assert self._watch(server, "add", "r", "m",
                           "--phi", "0.9", "--threshold", "2") == 1
        assert "error" in capsys.readouterr().err

    def test_connection_refused_is_exit_2(self, capsys):
        assert main(
            ["watch", "--port", "1", "--retries", "0", "ls"]
        ) == 2
        assert "connection failed" in capsys.readouterr().err

    def test_windowed_create_flags(self, server, capsys):
        assert self._client(
            server, "create", "w", "--window", "5m", "--slide", "1m"
        ) == 0
        assert self._client(
            server, "create", "d", "--decay", "1h"
        ) == 0
        capsys.readouterr()
        assert self._client(server, "list") == 0
        out = capsys.readouterr().out
        assert "window=300s/60s" in out
        assert "decay=3600s" in out
        # window and decay together: rejected client-side, exit 1
        assert self._client(
            server, "create", "bad", "--window", "5m", "--decay", "1h"
        ) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_unresponsive_server_is_exit_3(self, capsys):
        import socket
        import threading

        # a listener that accepts and then stays silent: the client's
        # read deadline trips -> ServiceTimeoutError -> exit 3
        srv = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        srv.bind(("127.0.0.1", 0))
        srv.listen(1)
        port = srv.getsockname()[1]
        conns = []
        t = threading.Thread(
            target=lambda: conns.append(srv.accept()), daemon=True
        )
        t.start()
        try:
            assert main(
                ["watch", "--port", str(port), "--timeout", "0.2",
                 "--retries", "0", "ls"]
            ) == 3
            assert "timed out" in capsys.readouterr().err
        finally:
            srv.close()
            for c, _ in conns:
                c.close()
