"""Tests for equi-depth histograms and selectivity estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.histogram import (
    EquiDepthHistogram,
    build_histogram,
    build_histograms,
    selectivity_experiment,
    true_selectivity,
)


class TestEquiDepthHistogram:
    def test_construction_and_edges(self):
        hist = EquiDepthHistogram([10.0, 20.0, 30.0], n=100, low=0.0, high=40.0)
        assert hist.n_buckets == 4
        assert hist.depth == 25.0
        assert hist.edges() == [0.0, 10.0, 20.0, 30.0, 40.0]

    def test_rejects_disordered_boundaries(self):
        with pytest.raises(ConfigurationError):
            EquiDepthHistogram([20.0, 10.0], n=10, low=0.0, high=30.0)

    def test_rejects_out_of_range_boundaries(self):
        with pytest.raises(ConfigurationError):
            EquiDepthHistogram([50.0], n=10, low=0.0, high=30.0)

    def test_full_range_selectivity_is_one(self):
        hist = EquiDepthHistogram([10.0], n=10, low=0.0, high=20.0)
        assert hist.selectivity(0.0, 20.0) == pytest.approx(1.0)

    def test_empty_range_selectivity_is_zero(self):
        hist = EquiDepthHistogram([10.0], n=10, low=0.0, high=20.0)
        assert hist.selectivity(100.0, 200.0) == 0.0

    def test_half_range_on_uniform(self):
        # exact equi-depth over uniform data: [low, median] holds half
        hist = EquiDepthHistogram([5.0], n=100, low=0.0, high=10.0)
        assert hist.selectivity(0.0, 5.0) == pytest.approx(0.5)

    def test_invalid_range_rejected(self):
        hist = EquiDepthHistogram([5.0], n=10, low=0.0, high=10.0)
        with pytest.raises(ConfigurationError):
            hist.selectivity(6.0, 4.0)

    def test_error_bound_formula(self):
        hist = EquiDepthHistogram(
            [1.0, 2.0, 3.0], n=100, low=0.0, high=4.0, epsilon=0.01
        )
        assert hist.selectivity_error_bound() == pytest.approx(
            2 * (0.25 + 0.01)
        )


class TestBuildHistogram:
    def test_boundaries_are_approximate_quantiles(self, permutation_100k):
        hist = build_histogram(permutation_100k, 10, epsilon=0.005)
        for i, boundary in enumerate(hist.boundaries, start=1):
            target_rank = int(np.ceil(i / 10 * 100_000))
            assert abs((boundary + 1) - target_rank) <= 0.005 * 100_000 + 1

    def test_selectivity_within_bound(self, rng):
        data = rng.lognormal(0, 1, 100_000)
        hist = build_histogram(data, 25, epsilon=0.002)
        results = selectivity_experiment(data, hist, n_predicates=200, seed=2)
        worst = max(r.absolute_error for r in results)
        assert worst <= hist.selectivity_error_bound()

    def test_reuses_supplied_sketch(self, permutation_10k):
        from repro.core import QuantileSketch

        sk = QuantileSketch(0.01, n=10_000)
        sk.extend(permutation_10k)
        hist = build_histogram(permutation_10k, 4, epsilon=0.01, sketch=sk)
        assert hist.n_buckets == 4

    def test_rejects_empty(self):
        with pytest.raises(EmptySummaryError):
            build_histogram(np.array([]), 4, epsilon=0.1)

    def test_rejects_single_bucket(self, permutation_10k):
        with pytest.raises(ConfigurationError):
            build_histogram(permutation_10k, 1, epsilon=0.1)

    def test_duplicate_heavy_column(self):
        data = np.repeat([1.0, 2.0, 3.0], 5000)
        hist = build_histogram(data, 3, epsilon=0.01)
        # each distinct value is a third of the column
        assert hist.selectivity(0.5, 1.5) == pytest.approx(1 / 3, abs=0.1)


class TestBuildHistograms:
    def test_matches_per_column_build(self, rng):
        n = 30_000
        data = {
            "u": rng.uniform(0, 1, n),
            "g": rng.normal(size=n),
            "ln": rng.lognormal(size=n),
        }
        multi = build_histograms(data, 12, 0.01)
        for name, values in data.items():
            single = build_histogram(values, 12, 0.01)
            assert multi[name].boundaries == single.boundaries, name
            assert multi[name].low == single.low
            assert multi[name].high == single.high
            assert multi[name].n == single.n

    def test_2d_ndarray_input(self, rng):
        matrix = rng.normal(size=(5_000, 3))
        named = build_histograms(matrix, 8, 0.02, columns=["a", "b", "c"])
        default = build_histograms(matrix, 8, 0.02)
        assert set(named) == {"a", "b", "c"}
        assert set(default) == {"c0", "c1", "c2"}
        assert named["b"].boundaries == default["c1"].boundaries

    def test_rejects_bad_input(self, rng):
        with pytest.raises(EmptySummaryError):
            build_histograms(np.zeros((0, 2)), 4, 0.1)
        with pytest.raises(EmptySummaryError):
            build_histograms({}, 4, 0.1)
        with pytest.raises(ConfigurationError):
            build_histograms(np.zeros((5, 2)), 1, 0.1)
        with pytest.raises(ConfigurationError):
            build_histograms(
                {"a": np.arange(5.0), "b": np.arange(4.0)}, 4, 0.1
            )
        with pytest.raises(ConfigurationError):
            build_histograms({"a": np.arange(5.0)}, 4, 0.1, columns=["x"])
        with pytest.raises(ConfigurationError):
            build_histograms(np.zeros((5, 2)), 4, 0.1, columns=["x"])


class TestTrueSelectivity:
    def test_exact_counting(self):
        data = np.array([1.0, 2, 3, 4, 5])
        assert true_selectivity(data, 2, 4) == pytest.approx(0.6)
        assert true_selectivity(data, 0, 10) == 1.0
        assert true_selectivity(data, 6, 7) == 0.0

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            true_selectivity(np.array([1.0]), 2, 1)

    def test_experiment_with_explicit_predicates(self, permutation_10k):
        hist = build_histogram(permutation_10k, 10, epsilon=0.01)
        results = selectivity_experiment(
            permutation_10k, hist, predicates=[(0.0, 4999.0)]
        )
        assert len(results) == 1
        assert results[0].true == pytest.approx(0.5)
        assert results[0].absolute_error <= hist.selectivity_error_bound()
