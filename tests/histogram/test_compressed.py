"""Tests for Misra-Gries and the compressed histogram of reference [3]."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.histogram import (
    CompressedHistogram,
    MisraGries,
    build_compressed_histogram,
    build_histogram,
)


class TestMisraGries:
    def test_guaranteed_heavy_hitters_survive(self, rng):
        # value 7 holds 40% of the stream; capacity 4 must retain it
        n = 50_000
        data = np.where(
            rng.random(n) < 0.4, 7.0, rng.uniform(100, 200, n)
        )
        mg = MisraGries(capacity=4)
        for i in range(0, n, 1000):
            mg.extend(data[i : i + 1000])
        assert 7.0 in mg.candidates()
        assert mg.n == n

    def test_candidates_bounded_by_capacity(self, rng):
        mg = MisraGries(capacity=5)
        mg.extend(rng.uniform(0, 1, 10_000))  # all distinct
        assert len(mg.candidates()) <= 5

    def test_multiple_heavy_values(self, rng):
        n = 30_000
        choice = rng.random(n)
        data = np.where(choice < 0.3, 1.0, np.where(choice < 0.55, 2.0, rng.uniform(10, 20, n)))
        mg = MisraGries(capacity=8)
        mg.extend(data)
        assert {1.0, 2.0} <= set(mg.candidates())

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            MisraGries(0)


@pytest.fixture
def skewed(rng):
    n = 100_000
    heavy = rng.choice([10.0, 20.0, 30.0], size=int(n * 0.6), p=[0.5, 0.3, 0.2])
    tail = rng.lognormal(3, 1, n - len(heavy))
    data = np.concatenate([heavy, tail])
    rng.shuffle(data)
    return data


class TestCompressedHistogram:
    def test_heavy_values_get_exact_singletons(self, skewed):
        ch = build_compressed_histogram(skewed, 20, epsilon=0.005)
        singleton_values = [v for v, _c in ch.singletons]
        assert singleton_values == [10.0, 20.0, 30.0]
        for value, count in ch.singletons:
            assert count == int((skewed == value).sum())  # exact

    def test_selectivity_exact_on_heavy_points(self, skewed):
        ch = build_compressed_histogram(skewed, 20, epsilon=0.005)
        true = float((skewed == 20.0).mean())
        assert ch.selectivity(20.0, 20.0) == pytest.approx(true, abs=1e-9)

    def test_beats_plain_equidepth_on_heavy_ranges(self, skewed):
        ch = build_compressed_histogram(skewed, 20, epsilon=0.005)
        eq = build_histogram(skewed, 20, epsilon=0.005)
        true = float(((skewed >= 19.5) & (skewed <= 20.5)).mean())
        assert abs(ch.selectivity(19.5, 20.5) - true) < abs(
            eq.selectivity(19.5, 20.5) - true
        )

    def test_no_heavy_values_degenerates_gracefully(self, rng):
        data = rng.uniform(0, 1, 20_000)  # nothing exceeds n / buckets
        ch = build_compressed_histogram(data, 10, epsilon=0.01)
        assert ch.n_singletons == 0
        true = float(((data >= 0.2) & (data <= 0.4)).mean())
        assert ch.selectivity(0.2, 0.4) == pytest.approx(true, abs=0.05)

    def test_all_heavy_degenerate(self):
        data = np.repeat([5.0, 6.0], 5000)
        ch = build_compressed_histogram(data, 4, epsilon=0.01)
        assert {v for v, _ in ch.singletons} == {5.0, 6.0}
        assert ch.selectivity(4.9, 5.1) == pytest.approx(0.5)

    def test_max_singletons_cap(self, rng):
        # ten heavy values, cap at 4: keep the four heaviest
        data = np.repeat(np.arange(10.0), 1000)
        ch = build_compressed_histogram(
            data, 100, epsilon=0.01, max_singletons=4
        )
        assert ch.n_singletons == 4

    def test_chunked_input(self, skewed):
        chunks = [skewed[i : i + 8192] for i in range(0, len(skewed), 8192)]
        ch = build_compressed_histogram(iter(chunks), 20, epsilon=0.005)
        assert ch.n == len(skewed)
        assert ch.n_singletons == 3

    def test_memory_is_small(self, skewed):
        ch = build_compressed_histogram(skewed, 20, epsilon=0.005)
        assert ch.memory_elements < 100

    def test_validation(self, skewed):
        with pytest.raises(ConfigurationError):
            build_compressed_histogram(skewed, 1, epsilon=0.01)
        with pytest.raises(ConfigurationError):
            build_compressed_histogram(skewed, 10, epsilon=0.01, max_singletons=0)
        with pytest.raises(EmptySummaryError):
            build_compressed_histogram(np.array([]), 10, epsilon=0.01)
        ch = build_compressed_histogram(skewed, 20, epsilon=0.005)
        with pytest.raises(ConfigurationError):
            ch.selectivity(2.0, 1.0)

    def test_is_frozen(self, skewed):
        ch = build_compressed_histogram(skewed, 20, epsilon=0.005)
        assert isinstance(ch, CompressedHistogram)
        with pytest.raises(AttributeError):
            ch.n = 5  # type: ignore[misc]
