"""Tests for the equi-width comparison histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.histogram import (
    EquiWidthHistogram,
    build_equiwidth_histogram,
    build_histogram,
    selectivity_experiment,
)


class TestEquiWidth:
    def test_counts_and_edges(self):
        hist = EquiWidthHistogram(0.0, 10.0, [2, 3, 5])
        assert hist.n == 10
        assert hist.n_buckets == 3
        assert hist.edges() == [0.0, pytest.approx(10 / 3), pytest.approx(20 / 3), 10.0]

    def test_build_counts_correctly(self):
        data = np.array([0.5, 1.5, 1.6, 2.5, 2.6, 2.7])
        hist = build_equiwidth_histogram(data, 3, low=0.0, high=3.0)
        assert hist.counts == [1, 2, 3]

    def test_uniform_data_is_accurate(self, rng):
        data = rng.uniform(0, 100, 100_000)
        hist = build_equiwidth_histogram(data, 20)
        # on uniform data equi-width == equi-depth: selectivity is good
        true = float(((data >= 10) & (data <= 30)).mean())
        assert hist.selectivity(10, 30) == pytest.approx(true, abs=0.01)

    def test_skewed_data_is_inaccurate(self, rng):
        """The Poosala et al. failure mode the paper's equi-depth
        histograms exist to avoid."""
        data = rng.lognormal(0, 2, 100_000)
        ew = build_equiwidth_histogram(data, 20)
        # nearly all mass lands in bucket 0; median estimate is way off
        true_median = float(np.quantile(data, 0.5))
        assert ew.quantile(0.5) > 10 * true_median

    def test_selectivity_of_full_range(self, rng):
        data = rng.normal(0, 1, 10_000)
        hist = build_equiwidth_histogram(data, 10)
        assert hist.selectivity(data.min(), data.max() + 1) == pytest.approx(
            1.0
        )

    def test_quantile_interpolation_monotone(self, rng):
        hist = build_equiwidth_histogram(rng.normal(0, 1, 10_000), 16)
        values = [hist.quantile(p) for p in np.linspace(0, 1, 11)]
        assert values == sorted(values)

    def test_chunked_build(self):
        chunks = [np.arange(i, i + 100, dtype=np.float64) for i in range(0, 1000, 100)]
        hist = build_equiwidth_histogram(iter(chunks), 10, low=0.0, high=1000.0)
        assert hist.counts == [100] * 10

    def test_degenerate_single_value(self):
        hist = build_equiwidth_histogram(np.full(100, 7.0), 5)
        assert hist.n == 100
        assert hist.selectivity(6.0, 8.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EquiWidthHistogram(5.0, 1.0, [1])
        with pytest.raises(ConfigurationError):
            EquiWidthHistogram(0.0, 1.0, [])
        with pytest.raises(ConfigurationError):
            EquiWidthHistogram(0.0, 1.0, [-1])
        with pytest.raises(EmptySummaryError):
            build_equiwidth_histogram(np.array([]), 4)
        with pytest.raises(ConfigurationError):
            build_equiwidth_histogram(np.array([1.0]), 0)
        hist = EquiWidthHistogram(0.0, 1.0, [0])
        with pytest.raises(EmptySummaryError):
            hist.selectivity(0.0, 1.0)


class TestHeadToHead:
    def test_equidepth_beats_equiwidth_on_skew(self, rng):
        """The quantitative version of why the paper's application [3]
        wants quantiles: range selectivity on skewed data."""
        data = rng.lognormal(0, 2, 100_000)
        depth = build_histogram(data, 20, epsilon=0.002)
        width = build_equiwidth_histogram(data, 20)

        # predicates concentrated where the data actually lives
        lo_v, hi_v = np.quantile(data, [0.05, 0.95])
        rng2 = np.random.default_rng(5)
        predicates = [
            tuple(sorted(rng2.uniform(lo_v, hi_v, 2))) for _ in range(100)
        ]
        depth_err = max(
            r.absolute_error
            for r in selectivity_experiment(data, depth, predicates)
        )
        width_err = max(
            abs(width.selectivity(lo, hi)
                - float(((data >= lo) & (data <= hi)).mean()))
            for lo, hi in predicates
        )
        assert depth_err < width_err
