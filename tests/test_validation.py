"""Tests for the statistical guarantee-verification harness."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.streams import zipf_stream
from repro.validation import GuaranteeReport, verify_guarantee


class TestVerifyGuarantee:
    def test_no_breaches_across_standard_orders(self):
        report = verify_guarantee(0.01, 20_000, n_trials=10, seed=4)
        assert report.breaches == 0
        assert report.max_observed <= 0.01
        assert report.worst_certified <= 0.01
        assert report.n_measurements == 10 * 5

    def test_observed_well_below_epsilon(self):
        # Section 6's qualitative claim as a statistical statement
        report = verify_guarantee(0.01, 20_000, n_trials=10, seed=4)
        assert report.mean_observed < 0.01 / 3

    def test_custom_stream_factory(self):
        report = verify_guarantee(
            0.02,
            10_000,
            n_trials=4,
            stream_factory=lambda seed: zipf_stream(10_000, seed=seed),
        )
        assert report.breaches == 0

    def test_policies(self):
        for policy in ("munro-paterson", "alsabti-ranka-singh"):
            report = verify_guarantee(
                0.02, 10_000, policy=policy, n_trials=4, seed=1
            )
            assert report.breaches == 0, policy

    def test_percentiles_of_distribution(self):
        report = verify_guarantee(0.02, 10_000, n_trials=5, seed=2)
        assert report.percentile(0.0) <= report.percentile(0.5)
        assert report.percentile(0.5) <= report.percentile(1.0)
        assert report.percentile(1.0) == report.max_observed
        with pytest.raises(ConfigurationError):
            report.percentile(1.5)

    def test_report_string(self):
        report = verify_guarantee(0.05, 5_000, n_trials=2, seed=3)
        text = str(report)
        assert "breaches=0" in text
        assert isinstance(report, GuaranteeReport)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            verify_guarantee(0.01, 1_000, n_trials=0)
