"""Property-based tests (hypothesis) for the library's core invariants.

The single most important property in the whole reproduction is checked
here as a hard invariant: **whatever the data, arrival order, policy or
configuration, a returned quantile's true rank never deviates from its
target by more than the certified bound** -- and, when the configuration
was sized by the paper's optimisers, by more than ``epsilon * N``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.buffer import Buffer
from repro.core.framework import QuantileFramework
from repro.core.operations import OffsetSelector, collapse, weighted_select
from repro.core.parameters import optimal_parameters
from repro.core.sampling import hoeffding_sample_size

COMMON = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

policies = st.sampled_from(["new", "munro-paterson", "alsabti-ranka-singh"])
small_configs = st.tuples(
    st.integers(min_value=2, max_value=7),  # b
    st.integers(min_value=1, max_value=16),  # k
)
float_lists = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=600,
)


def true_rank_interval(data: np.ndarray, value: float) -> "tuple[int, int]":
    ordered = np.sort(data)
    lo = int(np.searchsorted(ordered, value, side="left")) + 1
    hi = int(np.searchsorted(ordered, value, side="right"))
    return lo, hi


def rank_error(data: np.ndarray, phi: float, value: float) -> int:
    n = len(data)
    target = min(max(math.ceil(phi * n), 1), n)
    lo, hi = true_rank_interval(data, value)
    if hi < lo:  # not present: pads / interpolation never reach here
        return max(n, 1)
    if lo <= target <= hi:
        return 0
    return min(abs(target - lo), abs(target - hi))


class TestHeadlineGuarantee:
    @COMMON
    @given(data=float_lists, policy=policies, config=small_configs)
    def test_certified_bound_always_holds(self, data, policy, config):
        """Lemma 5, live: rank error <= certified a-posteriori bound."""
        b, k = config
        arr = np.asarray(data, dtype=np.float64)
        fw = QuantileFramework(b=b, k=k, policy=policy)
        fw.extend(arr)
        answers = {phi: fw.query(phi) for phi in (0.0, 0.1, 0.5, 0.9, 1.0)}
        # read the bound after querying: the first query may place the
        # staged tail, whose collapses the certificate must cover
        bound = fw.error_bound()
        for phi, got in answers.items():
            assert rank_error(arr, phi, got) <= bound + 1

    @COMMON
    @given(
        data=st.lists(
            st.integers(min_value=0, max_value=10**6),
            min_size=1,
            max_size=2000,
        ),
        policy=policies,
        eps=st.sampled_from([0.05, 0.1, 0.25]),
    )
    def test_epsilon_guarantee_with_sized_configuration(
        self, data, policy, eps
    ):
        """The paper's headline: a-priori sized summaries are eps-approximate."""
        arr = np.asarray(data, dtype=np.float64)
        n = len(arr)
        fw = QuantileFramework.from_accuracy(eps, n, policy=policy)
        fw.extend(arr)
        for phi in (0.01, 0.5, 0.99):
            got = fw.query(phi)
            assert rank_error(arr, phi, got) <= math.ceil(eps * n) + 1

    @COMMON
    @given(data=float_lists, config=small_configs)
    def test_returned_values_are_input_elements(self, data, config):
        b, k = config
        arr = np.asarray(data, dtype=np.float64)
        fw = QuantileFramework(b=b, k=k)
        fw.extend(arr)
        for phi in (0.0, 0.3, 0.7, 1.0):
            assert fw.query(phi) in arr

    @COMMON
    @given(data=float_lists, config=small_configs)
    def test_quantiles_monotone_in_phi(self, data, config):
        b, k = config
        fw = QuantileFramework(b=b, k=k)
        fw.extend(np.asarray(data, dtype=np.float64))
        phis = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
        values = fw.quantiles(phis)
        assert values == sorted(values)


class TestOperationInvariants:
    @COMMON
    @given(
        buffers=st.lists(
            st.tuples(
                st.lists(
                    st.integers(min_value=-100, max_value=100),
                    min_size=4,
                    max_size=4,
                ),
                st.integers(min_value=1, max_value=9),
            ),
            min_size=1,
            max_size=5,
        ),
        targets=st.lists(
            st.integers(min_value=1, max_value=4), min_size=1, max_size=6
        ),
    )
    def test_weighted_select_matches_materialisation(self, buffers, targets):
        bufs = []
        expanded = []
        for values, weight in buffers:
            buf = Buffer.from_values(np.asarray(values, dtype=np.float64), k=4)
            buf.weight = weight
            bufs.append(buf)
            for v in sorted(values):
                expanded.extend([float(v)] * weight)
        expanded.sort()
        positions = [
            min(t * sum(w for _, w in buffers), len(expanded))
            for t in targets
        ]
        got = weighted_select(bufs, sorted(positions))
        assert [float(v) for v in got] == [
            expanded[p - 1] for p in sorted(positions)
        ]

    @COMMON
    @given(
        values_a=st.lists(
            st.integers(min_value=-50, max_value=50), min_size=5, max_size=5
        ),
        values_b=st.lists(
            st.integers(min_value=-50, max_value=50), min_size=5, max_size=5
        ),
        weight_a=st.integers(min_value=1, max_value=6),
        weight_b=st.integers(min_value=1, max_value=6),
    )
    def test_collapse_output_within_input_range(
        self, values_a, values_b, weight_a, weight_b
    ):
        a = Buffer.from_values(np.asarray(values_a, dtype=np.float64), k=5)
        b = Buffer.from_values(np.asarray(values_b, dtype=np.float64), k=5)
        a.weight, b.weight = weight_a, weight_b
        y = collapse([a, b], OffsetSelector())
        union = set(values_a) | set(values_b)
        assert all(float(v) in {float(u) for u in union} for v in y.values)
        assert list(y.values) == sorted(y.values)
        assert y.weight == weight_a + weight_b

    @COMMON
    @given(
        weights=st.lists(
            st.integers(min_value=2, max_value=40), min_size=1, max_size=60
        )
    )
    def test_lemma1_for_any_weight_sequence(self, weights):
        sel = OffsetSelector()
        offsets = [sel.offset_for(w) for w in weights]
        w_total, c = sum(weights), len(weights)
        assert sum(offsets) >= (w_total + c - 1) / 2

    @COMMON
    @given(
        values=st.lists(
            st.text(
                alphabet="abcdefghij", min_size=1, max_size=4
            ),
            min_size=1,
            max_size=120,
        ),
        config=small_configs,
    )
    def test_generic_values_share_the_guarantee(self, values, config):
        b, k = config
        fw = QuantileFramework(b=b, k=k)
        for v in values:
            fw.update(v)
        ordered = sorted(values)
        n = len(values)
        answers = {phi: fw.query(phi) for phi in (0.25, 0.5, 0.75)}
        bound = fw.error_bound()
        for phi, got in answers.items():
            target = min(max(math.ceil(phi * n), 1), n)
            lo = ordered.index(got) + 1
            hi = n - ordered[::-1].index(got)
            err = 0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            assert err <= bound + 1


class TestParameterInvariants:
    @COMMON
    @given(
        eps=st.floats(min_value=0.001, max_value=0.3),
        n=st.integers(min_value=1, max_value=10**10),
        policy=policies,
    )
    def test_plans_are_feasible(self, eps, n, policy):
        plan = optimal_parameters(eps, n, policy=policy)
        assert plan.b >= 2
        assert plan.k >= 1
        assert plan.error_bound <= eps * n + 0.5

    @COMMON
    @given(
        eps2=st.floats(min_value=0.001, max_value=0.5),
        delta=st.floats(min_value=1e-10, max_value=0.5),
    )
    def test_sample_size_formula_invariants(self, eps2, delta):
        s = hoeffding_sample_size(eps2, delta)
        assert s >= 1
        # Hoeffding: 2 exp(-2 eps2^2 S) <= delta must hold at the returned S
        assert 2 * math.exp(-2 * eps2 * eps2 * s) <= delta * (1 + 1e-9)


class TestMergeInvariants:
    @COMMON
    @given(
        data_a=float_lists,
        data_b=float_lists,
        config=small_configs,
    )
    def test_absorb_preserves_certified_bound(self, data_a, data_b, config):
        b, k = config
        arr_a = np.asarray(data_a, dtype=np.float64)
        arr_b = np.asarray(data_b, dtype=np.float64)
        fa = QuantileFramework(b=b, k=k)
        fb = QuantileFramework(b=b, k=k)
        fa.extend(arr_a)
        fb.extend(arr_b)
        fa.absorb(fb)
        combined = np.concatenate([arr_a, arr_b])
        assert fa.n == len(combined)
        answers = {phi: fa.query(phi) for phi in (0.1, 0.5, 0.9)}
        bound = fa.error_bound()
        for phi, got in answers.items():
            assert rank_error(combined, phi, got) <= bound + 1
