"""ISSUE-9 tentpole + satellite 1: crash, re-sync, rejoin -- proven end to end.

One module-scoped 3-node R=2 cluster runs the whole recovery story in
order (classes below depend on the earlier ones having run):

* a `scenario` fixture SIGKILLs the senior owner of a chaos-proxied
  metric mid-ingest (lost acks force token resends first), keeps
  ingesting into the survivors, then relaunches the corpse and re-syncs
  it -- full-payload install + journal-tail catch-up under the donors'
  idempotency tokens;
* the tests then assert the hard guarantees: the resynced node's
  serialized state is **bit-identical** to its donor's for every metric
  it owns (across paper/kll/frugal engines), the cluster-wide ``n`` is
  *exactly* the number ingested (zero lost, zero duplicated), and the
  cluster fan-in equals the offline Sec. 4.9 merge of the same streams;
* planned membership follows on the same cluster: ``add_node`` /
  ``remove_node`` migrate only the ring-moved metrics while counts stay
  exact;
* the ``repro cluster status`` exit-code contract (ISSUE-9 satellite 4)
  is pinned: 0 all up, 4 alive-but-syncing, 1 anything dead or down --
  a re-sync window must not page as an outage.
"""

from __future__ import annotations

import json
import os
import socket
import types

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.cluster import (
    ClusterCoordinator,
    ClusterManifest,
    SyncDriver,
    merge_tagged,
)
from repro.cluster.errors import ClusterConfigError, ClusterSyncError
from repro.service import ChaosProxy, FaultEvent, FaultSchedule, QuantileClient
from repro.service.registry import SketchRegistry

BATCH = 500
N_BATCHES = 8  # half before the kill, half while the victim is down
TOTAL = BATCH * N_BATCHES
PHIS = [0.1, 0.5, 0.9, 0.99]

#: name -> engine; the paper trio also feeds the fan-in assertions
METRICS = {
    "rs/chaos": "paper",
    "rs/p0": "paper",
    "rs/p1": "paper",
    "rs/kll": "kll",
    "rs/frugal": "frugal",
}


def create_kwargs(engine):
    if engine == "paper":
        return dict(kind="fixed", epsilon=0.01, n=10 * TOTAL)
    return dict(kind="fixed", epsilon=0.01, engine=engine)


def direct(coord, node_id):
    spec = coord.manifest.node(node_id)
    return QuantileClient(spec.host, spec.port)


def node_n(coord, node_id, name):
    with direct(coord, node_id) as qc:
        for entry in qc.list_metrics():
            if entry["name"] == name:
                return entry["n"]
    return 0


@pytest.fixture(scope="module")
def coord(tmp_path_factory):
    data_dir = str(tmp_path_factory.mktemp("resync-cluster"))
    with ClusterCoordinator(
        nodes=3,
        replication=2,
        data_dir=data_dir,
        n_shards=1,
        snapshot_interval_s=None,
    ) as c:
        yield c


@pytest.fixture(scope="module")
def scenario(coord):
    """Run the kill -> continue-ingest -> restart -> re-sync story once."""
    rng = np.random.default_rng(1998)
    data = {
        name: rng.standard_normal(TOTAL) * (i + 1)
        for i, name in enumerate(METRICS)
    }
    with coord.client() as probe:
        victim = probe.ring.owners("rs/chaos", 2)[0]
    spec = coord.manifest.node(victim)
    # truncate server->client on the first connections: acks are lost
    # for batches the victim already journaled, forcing token resends
    plan = (FaultEvent(kind="truncate", direction="s2c", after_bytes=64),)
    with ChaosProxy(
        spec.host, spec.port, schedule=FaultSchedule([plan, plan, plan])
    ) as proxy:
        client = coord.client(
            endpoint_overrides={victim: (proxy.host, proxy.port)},
            timeout=10.0,
            max_retries=4,
            backoff_base=0.01,
        )
        try:
            for name, engine in METRICS.items():
                client.create(name, **create_kwargs(engine))
            half = N_BATCHES // 2
            for i in range(half):
                for name in METRICS:
                    client.ingest(
                        name, data[name][i * BATCH : (i + 1) * BATCH]
                    )
            faults_fired = bool(proxy.faults_injected)
            coord.kill_node(victim)
            epoch_up = coord.epoch
            newly_dead = coord.poll()
            epoch_down = coord.epoch
            # the cluster keeps taking writes while the victim is a corpse
            for i in range(half, N_BATCHES):
                for name in METRICS:
                    client.ingest(
                        name, data[name][i * BATCH : (i + 1) * BATCH]
                    )
            client.drain()
        finally:
            client.close()
    coord.restart_node(victim, resync=False)
    epoch_restarted = coord.epoch
    manifest_while_syncing = ClusterManifest.load(coord.manifest_path)
    report = coord.resync_node(victim)
    ring = coord.manifest.ring()
    owned = sorted(
        name for name in METRICS if victim in ring.owners(name, 2)
    )
    return types.SimpleNamespace(
        data=data,
        victim=victim,
        faults_fired=faults_fired,
        newly_dead=newly_dead,
        epoch_up=epoch_up,
        epoch_down=epoch_down,
        epoch_restarted=epoch_restarted,
        epoch_final=coord.epoch,
        manifest_while_syncing=manifest_while_syncing,
        report=report,
        ring=ring,
        owned=owned,
    )


class TestCrashAndResync:
    def test_chaos_faults_and_death_detection(self, scenario):
        assert scenario.faults_fired, "no ack loss injected; tune schedule"
        assert scenario.newly_dead == [scenario.victim]
        assert scenario.epoch_down == scenario.epoch_up + 1

    def test_restart_rejoins_as_syncing_not_up(self, scenario):
        m = scenario.manifest_while_syncing
        assert m.node(scenario.victim).status == "syncing"
        assert scenario.victim not in m.live_ids()
        assert scenario.victim in m.syncing_ids()
        assert scenario.epoch_restarted == scenario.epoch_down + 1

    def test_resync_flips_up_and_bumps_epoch(self, coord, scenario):
        assert coord.manifest.node(scenario.victim).status == "up"
        assert scenario.epoch_final > scenario.epoch_restarted
        assert coord.resyncs >= 1

    def test_every_owned_metric_verified_bit_identical(self, scenario):
        assert scenario.owned, "victim owns nothing; placement surprise"
        synced = {m.name: m for m in scenario.report.synced}
        assert sorted(synced) == scenario.owned
        for m in synced.values():
            assert m.verified, m
            assert m.installs >= 1
            assert m.bytes > 0

    def test_resynced_payloads_equal_donor_payloads(self, coord, scenario):
        """Re-verify identity out-of-band, not trusting the report."""
        for name in scenario.owned:
            owners = scenario.ring.owners(name, 2)
            donor = next(n for n in owners if n != scenario.victim)
            with direct(coord, donor) as dc, direct(
                coord, scenario.victim
            ) as vc:
                dc.drain()
                vc.drain()
                assert dc.fetch_raw(name) == vc.fetch_raw(name), name

    def test_transfer_preserved_each_engine_byte(self, scenario):
        synced = {m.name: m.engine for m in scenario.report.synced}
        for name, engine in synced.items():
            assert engine == METRICS[name], name

    def test_cluster_wide_n_is_exact(self, coord, scenario):
        """Zero lost, zero duplicated, through ack loss + SIGKILL +
        re-sync -- for every engine."""
        with coord.client() as client:
            for name in METRICS:
                _values, _bound, n = client.query(name, [0.5])
                assert n == TOTAL, (name, n)

    def test_fan_in_equals_offline_merge(self, coord, scenario):
        """Cluster fan-in over the recovered topology == offline
        Sec. 4.9 merge of the same full streams."""
        names = ["rs/chaos", "rs/p0", "rs/p1"]
        with coord.client() as client:
            values, bound, n = client.query_merged(names, PHIS)
        offline = SketchRegistry()
        for name in names:
            offline.create(name, **create_kwargs("paper"))
            offline.ingest(name, scenario.data[name])
        offline.apply_all()
        merged = merge_tagged(
            [(name, offline.fetch_serialized(name)) for name in names]
        )
        assert n == merged.n == 3 * TOTAL
        assert bound == float(merged.error_bound())
        assert values == [float(v) for v in merged.quantiles(PHIS)]

    def test_victim_journal_holds_the_restore_records(self, coord, scenario):
        """The installs are journaled: a second crash right after the
        re-sync replays to the same state."""
        from repro.service.journal import RESTORE_RECORD, read_journal

        restored = set()
        node_dir = os.path.join(coord.data_dir, scenario.victim)
        for root, _dirs, files in os.walk(node_dir):
            for fname in files:
                if not fname.endswith(".log"):
                    continue
                scan = read_journal(os.path.join(root, fname))
                for rec in scan.records:
                    if rec.type == RESTORE_RECORD:
                        restored.add(rec.name)
                        assert rec.payload, rec.name
        assert set(scenario.owned) <= restored

    def test_sync_progress_gauges_published(self, coord, scenario):
        prom = coord.prometheus()
        assert "repro_cluster_resyncs" in prom
        assert "repro_cluster_nodes_syncing 0.0" in prom
        assert "repro_cluster_sync_metrics_total" in prom
        assert "repro_cluster_sync_metrics_done" in prom


class TestSyncDriverEdges:
    def test_sole_copy_is_kept_never_overwritten(self, coord, scenario):
        """When every placement co-owner is gone, the target's local
        journal is the only surviving copy -- re-sync must keep it."""
        name = scenario.owned[0]
        owners = scenario.ring.owners(name, 2)
        target = owners[0]
        bystander = next(
            n for n in coord.node_ids if n not in owners
        )
        with direct(coord, target) as tc:
            before = tc.fetch_raw(name)
        with SyncDriver(coord.manifest) as driver:
            report = driver.resync_node(
                target,
                ring=scenario.ring,
                replication=2,
                live={bystander},  # both owners "dead"
                metrics=[name],
            )
        assert report.kept == [name]
        assert report.synced == []
        with direct(coord, target) as tc:
            assert tc.fetch_raw(name) == before

    def test_no_live_donor_is_a_typed_error(self, coord, scenario):
        with SyncDriver(coord.manifest) as driver:
            with pytest.raises(ClusterSyncError, match="no live donor"):
                driver.resync_node(
                    "node-0",
                    ring=scenario.ring,
                    replication=2,
                    live=set(),
                )

    def test_restart_refuses_a_live_node(self, coord, scenario):
        with pytest.raises(ClusterConfigError, match="still running"):
            coord.restart_node(scenario.victim)

    def test_resync_refuses_a_dead_node(self, tmp_path):
        with ClusterCoordinator(
            nodes=1,
            replication=1,
            data_dir=str(tmp_path / "solo"),
            n_shards=1,
            snapshot_interval_s=None,
        ) as solo:
            solo.kill_node(0)
            with pytest.raises(ClusterSyncError, match="not running"):
                solo.resync_node(0)
            with pytest.raises(ClusterConfigError, match="fewer than"):
                solo.remove_node(0)


def _free_port() -> int:
    s = socket.socket()
    s.bind(("127.0.0.1", 0))
    port = s.getsockname()[1]
    s.close()
    return port


class TestStatusExitCodes:
    """ISSUE-9 satellite 4: `repro cluster status` must tell a node
    that is alive-and-catching-up apart from a dead one."""

    def _edited_manifest(self, coord, tmp_path, edit=None):
        manifest = ClusterManifest.load(coord.manifest_path)
        if edit is not None:
            edit(manifest)
        path = str(tmp_path / "cluster.json")
        manifest.save(path)
        return path

    def test_all_up_exits_zero(self, coord, scenario, tmp_path, capsys):
        path = self._edited_manifest(coord, tmp_path)
        assert cli_main(["cluster", "status", "--manifest", path]) == 0
        out = capsys.readouterr().out
        assert "3/3 nodes up" in out

    def test_syncing_exits_four_not_one(
        self, coord, scenario, tmp_path, capsys
    ):
        """The regression: a node mid-re-sync used to fail status the
        same way a dead node does."""
        path = self._edited_manifest(
            coord, tmp_path, lambda m: m.mark("node-1", "syncing")
        )
        assert cli_main(["cluster", "status", "--manifest", path]) == 4
        out = capsys.readouterr().out
        assert "SYNCING" in out
        assert "1 syncing" in out

    def test_dead_node_exits_one(self, coord, scenario, tmp_path, capsys):
        def point_at_corpse(m):
            m.node("node-1").port = _free_port()

        path = self._edited_manifest(coord, tmp_path, point_at_corpse)
        assert cli_main(["cluster", "status", "--manifest", path]) == 1
        assert "DOWN" in capsys.readouterr().out

    def test_alive_but_marked_down_still_exits_one(
        self, coord, scenario, tmp_path, capsys
    ):
        """An un-swept or never-resynced node is *behind*: answering
        PINGs does not make it healthy."""
        path = self._edited_manifest(
            coord, tmp_path, lambda m: m.mark("node-2", "down")
        )
        assert cli_main(["cluster", "status", "--manifest", path]) == 1
        capsys.readouterr()

    def test_prom_gauges_split_up_and_syncing(
        self, coord, scenario, tmp_path, capsys
    ):
        path = self._edited_manifest(
            coord, tmp_path, lambda m: m.mark("node-1", "syncing")
        )
        assert (
            cli_main(
                ["cluster", "status", "--manifest", path, "--prom"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repro_cluster_nodes_up 2.0" in out
        assert "repro_cluster_nodes_syncing 1.0" in out
        # the node is alive, just not serving reads: the per-node
        # liveness gauge must still say so
        assert 'repro_cluster_node_up{node="node-1"} 1.0' in out

    def test_json_carries_manifest_status_per_node(
        self, coord, scenario, tmp_path, capsys
    ):
        path = self._edited_manifest(
            coord, tmp_path, lambda m: m.mark("node-1", "syncing")
        )
        cli_main(["cluster", "status", "--manifest", path, "--json"])
        doc = json.loads(capsys.readouterr().out)
        by_id = {row["id"]: row for row in doc["nodes"]}
        assert by_id["node-1"]["manifest_status"] == "syncing"
        assert by_id["node-1"]["alive"] is True


class TestPlannedMembership:
    """Tentpole second half: add-node / remove-node on the same live
    cluster, counts staying exact throughout.  Runs last -- it changes
    the topology the earlier classes pinned."""

    def test_add_node_migrates_only_moved_keys(self, coord, scenario):
        ring_before = coord.manifest.ring()
        epoch0 = coord.epoch
        transfers0 = coord.rebalance_transfers
        nid = coord.add_node()
        assert nid == "node-3"
        assert coord.manifest.node(nid).status == "up"
        assert coord.epoch == epoch0 + 2  # join + flip-up
        ring_after = coord.manifest.ring()
        gained = [
            name
            for name in METRICS
            if nid in ring_after.owners(name, 2)
        ]
        assert coord.rebalance_transfers > transfers0
        for name in METRICS:
            expected = TOTAL if name in gained else 0
            assert node_n(coord, nid, name) == expected, name
        # pre-existing placement of unmoved keys did not shift
        for name in METRICS:
            if name not in gained:
                assert ring_after.owners(name, 2) == ring_before.owners(
                    name, 2
                ), name

    def test_counts_exact_after_join(self, coord, scenario):
        with coord.client() as client:
            for name in METRICS:
                _v, _b, n = client.query(name, [0.5])
                assert n == TOTAL, (name, n)

    def test_remove_node_drains_and_departs(self, coord, scenario):
        leaving = "node-0"
        ring_after = (
            coord.manifest.ring()
        )  # captured before removal for the gained-set check below
        epoch0 = coord.epoch
        migrated = coord.remove_node(leaving)
        assert leaving not in coord.manifest.node_ids()
        assert coord.epoch == epoch0 + 1
        assert not coord.is_alive(leaving)
        # only metrics the leaving node anchored needed to move
        anchored = [
            name
            for name in METRICS
            if leaving in ring_after.owners(name, 2)
        ]
        assert set(migrated) <= set(anchored)
        with coord.client() as client:
            for name in METRICS:
                _v, _b, n = client.query(name, [0.5])
                assert n == TOTAL, (name, n)

    def test_sparse_ids_survive_a_full_restart(self, coord, scenario):
        """After remove(node-0) the ids are sparse (1,2,3); a restart
        over the same data_dir must keep them -- re-deriving node-0..2
        would re-route metrics away from their journals."""
        ids = coord.manifest.node_ids()
        assert ids == ["node-1", "node-2", "node-3"]
        coord.stop()
        relaunched = ClusterCoordinator(
            nodes=3,
            replication=2,
            data_dir=coord.data_dir,
            n_shards=1,
            snapshot_interval_s=None,
        )
        relaunched.start()
        try:
            assert relaunched.manifest.node_ids() == ids
            with relaunched.client() as client:
                for name in METRICS:
                    _v, _b, n = client.query(name, [0.5])
                    assert n == TOTAL, (name, n)
        finally:
            relaunched.stop()
