"""Consistent-hash ring properties (ISSUE-8 satellite 3).

The cluster's correctness leans on three ring properties, each verified
here by hypothesis over random topologies and key sets:

* **deterministic placement** -- owners depend only on (nodes, vnodes,
  key), never on process state, insertion order, or ``PYTHONHASHSEED``;
* **minimal movement** -- a join or leave only moves keys to/from the
  changed node (expected ~1/N of them; <= ~2/N asserted statistically
  on a fixed corpus), every key untouched by the change keeps its
  owner;
* **distinct replicas** -- a replica set never lists a node twice, and
  failover (shrinking ``live``) preserves the survivors' order so the
  senior replica stays first.
"""

from __future__ import annotations

import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import DEFAULT_VNODES, HashRing
from repro.cluster.errors import ClusterConfigError

node_ids = st.lists(
    st.text(
        alphabet="abcdefghij0123456789-", min_size=1, max_size=12
    ).filter(bool),
    min_size=1,
    max_size=8,
    unique=True,
)

keys = st.lists(
    st.text(min_size=1, max_size=24), min_size=1, max_size=32, unique=True
)


def fixed_nodes(n: int) -> list:
    return [f"node-{i}" for i in range(n)]


class TestDeterminism:
    @given(nodes=node_ids, key=st.text(min_size=1, max_size=24))
    @settings(max_examples=100, deadline=None)
    def test_placement_ignores_insertion_order(self, nodes, key):
        a = HashRing(nodes, vnodes=8)
        b = HashRing(reversed(nodes), vnodes=8)
        r = min(3, len(nodes))
        assert a.owners(key, r) == b.owners(key, r)

    @given(nodes=node_ids, sample=keys)
    @settings(max_examples=50, deadline=None)
    def test_rebuild_equals_incremental(self, nodes, sample):
        whole = HashRing(nodes, vnodes=8)
        grown = HashRing(vnodes=8)
        for node in nodes:
            grown.add(node)
        for key in sample:
            assert whole.owners(key, 2) == grown.owners(key, 2)

    def test_placement_is_process_stable(self):
        """Same owners under a different PYTHONHASHSEED interpreter."""
        code = (
            "from repro.cluster import HashRing;"
            "ring = HashRing(['node-0', 'node-1', 'node-2'], vnodes=64);"
            "print([ring.owner(f'metric/{i}') for i in range(50)])"
        )
        import os

        import repro

        src = os.path.dirname(os.path.dirname(repro.__file__))
        outs = set()
        for seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONPATH": src,
                    "PYTHONHASHSEED": seed,
                },
                check=True,
            )
            outs.add(proc.stdout)
        assert len(outs) == 1

    def test_default_vnodes(self):
        ring = HashRing(["a"])
        assert ring.vnodes == DEFAULT_VNODES


class TestMinimalMovement:
    @given(nodes=node_ids, sample=keys, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_join_moves_keys_only_to_the_new_node(
        self, nodes, sample, data
    ):
        newcomer = data.draw(
            st.text(
                alphabet="xyz9", min_size=1, max_size=8
            ).filter(lambda s: s not in nodes)
        )
        before = HashRing(nodes, vnodes=8)
        after = HashRing(nodes + [newcomer], vnodes=8)
        for key in sample:
            old, new = before.owner(key), after.owner(key)
            if new != old:
                assert new == newcomer

    @given(nodes=node_ids, sample=keys, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_leave_moves_only_the_lost_nodes_keys(
        self, nodes, sample, data
    ):
        victim = data.draw(st.sampled_from(nodes))
        before = HashRing(nodes, vnodes=8)
        after = HashRing([n for n in nodes if n != victim], vnodes=8)
        for key in sample:
            old = before.owner(key)
            if old != victim:
                assert after.owner(key) == old

    def test_join_movement_fraction_is_about_one_over_n(self):
        """Statistical check on a fixed corpus: joining the (N+1)-th
        node moves ~1/(N+1) of keys, comfortably under the ~2/N
        tolerance the issue asks for."""
        corpus = [f"metric/{i}" for i in range(4000)]
        for n in (3, 5, 8):
            before = HashRing(fixed_nodes(n))
            after = HashRing(fixed_nodes(n + 1))
            moved = sum(
                1
                for key in corpus
                if before.owner(key) != after.owner(key)
            )
            fraction = moved / len(corpus)
            assert fraction <= 2.0 / n, (n, fraction)
            assert fraction > 0.25 / (n + 1), (n, fraction)

    def test_load_is_roughly_balanced(self):
        corpus = [f"metric/{i}" for i in range(3000)]
        ring = HashRing(fixed_nodes(3))
        load = ring.load(corpus)
        assert sum(load.values()) == len(corpus)
        for count in load.values():
            assert 0.5 * 1000 < count < 1.5 * 1000, load


class TestReplicaSets:
    @given(nodes=node_ids, key=st.text(min_size=1, max_size=24))
    @settings(max_examples=100, deadline=None)
    def test_replicas_are_distinct_nodes(self, nodes, key):
        ring = HashRing(nodes, vnodes=8)
        owners = ring.owners(key, 3)
        assert len(owners) == len(set(owners))
        assert len(owners) == min(3, len(nodes))

    @given(nodes=node_ids, key=st.text(min_size=1, max_size=24))
    @settings(max_examples=100, deadline=None)
    def test_failover_preserves_survivor_order(self, nodes, key):
        """Removing any node from ``live`` keeps the other owners in
        the same relative order (the seniority argument)."""
        ring = HashRing(nodes, vnodes=8)
        full = ring.owners(key, len(nodes))
        for victim in nodes:
            live = set(nodes) - {victim}
            survivors = ring.owners(key, len(nodes), live=live)
            assert survivors == [n for n in full if n != victim]

    def test_live_filter_promotes_next_owner(self):
        ring = HashRing(fixed_nodes(4))
        key = "api/latency_ms"
        full = ring.owners(key, 2)
        live = {n for n in fixed_nodes(4)} - {full[0]}
        promoted = ring.owners(key, 2, live=live)
        assert promoted[0] == full[1]
        assert full[0] not in promoted


class TestEdgesAndErrors:
    def test_empty_ring_owns_nothing(self):
        ring = HashRing()
        assert ring.owners("k", 2) == []
        assert ring.owner("k") is None

    def test_no_live_nodes_owns_nothing(self):
        ring = HashRing(fixed_nodes(2))
        assert ring.owners("k", 1, live=set()) == []

    def test_r_larger_than_cluster_returns_all(self):
        ring = HashRing(fixed_nodes(2))
        assert sorted(ring.owners("k", 5)) == fixed_nodes(2)

    def test_membership_api(self):
        ring = HashRing(fixed_nodes(2))
        assert len(ring) == 2 and "node-0" in ring
        ring.remove("node-0")
        assert "node-0" not in ring and len(ring) == 1
        ring.remove("node-0")  # idempotent
        ring.add("node-1")  # idempotent
        assert len(ring) == 1

    def test_invalid_arguments(self):
        with pytest.raises(ClusterConfigError):
            HashRing(vnodes=0)
        with pytest.raises(ClusterConfigError):
            HashRing().add("")
        with pytest.raises(ClusterConfigError):
            HashRing(["a"]).owners("k", 0)
