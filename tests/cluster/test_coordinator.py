"""ClusterCoordinator lifecycle: spawn, manifest, supervision, obs.

Real process spawns are expensive (~1s each), so each test does as much
as it can with one cluster; counts stay small (2-3 nodes, 1 shard).
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import ClusterCoordinator, ClusterManifest
from repro.cluster.errors import ClusterConfigError
from repro.service import QuantileClient

SERVICE_KW = dict(n_shards=1, snapshot_interval_s=None)


class TestValidation:
    def test_bad_topology_rejected_before_spawn(self):
        with pytest.raises(ClusterConfigError, match="nodes"):
            ClusterCoordinator(nodes=0)
        with pytest.raises(ClusterConfigError, match="replication"):
            ClusterCoordinator(nodes=2, replication=3)
        with pytest.raises(ClusterConfigError, match="replication"):
            ClusterCoordinator(nodes=2, replication=0)


class TestLifecycle:
    def test_start_manifest_ping_stop(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        with ClusterCoordinator(
            nodes=2, replication=2, data_dir=data_dir, **SERVICE_KW
        ) as coord:
            # manifest on disk matches the live topology
            manifest = ClusterManifest.load(coord.manifest_path)
            assert manifest.epoch == coord.epoch == 1
            assert manifest.node_ids() == ["node-0", "node-1"]
            assert manifest.replication == 2
            assert coord.ports == [s.port for s in manifest.nodes]
            assert coord.live_ids() == ["node-0", "node-1"]
            # each node knows its identity and launch epoch (PING)
            for spec in manifest.nodes:
                with QuantileClient(spec.host, spec.port) as qc:
                    pong = qc.ping()
                    assert pong["node_id"] == spec.id
                    assert pong["epoch"] == 1
                    assert pong["uptime_s"] >= 0.0
                    assert pong["n_metrics"] == 0
            # per-node durability dirs exist
            for nid in coord.node_ids:
                assert os.path.isdir(os.path.join(data_dir, nid))
        # graceful stop reaps every child
        assert not any(coord.is_alive(n) for n in coord.node_ids)

    def test_ephemeral_mode_has_no_manifest_file(self):
        with ClusterCoordinator(
            nodes=1, replication=1, **SERVICE_KW
        ) as coord:
            assert coord.manifest_path is None
            assert coord.manifest is not None
            assert len(coord.ports) == 1

    def test_restart_bumps_epoch_and_pins_topology(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        with ClusterCoordinator(
            nodes=2, replication=2, data_dir=data_dir, **SERVICE_KW
        ):
            pass
        with ClusterCoordinator(
            nodes=2, replication=2, data_dir=data_dir, **SERVICE_KW
        ) as coord:
            assert coord.epoch == 2
        # a different shape over the same journals is refused
        with pytest.raises(ClusterConfigError, match="2-node"):
            ClusterCoordinator(
                nodes=3, replication=2, data_dir=data_dir, **SERVICE_KW
            ).start()
        with pytest.raises(ClusterConfigError, match="replication"):
            ClusterCoordinator(
                nodes=2, replication=1, data_dir=data_dir, **SERVICE_KW
            ).start()
        with pytest.raises(ClusterConfigError, match="vnodes"):
            ClusterCoordinator(
                nodes=2, replication=2, data_dir=data_dir, vnodes=16,
                **SERVICE_KW,
            ).start()


class TestSupervision:
    def test_kill_poll_marks_down_and_bumps_epoch(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        with ClusterCoordinator(
            nodes=3, replication=2, data_dir=data_dir, **SERVICE_KW
        ) as coord:
            assert coord.poll() == []  # healthy sweep is a no-op
            epoch0 = coord.epoch
            killed = coord.kill_node(1)
            assert killed == "node-1"
            assert not coord.is_alive("node-1")
            assert coord.poll() == ["node-1"]
            assert coord.poll() == []  # only *newly* dead reported
            assert coord.epoch == epoch0 + 1
            assert coord.live_ids() == ["node-0", "node-2"]
            # the death reached the on-disk manifest atomically
            manifest = ClusterManifest.load(coord.manifest_path)
            assert manifest.node("node-1").status == "down"
            assert manifest.epoch == coord.epoch
            # ... and the Prometheus exposition
            prom = coord.prometheus()
            assert "repro_cluster_nodes_up 2.0" in prom
            assert "repro_cluster_nodes_total 3.0" in prom
            assert "repro_cluster_node_deaths" in prom
            # survivors keep serving
            with coord.client() as client:
                assert client.status()  # reaches the live nodes

    def test_kill_unknown_node_rejected(self):
        with ClusterCoordinator(
            nodes=1, replication=1, **SERVICE_KW
        ) as coord:
            with pytest.raises(ClusterConfigError, match="unknown node"):
                coord.kill_node("node-7")
