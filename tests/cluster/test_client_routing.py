"""ClusterClient routing: placement, replication, failover, fan-in.

One module-scoped 3-node cluster (R=2) serves every test here -- spawns
are expensive and the tests use disjoint metric names.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    ClusterClient,
    ClusterCoordinator,
    SyncDriver,
    merge_tagged,
)
from repro.cluster.errors import (
    NodeUnavailableError,
    ReplicaEngineMismatchError,
)
from repro.core.engines import engine_of
from repro.core.errors import EmptySummaryError, EngineMismatchError
from repro.core.serialize import loads
from repro.service import QuantileClient
from repro.service.registry import SketchRegistry

PHIS = [0.1, 0.5, 0.9, 0.99]


@pytest.fixture(scope="module")
def coord(tmp_path_factory):
    data_dir = str(tmp_path_factory.mktemp("cluster"))
    with ClusterCoordinator(
        nodes=3,
        replication=2,
        data_dir=data_dir,
        n_shards=1,
        snapshot_interval_s=None,
    ) as c:
        yield c


@pytest.fixture
def client(coord):
    with coord.client() as cl:
        yield cl


def direct(coord, node_id):
    spec = coord.manifest.node(node_id)
    return QuantileClient(spec.host, spec.port)


def node_n(coord, node_id, name):
    """n of *name* on one node, queried out-of-band (0 if absent)."""
    with direct(coord, node_id) as qc:
        for entry in qc.list_metrics():
            if entry["name"] == name:
                return entry["n"]
    return 0


class TestPlacementAndReplication:
    def test_create_broadcasts_to_every_live_node(self, coord, client):
        client.create("place/bcast", kind="fixed", epsilon=0.02, n=10_000)
        for nid in coord.node_ids:
            with direct(coord, nid) as qc:
                names = [m["name"] for m in qc.list_metrics()]
            assert "place/bcast" in names, nid

    def test_ingest_replicates_to_exactly_the_owners(self, coord, client):
        name = "place/owners"
        client.create(name, kind="fixed", epsilon=0.02, n=10_000)
        owners = client.owners_of(name)
        assert len(owners) == 2 and len(set(owners)) == 2
        client.ingest(name, np.arange(500.0))
        client.drain()
        for nid in coord.node_ids:
            expected = 500 if nid in owners else 0
            assert node_n(coord, nid, name) == expected, nid

    def test_replicas_hold_identical_streams(self, coord, client):
        name = "place/identical"
        client.create(name, kind="fixed", epsilon=0.02, n=10_000)
        rng = np.random.default_rng(7)
        for _ in range(4):
            client.ingest(name, rng.standard_normal(800))
        replicas = client.fetch_replicas(name)
        assert len(replicas) == 2
        sketches = [loads(payload) for _, payload in replicas]
        assert sketches[0].n == sketches[1].n == 3200
        assert sketches[0].quantiles(PHIS) == sketches[1].quantiles(PHIS)

    def test_pipelined_ingest_replicates_too(self, coord, client):
        name = "place/pipelined"
        client.create(name, kind="fixed", epsilon=0.02, n=10_000)
        for chunk in np.split(np.arange(2000.0), 10):
            client.ingest_nowait(name, chunk)
        client.flush()
        client.drain()
        for nid in client.owners_of(name):
            assert node_n(coord, nid, name) == 2000


class TestFailoverReads:
    def test_query_fails_over_to_junior_replica_with_full_state(
        self, coord, client
    ):
        name = "fail/read"
        client.create(name, kind="fixed", epsilon=0.01, n=50_000)
        data = np.random.default_rng(11).permutation(10_000).astype(float)
        client.ingest(name, data)
        senior, junior = client.owners_of(name)
        values_before, bound_before, n_before = client.query(name, PHIS)
        # simulate the senior replica becoming unreachable
        client.mark_down(senior)
        assert client.owners_of(name)[0] == junior
        values_after, bound_after, n_after = client.query(name, PHIS)
        # the junior replica holds the FULL stream: same n, same bound
        assert n_after == n_before == 10_000
        assert bound_after == bound_before
        assert values_after == values_before
        client.mark_up(senior)

    def test_losing_every_owner_promotes_the_broadcast_successor(
        self, coord, client
    ):
        """When ALL owners die the ring promotes the remaining node;
        the broadcast CREATE means it already knows the metric, so
        ingest continues (history beyond the dead replicas is what R
        is dimensioned against, not this path)."""
        name = "fail/alldown"
        client.create(name, kind="fixed", epsilon=0.02, n=10_000)
        client.ingest(name, np.arange(100.0))
        owners = list(client.owners_of(name))
        for nid in owners:
            client.mark_down(nid)
        promoted = client.owners_of(name)
        assert promoted == [
            n for n in coord.node_ids if n not in owners
        ]
        client.ingest(name, np.arange(40.0))
        values, _bound, n = client.query(name, [0.5])
        assert n == 40  # the successor's stream starts at promotion
        for nid in coord.node_ids:
            client.mark_up(nid)

    def test_all_nodes_down_is_a_typed_error(self, coord, client):
        name = "fail/typed"
        client.create(name, kind="fixed", epsilon=0.02, n=10_000)
        client.ingest(name, np.arange(100.0))
        for nid in coord.node_ids:
            client.mark_down(nid)
        with pytest.raises(NodeUnavailableError):
            client.query(name, [0.5])
        for nid in coord.node_ids:
            client.mark_up(nid)

    def test_every_node_down_names_the_cluster_size(self, coord):
        with coord.client() as cl:
            for nid in coord.node_ids:
                cl.mark_down(nid)
            with pytest.raises(NodeUnavailableError, match="3 node"):
                cl.owners_of("any/metric")


class TestCertifiedFanIn:
    def test_query_merged_matches_offline_merge(self, coord, client):
        """Cluster fan-in == offline §4.9 merge of the same streams."""
        rng = np.random.default_rng(23)
        streams = {}
        for i in range(3):
            name = f"fanin/part-{i}"
            streams[name] = rng.standard_normal(4000) * (i + 1)
            client.create(name, kind="fixed", epsilon=0.01, n=50_000)
            client.ingest(name, streams[name])
        client.drain()
        values, bound, n = client.query_merged(list(streams), PHIS)
        assert n == 12_000

        offline = SketchRegistry()
        for name, data in streams.items():
            offline.create(name, kind="fixed", epsilon=0.01, n=50_000)
            offline.ingest(name, data)
        merged = merge_tagged(
            [(name, offline.fetch_serialized(name)) for name in streams]
        )
        assert n == merged.n
        assert bound == float(merged.error_bound())
        assert values == [float(v) for v in merged.quantiles(PHIS)]

    def test_fan_in_survives_a_marked_down_senior(self, coord, client):
        name = "fanin/solo"
        client.create(name, kind="fixed", epsilon=0.01, n=50_000)
        client.ingest(name, np.arange(5000.0))
        senior = client.owners_of(name)[0]
        client.mark_down(senior)
        values, bound, n = client.query_merged([name], [0.5])
        assert n == 5000
        client.mark_up(senior)

    def test_merge_tagged_empty_is_typed(self):
        with pytest.raises(EmptySummaryError):
            merge_tagged([])


class TestEngineMismatchSurfacing:
    """ISSUE-8 satellite 1: replica engine disagreement names names."""

    def _mixed_metric(self, coord, client, name, *, kll_on_senior=False):
        """Create *name* with a different engine on each of its two
        owners (out-of-band, against routing -- operator error)."""
        owner_a, owner_b = client.owners_of(name)
        paper_node, kll_node = (
            (owner_b, owner_a) if kll_on_senior else (owner_a, owner_b)
        )
        with direct(coord, paper_node) as qc:
            qc.create(name, kind="fixed", epsilon=0.02, n=10_000)
            qc.ingest(name, np.arange(100.0))
        with direct(coord, kll_node) as qc:
            qc.create(name, kind="fixed", engine="kll")
            qc.ingest(name, np.arange(100.0))
        return paper_node, kll_node

    def test_check_replicas_names_node_and_engine(self, coord, client):
        paper_node, kll_node = self._mixed_metric(coord, client, "mix/m")
        with pytest.raises(ReplicaEngineMismatchError) as err:
            client.check_replicas("mix/m")
        msg = str(err.value)
        assert f"{paper_node}=paper" in msg
        assert f"{kll_node}=kll" in msg
        assert "re-create the metric" in msg
        # and it still IS an EngineMismatchError for existing handlers
        assert isinstance(err.value, EngineMismatchError)
        assert dict(err.value.tagged) == {
            paper_node: "paper",
            kll_node: "kll",
        }

    def test_fetch_merged_mixed_engines_names_nodes(self, coord, client):
        # the kll copy sits on the SENIOR owner, so the fan-in's
        # per-metric senior payloads disagree across metrics
        self._mixed_metric(
            coord, client, "mix/fanin", kll_on_senior=True
        )
        client.create("mix/clean", kind="fixed", epsilon=0.02, n=10_000)
        client.ingest("mix/clean", np.arange(100.0))
        with pytest.raises(ReplicaEngineMismatchError) as err:
            client.fetch_merged(["mix/clean", "mix/fanin"])
        assert "mix/clean" in str(err.value.metric)
        assert len(err.value.tagged) == 2

    def test_agreeing_replicas_pass_the_check(self, coord, client):
        client.create("mix/ok", kind="fixed", epsilon=0.02, n=10_000)
        client.ingest("mix/ok", np.arange(50.0))
        tagged = client.check_replicas("mix/ok")
        assert [eng for _, eng in tagged] == ["paper", "paper"]


class TestMixedEngineResync:
    """ISSUE-9 satellite 3: engine safety on the re-sync transfer path.

    The :class:`SyncDriver` moves whole serialized summaries between
    nodes; a transfer must carry the engine byte along unchanged and
    refuse -- naming names -- to install across an engine disagreement,
    whether the target already holds the metric under another engine or
    the donor itself is corrupt (its declared config contradicts its
    payload magic).
    """

    @pytest.mark.parametrize("engine", ["kll", "frugal"])
    def test_transfer_preserves_engine_byte_and_bits(
        self, coord, client, engine
    ):
        name = f"mixsync/{engine}"
        client.create(name, kind="fixed", epsilon=0.02, engine=engine)
        client.ingest(
            name, np.random.default_rng(5).standard_normal(1500)
        )
        client.drain()
        owners = client.owners_of(name)
        bystander = next(
            n for n in coord.node_ids if n not in owners
        )
        with SyncDriver(coord.manifest) as driver:
            report = driver.sync_metric(name, owners[0], bystander)
        assert report.verified
        assert report.engine == engine
        with direct(coord, owners[0]) as dc, direct(
            coord, bystander
        ) as bc:
            donor_payload = dc.fetch_raw(name)
            target_payload = bc.fetch_raw(name)
        assert target_payload == donor_payload
        assert engine_of(target_payload) == engine

    def test_target_under_other_engine_refuses_named(self, coord, client):
        """Out-of-band, the two owners hold 'the same' metric under
        different engines; a sync between them must not clobber."""
        name = "mixsync/clash"
        owner_a, owner_b = client.owners_of(name)
        with direct(coord, owner_a) as qc:
            qc.create(name, kind="fixed", epsilon=0.02, n=10_000)
            qc.ingest(name, np.arange(200.0))
        with direct(coord, owner_b) as qc:
            qc.create(name, kind="fixed", engine="kll")
            qc.ingest(name, np.arange(200.0))
        with SyncDriver(coord.manifest) as driver:
            with pytest.raises(ReplicaEngineMismatchError) as err:
                driver.sync_metric(name, owner_a, owner_b)
        assert dict(err.value.tagged) == {
            owner_a: "paper",
            owner_b: "kll",
        }
        # nothing was installed: the kll copy survives untouched
        with direct(coord, owner_b) as qc:
            assert engine_of(qc.fetch_raw(name)) == "kll"

    def test_corrupt_donor_config_vs_bytes_refuses(self, coord, client):
        """A donor whose declared engine contradicts its payload magic
        is corrupt; installing either interpretation would guess, so
        the driver refuses and names the donor's config explicitly."""
        offline = SketchRegistry()
        offline.create("evil/m", kind="fixed", epsilon=0.02, n=10_000)
        offline.ingest("evil/m", np.arange(300.0))
        paper_payload = offline.fetch_serialized("evil/m")

        class CorruptDonor:
            def sync_pull(self, name, after_seq=0):
                return {
                    "rebase": False,
                    "kind": "fixed",
                    "epsilon": 0.02,
                    "n": 10_000,
                    "policy": "new",
                    "engine": "kll",  # ...but the bytes say paper
                    "seq": 1,
                    "payload": paper_payload,
                    "records": [],
                }

        target = coord.node_ids[0]
        with SyncDriver(coord.manifest) as driver:
            driver._clients["evil-donor"] = CorruptDonor()
            with pytest.raises(ReplicaEngineMismatchError) as err:
                driver.sync_metric("evil/m", "evil-donor", target)
            driver._clients.pop("evil-donor")
        assert dict(err.value.tagged) == {
            "evil-donor(config)": "kll",
            "evil-donor": "paper",
        }
        # the refusal happened before any install reached the target
        with direct(coord, target) as qc:
            names = [m["name"] for m in qc.list_metrics()]
        assert "evil/m" not in names


class TestClusterWideReads:
    def test_status_and_stats_and_list(self, coord, client):
        client.create("wide/m", kind="fixed", epsilon=0.02, n=10_000)
        client.ingest("wide/m", np.arange(10.0))
        client.drain()
        rows = client.status()
        assert [r["id"] for r in rows] == coord.node_ids
        assert all(r["alive"] for r in rows)
        assert all(r["epoch"] == coord.epoch for r in rows)
        stats = client.stats()
        assert {s["node_id"] for s in stats} == set(coord.node_ids)
        listed = [
            m for m in client.list_metrics() if m["name"] == "wide/m"
        ]
        # the broadcast CREATE puts the definition on every node; only
        # the ring owners hold the stream
        owners = client.owners_of("wide/m")
        assert sorted(m["node"] for m in listed) == coord.node_ids
        assert sorted(
            m["node"] for m in listed if m["n"] > 0
        ) == sorted(owners)
        assert all(m["owners"] == owners for m in listed)

    def test_replication_override_must_fit(self, coord):
        from repro.cluster.errors import ClusterConfigError

        with pytest.raises(ClusterConfigError, match="replication"):
            ClusterClient(coord.manifest, replication=4)
        with pytest.raises(ClusterConfigError, match="replication"):
            ClusterClient(coord.manifest, replication=0)
