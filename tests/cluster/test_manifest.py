"""cluster.json manifest: round-trip, validation, atomicity."""

from __future__ import annotations

import json
import os

import pytest

from repro.cluster import ClusterManifest, NodeSpec, manifest_path
from repro.cluster.errors import ClusterConfigError


def three_nodes() -> ClusterManifest:
    return ClusterManifest(
        nodes=[
            NodeSpec(id=f"node-{i}", host="127.0.0.1", port=7400 + i)
            for i in range(3)
        ],
        replication=2,
        vnodes=32,
        epoch=5,
    )


class TestRoundTrip:
    def test_dict_round_trip(self):
        m = three_nodes()
        again = ClusterManifest.from_dict(m.to_dict())
        assert again.to_dict() == m.to_dict()

    def test_file_round_trip_and_dir_load(self, tmp_path):
        m = three_nodes()
        path = manifest_path(str(tmp_path))
        m.save(path)
        by_file = ClusterManifest.load(path)
        by_dir = ClusterManifest.load(str(tmp_path))
        assert by_file.to_dict() == m.to_dict() == by_dir.to_dict()

    def test_save_is_atomic(self, tmp_path):
        path = manifest_path(str(tmp_path))
        m = three_nodes()
        m.save(path)
        m.epoch += 1
        m.save(path)
        assert not os.path.exists(path + ".tmp")
        assert ClusterManifest.load(path).epoch == 6

    def test_status_round_trips(self, tmp_path):
        m = three_nodes()
        assert m.mark("node-1", "down")
        assert not m.mark("node-1", "down")  # no change reported
        path = manifest_path(str(tmp_path))
        m.save(path)
        again = ClusterManifest.load(path)
        assert again.node("node-1").status == "down"
        assert again.live_ids() == ["node-0", "node-2"]

    def test_ring_covers_down_nodes(self):
        """Placement must not shift when a node is merely down."""
        m = three_nodes()
        before = m.ring().owners("api/x", 3)
        m.mark("node-0", "down")
        assert m.ring().owners("api/x", 3) == before


class TestValidation:
    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ClusterConfigError, match="at least one"):
            ClusterManifest(nodes=[])
        with pytest.raises(ClusterConfigError, match="duplicate"):
            ClusterManifest(
                nodes=[
                    NodeSpec(id="a", host="h", port=1),
                    NodeSpec(id="a", host="h", port=2),
                ]
            )

    def test_rejects_bad_replication(self):
        nodes = [NodeSpec(id="a", host="h", port=1)]
        with pytest.raises(ClusterConfigError, match="replication"):
            ClusterManifest(nodes=nodes, replication=0)
        with pytest.raises(ClusterConfigError, match="exceeds"):
            ClusterManifest(nodes=nodes, replication=2)

    def test_rejects_bad_status_and_unknown_node(self):
        m = three_nodes()
        with pytest.raises(ClusterConfigError, match="status"):
            m.mark("node-0", "degraded")
        with pytest.raises(ClusterConfigError, match="unknown node"):
            m.node("node-9")

    def test_rejects_wrong_version(self):
        raw = three_nodes().to_dict()
        raw["version"] = 99
        with pytest.raises(ClusterConfigError, match="version"):
            ClusterManifest.from_dict(raw)

    def test_detects_cluster_service_shape(self, tmp_path):
        """The single-machine ClusterService's cluster.json ({"workers":
        N}) must produce a pointed error, not a KeyError."""
        path = manifest_path(str(tmp_path))
        with open(path, "w") as fh:
            json.dump({"workers": 4}, fh)
        with pytest.raises(ClusterConfigError, match="ClusterService"):
            ClusterManifest.load(path)

    def test_malformed_files(self, tmp_path):
        with pytest.raises(ClusterConfigError, match="no cluster manifest"):
            ClusterManifest.load(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ClusterConfigError, match="not valid JSON"):
            ClusterManifest.load(str(bad))
        arr = tmp_path / "arr.json"
        arr.write_text("[1, 2]")
        with pytest.raises(ClusterConfigError, match="JSON object"):
            ClusterManifest.load(str(arr))

    def test_malformed_node_entry(self):
        raw = three_nodes().to_dict()
        raw["nodes"][0] = {"id": "x"}
        with pytest.raises(ClusterConfigError, match="malformed node"):
            ClusterManifest.from_dict(raw)
