"""Rebalance planning properties (ISSUE-9 satellite 2).

``add_node`` / ``remove_node`` trust two pure functions to plan a
rebalance: :func:`ownership_delta` (which keys must move) and
:func:`delta_donor` (who streams each moved key).  Hypothesis drives
random join/leave walks over random topologies and checks the contract
the live cluster leans on:

* only keys whose owner set actually changed ever appear in a transfer
  plan -- the minimal-movement guarantee, also asserted statistically
  (``<= ~2R/N`` for a single change on a fixed corpus);
* replaying the plan against a simulated ``{node: {keys held}}`` state
  always reproduces exactly the new placement -- no key is ever
  unowned, under-replicated, or left as garbage on a loser;
* every donor is a node that held the key's **full** stream before the
  change and survives it -- never the gainer itself, never a corpse;
* the plan is deterministic and empty for identical layouts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    DEFAULT_VNODES,
    HashRing,
    delta_donor,
    ownership_delta,
)
from repro.cluster.errors import ClusterSyncError

#: a fixed metric corpus, large enough for the statistical bound
CORPUS = [f"svc-{i}/metric-{i % 7}" for i in range(400)]

replication = st.integers(min_value=1, max_value=3)

node_pool = [f"node-{i}" for i in range(10)]

#: a walk is a list of (op, node) membership events applied in order
walks = st.lists(
    st.tuples(st.sampled_from(["join", "leave"]), st.sampled_from(node_pool)),
    min_size=1,
    max_size=8,
)

small_keys = st.lists(
    st.text(min_size=1, max_size=16), min_size=1, max_size=48, unique=True
)


def apply_event(nodes: set, op: str, node: str, r: int) -> set:
    """The next membership, refusing to shrink below *r* nodes."""
    out = set(nodes)
    if op == "join":
        out.add(node)
    elif len(out) > r:
        out.discard(node)
    return out


class TestDeltaIsMinimal:
    @given(r=replication, walk=walks, sample=small_keys)
    @settings(max_examples=60, deadline=None)
    def test_unmoved_keys_never_in_the_plan(self, r, walk, sample):
        nodes = {f"node-{i}" for i in range(r)} | {"seed-a", "seed-b"}
        ring = HashRing(nodes, vnodes=8)
        for op, node in walk:
            after_nodes = apply_event(nodes, op, node, r)
            after = HashRing(after_nodes, vnodes=8)
            delta = ownership_delta(ring, after, sample, r)
            moved = set(delta.moved)
            for key in sample:
                if set(ring.owners(key, r)) == set(after.owners(key, r)):
                    assert key not in moved, key
                else:
                    assert key in moved, key
            nodes, ring = after_nodes, after

    @given(r=replication, walk=walks, sample=small_keys)
    @settings(max_examples=60, deadline=None)
    def test_plan_only_touches_the_changed_nodes_keys(self, r, walk, sample):
        """Every gained key lists the gainer among its new owners and
        every lost key listed the loser among its old owners."""
        nodes = {f"node-{i}" for i in range(r)} | {"seed-a"}
        ring = HashRing(nodes, vnodes=8)
        for op, node in walk:
            after_nodes = apply_event(nodes, op, node, r)
            after = HashRing(after_nodes, vnodes=8)
            delta = ownership_delta(ring, after, sample, r)
            for gainer, keys in delta.gains.items():
                for key in keys:
                    assert gainer in after.owners(key, r)
                    assert gainer not in ring.owners(key, r)
            for loser, keys in delta.losses.items():
                for key in keys:
                    assert loser in ring.owners(key, r)
                    assert loser not in after.owners(key, r)
            nodes, ring = after_nodes, after

    @pytest.mark.parametrize("r", [1, 2])
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_single_change_moves_about_r_over_n(self, r, n):
        """Statistical minimal-movement bound on the fixed corpus."""
        before = HashRing(
            [f"node-{i}" for i in range(n)], vnodes=DEFAULT_VNODES
        )
        grown = HashRing(
            [f"node-{i}" for i in range(n + 1)], vnodes=DEFAULT_VNODES
        )
        join = ownership_delta(before, grown, CORPUS, r)
        leave = ownership_delta(grown, before, CORPUS, r)
        # expected fraction is r/N; 2x headroom absorbs placement noise
        assert join.moved_fraction <= 2.0 * r / n
        assert leave.moved_fraction <= 2.0 * r / (n + 1)
        # join and leave between the same two layouts move the same keys
        assert set(join.moved) == set(leave.moved)

    def test_identical_layouts_empty_plan(self):
        a = HashRing(["x", "y", "z"], vnodes=16)
        b = HashRing(["z", "y", "x"], vnodes=16)
        delta = ownership_delta(a, b, CORPUS, 2)
        assert delta.moved == []
        assert delta.gains == {} and delta.losses == {}
        assert delta.moved_fraction == 0.0
        assert delta.transfers() == []

    def test_transfers_are_deterministic_and_flat(self):
        before = HashRing(["a", "b", "c"], vnodes=16)
        after = HashRing(["a", "b", "c", "d"], vnodes=16)
        delta = ownership_delta(before, after, CORPUS, 2)
        plan = delta.transfers()
        assert plan == ownership_delta(before, after, CORPUS, 2).transfers()
        assert [g for _, g in plan] == sorted(g for _, g in plan)
        assert len(plan) == sum(len(v) for v in delta.gains.values())


class TestReplayReachesTheNewPlacement:
    @given(r=replication, walk=walks, sample=small_keys)
    @settings(max_examples=60, deadline=None)
    def test_holdings_track_ownership_exactly(self, r, walk, sample):
        """Simulate the migration the coordinator performs: gainers copy
        from their donor, losers drop.  After every step the simulated
        holdings must equal the ring's placement -- every key held by
        exactly ``min(r, N)`` nodes, nowhere else."""
        nodes = {f"node-{i}" for i in range(r)} | {"seed-a", "seed-b"}
        ring = HashRing(nodes, vnodes=8)
        holdings = {
            key: set(ring.owners(key, r)) for key in sample
        }
        for op, node in walk:
            after_nodes = apply_event(nodes, op, node, r)
            after = HashRing(after_nodes, vnodes=8)
            delta = ownership_delta(ring, after, sample, r)
            live = set(after_nodes) | set(nodes)  # migration window
            for key, gainer in delta.transfers():
                donor = delta_donor(key, gainer, ring, r, live)
                # a donor held the full stream and is not the gainer
                assert donor in holdings[key], (key, donor)
                assert donor != gainer
                holdings[key].add(gainer)
            for loser, keys in delta.losses.items():
                for key in keys:
                    holdings[key].discard(loser)
            for key in sample:
                want = set(after.owners(key, r))
                assert holdings[key] == want, (key, holdings[key], want)
                assert len(want) == min(r, len(after_nodes))
            nodes, ring = after_nodes, after

    @given(sample=small_keys)
    @settings(max_examples=40, deadline=None)
    def test_no_key_is_ever_unowned(self, sample):
        """Even collapsing 6 nodes down to 1, every key keeps an owner."""
        nodes = [f"node-{i}" for i in range(6)]
        for width in range(len(nodes), 0, -1):
            ring = HashRing(nodes[:width], vnodes=8)
            for key in sample:
                owners = ring.owners(key, 2)
                assert owners, key
                assert len(owners) == len(set(owners)) == min(2, width)


class TestDonorSelection:
    @given(r=st.integers(min_value=2, max_value=3), sample=small_keys)
    @settings(max_examples=40, deadline=None)
    def test_donor_is_senior_surviving_prechange_owner(self, r, sample):
        nodes = [f"node-{i}" for i in range(r + 2)]
        before = HashRing(nodes, vnodes=8)
        after = HashRing(nodes + ["joiner"], vnodes=8)
        delta = ownership_delta(before, after, sample, r)
        live = set(nodes) | {"joiner"}
        for key, gainer in delta.transfers():
            donor = delta_donor(key, gainer, before, r, live)
            owners_before = before.owners(key, r)
            assert donor in owners_before
            assert donor != gainer
            # senior: the first pre-change owner that is live and not
            # the gainer itself
            want = next(
                n for n in owners_before if n != gainer and n in live
            )
            assert donor == want

    def test_dead_owners_are_skipped(self):
        before = HashRing(["a", "b", "c", "d"], vnodes=16)
        key = next(
            k for k in CORPUS if len(set(before.owners(k, 2))) == 2
        )
        owners = before.owners(key, 2)
        live = {n for n in ["a", "b", "c", "d"] if n != owners[0]}
        live.add("joiner")
        donor = delta_donor(key, "joiner", before, 2, live)
        assert donor == owners[1]

    def test_no_live_donor_raises(self):
        before = HashRing(["a", "b", "c"], vnodes=16)
        key = CORPUS[0]
        owners = before.owners(key, 2)
        live = {"joiner"} | (set("abc") - set(owners))
        with pytest.raises(ClusterSyncError, match="no live donor"):
            delta_donor(key, "joiner", before, 2, live)

    def test_gainer_never_donates_to_itself(self):
        """Even when the gainer already appears among the pre-change
        owners (a leave promoting a junior), the donor is someone else."""
        before = HashRing(["a", "b", "c"], vnodes=16)
        for key in CORPUS[:50]:
            owners = before.owners(key, 2)
            gainer = owners[0]
            donor = delta_donor(
                key, gainer, before, 2, {"a", "b", "c"}
            )
            assert donor != gainer
            assert donor == owners[1]
