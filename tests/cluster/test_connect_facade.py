"""``repro.connect(cluster=...)`` and the ClientProtocol contract.

One facade call returns either a single-node :class:`QuantileClient`
or a :class:`ClusterClient` depending on the ``cluster=`` kwarg; both
satisfy the runtime-checkable
:class:`repro.core.protocols.ClientProtocol`, and windowed metric
definitions replicate through the cluster (CREATE broadcast carries the
window config; fan-in merges the windowed payloads).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.cluster import ClusterClient, ClusterCoordinator
from repro.core.protocols import ClientProtocol
from repro.service import QuantileClient, ServerThread


@pytest.fixture(scope="module")
def coord(tmp_path_factory):
    data_dir = str(tmp_path_factory.mktemp("cluster"))
    with ClusterCoordinator(
        nodes=3,
        replication=2,
        data_dir=data_dir,
        n_shards=1,
        snapshot_interval_s=None,
    ) as c:
        yield c


def test_connect_returns_single_node_client(tmp_path):
    with ServerThread(
        data_dir=str(tmp_path / "data"), n_shards=1,
        snapshot_interval_s=None,
    ) as srv:
        client = repro.connect("127.0.0.1", srv.port)
        try:
            assert isinstance(client, QuantileClient)
            assert isinstance(client, ClientProtocol)
        finally:
            client.close()


def test_connect_cluster_kwarg_returns_cluster_client(coord):
    # accepts the data dir (resolves cluster.json inside) or the file
    for target in (coord.data_dir, coord.manifest_path):
        client = repro.connect(cluster=target)
        try:
            assert isinstance(client, ClusterClient)
            assert isinstance(client, ClientProtocol)
        finally:
            client.close()


def test_both_clients_share_the_query_surface(coord):
    # the structural contract, not just isinstance: same method names
    for method in (
        "create", "ingest", "quantile", "quantiles", "cdf", "describe",
        "list_metrics", "close",
    ):
        assert callable(getattr(QuantileClient, method))
        assert callable(getattr(ClusterClient, method))


def test_windowed_metric_replicates_and_fans_in(coord):
    with repro.connect(cluster=coord.data_dir) as client:
        client.create(
            "facade/win", kind="fixed", eps=0.02, window=3600.0
        )
        client.ingest("facade/win", np.arange(5000.0))
        assert abs(client.quantile("facade/win", 0.5) - 2500) <= 200
        report = client.describe("facade/win")
        assert report["n"] == 5000
    # every node holds the windowed definition (CREATE broadcast)
    for nid in coord.node_ids:
        spec = coord.manifest.node(nid)
        with QuantileClient(spec.host, spec.port) as qc:
            entry = {m["name"]: m for m in qc.list_metrics()}["facade/win"]
            assert entry.get("window_s") == 3600.0
