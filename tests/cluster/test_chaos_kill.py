"""ISSUE-8 satellite 2: SIGKILL a replica mid-ingest under fault injection.

The scenario the replication layer exists for, end to end:

* the metric's **senior** replica sits behind a :class:`ChaosProxy`
  that truncates server->client bytes (lost acks) -- the per-node
  client reconnects and resends its unacked window with the SAME
  idempotency tokens, so the node's journal applies each batch once;
* halfway through the stream the senior replica is SIGKILLed for real
  (``multiprocessing`` ``Process.kill``) -- the cluster client marks it
  down and the walk re-derives, so the batch lands on the surviving
  owner (plus the promoted successor) without a gap;
* at the end, the cluster answer must match the offline certified
  bound: the surviving replica holds the FULL stream, bit-identically
  to an offline sketch fed the same batches, so ``n`` is *exactly* the
  number ingested (zero lost, zero duplicated) and the quantiles/bound
  equal the offline sketch's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterCoordinator
from repro.service import ChaosProxy, FaultEvent, FaultSchedule
from repro.service.registry import SketchRegistry

TOTAL = 20_000
BATCH = 1_000
EPSILON = 0.01
PHIS = [0.1, 0.5, 0.9, 0.99]


@pytest.fixture(scope="module")
def coord(tmp_path_factory):
    data_dir = str(tmp_path_factory.mktemp("chaos-cluster"))
    with ClusterCoordinator(
        nodes=3,
        replication=2,
        data_dir=data_dir,
        n_shards=1,
        snapshot_interval_s=None,
    ) as c:
        yield c


def lossy_schedule() -> FaultSchedule:
    """Truncate the server->client stream on the first connections:
    acks are small frames, so a low byte trigger loses acks for
    batches the server already applied -- forcing reconnect + token
    resend.  Connections past the third run transparent."""
    plan = (
        FaultEvent(kind="truncate", direction="s2c", after_bytes=64),
    )
    return FaultSchedule([plan, plan, plan])


def test_sigkill_mid_ingest_exactly_once_within_certified_bound(coord):
    name = "chaos/latency"
    data = (
        np.random.default_rng(42).permutation(TOTAL).astype(np.float64)
    )
    batches = np.split(data, TOTAL // BATCH)

    # find the metric's senior owner and front it with the lossy proxy
    with coord.client() as probe:
        senior, junior = probe.ring.owners(name, 2)
    spec = coord.manifest.node(senior)
    with ChaosProxy(
        spec.host, spec.port, schedule=lossy_schedule()
    ) as proxy:
        client = coord.client(
            endpoint_overrides={senior: (proxy.host, proxy.port)},
            timeout=10.0,
            max_retries=4,
            backoff_base=0.01,
        )
        try:
            client.create(name, kind="fixed", epsilon=EPSILON, n=TOTAL)
            assert client.owners_of(name) == [senior, junior]
            killed_at = len(batches) // 2
            for i, batch in enumerate(batches):
                if i == killed_at:
                    coord.kill_node(senior)  # real SIGKILL, no drain
                client.ingest(name, batch)
            # the proxy really injected ack loss before the kill
            assert proxy.faults_injected, "no fault fired; tune schedule"
            # the coordinator notices, marks down, bumps the epoch
            epoch0 = coord.epoch
            assert coord.poll() == [senior]
            assert coord.epoch == epoch0 + 1
            assert senior in client.down_nodes

            # -- exactly-once: nothing lost, nothing double-applied ----
            client.drain()
            values, bound, n = client.query(name, PHIS)
            assert n == TOTAL

            # -- the answer matches the offline certified bound --------
            offline = SketchRegistry()
            offline.create(name, kind="fixed", epsilon=EPSILON, n=TOTAL)
            for batch in batches:
                offline.ingest(name, batch)
            offline.apply_all()
            offline_values, offline_bound, offline_n = offline.quantiles(
                name, PHIS
            )
            assert offline_n == TOTAL
            assert bound == offline_bound
            assert values == offline_values
            # ... and the bound is *true* on this permutation stream:
            # the value of rank r is r-1, so ranks are directly checkable
            for phi, value in zip(PHIS, values):
                target_rank = max(1, int(np.ceil(phi * TOTAL)))
                assert abs((value + 1) - target_rank) <= bound

            # the surviving owner answers; reads route around the corpse
            assert client.owners_of(name)[0] == junior
        finally:
            client.close()


def test_replica_journals_hold_each_batch_once(coord):
    """Post-mortem of the same cluster: the journals (source of truth
    for recovery) prove exactly-once.  No node's journal holds more
    than TOTAL elements of the chaos metric -- the dedup window
    absorbed every token resend -- and the surviving replica holds
    exactly TOTAL."""
    import os

    from repro.service.journal import INGEST_RECORD, read_journal

    per_node = {}
    for nid in coord.node_ids:
        node_total = 0
        node_dir = os.path.join(coord.data_dir, nid)
        for root, _dirs, files in os.walk(node_dir):
            for fname in files:
                if not fname.endswith(".log"):
                    continue
                scan = read_journal(os.path.join(root, fname))
                for record in scan.records:
                    if (
                        record.type == INGEST_RECORD
                        and record.name == "chaos/latency"
                    ):
                        node_total += int(record.values.size)
        per_node[nid] = node_total
        # a duplicated (non-deduped) resend would overshoot
        assert node_total <= TOTAL, (nid, per_node)
    # at least one surviving node holds the complete stream ...
    assert TOTAL in per_node.values(), per_node
    # ... and the cluster-wide footprint is bounded by R full copies
    assert sum(per_node.values()) <= 2 * TOTAL, per_node
