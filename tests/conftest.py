"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG; tests must stay reproducible."""
    return np.random.default_rng(20260707)


@pytest.fixture
def permutation_10k(rng: np.random.Generator) -> np.ndarray:
    """A random permutation of 0..9999 as float64.

    Rank arithmetic is trivially checkable on permutations: the element of
    rank r is the value r-1 (the paper's Section 6 methodology).
    """
    return rng.permutation(10_000).astype(np.float64)


@pytest.fixture
def permutation_100k(rng: np.random.Generator) -> np.ndarray:
    return rng.permutation(100_000).astype(np.float64)


def true_rank_error_on_permutation(value: float, phi: float, n: int) -> float:
    """Observed epsilon for a permutation of 0..n-1 (rank of v is v+1)."""
    import math

    target = min(max(math.ceil(phi * n), 1), n)
    return abs((value + 1) - target) / n


@pytest.fixture
def rank_error():
    return true_rank_error_on_permutation
