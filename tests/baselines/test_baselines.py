"""Tests for the antecedent algorithms (Section 2) and exact ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    AgrawalSwamiHistogram,
    ExactQuantiles,
    P2Ensemble,
    P2Quantile,
    ReservoirSampler,
    exact_quantile,
    naive_sample_size,
    rank_interval,
)
from repro.core.errors import ConfigurationError, EmptySummaryError


class TestExactQuantiles:
    def test_rank_semantics(self):
        # phi-quantile = element at position ceil(phi N) (paper, Section 1)
        data = np.array([10.0, 20, 30, 40, 50])
        assert exact_quantile(data, 0.0) == 10.0
        assert exact_quantile(data, 0.2) == 10.0
        assert exact_quantile(data, 0.21) == 20.0
        assert exact_quantile(data, 0.5) == 30.0
        assert exact_quantile(data, 1.0) == 50.0

    def test_incremental_interface(self, permutation_10k):
        ex = ExactQuantiles()
        ex.extend(permutation_10k[:5000])
        ex.extend(permutation_10k[5000:])
        assert ex.n == 10_000
        assert ex.query(0.5) == 4999.0  # rank 5000 in 0..9999
        assert ex.memory_elements == 10_000

    def test_update_scalar(self):
        ex = ExactQuantiles()
        for v in (3.0, 1.0, 2.0):
            ex.update(v)
        assert ex.quantiles([0.0, 0.5, 1.0]) == [1.0, 2.0, 3.0]

    def test_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            ExactQuantiles().query(0.5)

    def test_rank_interval_with_duplicates(self):
        ordered = np.array([1.0, 2, 2, 2, 3])
        assert rank_interval(ordered, 2.0) == (2, 4)
        assert rank_interval(ordered, 1.0) == (1, 1)

    def test_error_bound_is_zero(self):
        ex = ExactQuantiles()
        ex.update(1.0)
        assert ex.error_bound() == 0.0


class TestP2:
    def test_converges_on_random_data(self, permutation_100k):
        est = P2Quantile(0.5)
        est.extend(permutation_100k)
        assert abs(est.query() - 50_000) / 100_000 < 0.01

    def test_constant_memory(self):
        est = P2Quantile(0.5)
        est.extend(np.arange(10_000, dtype=np.float64))
        assert est.memory_elements == 5

    def test_small_inputs_exact(self):
        est = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            est.update(v)
        assert est.query() == 3.0

    def test_estimate_between_extremes(self, rng):
        est = P2Quantile(0.25)
        data = rng.normal(0, 1, 5000)
        est.extend(data)
        assert data.min() <= est.query() <= data.max()

    def test_rejects_extreme_phi(self):
        with pytest.raises(ConfigurationError):
            P2Quantile(0.0)
        with pytest.raises(ConfigurationError):
            P2Quantile(1.0)

    def test_query_wrong_phi_rejected(self):
        est = P2Quantile(0.5)
        est.update(1.0)
        with pytest.raises(ConfigurationError):
            est.query(0.25)

    def test_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            P2Quantile(0.5).query()

    def test_estimates_are_interpolations_not_elements(self):
        """A structural contrast the paper draws: the MRL framework always
        returns an actual input element, while P^2 interpolates -- on a
        bimodal input its median estimate falls into the value gap where
        no data exists at all."""
        low = np.linspace(0, 1, 5000)
        high = np.linspace(1000, 1001, 5000)
        data = np.concatenate([low, high])
        est = P2Quantile(0.5)
        est.extend(data)
        answer = est.query()
        assert 1.0 < answer < 1000.0  # mid-gap: not a data element

        from repro.core import QuantileFramework

        fw = QuantileFramework.from_accuracy(0.01, len(data))
        fw.extend(data)
        assert fw.query(0.5) in data  # MRL answers with a real element

    def test_ensemble_tracks_many(self, permutation_100k):
        ens = P2Ensemble([0.25, 0.5, 0.75])
        ens.extend(permutation_100k[:20_000])
        q25, q50, q75 = ens.quantiles()
        assert q25 < q50 < q75
        assert ens.memory_elements == 15

    def test_ensemble_needs_quantiles(self):
        with pytest.raises(ConfigurationError):
            P2Ensemble([])


class TestAgrawalSwami:
    def test_reasonable_on_random(self, permutation_100k):
        data = permutation_100k[:30_000]
        hist = AgrawalSwamiHistogram(50)
        hist.extend(data)
        true_median = float(np.quantile(data, 0.5))
        span = data.max() - data.min()
        assert abs(hist.query(0.5) - true_median) / span < 0.05

    def test_memory_is_o_of_buckets(self):
        hist = AgrawalSwamiHistogram(50)
        hist.extend(np.arange(10_000, dtype=np.float64))
        assert hist.memory_elements == 101

    def test_bootstrap_phase_exact(self):
        hist = AgrawalSwamiHistogram(10)
        for v in (3.0, 1.0, 2.0):
            hist.update(v)
        assert hist.query(0.5) == 2.0

    def test_boundaries_monotone(self, rng):
        hist = AgrawalSwamiHistogram(20)
        hist.extend(rng.normal(0, 5, 20_000))
        bounds = hist.boundaries()
        assert bounds == sorted(bounds)
        assert len(bounds) == 21

    def test_handles_heavy_duplicates(self):
        hist = AgrawalSwamiHistogram(10)
        hist.extend(np.full(5000, 7.0))
        assert hist.query(0.5) == pytest.approx(7.0, abs=1.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            AgrawalSwamiHistogram(1)
        with pytest.raises(ConfigurationError):
            AgrawalSwamiHistogram(10, imbalance_factor=1.0)

    def test_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            AgrawalSwamiHistogram(10).query(0.5)


class TestReservoirSampler:
    def test_naive_sample_size_formula(self):
        import math

        assert naive_sample_size(0.01, 1e-3) == math.ceil(
            math.log(2000) / (2 * 1e-4)
        )

    def test_reservoir_is_uniform_ish(self, rng):
        # fill from 0..9999, check the sample mean is near the population's
        sampler = ReservoirSampler(500, seed=42)
        sampler.extend(np.arange(10_000, dtype=np.float64))
        assert abs(sampler.sample().mean() - 4999.5) < 600

    def test_quantile_guarantee_statistically(self):
        # with eps=.05, delta=.01 the failure probability is ~1%; one run
        # at a fixed seed must pass
        n = 100_000
        sampler = ReservoirSampler.for_guarantee(0.05, 0.01, seed=7)
        sampler.extend(np.random.default_rng(1).permutation(n).astype(float))
        med = sampler.query(0.5)
        assert abs((med + 1) - n / 2) / n <= 0.05

    def test_partial_fill(self):
        sampler = ReservoirSampler(100, seed=1)
        sampler.extend(np.array([3.0, 1.0, 2.0]))
        assert sorted(sampler.sample()) == [1.0, 2.0, 3.0]
        assert sampler.query(0.5) == 2.0

    def test_scalar_and_vector_paths_agree_statistically(self):
        a = ReservoirSampler(50, seed=3)
        b = ReservoirSampler(50, seed=3)
        data = np.arange(5000, dtype=np.float64)
        for v in data:
            a.update(float(v))
        b.extend(data)
        # same seed, same algorithm family: both must be valid reservoirs
        assert len(a.sample()) == len(b.sample()) == 50

    def test_memory_is_reservoir_size(self):
        sampler = ReservoirSampler(123)
        assert sampler.memory_elements == 123

    def test_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            ReservoirSampler(10).query(0.5)

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            ReservoirSampler(0)
        with pytest.raises(ConfigurationError):
            naive_sample_size(0.0, 0.1)
