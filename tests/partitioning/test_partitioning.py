"""Tests for splitter generation and the simulated parallel sort."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.partitioning import (
    PartitionReport,
    compute_splitters,
    partition_by_splitters,
    simulate_parallel_sort,
)


class TestSplitters:
    def test_count_and_order(self, permutation_100k):
        splitters = compute_splitters(permutation_100k, 8, epsilon=0.01)
        assert len(splitters) == 7
        assert splitters == sorted(splitters)

    def test_balance_guarantee(self, permutation_100k):
        eps = 0.005
        splitters = compute_splitters(permutation_100k, 10, epsilon=eps)
        parts = partition_by_splitters(permutation_100k, splitters)
        report = PartitionReport.from_partitions(parts)
        assert report.n == 100_000
        # adjacent splitters each err by <= eps N, in opposite directions
        assert report.imbalance <= 2 * eps + 1e-9

    def test_partitions_respect_ranges(self, permutation_10k):
        splitters = compute_splitters(permutation_10k, 4, epsilon=0.01)
        parts = partition_by_splitters(permutation_10k, splitters)
        assert len(parts) == 4
        for i in range(3):
            if len(parts[i]) and len(parts[i + 1]):
                assert parts[i].max() <= parts[i + 1].min()

    def test_partition_preserves_multiset(self, permutation_10k):
        splitters = compute_splitters(permutation_10k, 5, epsilon=0.02)
        parts = partition_by_splitters(permutation_10k, splitters)
        rebuilt = np.sort(np.concatenate(parts))
        assert np.array_equal(rebuilt, np.sort(permutation_10k))

    def test_rejects_empty_data(self):
        with pytest.raises(EmptySummaryError):
            compute_splitters(np.array([]), 4, epsilon=0.1)

    def test_rejects_single_partition(self, permutation_10k):
        with pytest.raises(ConfigurationError):
            compute_splitters(permutation_10k, 1, epsilon=0.1)

    def test_report_metrics(self):
        report = PartitionReport(sizes=[30, 50, 20], n=100)
        assert report.ideal == pytest.approx(100 / 3)
        assert report.max_size == 50
        assert report.min_size == 20
        assert report.skew == pytest.approx(50 / (100 / 3))
        assert report.imbalance == pytest.approx(
            max(abs(30 - 100 / 3), abs(50 - 100 / 3), abs(20 - 100 / 3)) / 100
        )


class TestParallelSort:
    def test_correctness_always(self, rng):
        data = rng.normal(0, 10, 50_000)
        result = simulate_parallel_sort(data, 8, epsilon=0.01)
        assert result.correct

    def test_correct_even_with_terrible_splitters(self, permutation_10k):
        # approximate splitters can only unbalance, never mis-sort
        result = simulate_parallel_sort(
            permutation_10k, 4, splitters=[1.0, 2.0, 3.0]
        )
        assert result.correct
        assert result.report.skew > 3  # nearly everything on one node

    def test_balanced_speedup(self, permutation_100k):
        result = simulate_parallel_sort(permutation_100k, 16, epsilon=0.005)
        assert result.correct
        assert result.report.imbalance <= 0.01
        # near-ideal balance: the makespan beats 1/8 of the serial cost
        assert result.speedup > 8

    def test_completion_spread_grows_with_imbalance(self, permutation_100k):
        good = simulate_parallel_sort(permutation_100k, 8, epsilon=0.002)
        bad = simulate_parallel_sort(
            permutation_100k,
            8,
            splitters=[100, 200, 300, 400, 500, 600, 50_000],
        )
        assert bad.completion_spread > good.completion_spread

    def test_single_node(self, permutation_10k):
        result = simulate_parallel_sort(permutation_10k, 1)
        assert result.correct
        assert result.speedup == pytest.approx(1.0)

    def test_wrong_splitter_count_rejected(self, permutation_10k):
        with pytest.raises(ConfigurationError):
            simulate_parallel_sort(permutation_10k, 4, splitters=[1.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            simulate_parallel_sort(np.array([]), 4)

    def test_node_results_cover_data(self, permutation_10k):
        result = simulate_parallel_sort(permutation_10k, 5, epsilon=0.01)
        assert sum(node.n_elements for node in result.nodes) == 10_000
