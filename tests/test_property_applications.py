"""Property-based tests for the application layers.

Histograms, splitters and stream combinators each promise an invariant
derived from the core guarantee; hypothesis hunts for inputs that break
the derivation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.histogram import build_equiwidth_histogram, build_histogram
from repro.partitioning import (
    PartitionReport,
    compute_splitters,
    partition_by_splitters,
)
from repro.streams import concat, interleave, sorted_stream

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

columns = st.lists(
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
    min_size=20,
    max_size=2000,
)


class TestHistogramProperties:
    @COMMON
    @given(data=columns, buckets=st.integers(min_value=2, max_value=12))
    def test_equidepth_selectivity_within_bound(self, data, buckets):
        arr = np.asarray(data, dtype=np.float64)
        hist = build_histogram(arr, buckets, epsilon=0.01)
        bound = hist.selectivity_error_bound()
        lo_v, hi_v = float(arr.min()), float(arr.max())
        probes = np.linspace(lo_v, hi_v, 7)
        for i in range(len(probes) - 1):
            lo, hi = float(probes[i]), float(probes[i + 1])
            true = float(((arr >= lo) & (arr <= hi)).mean())
            assert abs(hist.selectivity(lo, hi) - true) <= bound + 1e-9

    @COMMON
    @given(data=columns, buckets=st.integers(min_value=2, max_value=12))
    def test_selectivity_is_a_probability(self, data, buckets):
        arr = np.asarray(data, dtype=np.float64)
        for hist in (
            build_histogram(arr, buckets, epsilon=0.05),
            build_equiwidth_histogram(arr, buckets),
        ):
            lo_v, hi_v = float(arr.min()) - 1, float(arr.max()) + 1
            rng = np.random.default_rng(0)
            for _ in range(5):
                a, b = sorted(rng.uniform(lo_v, hi_v, 2))
                s = hist.selectivity(float(a), float(b))
                assert -1e-9 <= s <= 1 + 1e-9

    @COMMON
    @given(data=columns)
    def test_equiwidth_counts_conserve_mass(self, data):
        arr = np.asarray(data, dtype=np.float64)
        hist = build_equiwidth_histogram(arr, 8)
        assert sum(hist.counts) == len(arr)


class TestPartitioningProperties:
    @COMMON
    @given(
        data=st.lists(
            st.integers(min_value=-10**6, max_value=10**6),
            min_size=50,
            max_size=3000,
        ),
        parts=st.integers(min_value=2, max_value=10),
    )
    def test_partitions_preserve_multiset_and_order(self, data, parts):
        arr = np.asarray(data, dtype=np.float64)
        splitters = compute_splitters(arr, parts, epsilon=0.02)
        pieces = partition_by_splitters(arr, splitters)
        assert len(pieces) == parts
        rebuilt = np.sort(np.concatenate(pieces))
        assert np.array_equal(rebuilt, np.sort(arr))
        # ranges are disjoint and ordered
        for left, right in zip(pieces, pieces[1:]):
            if len(left) and len(right):
                assert left.max() <= right.min()

    @COMMON
    @given(
        n=st.integers(min_value=200, max_value=20_000),
        parts=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_imbalance_bound_on_distinct_values(self, n, parts, seed):
        # distinct values: the 2-epsilon balance bound applies exactly
        rng = np.random.default_rng(seed)
        arr = rng.permutation(n).astype(np.float64)
        eps = 0.02
        splitters = compute_splitters(arr, parts, epsilon=eps)
        report = PartitionReport.from_partitions(
            partition_by_splitters(arr, splitters)
        )
        assert report.imbalance <= 2 * eps + 1.0 / n + 1e-9


class TestCombinatorProperties:
    @COMMON
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=200), min_size=1, max_size=5
        )
    )
    def test_concat_preserves_every_element(self, sizes):
        streams = [sorted_stream(size) for size in sizes]
        combined = concat(*streams)
        assert len(combined) == sum(sizes)
        data = combined.materialize()
        expected = np.concatenate(
            [np.arange(size, dtype=np.float64) for size in sizes]
        )
        assert np.array_equal(data, expected)

    @COMMON
    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=200), min_size=1, max_size=4
        ),
        block=st.integers(min_value=1, max_value=64),
        chunk=st.integers(min_value=1, max_value=97),
    )
    def test_interleave_multiset_and_chunk_invariance(
        self, sizes, block, chunk
    ):
        streams = [sorted_stream(size) for size in sizes]
        combined = interleave(streams, block=block)
        assert len(combined) == sum(sizes)
        whole = combined.materialize()
        pieced = np.concatenate(list(combined.chunks(chunk_size=chunk)))
        assert np.array_equal(whole, pieced)
        expected = sorted(
            v for size in sizes for v in range(size)
        )
        assert sorted(whole.tolist()) == expected
