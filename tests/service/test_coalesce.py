"""The coalesced fast path: many frames per read, one write per burst.

Server side: pipelined frames that arrive in one TCP chunk are parsed
and dispatched back to back, each acked individually, all acks shipped
in one write -- with per-request idempotency-token dedup intact even
when the duplicate sits *inside* the same coalesced chunk.  Client
side: ``send_coalesce_bytes`` defers socket writes and ships queued
frames with one scatter-gather ``sendmsg``.  Plus the ``AF_UNIX``
transport, which carries the identical wire format.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.service import QuantileClient, ServerThread
from repro.service import protocol
from repro.service.protocol import Opcode, Request


@pytest.fixture
def server(tmp_path):
    with ServerThread(
        data_dir=str(tmp_path / "data"), n_shards=2,
        snapshot_interval_s=None,
    ) as srv:
        yield srv


def raw_connection(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def recv_ack(sock, opcode):
    """Read one length-prefixed response frame and decode it."""
    header = b""
    while len(header) < 4:
        header += sock.recv(4 - len(header))
    length = int.from_bytes(header, "little")
    payload = b""
    while len(payload) < length:
        payload += sock.recv(length - len(payload))
    return protocol.decode_response(opcode, payload)


def create_frame(name, token):
    return protocol.encode_request_framed(
        Request(
            opcode=Opcode.CREATE, name=name, token=token,
            kind="adaptive", epsilon=0.02, n=0, policy="new",
        )
    )


class TestServerCoalescing:
    def test_many_frames_in_one_chunk_all_acked_in_order(self, server):
        """One sendall carrying N pipelined INGESTs -> N ordered acks."""
        n_frames, batch = 32, 64
        blob = bytearray(create_frame("t/m", token=1))
        for i in range(n_frames):
            blob += protocol.encode_ingest_framed(
                "t/m", np.full(batch, float(i)), token=100 + i
            )
        sock = raw_connection(server.port)
        try:
            sock.sendall(blob)
            assert recv_ack(sock, Opcode.CREATE)["created"] is True
            seqs = []
            for _ in range(n_frames):
                ack = recv_ack(sock, Opcode.INGEST)
                assert ack["count"] == batch
                seqs.append(ack["seq"])
            # journal order is ack order: strictly increasing seqs
            assert seqs == sorted(seqs) and len(set(seqs)) == n_frames
        finally:
            sock.close()
        with QuantileClient("127.0.0.1", server.port) as client:
            _, _, n = client.query("t/m", [0.5])
            assert n == n_frames * batch
            coalescing = client.stats()["coalescing"]
        # the server observed multi-frame reads (exact split depends on
        # TCP segmentation, but the burst cannot arrive one frame per
        # read: frames outnumber reads)
        assert coalescing["frames"] >= n_frames
        assert coalescing["reads"] < coalescing["frames"]

    def test_duplicate_token_inside_one_chunk_applies_once(self, server):
        """A retry landing in the same coalesced chunk as the original
        is deduplicated, and both copies get the *same* ack."""
        values = np.arange(500.0)
        ingest = bytes(
            protocol.encode_ingest_framed("t/m", values, token=77)
        )
        sock = raw_connection(server.port)
        try:
            sock.sendall(create_frame("t/m", token=1) + ingest + ingest)
            recv_ack(sock, Opcode.CREATE)
            first = recv_ack(sock, Opcode.INGEST)
            second = recv_ack(sock, Opcode.INGEST)
            assert first == second
        finally:
            sock.close()
        with QuantileClient("127.0.0.1", server.port) as client:
            _, _, n = client.query("t/m", [0.5])
            assert n == values.size

    def test_duplicate_token_across_chunks_applies_once(self, server):
        """The classic lost-ack retry: duplicate in a later chunk."""
        values = np.arange(300.0)
        ingest = bytes(
            protocol.encode_ingest_framed("t/m", values, token=88)
        )
        sock = raw_connection(server.port)
        try:
            sock.sendall(create_frame("t/m", token=1) + ingest)
            recv_ack(sock, Opcode.CREATE)
            first = recv_ack(sock, Opcode.INGEST)
            sock.sendall(ingest)  # separate chunk, same token
            assert recv_ack(sock, Opcode.INGEST) == first
        finally:
            sock.close()
        with QuantileClient("127.0.0.1", server.port) as client:
            _, _, n = client.query("t/m", [0.5])
            assert n == values.size

    def test_frame_split_across_reads_reassembles(self, server):
        """A frame straddling the chunk boundary is carried as a tail
        and completed by the next read."""
        values = np.arange(1000.0)
        ingest = bytes(
            protocol.encode_ingest_framed("t/m", values, token=5)
        )
        sock = raw_connection(server.port)
        try:
            sock.sendall(create_frame("t/m", token=1))
            recv_ack(sock, Opcode.CREATE)
            # drip the frame in three pieces with the socket flushed
            # between them, so the server sees a partial frame per read
            for piece in (ingest[:10], ingest[10:4000], ingest[4000:]):
                sock.sendall(piece)
            ack = recv_ack(sock, Opcode.INGEST)
            assert ack["count"] == values.size
        finally:
            sock.close()


class TestClientSendCoalescing:
    def test_nowait_defers_until_threshold_then_one_burst(self, server):
        with QuantileClient(
            "127.0.0.1", server.port, send_coalesce_bytes=1024 * 1024
        ) as client:
            client.create("t/m", kind="adaptive", epsilon=0.02)
            for i in range(20):
                client.ingest_nowait("t/m", np.full(100, float(i)))
            # everything still queued client-side (threshold not hit)
            assert client._unsent_bytes > 0
            client.flush()  # ships the burst, waits for every ack
            assert client._unsent_bytes == 0
            _, _, n = client.query("t/m", [0.5])
            assert n == 2000

    def test_threshold_crossing_triggers_send(self, server):
        batch = np.arange(4096.0)  # ~32 KiB framed
        with QuantileClient(
            "127.0.0.1", server.port, send_coalesce_bytes=64 * 1024
        ) as client:
            client.create("t/m", kind="adaptive", epsilon=0.02)
            for _ in range(8):
                client.ingest_nowait("t/m", batch)
            # at least one burst crossed the 64 KiB threshold and went out
            assert client._unsent_bytes < 8 * batch.nbytes
            client.drain()
            _, _, n = client.query("t/m", [0.5])
            assert n == 8 * batch.size

    def test_sync_call_flushes_deferred_frames_first(self, server):
        """Ordering: a synchronous query never overtakes deferred
        ingests -- it reads its own queued writes."""
        with QuantileClient(
            "127.0.0.1", server.port, send_coalesce_bytes=8 * 1024 * 1024
        ) as client:
            client.create("t/m", kind="adaptive", epsilon=0.02)
            client.ingest_nowait("t/m", np.arange(700.0))
            _, _, n = client.query("t/m", [0.5])
            assert n == 700


class TestUnixSocketTransport:
    def test_round_trip_over_unix_socket(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        with ServerThread(path=path, snapshot_interval_s=None) as srv:
            assert srv.path == path
            with QuantileClient(path=path) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                client.ingest("t/m", np.arange(2000.0))
                values, bound, n = client.query("t/m", [0.5])
                assert n == 2000
                assert abs(values[0] - 1000) <= max(bound, 0.02 * 2000)

    def test_socket_file_removed_on_stop(self, tmp_path):
        import os

        path = str(tmp_path / "svc.sock")
        srv = ServerThread(path=path, snapshot_interval_s=None).start()
        assert os.path.exists(path)
        srv.stop()
        assert not os.path.exists(path)

    def test_pipelined_coalesced_ingest_over_unix_socket(self, tmp_path):
        path = str(tmp_path / "svc.sock")
        with ServerThread(path=path, snapshot_interval_s=None) as srv:
            with QuantileClient(
                path=path, send_coalesce_bytes=128 * 1024
            ) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                for i in range(64):
                    client.ingest_nowait("t/m", np.full(512, float(i)))
                client.drain()
                _, _, n = client.query("t/m", [0.5])
                assert n == 64 * 512
