"""Registry tests: creation semantics, sharding, batched-apply identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveQuantileSketch
from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.core.framework import QuantileFramework
from repro.service.registry import SketchRegistry, shard_of

PHIS = [0.1, 0.5, 0.9]


class TestCreate:
    def test_create_and_get(self):
        registry = SketchRegistry()
        entry, created = registry.create("ns/m", kind="adaptive")
        assert created
        assert registry.get("ns/m") is entry
        assert "ns/m" in registry
        assert len(registry) == 1

    def test_idempotent_same_config(self):
        registry = SketchRegistry()
        first, created = registry.create("m", kind="fixed", epsilon=0.01,
                                         n=1000)
        again, created_again = registry.create("m", kind="fixed",
                                               epsilon=0.01, n=1000)
        assert created and not created_again
        assert again is first

    def test_conflicting_config_rejected(self):
        registry = SketchRegistry()
        registry.create("m", kind="fixed", epsilon=0.01, n=1000)
        with pytest.raises(ConfigurationError, match="exists"):
            registry.create("m", kind="fixed", epsilon=0.05, n=1000)

    def test_unknown_metric(self):
        with pytest.raises(ConfigurationError, match="unknown metric"):
            SketchRegistry().get("nope")

    def test_kinds(self):
        registry = SketchRegistry()
        fixed, _ = registry.create("f", kind="fixed", n=10_000)
        adaptive, _ = registry.create("a", kind="adaptive")
        assert isinstance(fixed.sketch, QuantileFramework)
        assert isinstance(adaptive.sketch, AdaptiveQuantileSketch)


class TestSharding:
    def test_stable_assignment(self):
        assert shard_of("api/latency", 4) == shard_of("api/latency", 4)
        assert 0 <= shard_of("anything", 4) < 4

    def test_entries_distributed(self):
        registry = SketchRegistry(n_shards=4)
        for i in range(40):
            registry.create(f"ns/m{i}", kind="adaptive")
        shards = {registry.get(f"ns/m{i}").shard for i in range(40)}
        assert len(shards) > 1  # not everything on one shard


class TestBatchedApply:
    """The recovery keystone: queued cross-metric batches applied as one
    vectorized bank super-batch equal per-metric sequential ingest."""

    @pytest.mark.parametrize("kind", ["fixed", "adaptive"])
    def test_enqueue_apply_equals_direct(self, kind):
        rng = np.random.default_rng(3)
        n_kw = {"n": 60_000} if kind == "fixed" else {}
        batched = SketchRegistry(n_shards=1)
        direct = SketchRegistry(n_shards=1)
        for reg in (batched, direct):
            reg.create("a", kind=kind, epsilon=0.01, **n_kw)
            reg.create("b", kind=kind, epsilon=0.01, **n_kw)
        for _ in range(5):
            for name in ("a", "b", "a"):
                chunk = rng.normal(size=997)
                batched.enqueue(name, chunk)
                direct.ingest(name, chunk)
        assert batched.pending_batches() == 15
        batched.apply_all()
        assert batched.pending_batches() == 0
        for name in ("a", "b"):
            assert batched.quantiles(name, PHIS) == \
                direct.quantiles(name, PHIS)

    def test_shard_count_does_not_change_answers(self):
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        one = SketchRegistry(n_shards=1)
        many = SketchRegistry(n_shards=8)
        for reg in (one, many):
            for i in range(6):
                reg.create(f"m{i}", kind="fixed", n=20_000)
        for _ in range(4):
            for i in range(6):
                one.enqueue(f"m{i}", rng_a.uniform(size=500))
                many.enqueue(f"m{i}", rng_b.uniform(size=500))
        one.apply_all()
        many.apply_all()
        for i in range(6):
            assert one.quantiles(f"m{i}", PHIS) == \
                many.quantiles(f"m{i}", PHIS)


class TestValidation:
    def test_rejects_non_finite(self):
        registry = SketchRegistry()
        registry.create("m", kind="adaptive")
        with pytest.raises(ConfigurationError, match="finite"):
            registry.ingest("m", np.array([1.0, np.nan]))

    def test_rejects_multidimensional(self):
        registry = SketchRegistry()
        registry.create("m", kind="adaptive")
        with pytest.raises(ConfigurationError):
            registry.ingest("m", np.ones((3, 3)))

    def test_empty_batch_is_noop(self):
        registry = SketchRegistry()
        registry.create("m", kind="adaptive")
        registry.ingest("m", np.empty(0))
        assert registry.get("m").count == 0


class TestQueries:
    def test_quantiles_with_certified_bound(self):
        registry = SketchRegistry()
        registry.create("m", kind="fixed", epsilon=0.05, n=10_000)
        values = np.random.default_rng(0).permutation(10_000).astype(float)
        registry.ingest("m", values)
        (median,), bound, n = registry.quantiles("m", [0.5])
        assert n == 10_000
        assert abs(median - 5000) <= bound  # certified a-posteriori bound
        assert bound <= 0.05 * 10_000

    def test_cdf(self):
        registry = SketchRegistry()
        registry.create("m", kind="adaptive", epsilon=0.02)
        registry.ingest("m", np.arange(1000.0))
        rank, fraction, bound, n = registry.cdf("m", 500.0)
        assert n == 1000
        assert abs(fraction - 0.5) < 0.1

    def test_query_empty_metric_raises(self):
        registry = SketchRegistry()
        registry.create("m", kind="adaptive")
        with pytest.raises(EmptySummaryError):
            registry.quantiles("m", [0.5])

    def test_fetch_serialized_round_trips(self):
        from repro.core import serialize

        registry = SketchRegistry()
        registry.create("m", kind="fixed", epsilon=0.02, n=5_000)
        registry.ingest("m", np.random.default_rng(1).normal(size=5_000))
        fw = serialize.loads(registry.fetch_serialized("m"))
        v_reg, _, _ = registry.quantiles("m", PHIS)
        assert fw.quantiles(PHIS) == v_reg

    def test_fetch_adaptive_rejected(self):
        registry = SketchRegistry()
        registry.create("m", kind="adaptive")
        with pytest.raises(ConfigurationError):
            registry.fetch_serialized("m")
