"""Wire-protocol codec tests: round-trips, framing, malformed input."""

from __future__ import annotations

import socket
import struct

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, StorageError
from repro.service import protocol
from repro.service.protocol import Opcode, Request


def roundtrip(req: Request) -> Request:
    return protocol.decode_request(protocol.encode_request(req))


class TestRequestRoundtrip:
    def test_create(self):
        req = Request(
            opcode=Opcode.CREATE,
            name="api/latency",
            kind="adaptive",
            epsilon=0.005,
            n=None,
            policy="munro-paterson",
        )
        out = roundtrip(req)
        assert (out.name, out.kind, out.epsilon, out.n, out.policy) == (
            "api/latency", "adaptive", 0.005, None, "munro-paterson"
        )

    def test_create_fixed_with_n(self):
        out = roundtrip(
            Request(opcode=Opcode.CREATE, name="m", kind="fixed", n=10**6)
        )
        assert out.kind == "fixed"
        assert out.n == 10**6

    def test_ingest_preserves_values_bitwise(self):
        values = np.random.default_rng(0).normal(size=1000)
        out = roundtrip(
            Request(opcode=Opcode.INGEST, name="m", values=values)
        )
        np.testing.assert_array_equal(out.values, values)
        assert out.values.dtype == np.float64

    def test_ingest_empty_batch(self):
        out = roundtrip(
            Request(
                opcode=Opcode.INGEST,
                name="m",
                values=np.empty(0, dtype=np.float64),
            )
        )
        assert out.values.size == 0

    def test_query(self):
        out = roundtrip(
            Request(opcode=Opcode.QUERY, name="m", phis=[0.25, 0.5, 0.99])
        )
        assert out.phis == [0.25, 0.5, 0.99]

    def test_cdf(self):
        out = roundtrip(Request(opcode=Opcode.CDF, name="m", value=-1.5))
        assert out.value == -1.5

    @pytest.mark.parametrize(
        "opcode",
        [
            Opcode.LIST,
            Opcode.SNAPSHOT,
            Opcode.DRAIN,
            Opcode.STATS,
            Opcode.PING,
        ],
    )
    def test_bodyless_opcodes(self, opcode):
        assert roundtrip(Request(opcode=opcode)).opcode == opcode

    def test_fetch(self):
        out = roundtrip(Request(opcode=Opcode.FETCH, name="ns/metric"))
        assert out.name == "ns/metric"

    def test_unicode_names(self):
        out = roundtrip(Request(opcode=Opcode.FETCH, name="ns/mètric-µs"))
        assert out.name == "ns/mètric-µs"


class TestMalformedInput:
    def test_unknown_opcode(self):
        with pytest.raises(StorageError):
            protocol.decode_request(bytes([200]))

    def test_unknown_kind_on_encode(self):
        with pytest.raises(ConfigurationError):
            protocol.encode_request(
                Request(opcode=Opcode.CREATE, name="m", kind="bogus")
            )

    def test_truncated_body(self):
        payload = protocol.encode_request(
            Request(opcode=Opcode.INGEST, name="m", values=np.arange(8.0))
        )
        with pytest.raises(StorageError):
            protocol.decode_request(payload[:-3])

    def test_trailing_garbage(self):
        payload = protocol.encode_request(
            Request(opcode=Opcode.CDF, name="m", value=0.0)
        )
        with pytest.raises(StorageError):
            protocol.decode_request(payload + b"\x00")

    def test_overlong_name(self):
        with pytest.raises(ConfigurationError):
            protocol.encode_request(
                Request(opcode=Opcode.FETCH, name="x" * 70000)
            )


class TestResponses:
    def test_error_frame_raises_client_side(self):
        frame = protocol.encode_error("metric 'm' does not exist")
        with pytest.raises(ConfigurationError, match="does not exist"):
            protocol.decode_response(Opcode.QUERY, frame)

    def test_query_response_roundtrip(self):
        body = protocol.encode_ok(
            Opcode.QUERY,
            {"n": 100, "error_bound": 3.0, "values": [1.0, 2.0]},
        )
        out = protocol.decode_response(Opcode.QUERY, body)
        assert out == {"n": 100, "error_bound": 3.0, "values": [1.0, 2.0]}

    def test_ingest_ack_roundtrip(self):
        body = protocol.encode_ok(Opcode.INGEST, {"seq": 7, "count": 42})
        assert protocol.decode_response(Opcode.INGEST, body) == {
            "seq": 7,
            "count": 42,
        }

    def test_ping_response_roundtrip(self):
        body = protocol.encode_ok(
            Opcode.PING,
            {
                "node_id": "node-1",
                "epoch": 3,
                "uptime_s": 12.5,
                "n_metrics": 4,
                "elements": 9001,
            },
        )
        assert protocol.decode_response(Opcode.PING, body) == {
            "node_id": "node-1",
            "epoch": 3,
            "uptime_s": 12.5,
            "n_metrics": 4,
            "elements": 9001,
        }


class TestSyncOpcodes:
    """SYNCPULL / RESTORE: the re-sync transfer wire format."""

    def test_syncpull_request_roundtrip(self):
        out = roundtrip(
            Request(opcode=Opcode.SYNCPULL, name="ns/m", after_seq=417)
        )
        assert (out.opcode, out.name, out.after_seq) == (
            Opcode.SYNCPULL, "ns/m", 417
        )

    def test_restore_request_roundtrip_bitwise(self):
        payload = bytes(range(256)) * 3
        out = roundtrip(
            Request(
                opcode=Opcode.RESTORE,
                name="ns/m",
                token=0xDEADBEEF,
                kind="fixed",
                epsilon=0.005,
                n=10**6,
                policy="munro-paterson",
                engine="kll",
                payload=payload,
            )
        )
        assert out.token == 0xDEADBEEF
        assert (out.kind, out.epsilon, out.n, out.policy, out.engine) == (
            "fixed", 0.005, 10**6, "munro-paterson", "kll"
        )
        assert out.payload == payload

    def test_restore_rejects_unknown_engine_on_encode(self):
        with pytest.raises(ConfigurationError):
            protocol.encode_request(
                Request(
                    opcode=Opcode.RESTORE,
                    name="m",
                    kind="fixed",
                    engine="bogus",
                    payload=b"",
                )
            )

    def test_restore_is_mutating_syncpull_is_not(self):
        # RESTORE rewrites state, so it must ride the idempotency-token
        # dedup path; SYNCPULL is a pure read
        assert Opcode.RESTORE in protocol.MUTATING_OPCODES
        assert Opcode.SYNCPULL not in protocol.MUTATING_OPCODES

    def test_syncpull_response_roundtrip(self):
        records = [
            (8, 101, np.arange(4.0)),
            (9, 102, np.empty(0, dtype=np.float64)),
        ]
        body = protocol.encode_ok(
            Opcode.SYNCPULL,
            {
                "rebase": False,
                "kind": "fixed",
                "epsilon": 0.01,
                "n": None,
                "policy": "new",
                "engine": "frugal",
                "seq": 9,
                "payload": b"FRGSKT01\x00\x01",
                "records": records,
            },
        )
        out = protocol.decode_response(Opcode.SYNCPULL, body)
        assert out["rebase"] is False
        assert (out["kind"], out["n"], out["engine"]) == (
            "fixed", None, "frugal"
        )
        assert out["seq"] == 9
        assert out["payload"] == b"FRGSKT01\x00\x01"
        assert [(s, t) for s, t, _ in out["records"]] == [(8, 101), (9, 102)]
        np.testing.assert_array_equal(out["records"][0][2], np.arange(4.0))
        assert out["records"][1][2].size == 0

    def test_syncpull_rebase_flag_survives(self):
        body = protocol.encode_ok(
            Opcode.SYNCPULL,
            {
                "rebase": True,
                "kind": "fixed",
                "epsilon": 0.01,
                "n": 1000,
                "policy": "new",
                "engine": "paper",
                "seq": 3,
                "payload": b"",
                "records": [],
            },
        )
        out = protocol.decode_response(Opcode.SYNCPULL, body)
        assert out["rebase"] is True
        assert out["n"] == 1000
        assert out["records"] == []

    def test_restore_response_roundtrip(self):
        body = protocol.encode_ok(
            Opcode.RESTORE, {"replaced": True, "seq": 55}
        )
        assert protocol.decode_response(Opcode.RESTORE, body) == {
            "replaced": True,
            "seq": 55,
        }

    def test_truncated_syncpull_response_is_typed(self):
        body = protocol.encode_ok(
            Opcode.SYNCPULL,
            {
                "rebase": False,
                "kind": "fixed",
                "epsilon": 0.01,
                "n": None,
                "policy": "new",
                "engine": "paper",
                "seq": 1,
                "payload": b"xyz",
                "records": [(1, 7, np.arange(8.0))],
            },
        )
        with pytest.raises(StorageError):
            protocol.decode_response(Opcode.SYNCPULL, body[:-5])


class TestFraming:
    def test_socket_roundtrip(self):
        a, b = socket.socketpair()
        try:
            payload = protocol.encode_request(
                Request(
                    opcode=Opcode.INGEST,
                    name="m",
                    values=np.arange(100.0),
                )
            )
            protocol.send_frame(a, payload)
            assert protocol.recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_oversized_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack("<I", protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(StorageError, match="frame"):
                protocol.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_closed_peer_raises(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises((StorageError, OSError)):
                protocol.recv_frame(b)
        finally:
            b.close()
