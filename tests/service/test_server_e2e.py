"""End-to-end server tests over real TCP: concurrency, crash recovery.

Mirrors the CI smoke: concurrent clients batch-ingest, queries return
certified answers matching an offline sketch fed the same data, and a
non-graceful stop (the in-process stand-in for SIGKILL; the CI script
does the real kill) recovers bit-identically from snapshot + journal.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.service import QuantileClient, ServerThread
from repro.service.registry import SketchRegistry

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]


@pytest.fixture
def server(tmp_path):
    with ServerThread(
        data_dir=str(tmp_path / "data"), n_shards=2,
        snapshot_interval_s=None,
    ) as srv:
        yield srv


def client_for(server):
    return QuantileClient("127.0.0.1", server.port)


class TestBasics:
    def test_create_ingest_query(self, server):
        with client_for(server) as client:
            assert client.create("t/m", kind="adaptive", epsilon=0.02)
            assert not client.create("t/m", kind="adaptive", epsilon=0.02)
            client.ingest("t/m", np.arange(1000.0))
            values, bound, n = client.query("t/m", [0.5])
            assert n == 1000
            assert abs(values[0] - 500) <= max(bound, 0.02 * 1000)

    def test_unknown_metric_is_clean_error(self, server):
        with client_for(server) as client:
            with pytest.raises(ConfigurationError, match="unknown metric"):
                client.query("missing", [0.5])
            # the connection survives the error frame
            client.create("t/m", kind="adaptive")
            assert client.list_metrics()[0]["name"] == "t/m"

    def test_conflicting_create_rejected(self, server):
        with client_for(server) as client:
            client.create("t/m", kind="fixed", epsilon=0.01, n=1000)
            with pytest.raises(ConfigurationError, match="exists"):
                client.create("t/m", kind="fixed", epsilon=0.05, n=1000)

    def test_pipelined_ingest(self, server):
        with client_for(server) as client:
            client.create("t/m", kind="adaptive")
            for i in range(50):
                client.ingest_nowait("t/m", np.full(100, float(i)))
            last_seq = client.flush()
            assert last_seq >= 50
            _, _, n = client.query("t/m", [0.5])
            assert n == 5000

    def test_stats_shape(self, server):
        with client_for(server) as client:
            client.create("t/m", kind="adaptive")
            client.ingest("t/m", np.arange(100.0))
            client.query("t/m", [0.5])
            stats = client.stats()
            assert stats["ingest"]["elements"] == 100
            assert stats["queries"]["count"] == 1
            assert stats["registry"]["metrics"] == 1
            assert len(stats["shards"]) == 2

    def test_fetch_round_trips(self, server):
        with client_for(server) as client:
            client.create("t/m", kind="fixed", epsilon=0.02, n=10_000)
            data = np.random.default_rng(0).normal(size=10_000)
            client.ingest("t/m", data)
            fw = client.fetch("t/m")
            remote_values, _, _ = client.query("t/m", PHIS)
            assert fw.quantiles(PHIS) == remote_values


class TestConcurrentIngest:
    N_CLIENTS = 4
    BATCHES_PER_CLIENT = 10
    BATCH = 1_000

    def test_matches_offline_sketch(self, server):
        """ISSUE acceptance: >= 4 concurrent clients, certified bound
        matches an offline sketch fed the same data."""
        total = self.N_CLIENTS * self.BATCHES_PER_CLIENT * self.BATCH
        rng = np.random.default_rng(42)
        data = rng.permutation(total).astype(np.float64)
        parts = np.split(data, self.N_CLIENTS)

        with client_for(server) as admin:
            admin.create("load/m", kind="fixed", epsilon=0.02, n=total)

        errors = []

        def worker(part):
            try:
                with client_for(server) as client:
                    for batch in np.split(part, self.BATCHES_PER_CLIENT):
                        client.ingest_nowait("load/m", batch)
                    client.flush()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(part,)) for part in parts
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

        with client_for(server) as client:
            values, bound, n = client.query("load/m", PHIS)
        assert n == total

        offline = SketchRegistry(n_shards=1)
        offline.create("load/m", kind="fixed", epsilon=0.02, n=total)
        offline.ingest("load/m", data)
        _, offline_bound, offline_n = offline.quantiles("load/m", PHIS)
        # the certified bound depends only on the count-driven collapse
        # schedule, not on arrival order: it must match exactly
        assert bound == offline_bound
        assert n == offline_n
        # and every answer must honour it against the true ranks
        for phi, value in zip(PHIS, values):
            true_rank = phi * total
            assert abs((value + 1) - true_rank) <= bound + 1


class TestCrashRecovery:
    def test_non_graceful_restart_is_bit_identical(self, tmp_path):
        data_dir = str(tmp_path / "data")
        rng = np.random.default_rng(7)
        srv = ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None
        ).start()
        try:
            with client_for(srv) as client:
                client.create("t/fixed", kind="fixed", epsilon=0.02,
                              n=30_000)
                client.create("t/adaptive", kind="adaptive", epsilon=0.02)
                for _ in range(5):
                    client.ingest("t/fixed", rng.normal(size=2_000))
                    client.ingest("t/adaptive", rng.exponential(size=800))
                client.snapshot()
                # post-snapshot tail lives only in the journal
                for _ in range(3):
                    client.ingest("t/fixed", rng.normal(size=2_000))
                    client.ingest("t/adaptive", rng.exponential(size=800))
                client.drain()
                before = {
                    name: client.query(name, PHIS)
                    for name in ("t/fixed", "t/adaptive")
                }
        finally:
            srv.stop(graceful=False)  # no final snapshot, journal as-is

        srv2 = ServerThread(
            data_dir=data_dir, n_shards=3, snapshot_interval_s=None
        ).start()
        try:
            with client_for(srv2) as client:
                for name, want in before.items():
                    assert client.query(name, PHIS) == want
                stats = client.stats()
                assert stats["durability"]["journal_records_recovered"] > 0
        finally:
            srv2.stop()

    def test_recovered_server_keeps_ingesting(self, tmp_path):
        data_dir = str(tmp_path / "data")
        srv = ServerThread(data_dir=data_dir, snapshot_interval_s=None)
        srv.start()
        try:
            with client_for(srv) as client:
                client.create("t/m", kind="adaptive")
                client.ingest("t/m", np.arange(500.0))
        finally:
            srv.stop(graceful=False)

        srv2 = ServerThread(data_dir=data_dir, snapshot_interval_s=None)
        srv2.start()
        try:
            with client_for(srv2) as client:
                client.ingest("t/m", np.arange(500.0, 1000.0))
                _, _, n = client.query("t/m", [0.5])
                assert n == 1000
        finally:
            srv2.stop()

    def test_ephemeral_server_has_no_durability(self, tmp_path):
        with ServerThread(snapshot_interval_s=None) as srv:
            with client_for(srv) as client:
                client.create("t/m", kind="adaptive")
                client.ingest("t/m", np.arange(100.0))
                with pytest.raises(ConfigurationError, match="data-dir"):
                    client.snapshot()
