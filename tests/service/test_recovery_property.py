"""Crash-recovery property: replay is bit-identical to never crashing.

The durability contract of the service is that after a kill -- including
one that tears the journal mid-record -- restarting from the latest
snapshot plus the surviving journal prefix yields *exactly* the answers
an uninterrupted run would give for every acknowledged batch: same
quantile values, same certified Lemma 5 error bounds, same counts.

This leans on the PR-2 SketchBank property (batched ingest is
bit-identical to per-sketch sequential ingest), so it must hold across
all three collapse policies and with the fast kernels on or off.  The
test drives the same journal/snapshot/registry components the server
uses, tearing the journal at hypothesis-chosen byte offsets.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.service.journal import (
    CREATE_RECORD,
    INGEST_RECORD,
    IngestJournal,
    read_journal,
)
from repro.service.registry import SketchRegistry
from repro.service.snapshot import read_snapshot, write_snapshot

POLICIES = ["new", "munro-paterson", "alsabti-ranka-singh"]
PHIS = [0.05, 0.25, 0.5, 0.75, 0.95]
_RUN_COUNTER = __import__("itertools").count()


@pytest.fixture(params=[True, False], ids=["kernels-on", "kernels-off"])
def kernels_mode(request):
    previous = kernels.is_enabled()
    kernels.set_enabled(request.param)
    try:
        yield request.param
    finally:
        kernels.set_enabled(previous)


def _metrics(policy):
    return [
        ("svc/fixed", dict(kind="fixed", epsilon=0.03, n=20_000,
                           policy=policy)),
        ("svc/adaptive", dict(kind="adaptive", epsilon=0.03,
                              policy=policy)),
    ]


def _make_batches(seed, n_batches):
    rng = np.random.default_rng(seed)
    names = ["svc/fixed", "svc/adaptive"]
    return [
        (names[i % 2], rng.normal(size=int(rng.integers(50, 400))))
        for i in range(n_batches)
    ]


def _run_with_journal(tmp_path, policy, batches, snapshot_after):
    """Mimic the server's write path: journal-then-apply each mutation,
    snapshot + rotate after ``snapshot_after`` batches."""
    journal_path = str(tmp_path / "journal.log")
    snapshot_path = str(tmp_path / "snapshot.bin")
    registry = SketchRegistry(n_shards=2)
    journal = IngestJournal(journal_path)
    for name, config in _metrics(policy):
        journal.append_create(
            name, config["kind"], config["epsilon"],
            config.get("n"), config["policy"],
        )
        registry.create(name, **config)
    for i, (name, values) in enumerate(batches):
        journal.append_ingest(name, values)
        registry.ingest(name, values)
        if i + 1 == snapshot_after:
            write_snapshot(snapshot_path, registry, seq=journal.seq)
            journal.rotate(start_seq=journal.seq)
    journal.close()
    return registry, journal_path, snapshot_path


def _recover(journal_path, snapshot_path):
    """The server's recovery path: snapshot, then replay seq > snap_seq."""
    registry = SketchRegistry(n_shards=2)
    seq = 0
    if os.path.exists(snapshot_path):
        seq = read_snapshot(snapshot_path, registry)
    acked_batches = 0
    scan = read_journal(journal_path)
    for record in scan.records:
        if record.seq <= seq:
            continue
        if record.type == CREATE_RECORD:
            registry.create(
                record.name, kind=record.kind, epsilon=record.epsilon,
                n=record.n, policy=record.policy,
            )
        elif record.type == INGEST_RECORD:
            registry.ingest(record.name, record.values)
            acked_batches += 1
    return registry, acked_batches


def _reference(policy, batches):
    """The uninterrupted run: same batches, no durability machinery."""
    registry = SketchRegistry(n_shards=2)
    for name, config in _metrics(policy):
        registry.create(name, **config)
    for name, values in batches:
        registry.ingest(name, values)
    return registry


def assert_bit_identical(recovered, reference):
    assert recovered.names() == reference.names()
    for name in reference.names():
        v_rec, bound_rec, n_rec = recovered.quantiles(name, PHIS)
        v_ref, bound_ref, n_ref = reference.quantiles(name, PHIS)
        assert v_rec == v_ref, f"{name}: quantile values diverged"
        assert bound_rec == bound_ref, f"{name}: certified bound diverged"
        assert n_rec == n_ref


@pytest.mark.parametrize("policy", POLICIES)
def test_clean_kill_recovers_bit_identical(tmp_path, policy, kernels_mode):
    """Kill after the last append completed: every batch survives."""
    batches = _make_batches(seed=1, n_batches=12)
    _, journal_path, snapshot_path = _run_with_journal(
        tmp_path, policy, batches, snapshot_after=7
    )
    recovered, acked = _recover(journal_path, snapshot_path)
    assert_bit_identical(recovered, _reference(policy, batches))


@pytest.mark.parametrize("policy", POLICIES)
@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    seed=st.integers(0, 2**16),
    torn_bytes=st.integers(1, 2000),
    snapshot_after=st.integers(0, 12),
)
def test_torn_tail_recovers_acked_prefix(
    tmp_path, policy, kernels_mode, seed, torn_bytes, snapshot_after
):
    """Kill mid-append: the surviving prefix replays bit-identically.

    Truncating the journal ``torn_bytes`` before its end tears the final
    record(s); recovery must reproduce exactly the uninterrupted run over
    the batches whose records fully survive.
    """
    from repro.service.journal import _FILE_HEADER

    batches = _make_batches(seed, n_batches=12)
    run_dir = tmp_path / f"run-{next(_RUN_COUNTER)}"
    run_dir.mkdir()
    _, journal_path, snapshot_path = _run_with_journal(
        run_dir, policy, batches, snapshot_after=snapshot_after
    )
    # tear the tail; the file header itself cannot be torn by a crash
    # (it was flushed long before), so never cut into it
    size = os.path.getsize(journal_path)
    with open(journal_path, "r+b") as fh:
        fh.truncate(max(size - torn_bytes, _FILE_HEADER.size))

    recovered, replayed = _recover(journal_path, snapshot_path)
    surviving = snapshot_after + replayed if snapshot_after else replayed
    assert surviving <= len(batches)
    assert_bit_identical(
        recovered, _reference(policy, batches[:surviving])
    )


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize(
    "crash_point", ["rotation-tmp-created", "after-rotation-replace"]
)
def test_crash_points_inside_snapshot_rotation(
    tmp_path, policy, kernels_mode, crash_point
):
    """A reset *inside* the snapshot/rotation sequence must recover
    bit-identically.

    ``_write_snapshot`` renames the snapshot into place and then rotates
    the journal (write ``journal.log.tmp``, ``os.replace`` it over the
    old file).  A fault-injected connection reset -- or a kill -- can
    land between any two of those steps.  Two windows beyond the
    already-tested snapshot-without-rotation one:

    * ``rotation-tmp-created``: the fresh journal exists only as the
      stray ``.tmp`` file; the full old journal is still in place.
      Replay must skip the snapshotted prefix and ignore the stray.
    * ``after-rotation-replace``: the rotation completed but the process
      died before doing anything else; the journal is empty with
      ``start_seq`` = snapshot seq.

    In both, recovery must also leave a journal that *continues*
    correctly: appending post-recovery batches and recovering again
    stays bit-identical.
    """
    from repro.service.journal import _FILE_HEADER, _MAGIC, _VERSION

    batches = _make_batches(seed=9, n_batches=10)
    pre_crash = batches[:6]
    journal_path = str(tmp_path / "journal.log")
    snapshot_path = str(tmp_path / "snapshot.bin")
    registry = SketchRegistry(n_shards=2)
    journal = IngestJournal(journal_path)
    for name, config in _metrics(policy):
        journal.append_create(
            name, config["kind"], config["epsilon"],
            config.get("n"), config["policy"],
        )
        registry.create(name, **config)
    for name, values in pre_crash:
        journal.append_ingest(name, values)
        registry.ingest(name, values)
    write_snapshot(snapshot_path, registry, seq=journal.seq)
    if crash_point == "rotation-tmp-created":
        # rotate() died after writing the tmp header, before os.replace
        with open(journal_path + ".tmp", "wb") as fh:
            fh.write(_FILE_HEADER.pack(_MAGIC, _VERSION, journal.seq))
        journal.close()
    else:
        journal.rotate(start_seq=journal.seq)
        journal.close()

    recovered, replayed = _recover(journal_path, snapshot_path)
    assert replayed == 0  # every surviving record is inside the snapshot
    assert_bit_identical(recovered, _reference(policy, pre_crash))

    # the recovered journal must keep working: append the remaining
    # batches the way a restarted server would, then recover once more
    journal2 = IngestJournal(journal_path)
    assert journal2.seq == 2 + len(pre_crash)
    for name, values in batches[6:]:
        journal2.append_ingest(name, values)
        recovered.ingest(name, values)
    journal2.close()
    recovered2, replayed2 = _recover(journal_path, snapshot_path)
    assert replayed2 == len(batches) - len(pre_crash)
    assert_bit_identical(recovered2, _reference(policy, batches))


@pytest.mark.parametrize("policy", POLICIES)
def test_crash_between_snapshot_and_rotation(tmp_path, policy, kernels_mode):
    """A snapshot that lands without its journal rotation must not double
    apply: replay skips records with seq <= snapshot seq."""
    batches = _make_batches(seed=5, n_batches=10)
    journal_path = str(tmp_path / "journal.log")
    snapshot_path = str(tmp_path / "snapshot.bin")
    registry = SketchRegistry(n_shards=2)
    journal = IngestJournal(journal_path)
    for name, config in _metrics(policy):
        journal.append_create(
            name, config["kind"], config["epsilon"],
            config.get("n"), config["policy"],
        )
        registry.create(name, **config)
    for i, (name, values) in enumerate(batches):
        journal.append_ingest(name, values)
        registry.ingest(name, values)
        if i == 5:
            # crash window: snapshot renamed into place, rotation never ran
            write_snapshot(snapshot_path, registry, seq=journal.seq)
    journal.close()

    recovered, _ = _recover(journal_path, snapshot_path)
    assert_bit_identical(recovered, _reference(policy, batches))
