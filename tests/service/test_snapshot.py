"""Snapshot tests: exact state capture, atomicity, corruption detection."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.service.registry import SketchRegistry
from repro.service.snapshot import read_snapshot, write_snapshot

PHIS = [0.01, 0.25, 0.5, 0.75, 0.99]


@pytest.fixture
def populated():
    """A registry with fixed + adaptive metrics over real data."""
    registry = SketchRegistry(n_shards=3)
    rng = np.random.default_rng(7)
    registry.create("api/latency", kind="adaptive", epsilon=0.01)
    registry.create(
        "db/rows", kind="fixed", epsilon=0.02, n=50_000, policy="new"
    )
    registry.create(
        "api/errors", kind="adaptive", epsilon=0.05,
        policy="munro-paterson",
    )
    for _ in range(6):
        registry.ingest("api/latency", rng.normal(size=2_000))
        registry.ingest("db/rows", rng.uniform(size=3_000))
        registry.ingest("api/errors", rng.exponential(size=500))
    return registry


def snapshot_roundtrip(registry, tmp_path, seq=17):
    path = str(tmp_path / "snapshot.bin")
    write_snapshot(path, registry, seq=seq)
    restored = SketchRegistry(n_shards=3)
    assert read_snapshot(path, restored) == seq
    return restored


class TestRoundtrip:
    def test_answers_bit_identical(self, populated, tmp_path):
        restored = snapshot_roundtrip(populated, tmp_path)
        assert restored.names() == populated.names()
        for name in populated.names():
            v0, b0, n0 = populated.quantiles(name, PHIS)
            v1, b1, n1 = restored.quantiles(name, PHIS)
            assert v0 == v1
            assert b0 == b1
            assert n0 == n1

    def test_behaviour_under_further_ingest_identical(
        self, populated, tmp_path
    ):
        restored = snapshot_roundtrip(populated, tmp_path)
        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        for _ in range(4):
            populated.ingest("api/latency", rng_a.normal(size=1_500))
            restored.ingest("api/latency", rng_b.normal(size=1_500))
        assert populated.quantiles("api/latency", PHIS) == \
            restored.quantiles("api/latency", PHIS)

    def test_config_survives(self, populated, tmp_path):
        restored = snapshot_roundtrip(populated, tmp_path)
        for name in populated.names():
            assert restored.get(name).config_tuple() == \
                populated.get(name).config_tuple()
            assert restored.get(name).shard == populated.get(name).shard

    def test_serialized_payload_identical(self, populated, tmp_path):
        restored = snapshot_roundtrip(populated, tmp_path)
        assert restored.fetch_serialized("db/rows") == \
            populated.fetch_serialized("db/rows")

    def test_empty_registry(self, tmp_path):
        registry = SketchRegistry(n_shards=2)
        restored = snapshot_roundtrip(registry, tmp_path, seq=0)
        assert len(restored) == 0


class TestSafety:
    def test_refuses_pending_batches(self, populated, tmp_path):
        populated.enqueue("api/latency", np.array([1.0]))
        with pytest.raises(StorageError, match="unapplied"):
            write_snapshot(str(tmp_path / "s.bin"), populated, seq=1)
        populated.apply_all()
        write_snapshot(str(tmp_path / "s.bin"), populated, seq=1)

    def test_crc_rejects_corruption(self, populated, tmp_path):
        path = str(tmp_path / "s.bin")
        write_snapshot(path, populated, seq=1)
        with open(path, "r+b") as fh:
            fh.seek(os.path.getsize(path) // 2)
            byte = fh.read(1)
            fh.seek(-1, os.SEEK_CUR)
            fh.write(bytes([byte[0] ^ 0x01]))
        with pytest.raises(StorageError, match="CRC"):
            read_snapshot(path, SketchRegistry(n_shards=3))

    def test_rejects_wrong_file(self, tmp_path):
        path = str(tmp_path / "s.bin")
        with open(path, "wb") as fh:
            fh.write(b"not a snapshot at all, sorry" * 4)
        with pytest.raises(StorageError):
            read_snapshot(path, SketchRegistry())

    def test_no_tmp_file_left_behind(self, populated, tmp_path):
        path = str(tmp_path / "s.bin")
        write_snapshot(path, populated, seq=1)
        assert os.listdir(tmp_path) == ["s.bin"]

    def test_restore_into_different_shard_count(self, populated, tmp_path):
        """Shards are batching domains only; answers must not depend on
        the shard count chosen at restore time."""
        path = str(tmp_path / "s.bin")
        write_snapshot(path, populated, seq=5)
        restored = SketchRegistry(n_shards=7)
        read_snapshot(path, restored)
        for name in populated.names():
            assert restored.quantiles(name, PHIS) == \
                populated.quantiles(name, PHIS)
