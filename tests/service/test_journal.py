"""Journal write/read/truncate tests: the write-ahead half of recovery."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.service.journal import (
    CREATE_RECORD,
    INGEST_RECORD,
    RESTORE_RECORD,
    IngestJournal,
    read_journal,
)


@pytest.fixture
def path(tmp_path):
    return str(tmp_path / "journal.log")


def write_sample(path: str, *, fsync: bool = False) -> IngestJournal:
    j = IngestJournal(path, fsync=fsync)
    j.append_create("api/latency", "adaptive", 0.01, None, "new")
    j.append_ingest("api/latency", np.arange(100.0))
    j.append_create("db/rows", "fixed", 0.001, 10**6, "munro-paterson")
    j.append_ingest("db/rows", np.array([3.5, -1.0, 7.25]))
    return j


class TestRoundtrip:
    def test_records_survive_bitwise(self, path):
        write_sample(path).close()
        scan = read_journal(path)
        assert not scan.damaged
        assert [r.seq for r in scan.records] == [1, 2, 3, 4]
        assert [r.type for r in scan.records] == [
            CREATE_RECORD, INGEST_RECORD, CREATE_RECORD, INGEST_RECORD,
        ]
        create = scan.records[2]
        assert (create.name, create.kind, create.epsilon, create.n,
                create.policy) == ("db/rows", "fixed", 0.001, 10**6,
                                   "munro-paterson")
        np.testing.assert_array_equal(
            scan.records[3].values, [3.5, -1.0, 7.25]
        )
        np.testing.assert_array_equal(
            scan.records[1].values, np.arange(100.0)
        )

    def test_empty_journal(self, path):
        IngestJournal(path).close()
        scan = read_journal(path)
        assert scan.records == []
        assert not scan.damaged

    def test_start_seq_round_trips(self, path):
        IngestJournal(path, start_seq=41).append_ingest(
            "m", np.array([1.0])
        )
        scan = read_journal(path)
        assert scan.start_seq == 41
        assert scan.records[0].seq == 42

    def test_reopen_resumes_sequence(self, path):
        write_sample(path).close()
        j = IngestJournal(path)
        assert j.seq == 4
        assert j.append_ingest("api/latency", np.array([1.0])) == 5
        j.close()
        assert len(read_journal(path).records) == 5


class TestTornTail:
    def test_every_truncation_point_keeps_valid_prefix(self, path):
        from repro.service.journal import _FILE_HEADER

        write_sample(path).close()
        full = read_journal(path)
        with open(path, "rb") as fh:
            raw = fh.read()
        ends = _record_ends(full, raw)
        clean_cuts = set(ends) | {_FILE_HEADER.size}
        # cut at every byte offset past the file header: the scan must
        # never raise and must recover exactly the records whose bytes
        # fully survive
        torn = str(path) + ".torn"
        for cut in range(_FILE_HEADER.size, len(raw)):
            with open(torn, "wb") as fh:
                fh.write(raw[:cut])
            scan = read_journal(torn)
            assert scan.damaged == (cut not in clean_cuts)
            for got, want in zip(scan.records, full.records):
                assert got.seq == want.seq
                assert got.name == want.name
            assert len(scan.records) == sum(1 for e in ends if e <= cut)

    def test_reopen_truncates_torn_tail(self, path):
        write_sample(path).close()
        with open(path, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            fh.truncate(fh.tell() - 5)  # tear the last record
        j = IngestJournal(path)
        assert j.seq == 3  # record 4 was torn away
        j.append_ingest("api/latency", np.array([9.0]))
        j.close()
        scan = read_journal(path)
        assert not scan.damaged
        assert [r.seq for r in scan.records] == [1, 2, 3, 4]

    def test_flipped_bit_stops_scan(self, path):
        write_sample(path).close()
        with open(path, "r+b") as fh:
            fh.seek(40)
            byte = fh.read(1)
            fh.seek(40)
            fh.write(bytes([byte[0] ^ 0xFF]))
        scan = read_journal(path)
        assert scan.damaged
        assert len(scan.records) < 4


def _record_ends(scan, raw):
    """Byte offsets where each record of a full scan ends."""
    from repro.service.journal import _FILE_HEADER, _RECORD_HEADER

    pos = _FILE_HEADER.size
    ends = []
    for _ in scan.records:
        (_, body_len) = _RECORD_HEADER.unpack(
            raw[pos : pos + _RECORD_HEADER.size]
        )
        pos += _RECORD_HEADER.size + body_len
        ends.append(pos)
    return ends


class TestRotation:
    def test_rotate_empties_and_preserves_seq(self, path):
        j = write_sample(path)
        j.rotate(start_seq=4)
        assert j.seq == 4
        assert j.append_ingest("api/latency", np.array([1.0])) == 5
        j.close()
        scan = read_journal(path)
        assert scan.start_seq == 4
        assert [r.seq for r in scan.records] == [5]


class TestRestoreRecord:
    """Type-3 records: the full-state installs a re-sync writes."""

    def test_restore_round_trips_bitwise(self, path):
        payload = b"KLLSKT01" + bytes(range(200))
        j = write_sample(path)
        seq = j.append_restore(
            "db/rows", "fixed", 0.001, 10**6, "munro-paterson",
            "kll", payload, token=0xABCD,
        )
        j.close()
        assert seq == 5
        scan = read_journal(path)
        assert not scan.damaged
        rec = scan.records[-1]
        assert rec.type == RESTORE_RECORD
        assert (rec.seq, rec.name, rec.token) == (5, "db/rows", 0xABCD)
        assert (rec.kind, rec.epsilon, rec.n, rec.policy, rec.engine) == (
            "fixed", 0.001, 10**6, "munro-paterson", "kll"
        )
        assert rec.payload == payload

    def test_restore_none_n_encodes_as_zero(self, path):
        j = IngestJournal(path)
        j.append_restore("m", "fixed", 0.01, None, "new", "frugal", b"\x01")
        j.close()
        rec = read_journal(path).records[0]
        assert rec.n is None
        assert rec.engine == "frugal"

    def test_reopen_resumes_sequence_past_restore(self, path):
        j = IngestJournal(path)
        j.append_restore("m", "fixed", 0.01, None, "new", "paper", b"MRL")
        j.close()
        j = IngestJournal(path)
        assert j.seq == 1
        assert j.append_ingest("m", np.array([1.0])) == 2
        j.close()
        assert [r.type for r in read_journal(path).records] == [
            RESTORE_RECORD, INGEST_RECORD,
        ]

    def test_torn_restore_tail_is_dropped_cleanly(self, path):
        j = write_sample(path)
        j.append_restore("m", "fixed", 0.01, None, "new", "paper", b"x" * 64)
        j.close()
        with open(path, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            fh.truncate(fh.tell() - 7)  # tear inside the restore payload
        scan = read_journal(path)
        assert scan.damaged
        assert [r.seq for r in scan.records] == [1, 2, 3, 4]


class TestBadFiles:
    def test_not_a_journal(self, path):
        with open(path, "wb") as fh:
            fh.write(b"definitely not a journal file")
        with pytest.raises(StorageError, match="magic"):
            read_journal(path)

    def test_too_short(self, path):
        with open(path, "wb") as fh:
            fh.write(b"abc")
        with pytest.raises(StorageError, match="short"):
            read_journal(path)

    def test_fsync_mode_writes_identical_bytes(self, tmp_path):
        p1, p2 = str(tmp_path / "a.log"), str(tmp_path / "b.log")
        write_sample(p1, fsync=False).close()
        write_sample(p2, fsync=True).close()
        with open(p1, "rb") as f1, open(p2, "rb") as f2:
            assert f1.read() == f2.read()
