"""WATCH rules over the wire: certified firing, durability, windows.

Drives the server with an *injected* clock (``QuantileService(clock=)``)
and the background watcher disabled (``watch_interval_s=None``), so
every evaluation happens deterministically through ``ALERTS`` with the
evaluate-now flag.  The claims:

* a rule over a certified engine fires ``definite`` only when the rank
  bound *proves* the crossing, ``possible`` when only the estimate
  crosses, ``ok`` otherwise;
* frugal metrics (bound ``inf``) can only ever fire ``possible``;
* rules and windowed rings survive a non-graceful stop (the in-process
  SIGKILL stand-in) bit-identically via the journal; alert counters
  survive via the snapshot.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.service import QuantileClient, ServerThread

T0 = 1_000_000.0


class FakeClock:
    def __init__(self, t: float = T0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def server(tmp_path, clock):
    with ServerThread(
        data_dir=str(tmp_path / "data"), n_shards=2,
        snapshot_interval_s=None, clock=clock, watch_interval_s=None,
    ) as srv:
        yield srv


def client_for(server):
    return QuantileClient("127.0.0.1", server.port)


def rules_by_id(client, *, evaluate=True):
    return {r["rule_id"]: r for r in client.alerts(evaluate=evaluate)}


class TestFiring:
    def test_definite_when_bound_proves_crossing(self, server):
        with client_for(server) as client:
            client.create("lat", kind="adaptive", eps=0.01)
            client.ingest("lat", np.arange(10_000.0))
            assert client.watch_add("hot", "lat", 0.99, 500.0)
            rule = rules_by_id(client)["hot"]
            # p99 ~ 9900 >> 500: the certified bound proves the crossing
            assert rule["state"] == "definite"
            assert rule["definite_total"] == 1
            assert rule["last_value"] > 500.0

    def test_ok_when_threshold_not_crossed(self, server):
        with client_for(server) as client:
            client.create("lat", kind="adaptive", eps=0.01)
            client.ingest("lat", np.arange(10_000.0))
            client.watch_add("cold", "lat", 0.5, 1e9)
            rule = rules_by_id(client)["cold"]
            assert rule["state"] == "ok"
            assert rule["definite_total"] == 0
            assert rule["possible_total"] == 0

    def test_possible_when_only_estimate_crosses(self, server):
        with client_for(server) as client:
            client.create("lat", kind="adaptive", eps=0.05)
            client.ingest("lat", np.arange(10_000.0))
            # threshold just under the median: the estimated rank crosses
            # but the certified window still straddles phi*n, so the
            # crossing is unproven
            client.watch_add("edge", "lat", 0.5, 4920.0)
            rule = rules_by_id(client)["edge"]
            assert rule["state"] == "possible"
            assert rule["possible_total"] == 1

    def test_frugal_only_fires_possible(self, server):
        with client_for(server) as client:
            client.create("fr", kind="fixed", engine="frugal", eps=0.01)
            client.ingest("fr", np.arange(10_000.0))
            client.watch_add("f", "fr", 0.9, 10.0)
            rule = rules_by_id(client)["f"]
            assert rule["state"] == "possible"  # bound inf: never definite
            assert rule["definite_total"] == 0

    def test_less_than_operator(self, server):
        with client_for(server) as client:
            client.create("lat", kind="adaptive", eps=0.01)
            client.ingest("lat", np.arange(10_000.0))
            client.watch_add("low", "lat", 0.5, 9_999.0, op="<")
            assert rules_by_id(client)["low"]["state"] == "definite"
            client.watch_add("low2", "lat", 0.5, 1.0, op="<")
            assert rules_by_id(client)["low2"]["state"] == "ok"

    def test_no_metric_and_no_data_states(self, server):
        with client_for(server) as client:
            client.watch_add("ghost", "nope", 0.5, 1.0)
            assert rules_by_id(client)["ghost"]["state"] == "no_metric"
            client.create("empty", kind="adaptive")
            client.watch_add("dry", "empty", 0.5, 1.0)
            assert rules_by_id(client)["dry"]["state"] == "no_data"

    def test_duplicate_add_and_remove(self, server):
        with client_for(server) as client:
            client.create("m", kind="adaptive")
            assert client.watch_add("r", "m", 0.5, 1.0)
            assert not client.watch_add("r", "m", 0.5, 1.0)
            assert client.watch_remove("r")
            assert not client.watch_remove("r")
            assert client.alerts() == []


class TestWindowedRules:
    def test_rule_over_sliding_window_follows_event_time(
        self, server, clock
    ):
        with client_for(server) as client:
            client.create("w", kind="fixed", eps=0.01, window=60.0,
                          slide=10.0)
            client.ingest("w", np.full(1000, 100.0))
            client.watch_add("spike", "w", 0.5, 50.0)
            assert rules_by_id(client)["spike"]["state"] == "definite"
            # advance event time past the window: the spike expires once
            # newer data lands, and the rule calms down
            clock.t = T0 + 600.0
            client.ingest("w", np.full(1000, 1.0))
            assert rules_by_id(client)["spike"]["state"] == "ok"

    def test_windowed_query_reflects_only_live_buckets(self, server, clock):
        with client_for(server) as client:
            client.create("w", kind="fixed", eps=0.01, window=60.0)
            client.ingest("w", np.full(500, 7.0))
            values, _, n = client.query("w", [0.5])
            assert n == 500 and values[0] == pytest.approx(7.0)
            clock.t = T0 + 600.0
            client.ingest("w", np.full(200, 3.0))
            values, _, n = client.query("w", [0.5])
            assert n == 200 and values[0] == pytest.approx(3.0)

    def test_window_and_decay_mutually_exclusive_on_create(self, server):
        with client_for(server) as client:
            with pytest.raises(ConfigurationError, match="mutually"):
                client.create("bad", window=60.0, decay=60.0)


class TestDurability:
    def test_rules_and_ring_survive_sigkill(self, tmp_path, clock):
        data_dir = str(tmp_path / "data")
        srv = ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
            clock=clock, watch_interval_s=None,
        ).start()
        try:
            with client_for(srv) as client:
                client.create("w", kind="fixed", eps=0.01, window=60.0,
                              slide=10.0)
                client.ingest("w", np.arange(2000.0))
                client.watch_add("hot", "w", 0.9, 100.0)
                client.watch_add("gone", "w", 0.1, 1e9)
                client.watch_remove("gone")
                before_ring = client.fetch_raw("w")
                before_rules = {
                    r["rule_id"]: (r["metric"], r["phi"], r["op"],
                                   r["threshold"])
                    for r in client.alerts()
                }
        finally:
            srv.stop(graceful=False)  # no final snapshot: journal only

        srv2 = ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
            clock=clock, watch_interval_s=None,
        ).start()
        try:
            with client_for(srv2) as client:
                assert client.fetch_raw("w") == before_ring
                after_rules = {
                    r["rule_id"]: (r["metric"], r["phi"], r["op"],
                                   r["threshold"])
                    for r in client.alerts()
                }
                assert after_rules == before_rules
                assert "gone" not in after_rules
                # the recovered ring still answers and the rule refires
                rule = rules_by_id(client)["hot"]
                assert rule["state"] == "definite"
        finally:
            srv2.stop(graceful=False)

    def test_alert_counters_survive_via_snapshot(self, tmp_path, clock):
        data_dir = str(tmp_path / "data")
        srv = ServerThread(
            data_dir=data_dir, n_shards=1, snapshot_interval_s=None,
            clock=clock, watch_interval_s=None,
        ).start()
        try:
            with client_for(srv) as client:
                client.create("m", kind="adaptive", eps=0.01)
                client.ingest("m", np.arange(1000.0))
                client.watch_add("r", "m", 0.9, 10.0)
                client.alerts(evaluate=True)
                client.alerts(evaluate=True)
                before = rules_by_id(client, evaluate=False)["r"]
                assert before["definite_total"] == 2
        finally:
            srv.stop(graceful=True)  # graceful stop writes the snapshot

        srv2 = ServerThread(
            data_dir=data_dir, n_shards=1, snapshot_interval_s=None,
            clock=clock, watch_interval_s=None,
        ).start()
        try:
            with client_for(srv2) as client:
                after = rules_by_id(client, evaluate=False)["r"]
                assert after["definite_total"] == 2
                # last_state is transient (re-derived on evaluation);
                # only the counters are persisted
                assert after["state"] == "pending"
                refired = rules_by_id(client, evaluate=True)["r"]
                assert refired["state"] == before["state"] == "definite"
                assert refired["definite_total"] == 3
        finally:
            srv2.stop(graceful=False)


class TestStatsAndReplication:
    def test_stats_watch_section(self, server):
        with client_for(server) as client:
            client.create("m", kind="adaptive")
            client.ingest("m", np.arange(1000.0))
            client.watch_add("r", "m", 0.9, 10.0)
            client.alerts(evaluate=True)
            watch = client.stats()["watch"]
            assert watch["rules"] == 1
            assert watch["evaluations"] >= 1
            assert watch["alerts_definite_total"] == 1

    def test_background_watcher_fires_on_its_own(self, tmp_path, clock):
        import time as _time

        with ServerThread(
            data_dir=str(tmp_path / "data"), n_shards=1,
            snapshot_interval_s=None, clock=clock,
            watch_interval_s=0.05,
        ) as srv:
            with client_for(srv) as client:
                client.create("m", kind="adaptive")
                client.ingest("m", np.arange(1000.0))
                client.watch_add("r", "m", 0.9, 10.0)
                deadline = _time.monotonic() + 5.0
                while _time.monotonic() < deadline:
                    watch = client.stats()["watch"]
                    if watch["alerts_definite_total"] >= 1:
                        break
                    _time.sleep(0.05)
                assert watch["alerts_definite_total"] >= 1
