"""The fault-injection harness and the resilience it exercises.

Three layers of coverage:

* the harness itself -- schedules are deterministic, the transparent
  proxy is invisible, each fault kind does what it says;
* the client -- retries connection faults with backoff, maps stalls to
  :class:`ServiceTimeoutError`, refuses unsafe retries with
  ``idempotency=False``;
* the server -- idempotency tokens dedup retried mutations exactly
  once (the lost-ack scenario, end to end through the proxy),
  per-connection backpressure flushes queued batches, graceful drain
  applies everything and leaves a recoverable image.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.service import (
    ChaosProxy,
    FaultEvent,
    FaultSchedule,
    QuantileClient,
    ServerThread,
    ServiceConnectionError,
    ServiceTimeoutError,
)
from repro.service.journal import INGEST_RECORD, read_journal
from repro.service.registry import DedupWindow


@pytest.fixture
def server(tmp_path):
    with ServerThread(
        data_dir=str(tmp_path / "data"), n_shards=2,
        snapshot_interval_s=None,
    ) as srv:
        yield srv


def resilient_client(port, **kwargs):
    kwargs.setdefault("timeout", 10.0)
    kwargs.setdefault("max_retries", 6)
    kwargs.setdefault("backoff_base", 0.005)
    kwargs.setdefault("retry_seed", 7)
    return QuantileClient("127.0.0.1", port, **kwargs)


# -- the harness itself ----------------------------------------------------


class TestFaultSchedule:
    def test_event_validation(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultEvent("explode", "c2s", after_bytes=0)
        with pytest.raises(ConfigurationError, match="direction"):
            FaultEvent("reset", "upstream", after_bytes=0)
        with pytest.raises(ConfigurationError, match="after_bytes"):
            FaultEvent("reset", "c2s", after_bytes=-1)
        with pytest.raises(ConfigurationError, match="delay_s"):
            FaultEvent("delay", "c2s", after_bytes=0, delay_s=-0.1)

    def test_explicit_plans_then_transparent(self):
        ev = FaultEvent("reset", "c2s", after_bytes=10)
        schedule = FaultSchedule([[ev], []])
        assert schedule.plan_for(0) == (ev,)
        assert schedule.plan_for(1) == ()
        assert schedule.plan_for(2) == ()  # beyond the list: transparent
        assert schedule.plan_for(10**6) == ()

    def test_seeded_schedule_is_deterministic(self):
        a = FaultSchedule.from_seed(42)
        b = FaultSchedule.from_seed(42)
        plans_a = [a.plan_for(i) for i in range(64)]
        plans_b = [b.plan_for(i) for i in range(64)]
        assert plans_a == plans_b
        # re-querying the same index is stable too
        assert a.plan_for(3) == a.plan_for(3)
        # a different seed diverges somewhere in 64 connections
        c = FaultSchedule.from_seed(43)
        assert plans_a != [c.plan_for(i) for i in range(64)]

    def test_seeded_schedule_injects_something(self):
        from repro.service.faults import FAULT_KINDS

        schedule = FaultSchedule.from_seed(0, fault_probability=0.5)
        events = [
            e for i in range(64) for e in schedule.plan_for(i)
        ]
        assert events  # probability 0.5 over 128 draws
        assert all(e.kind in FAULT_KINDS for e in events)

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultSchedule.from_seed(0, fault_probability=1.5)


class TestProxyTransparent:
    def test_passthrough_end_to_end(self, server):
        with ChaosProxy("127.0.0.1", server.port) as proxy:
            with resilient_client(proxy.port) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                client.ingest("t/m", np.arange(1000.0))
                values, bound, n = client.query("t/m", [0.5])
            assert n == 1000
            assert abs(values[0] - 500) <= max(bound, 20)
            assert client.retries_total == 0
            assert proxy.connections_accepted == 1
            assert proxy.faults_injected == []

    def test_partial_fault_only_slows_things(self, server):
        # chop every server->client byte: many partial reads, same answer
        schedule = FaultSchedule(
            [[FaultEvent("partial", "s2c", after_bytes=0, chop=1)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            with resilient_client(proxy.port) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                client.ingest("t/m", np.arange(100.0))
                _, _, n = client.query("t/m", [0.5])
            assert n == 100
            assert client.retries_total == 0
            assert [e.kind for _, e in proxy.faults_injected] == ["partial"]

    def test_delay_fault_adds_latency(self, server):
        schedule = FaultSchedule(
            [[FaultEvent("delay", "s2c", after_bytes=0, delay_s=0.2)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            with resilient_client(proxy.port) as client:
                start = time.monotonic()
                client.create("t/m", kind="adaptive")
                elapsed = time.monotonic() - start
            assert elapsed >= 0.2
            assert client.retries_total == 0


# -- client resilience -----------------------------------------------------


class TestClientRetry:
    def test_lost_ack_retries_and_dedups(self, server, tmp_path):
        """The canonical scenario: INGEST applied, ack destroyed.

        Connection 0 resets the server->client direction before the
        first ack byte, i.e. *after* the server journaled and applied
        the batch.  The client must reconnect, resend the same token,
        and the dedup window must replay the ack without applying the
        batch a second time.
        """
        schedule = FaultSchedule(
            [[FaultEvent("reset", "s2c", after_bytes=0)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            # metric created out of band so the faulted request is INGEST
            with QuantileClient("127.0.0.1", server.port) as direct:
                direct.create("t/m", kind="adaptive", epsilon=0.02)
            with resilient_client(proxy.port) as client:
                seq = client.ingest("t/m", np.arange(1000.0))
                assert seq >= 1
                assert client.retries_total >= 1
                _, _, n = client.query("t/m", [0.5])
            assert n == 1000  # exactly once, not 2000
            assert [e.kind for _, e in proxy.faults_injected] == ["reset"]
        # the journal holds the batch exactly once
        scan = read_journal(str(tmp_path / "data" / "journal.log"))
        ingests = [r for r in scan.records if r.type == INGEST_RECORD]
        assert len(ingests) == 1
        assert ingests[0].token != 0
        # and the server counted the dedup hit
        with QuantileClient("127.0.0.1", server.port) as direct:
            stats = direct.stats()
        assert stats["resilience"]["dedup_hits"] >= 1
        assert stats["resilience"]["dedup_window_tokens"] >= 1

    def test_request_torn_mid_send_retries(self, server):
        # kill the client->server direction 5 bytes into the stream: the
        # server never sees a full frame, nothing is applied, the retry
        # is the only application
        schedule = FaultSchedule(
            [[FaultEvent("reset", "c2s", after_bytes=5)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            with resilient_client(proxy.port) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                client.ingest("t/m", np.arange(500.0))
                _, _, n = client.query("t/m", [0.5])
            assert n == 500
            assert client.retries_total >= 1

    def test_truncated_response_is_a_connection_fault(self, server):
        # close (FIN, not RST) mid-ack: recv_frame's mid-frame close is
        # mapped to ServiceConnectionError internally and retried
        schedule = FaultSchedule(
            [[FaultEvent("truncate", "s2c", after_bytes=2)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            with resilient_client(proxy.port) as client:
                assert client.create("t/m", kind="adaptive") in (True, False)
                assert client.retries_total >= 1

    def test_create_retry_replays_created_true(self, server):
        """A CREATE whose ack is lost must report created=True on retry.

        Without the dedup window the retried CREATE would find the
        metric existing and report created=False -- a lie the journal
        token makes unnecessary.
        """
        schedule = FaultSchedule(
            [[FaultEvent("reset", "s2c", after_bytes=0)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            with resilient_client(proxy.port) as client:
                assert client.create("t/m", kind="adaptive") is True
                assert client.retries_total >= 1
                assert len(client.list_metrics()) == 1

    def test_retry_budget_exhaustion_raises_typed_error(self, server):
        # every connection resets immediately: retries can never succeed
        schedule = FaultSchedule(
            [[FaultEvent("reset", "s2c", after_bytes=0)]] * 64
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            client = resilient_client(proxy.port, max_retries=2)
            with pytest.raises(ServiceConnectionError):
                client.create("t/m", kind="adaptive")
            assert client.retries_total >= 2
            client._teardown()

    def test_stall_maps_to_timeout_error(self, server):
        schedule = FaultSchedule(
            [[FaultEvent("stall", "s2c", after_bytes=0, delay_s=30.0)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            client = resilient_client(proxy.port, timeout=0.3)
            start = time.monotonic()
            with pytest.raises(ServiceTimeoutError):
                client.create("t/m", kind="adaptive")
            assert time.monotonic() - start < 5.0
            client._teardown()

    def test_timeout_is_per_request_not_connect_only(self):
        """A server that accepts but never answers must trip the deadline."""
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(8)
        accepted = []

        def _accept_forever():
            try:
                while True:
                    conn, _ = listener.accept()
                    accepted.append(conn)  # keep open, never respond
            except OSError:
                pass

        thread = threading.Thread(target=_accept_forever, daemon=True)
        thread.start()
        try:
            client = QuantileClient(
                "127.0.0.1", listener.getsockname()[1],
                timeout=0.3, max_retries=0,
            )
            with pytest.raises(ServiceTimeoutError):
                client.list_metrics()
            client._teardown()
        finally:
            listener.close()
            for conn in accepted:
                conn.close()
            thread.join(timeout=2.0)

    def test_connection_refused_is_typed(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nobody listens here any more
        with pytest.raises(ServiceConnectionError):
            QuantileClient("127.0.0.1", port, timeout=0.5)

    def test_idempotency_off_refuses_unsafe_retry(self, server):
        schedule = FaultSchedule(
            [[FaultEvent("reset", "s2c", after_bytes=0)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            with QuantileClient("127.0.0.1", server.port) as direct:
                direct.create("t/m", kind="adaptive")
            client = resilient_client(proxy.port, idempotency=False)
            # a mutating request without a token must NOT be blindly
            # resent -- the server may already have applied it
            with pytest.raises(ServiceConnectionError):
                client.ingest("t/m", np.arange(100.0))
            client._teardown()
        with QuantileClient("127.0.0.1", server.port) as direct:
            _, _, n = direct.query("t/m", [0.5])
        assert n in (0, 100)  # whatever happened, it happened at most once

    def test_idempotency_off_still_retries_reads(self, server):
        schedule = FaultSchedule(
            [[FaultEvent("reset", "s2c", after_bytes=0)]]
        )
        with QuantileClient("127.0.0.1", server.port) as direct:
            direct.create("t/m", kind="adaptive")
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            with resilient_client(proxy.port, idempotency=False) as client:
                # LIST is not mutating: a blind resend is always safe
                assert client.list_metrics()[0]["name"] == "t/m"
                assert client.retries_total >= 1

    def test_pipelined_window_resent_after_reset(self, server):
        schedule = FaultSchedule(
            [[FaultEvent("reset", "s2c", after_bytes=0)]]
        )
        with ChaosProxy(
            "127.0.0.1", server.port, schedule=schedule
        ) as proxy:
            with QuantileClient("127.0.0.1", server.port) as direct:
                direct.create("t/m", kind="adaptive", epsilon=0.02)
            with resilient_client(proxy.port) as client:
                for i in range(8):
                    client.ingest_nowait(
                        "t/m", np.arange(i * 100.0, (i + 1) * 100.0)
                    )
                client.flush()
                assert client.outstanding == 0
                _, _, n = client.query("t/m", [0.5])
            assert n == 800  # every batch exactly once


class TestDedupWindow:
    def test_record_and_replay(self):
        window = DedupWindow(capacity=4)
        assert window.get(1) is None
        window.record(1, {"seq": 10})
        assert window.get(1) == {"seq": 10}
        assert window.hits == 1
        assert 1 in window

    def test_token_zero_is_never_recorded(self):
        window = DedupWindow()
        window.record(0, {"seq": 1})
        assert len(window) == 0
        assert window.get(0) is None

    def test_fifo_eviction(self):
        window = DedupWindow(capacity=2)
        window.record(1, "a")
        window.record(2, "b")
        window.record(3, "c")
        assert len(window) == 2
        assert window.get(1) is None  # oldest evicted
        assert window.get(2) == "b"
        assert window.get(3) == "c"


# -- server resilience -----------------------------------------------------


class TestServerResilience:
    def test_backpressure_flushes_queued_batches(self, tmp_path):
        with ServerThread(
            data_dir=str(tmp_path / "data"), n_shards=2,
            snapshot_interval_s=None,
            max_inflight_bytes=4096,  # a few hundred values
        ) as srv:
            with resilient_client(srv.port) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                for i in range(64):
                    client.ingest("t/m", np.arange(256.0))
                stats = client.stats()
            assert stats["resilience"]["backpressure_flushes"] >= 1

    def test_graceful_stop_drains_and_recovers(self, tmp_path):
        data_dir = str(tmp_path / "data")
        with ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
        ) as srv:
            with resilient_client(srv.port) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                for i in range(8):
                    client.ingest_nowait(
                        "t/m", np.arange(i * 100.0, (i + 1) * 100.0)
                    )
                client.flush()
            srv.stop(graceful=True)
            with pytest.raises(ServiceConnectionError):
                # listener is gone after the drain
                QuantileClient(
                    "127.0.0.1", srv.port, timeout=0.5, max_retries=0
                )
        # graceful stop wrote a final snapshot: restart answers identically
        with ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
        ) as srv2:
            assert srv2.service.metrics.recovered_records == 0  # all in snap
            with resilient_client(srv2.port) as client:
                _, _, n = client.query("t/m", [0.5])
            assert n == 800

    def test_graceful_stop_flushes_coalesced_window(self, tmp_path):
        """Regression: a long ``batch_window_s`` means acked batches sit
        queued-but-unapplied; a graceful stop racing that window must
        still apply every acknowledged batch before the final snapshot
        -- acked count == applied count after restart, with nothing
        left for journal replay."""
        data_dir = str(tmp_path / "data")
        n_batches, batch = 24, 256
        with ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
            batch_window_s=5.0,  # flusher will NOT fire on its own
        ) as srv:
            with resilient_client(
                srv.port, send_coalesce_bytes=64 * 1024
            ) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                for i in range(n_batches):
                    client.ingest_nowait("t/m", np.full(batch, float(i)))
                client.flush()  # every batch ACKED (journaled + queued)
            # the stop races the 5 s window: the queue still holds the
            # coalesced burst, unapplied
            assert srv.service.registry.pending_batches() > 0
            srv.stop(graceful=True)
            # drain applied the queue before snapshotting
            assert srv.service.registry.pending_batches() == 0
        with ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
        ) as srv2:
            # all acked data is inside the snapshot, none replayed
            assert srv2.service.metrics.recovered_records == 0
            with resilient_client(srv2.port) as client:
                _, _, n = client.query("t/m", [0.5])
            assert n == n_batches * batch

    def test_retried_ingest_in_coalesced_batch_exactly_once_after_crash(
        self, tmp_path
    ):
        """A lost-ack retry that lands inside a *coalesced* chunk (same
        socket read as other pipelined frames) is journaled once,
        applied once, and stays applied-once through crash recovery."""
        import socket as socket_mod

        from repro.service import protocol
        from repro.service.protocol import Opcode, Request

        data_dir = str(tmp_path / "data")
        create = protocol.encode_request_framed(
            Request(
                opcode=Opcode.CREATE, name="t/m", token=1,
                kind="adaptive", epsilon=0.02, n=0, policy="new",
            )
        )
        retried = bytes(
            protocol.encode_ingest_framed("t/m", np.arange(200.0), token=9)
        )
        others = [
            bytes(
                protocol.encode_ingest_framed(
                    "t/m", np.full(100, float(i)), token=20 + i
                )
            )
            for i in range(4)
        ]
        # one chunk: original, two pipelined frames, the retry of the
        # original, two more -- the dup sits mid-burst, then a second
        # retry arrives across chunks after the acks
        blob = bytes(create) + retried + others[0] + others[1] + retried
        with ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
        ) as srv:
            sock = socket_mod.create_connection(
                ("127.0.0.1", srv.port), timeout=10.0
            )
            try:
                sock.sendall(blob)
                acks = []
                for opcode in [Opcode.CREATE] + [Opcode.INGEST] * 4:
                    header = b""
                    while len(header) < 4:
                        header += sock.recv(4 - len(header))
                    length = int.from_bytes(header, "little")
                    payload = b""
                    while len(payload) < length:
                        payload += sock.recv(length - len(payload))
                    acks.append(protocol.decode_response(opcode, payload))
                # dup inside the chunk acked identically to the original
                assert acks[1] == acks[4]
                sock.sendall(others[2] + others[3] + retried)
                for _ in range(3):
                    header = b""
                    while len(header) < 4:
                        header += sock.recv(4 - len(header))
                    length = int.from_bytes(header, "little")
                    payload = b""
                    while len(payload) < length:
                        payload += sock.recv(length - len(payload))
            finally:
                sock.close()
            srv.stop(graceful=False)  # crash: RAM dedup state gone
        # the journal holds the batch once, not three times
        scan = read_journal(f"{data_dir}/journal.log")
        ingests = [r for r in scan.records if r.type == INGEST_RECORD]
        assert sum(1 for r in ingests if r.token == 9) == 1
        with ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
        ) as srv2:
            # recovery re-armed the token: a post-restart retry dedups
            assert srv2.service.registry.dedup.get(9) is not None
            with resilient_client(srv2.port) as client:
                _, _, n = client.query("t/m", [0.5])
            assert n == 200 + 4 * 100

    def test_dedup_window_survives_crash(self, tmp_path):
        """Recovery re-records journaled tokens: a retry that arrives
        *after* a crash+restart is still deduplicated."""
        data_dir = str(tmp_path / "data")
        with ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
        ) as srv:
            with resilient_client(srv.port) as client:
                client.create("t/m", kind="adaptive", epsilon=0.02)
                client.ingest("t/m", np.arange(1000.0))
            srv.stop(graceful=False)  # crash: dedup RAM state gone
        scan = read_journal(f"{data_dir}/journal.log")
        token = next(
            r.token for r in scan.records if r.type == INGEST_RECORD
        )
        assert token != 0
        with ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
        ) as srv2:
            assert srv2.service.registry.dedup.get(token) is not None
            with resilient_client(srv2.port) as client:
                _, _, n = client.query("t/m", [0.5])
            assert n == 1000


class TestServeChaosFlag:
    def test_serve_chaos_wires_a_seeded_proxy(self, tmp_path):
        """`repro serve --chaos` fronts the listener with the proxy."""
        import os
        import pathlib
        import subprocess
        import sys

        repo_root = pathlib.Path(__file__).resolve().parents[2]
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--chaos", "--chaos-seed", "11",
                "--shards", "2", "--snapshot-interval", "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env={**os.environ, "PYTHONPATH": str(repo_root / "src")},
            cwd=str(repo_root),
        )
        try:
            line = proc.stdout.readline()
            assert "CHAOS seed=11" in line
        finally:
            proc.terminate()
            proc.wait(timeout=10)
