"""The chaos property: faults never corrupt, duplicate, or lose data.

Hypothesis draws a fault schedule (resets, truncation, delays, partial
reads -- at arbitrary byte offsets, in either direction, on the first
few connections) and the whole stack runs through it end to end: a real
:class:`ServerThread` with durability on, the :class:`ChaosProxy` in
front, and the resilient :class:`QuantileClient` retrying through the
carnage.  The property, per the PR's acceptance bar:

* every acknowledged ingest is applied **exactly once** -- the final
  element counts equal the sum of the batches, never more (no
  double-apply from a retry) and never less (no silent drop);
* after a subsequent *non-graceful* crash and restart, the recovered
  state is **byte-identical** (serialized summary bytes) to a fault-free
  :class:`SketchRegistry` fed the same batches in the same order;
* the client either succeeds or raises a typed service error -- with a
  schedule that goes transparent after the first few connections and a
  generous retry budget, it must in fact succeed.

Like the recovery property this leans on batched-apply bit-identity
(PR 2), so it runs across all three collapse policies with the fast
kernels on and off.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.service import (
    ChaosProxy,
    FaultEvent,
    FaultSchedule,
    QuantileClient,
    ServerThread,
)
from repro.service.registry import SketchRegistry

POLICIES = ["new", "munro-paterson", "alsabti-ranka-singh"]
PHIS = [0.05, 0.25, 0.5, 0.75, 0.95]
_RUN_COUNTER = itertools.count()

#: connections that may carry faults; everything after is transparent,
#: so a client with max_retries above this bound must converge
MAX_FAULTED_CONNECTIONS = 4


@pytest.fixture(params=[True, False], ids=["kernels-on", "kernels-off"])
def kernels_mode(request):
    previous = kernels.is_enabled()
    kernels.set_enabled(request.param)
    try:
        yield request.param
    finally:
        kernels.set_enabled(previous)


def _metrics(policy):
    return [
        ("svc/fixed", dict(kind="fixed", epsilon=0.03, n=20_000,
                           policy=policy)),
        ("svc/adaptive", dict(kind="adaptive", epsilon=0.03,
                              policy=policy)),
    ]


def _make_batches(seed, n_batches):
    rng = np.random.default_rng(seed)
    names = ["svc/fixed", "svc/adaptive"]
    return [
        (names[i % 2], rng.normal(size=int(rng.integers(50, 400))))
        for i in range(n_batches)
    ]


def _reference(policy, batches):
    """The fault-free run: same creates and batches, no transport at all."""
    registry = SketchRegistry(n_shards=2)
    for name, config in _metrics(policy):
        registry.create(name, **config)
    for name, values in batches:
        registry.ingest(name, values)
    return registry


def assert_state_bit_identical(registry, reference):
    registry.apply_all()
    reference.apply_all()
    assert registry.names() == reference.names()
    for name in reference.names():
        if name == "svc/fixed":
            # serialized summary bytes: positions, values and the
            # certified-bound inputs -- the strongest equality the
            # exchange format can express (fixed metrics only; adaptive
            # metrics don't serialise to it and are compared below)
            assert (
                registry.fetch_serialized(name)
                == reference.fetch_serialized(name)
            ), f"{name}: serialized summary diverged from fault-free run"
        v_reg, bound_reg, n_reg = registry.quantiles(name, PHIS)
        v_ref, bound_ref, n_ref = reference.quantiles(name, PHIS)
        assert v_reg == v_ref
        assert bound_reg == bound_ref
        assert n_reg == n_ref


# one fault event at a hypothesis-chosen offset/direction; stalls are
# excluded (they exercise deadlines, covered in test_faults) and delays
# stay small so examples run fast
_EVENTS = st.builds(
    FaultEvent,
    kind=st.sampled_from(["reset", "truncate", "delay", "partial"]),
    direction=st.sampled_from(["c2s", "s2c"]),
    after_bytes=st.integers(0, 3000),
    delay_s=st.floats(0.0, 0.02),
    chop=st.sampled_from([1, 3, 7]),
)

_PLANS = st.lists(
    st.lists(_EVENTS, max_size=2),
    max_size=MAX_FAULTED_CONNECTIONS,
)


@pytest.mark.parametrize("policy", POLICIES)
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    plans=_PLANS,
    seed=st.integers(0, 2**16),
    # 0 = every ingest written eagerly; 24 KiB = the client defers and
    # ships coalesced sendmsg bursts, so a mid-burst fault forces a
    # whole-window resend and the server sees retried tokens *inside*
    # coalesced chunks -- the dedup property must hold there too
    coalesce=st.sampled_from([0, 24 * 1024]),
)
def test_chaos_state_bit_identical(
    tmp_path, policy, kernels_mode, plans, seed, coalesce
):
    batches = _make_batches(seed, n_batches=10)
    run_dir = tmp_path / f"run-{next(_RUN_COUNTER)}"
    run_dir.mkdir()
    data_dir = str(run_dir / "data")

    with ServerThread(
        data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
    ) as srv:
        with ChaosProxy(
            "127.0.0.1", srv.port, schedule=FaultSchedule(plans)
        ) as proxy:
            # the schedule is transparent past MAX_FAULTED_CONNECTIONS,
            # so with a retry budget above it every call must succeed --
            # a typed error here is a genuine resilience failure
            with QuantileClient(
                "127.0.0.1", proxy.port,
                timeout=30.0,
                max_retries=MAX_FAULTED_CONNECTIONS + 4,
                backoff_base=0.005,
                retry_seed=0,
                send_coalesce_bytes=coalesce,
            ) as client:
                for name, config in _metrics(policy):
                    client.create(name, **config)
                # pipelined: acks are collected by the final drain, so
                # a fault can hit a burst of in-flight ingests and the
                # resend machinery (not one lockstep request) recovers
                for name, values in batches:
                    client.ingest_nowait(name, values)
                client.drain()  # apply everything queued server-side
        # the faults are done; crash without the final snapshot
        srv.stop(graceful=False)

    reference = _reference(policy, batches)

    # exactly-once, pre-restart evidence: recovery replays the journal
    with ServerThread(
        data_dir=data_dir, n_shards=2, snapshot_interval_s=None,
    ) as srv2:
        recovered = srv2.service.registry
        assert_state_bit_identical(recovered, reference)
        # element counts: every batch exactly once (dedup proof)
        assert recovered.total_elements == sum(
            v.size for _, v in batches
        )
        srv2.stop(graceful=False)
