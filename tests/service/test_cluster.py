"""Multi-process cluster: routing, bit-exact state, durable restart.

A :class:`ClusterService` runs N full ``QuantileService`` processes;
metric *name* lives wholly on worker ``shard_of(name, N)``.  Because
each metric's stream is an uninterrupted subsequence on exactly one
worker, every per-metric summary -- and therefore the
``merge_serialized`` fold over any set of metrics -- is bit-identical
to the single-process run of the same schedule (the same PR-2 property
the shard flusher leans on, lifted across process boundaries).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core import serialize
from repro.service import (
    ClusterClient,
    ClusterService,
    QuantileClient,
    ServerThread,
)
from repro.service.registry import shard_of

NAMES = [f"t/m{i}" for i in range(4)]
PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]


def _batches(seed=3, n_batches=24):
    rng = np.random.default_rng(seed)
    return [
        (NAMES[i % len(NAMES)], rng.normal(size=200))
        for i in range(n_batches)
    ]


def _create_all(client):
    for name in NAMES:
        client.create(name, kind="fixed", epsilon=0.02, n=100_000)


@pytest.fixture(scope="module")
def cluster():
    """One 2-worker ephemeral cluster shared by the read-only tests
    (spawning worker processes is the expensive part)."""
    with ClusterService(
        workers=2, n_shards=2, snapshot_interval_s=None
    ) as svc:
        with ClusterClient("127.0.0.1", svc.ports) as client:
            _create_all(client)
            for name, values in _batches():
                client.ingest(name, values)
            yield client


class TestRouting:
    def test_each_metric_lives_only_on_its_owner(self, cluster):
        by_worker = {}
        for entry in cluster.list_metrics():
            by_worker.setdefault(entry["name"], []).append(entry["worker"])
        assert set(by_worker) == set(NAMES)
        for name, workers in by_worker.items():
            assert workers == [shard_of(name, cluster.n_workers)]

    def test_per_metric_query_routes_to_owner(self, cluster):
        expected = {
            name: sum(v.size for n, v in _batches() if n == name)
            for name in NAMES
        }
        for name in NAMES:
            _, _, n = cluster.query(name, [0.5])
            assert n == expected[name]

    def test_merged_query_covers_the_union(self, cluster):
        values, bound, n = cluster.query_merged(NAMES, PHIS)
        total = sum(v.size for _, v in _batches())
        assert n == total
        assert bound < 0.1 * total
        # normal(0,1) union: the median must sit near 0 and the
        # quantile values must be sorted
        assert abs(values[PHIS.index(0.5)]) < 0.2
        assert values == sorted(values)


class TestBitExactness:
    def test_cluster_state_bit_identical_to_single_process(self, tmp_path):
        """Worker count must not change any metric's summary bytes."""
        batches = _batches(seed=11)
        with ServerThread(
            n_shards=2, snapshot_interval_s=None
        ) as single_srv:
            with QuantileClient(
                "127.0.0.1", single_srv.port
            ) as single:
                _create_all(single)
                for name, values in batches:
                    single.ingest(name, values)
                single_raw = {n: single.fetch_raw(n) for n in NAMES}
        with ClusterService(
            workers=2, n_shards=2, snapshot_interval_s=None
        ) as svc:
            with ClusterClient("127.0.0.1", svc.ports) as client:
                _create_all(client)
                for name, values in batches:
                    client.ingest(name, values)
                cluster_raw = {n: client.fetch_raw(n) for n in NAMES}
                merged = client.fetch_merged(NAMES)
        for name in NAMES:
            assert cluster_raw[name] == single_raw[name], (
                f"{name}: serialized summary differs between 1-process "
                f"and 2-worker runs"
            )
        # and so does the Lemma 5 fold over the union
        reference = serialize.merge_serialized(
            single_raw[n] for n in NAMES
        )
        assert merged.quantiles(PHIS) == reference.quantiles(PHIS)
        assert merged.error_bound() == reference.error_bound()
        assert merged.n == reference.n


class TestDurability:
    def test_graceful_restart_recovers_every_worker(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        batches = _batches(seed=5, n_batches=12)
        with ClusterService(
            workers=2, n_shards=2, snapshot_interval_s=None,
            data_dir=data_dir,
        ) as svc:
            with ClusterClient("127.0.0.1", svc.ports) as client:
                _create_all(client)
                for name, values in batches:
                    client.ingest(name, values)
        # SIGTERM -> worker drain -> final snapshot, per worker
        with ClusterService(
            workers=2, n_shards=2, snapshot_interval_s=None,
            data_dir=data_dir,
        ) as svc2:
            with ClusterClient("127.0.0.1", svc2.ports) as client:
                for name in NAMES:
                    _, _, n = client.query(name, [0.5])
                    assert n == sum(
                        v.size for b_name, v in batches if b_name == name
                    )

    def test_worker_count_is_pinned_by_the_data_dir(self, tmp_path):
        data_dir = str(tmp_path / "cluster")
        with ClusterService(
            workers=2, n_shards=2, snapshot_interval_s=None,
            data_dir=data_dir,
        ):
            pass
        with pytest.raises(StorageError, match="worker"):
            ClusterService(
                workers=3, n_shards=2, snapshot_interval_s=None,
                data_dir=data_dir,
            ).start()

    def test_workers_must_be_positive(self):
        with pytest.raises(StorageError, match="workers"):
            ClusterService(workers=0)
