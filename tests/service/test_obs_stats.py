"""The STATS observability extension: protocol detail byte, the obs
section of the response, and the client's uniform query surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import hooks
from repro.service import protocol
from repro.service.client import QuantileClient
from repro.service.protocol import Opcode, Request
from repro.service.server import ServerThread


@pytest.fixture(autouse=True)
def _isolated_obs():
    hooks.reset()
    yield
    hooks.reset()


# -- wire format --------------------------------------------------------------


def test_stats_request_without_detail_is_pre_detail_format():
    payload = protocol.encode_request(Request(opcode=Opcode.STATS))
    assert payload == bytes([Opcode.STATS])  # byte-identical to v2
    req = protocol.decode_request(payload)
    assert req.detail == 0


def test_stats_request_detail_roundtrip():
    payload = protocol.encode_request(
        Request(opcode=Opcode.STATS, detail=1)
    )
    assert payload == bytes([Opcode.STATS, 1])
    req = protocol.decode_request(payload)
    assert req.detail == 1


def test_old_server_style_payload_still_decodes():
    # an old client frame (no trailing byte) must parse as detail=0
    req = protocol.decode_request(bytes([Opcode.STATS]))
    assert req.opcode == Opcode.STATS and req.detail == 0


# -- end to end ---------------------------------------------------------------


@pytest.fixture
def server_and_client():
    with ServerThread(n_shards=2) as server:
        with QuantileClient("127.0.0.1", server.port) as client:
            yield server, client


def test_stats_obs_section(server_and_client):
    _server, client = server_and_client
    client.create("obs/fixed", kind="fixed", epsilon=0.02, n=50_000)
    rng = np.random.default_rng(0)
    for _ in range(10):
        client.ingest("obs/fixed", rng.normal(size=5000))
    client.drain()
    client.quantile("obs/fixed", 0.5)

    stats = client.stats()
    obs = stats["obs"]
    assert obs["enabled"] is True

    (metric,) = [m for m in obs["metrics"] if m["name"] == "obs/fixed"]
    assert metric["n"] == 50_000
    assert metric["certified_bound"] > 0.0
    assert metric["certified_bound_fraction"] == pytest.approx(
        metric["certified_bound"] / 50_000
    )
    assert metric["collapses_by_level"]  # levels observed
    assert sum(metric["collapses_by_level"].values()) > 0

    # per-shard collapse-by-level aggregation reaches the shard table
    shard = stats["shards"][metric["shard"]]
    assert shard["collapses_by_level"] == metric["collapses_by_level"]

    # every opcode used above was self-metered
    ops = stats["obs"]["op_latency_ms"]
    for op in ("CREATE", "INGEST", "QUERY", "DRAIN", "STATS"):
        if op == "STATS":
            continue  # metered after its own response is built
        assert op in ops
        assert ops[op]["n"] >= 1
        assert "p50" in ops[op] and "p99" in ops[op]
        assert ops[op]["certified_rank_bound_fraction"] >= 0.0

    # obs counters flow through from the core hooks
    assert stats["obs"]["counters"]["core.elements_ingested"] >= 50_000


def test_stats_detail_adds_prometheus(server_and_client):
    _server, client = server_and_client
    client.create("p", kind="adaptive", epsilon=0.02)
    client.ingest("p", np.arange(10_000, dtype=np.float64))
    client.drain()

    plain = client.stats()
    assert "prometheus" not in plain

    detailed = client.stats(detail=1)
    prom = detailed["prometheus"]
    assert "# TYPE repro_core_collapse counter" in prom
    assert "repro_core_elements_ingested" in prom


def test_client_quantiles_and_describe(server_and_client):
    _server, client = server_and_client
    client.create("q", kind="fixed", epsilon=0.01, n=20_000)
    client.ingest("q", np.arange(20_000, dtype=np.float64))
    client.drain()

    values = client.quantiles("q", [0.25, 0.5, 0.75])
    assert values == client.query("q", [0.25, 0.5, 0.75])[0]

    report = client.describe("q")
    assert report["n"] == 20_000
    assert report["min"] == 0.0
    assert report["max"] == 19_999.0
    assert abs(report["quantiles"][0.5] - 10_000) <= 0.01 * 20_000
    assert report["error_bound_fraction"] == pytest.approx(
        report["error_bound"] / 20_000
    )


def test_render_stats_text_shows_acceptance_fields(server_and_client):
    from repro.obs import render_stats_text

    _server, client = server_and_client
    client.create("r", kind="adaptive", epsilon=0.02)
    client.ingest("r", np.random.default_rng(2).normal(size=30_000))
    client.drain()
    client.quantile("r", 0.99)

    text = render_stats_text(client.stats())
    assert "shards" in text
    assert "cert. εN" in text
    assert "op latency (self-metered, ms)" in text
    assert "L1:" in text  # collapse counts by level
    assert "INGEST" in text and "QUERY" in text


def test_observability_opt_out():
    with ServerThread(n_shards=1, observability=False) as server:
        with QuantileClient("127.0.0.1", server.port) as client:
            client.create("s", kind="adaptive", epsilon=0.05)
            client.ingest("s", np.arange(5000, dtype=np.float64))
            client.drain()
            stats = client.stats()
            assert stats["obs"]["enabled"] is False
            # op latency is still self-metered (it costs one sketch
            # update per request, independent of the core hooks)
            assert "INGEST" in stats["obs"]["op_latency_ms"]
            # but no core hook state was recorded
            (metric,) = stats["obs"]["metrics"]
            assert "collapses_by_level" not in metric
