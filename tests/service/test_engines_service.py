"""Mixed-engine service paths: wire compat, SIGKILL recovery, cluster fold.

Non-paper engines flow through every durability layer -- protocol
CREATE, journal CREATE, snapshot v2 -- as an optional trailing engine
tag, so pre-engine byte streams still decode (as ``paper``) and a
mixed-engine registry recovers bit-identically from a non-graceful
stop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engines import engine_of
from repro.core.errors import (
    ConfigurationError,
    EngineMismatchError,
    StorageError,
)
from repro.service import (
    ClusterClient,
    ClusterService,
    QuantileClient,
    ServerThread,
)
from repro.service import protocol
from repro.service.journal import IngestJournal, read_journal
from repro.service.protocol import Opcode, Request

PHIS = [0.1, 0.5, 0.9]

ENGINES = {
    "e/paper": dict(kind="fixed", epsilon=0.02, n=50_000),
    "e/kll": dict(kind="fixed", epsilon=0.02, engine="kll"),
    "e/frugal": dict(kind="fixed", engine="frugal"),
    "e/adaptive": dict(kind="adaptive", epsilon=0.02),
}


def client_for(server):
    return QuantileClient("127.0.0.1", server.port)


def _feed(client, rng, rounds=4):
    for _ in range(rounds):
        for name in ENGINES:
            client.ingest(name, rng.integers(0, 10_000, 600).astype(float))


class TestWireFormat:
    def test_protocol_engine_byte_roundtrip(self):
        for engine in ("paper", "kll", "frugal"):
            req = Request(
                opcode=Opcode.CREATE, name="m", kind="fixed",
                epsilon=0.01, engine=engine,
            )
            out = protocol.decode_request(protocol.encode_request(req))
            assert out.engine == engine

    def test_protocol_pre_engine_payload_decodes_as_paper(self):
        """A CREATE encoded by an old client carries no engine byte."""
        req = Request(opcode=Opcode.CREATE, name="m", kind="adaptive",
                      epsilon=0.01)
        payload = protocol.encode_request(req)
        # the default-engine encoding *is* the old format: no trailing byte
        assert protocol.decode_request(payload).engine == "paper"

    def test_protocol_unknown_engine_id_rejected(self):
        req = Request(opcode=Opcode.CREATE, name="m", kind="fixed",
                      epsilon=0.01, engine="kll")
        payload = protocol.encode_request(req)
        with pytest.raises(StorageError, match="engine"):
            protocol.decode_request(payload[:-1] + bytes([99]))

    def test_protocol_unknown_engine_name_rejected_on_encode(self):
        with pytest.raises(ConfigurationError):
            protocol.encode_request(
                Request(opcode=Opcode.CREATE, name="m", kind="fixed",
                        engine="tdigest")
            )

    def test_journal_engine_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.log")
        journal = IngestJournal(path)
        journal.append_create("a", "fixed", 0.02, 1000, "new")
        journal.append_create("b", "fixed", 0.02, None, "new", engine="kll")
        journal.append_create("c", "fixed", 0.01, None, "new",
                              engine="frugal")
        journal.close()
        records = read_journal(path).records
        assert [r.engine for r in records] == ["paper", "kll", "frugal"]
        assert [r.name for r in records] == ["a", "b", "c"]


class TestServiceEngines:
    @pytest.fixture
    def server(self, tmp_path):
        with ServerThread(
            data_dir=str(tmp_path / "data"), n_shards=2,
            snapshot_interval_s=None,
        ) as srv:
            yield srv

    def test_create_ingest_query_fetch_per_engine(self, server):
        rng = np.random.default_rng(0)
        with client_for(server) as client:
            for name, cfg in ENGINES.items():
                assert client.create(name, **cfg)
            _feed(client, rng)
            magics = {}
            for name in ENGINES:
                values, _, n = client.query(name, PHIS)
                assert n == 2_400
                assert values == sorted(values)
                if name != "e/adaptive":  # adaptive refuses FETCH
                    raw = client.fetch_raw(name)
                    magics[name] = engine_of(raw)
                    assert client.fetch(name).n == 2_400
            assert magics == {
                "e/paper": "paper", "e/kll": "kll", "e/frugal": "frugal",
            }
            stats = client.stats()
            assert stats["engines"] == {"paper": 2, "kll": 1, "frugal": 1}
            # LIST's wire format predates engines (old clients must keep
            # decoding it); per-engine info is served via STATS instead
            assert len(client.list_metrics()) == 4

    def test_non_paper_engines_reject_paper_sizing(self, server):
        with client_for(server) as client:
            with pytest.raises(ConfigurationError):
                client.create("bad/1", kind="adaptive", engine="kll")
            with pytest.raises(ConfigurationError):
                client.create("bad/2", kind="fixed", n=1000, engine="frugal")
            with pytest.raises(ConfigurationError):
                client.create("bad/3", kind="fixed", engine="tdigest")

    def test_mixed_engine_sigkill_recovery_bit_identical(self, tmp_path):
        """Kill with a mixed registry: snapshot v2 + journal tail replay
        must reproduce every engine's state byte-for-byte."""
        data_dir = str(tmp_path / "data")
        rng = np.random.default_rng(7)
        srv = ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None
        ).start()
        try:
            with client_for(srv) as client:
                for name, cfg in ENGINES.items():
                    client.create(name, **cfg)
                _feed(client, rng, rounds=3)
                client.snapshot()  # engines cross the snapshot-v2 path
                _feed(client, rng, rounds=2)  # tail lives in the journal
                client.drain()
                queries = {n: client.query(n, PHIS) for n in ENGINES}
                payloads = {
                    n: client.fetch_raw(n)
                    for n in ENGINES if n != "e/adaptive"
                }
        finally:
            srv.stop(graceful=False)  # in-process stand-in for SIGKILL

        srv2 = ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None
        ).start()
        try:
            with client_for(srv2) as client:
                for name, want in queries.items():
                    assert client.query(name, PHIS) == want
                for name, want in payloads.items():
                    assert client.fetch_raw(name) == want, name
                assert client.stats()["engines"] == {
                    "paper": 2, "kll": 1, "frugal": 1,
                }
        finally:
            srv2.stop(graceful=False)

    def test_journal_only_recovery_without_snapshot(self, tmp_path):
        """Same kill, but no snapshot ever: pure CREATE+INGEST replay."""
        data_dir = str(tmp_path / "data")
        rng = np.random.default_rng(3)
        srv = ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None
        ).start()
        try:
            with client_for(srv) as client:
                for name, cfg in ENGINES.items():
                    client.create(name, **cfg)
                _feed(client, rng, rounds=2)
                client.drain()
                payloads = {
                    n: client.fetch_raw(n)
                    for n in ENGINES if n != "e/adaptive"
                }
        finally:
            srv.stop(graceful=False)

        srv2 = ServerThread(
            data_dir=data_dir, n_shards=2, snapshot_interval_s=None
        ).start()
        try:
            with client_for(srv2) as client:
                for name, want in payloads.items():
                    assert client.fetch_raw(name) == want, name
        finally:
            srv2.stop(graceful=False)


class TestClusterEngines:
    def test_kll_fold_and_mixed_engine_mismatch(self, tmp_path):
        """`fetch_merged` folds same-engine KLL metrics across workers
        and raises the typed mismatch error across engines."""
        rng = np.random.default_rng(5)
        data = {f"k/m{i}": rng.normal(size=4_000) for i in range(3)}
        with ClusterService(
            workers=2, n_shards=1, snapshot_interval_s=None
        ) as svc:
            with ClusterClient("127.0.0.1", svc.ports) as client:
                for name in data:
                    client.create(name, kind="fixed", epsilon=0.02,
                                  engine="kll")
                client.create("k/frugal", kind="fixed", engine="frugal")
                for name, values in data.items():
                    client.ingest(name, values)
                client.ingest("k/frugal", rng.normal(size=500))
                client.drain()

                merged = client.fetch_merged(list(data))
                union = np.concatenate(list(data.values()))
                assert merged.n == union.size
                est = merged.quantile(0.5)
                true_rank = np.searchsorted(np.sort(union), est)
                assert abs(true_rank - 0.5 * union.size) \
                    <= merged.error_bound()

                with pytest.raises(EngineMismatchError):
                    client.fetch_merged(["k/m0", "k/frugal"])
