"""Property-based tests for the library's extensions.

Covers serialisation round-trips, the unknown-N adaptive sketch's
certified bound, and robustness of the SQL front-end (any input either
parses or raises ``SQLSyntaxError`` -- never crashes or hangs).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.adaptive import AdaptiveQuantileSketch
from repro.core.errors import QueryError, SQLSyntaxError
from repro.core.framework import QuantileFramework
from repro.core.serialize import dumps, loads
from repro.engine import Table, execute_sql, parse_sql

COMMON = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

float_lists = st.lists(
    st.floats(
        min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=400,
)
small_configs = st.tuples(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=1, max_value=12),
)


class TestSerializationProperties:
    @COMMON
    @given(
        data=float_lists,
        config=small_configs,
        policy=st.sampled_from(
            ["new", "munro-paterson", "alsabti-ranka-singh"]
        ),
    )
    def test_roundtrip_is_lossless(self, data, config, policy):
        b, k = config
        fw = QuantileFramework(b=b, k=k, policy=policy)
        fw.extend(np.asarray(data, dtype=np.float64))
        restored = loads(dumps(fw))
        phis = [0.0, 0.25, 0.5, 0.75, 1.0]
        assert restored.quantiles(phis) == fw.quantiles(phis)
        assert restored.error_bound() == fw.error_bound()
        assert restored.n == fw.n

    @COMMON
    @given(
        data=float_lists,
        more=float_lists,
        config=small_configs,
    )
    def test_resume_equivalence(self, data, more, config):
        """serialise-then-continue == never-serialised, for any split."""
        b, k = config
        original = QuantileFramework(b=b, k=k)
        original.extend(np.asarray(data, dtype=np.float64))
        resumed = loads(dumps(original))
        arr_more = np.asarray(more, dtype=np.float64)
        original.extend(arr_more)
        resumed.extend(arr_more)
        assert resumed.quantiles([0.5]) == original.quantiles([0.5])
        assert resumed.error_bound() == original.error_bound()


class TestAdaptiveProperties:
    @COMMON
    @given(
        data=st.lists(
            st.integers(min_value=-10**6, max_value=10**6),
            min_size=1,
            max_size=3000,
        ),
        eps=st.sampled_from([0.05, 0.1, 0.2]),
        capacity=st.sampled_from([16, 64, 256]),
    )
    def test_certified_bound_always_covers(self, data, eps, capacity):
        arr = np.asarray(data, dtype=np.float64)
        sk = AdaptiveQuantileSketch(
            epsilon=eps, initial_capacity=capacity
        )
        sk.extend(arr)
        ordered = np.sort(arr)
        n = len(arr)
        answers = {phi: sk.query(phi) for phi in (0.1, 0.5, 0.9)}
        bound = sk.error_bound()
        for phi, got in answers.items():
            target = min(max(math.ceil(phi * n), 1), n)
            lo = int(np.searchsorted(ordered, got, side="left")) + 1
            hi = int(np.searchsorted(ordered, got, side="right"))
            err = (
                0
                if lo <= target <= hi
                else min(abs(target - lo), abs(target - hi))
            )
            assert err <= bound + 1

    @COMMON
    @given(
        n=st.integers(min_value=300, max_value=20_000),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_epsilon_guarantee_beyond_first_stage(self, n, seed):
        eps = 0.05
        rng = np.random.default_rng(seed)
        arr = rng.permutation(n).astype(np.float64)
        sk = AdaptiveQuantileSketch(epsilon=eps, initial_capacity=128)
        sk.extend(arr)
        for phi in (0.25, 0.75):
            got = sk.query(phi)
            target = min(max(math.ceil(phi * n), 1), n)
            assert abs((got + 1) - target) / n <= eps


class TestSQLRobustness:
    @COMMON
    @given(text=st.text(max_size=120))
    def test_arbitrary_text_never_crashes(self, text):
        try:
            parse_sql(text)
        except SQLSyntaxError:
            pass
        except QueryError:
            pass  # structurally valid but semantically bad is fine too

    @COMMON
    @given(
        phi=st.floats(min_value=0.0, max_value=1.0),
        threshold=st.integers(min_value=-5, max_value=5),
        group=st.booleans(),
    )
    def test_generated_valid_queries_execute(self, phi, threshold, group):
        table = Table.from_dict(
            "t",
            {
                "g": ["a", "b", "a", "b", "c", "c", "a", "b"],
                "v": np.arange(8.0),
            },
        )
        group_clause = " GROUP BY g" if group else ""
        sql = (
            f"SELECT QUANTILE({phi:.6f}, v) AS q, COUNT(*) AS n FROM t"
            f" WHERE v > {threshold}{group_clause}"
        )
        result = execute_sql(sql, {"t": table})
        for row in result.rows:
            if row["q"] is not None:
                assert 0.0 <= row["q"] <= 7.0
            assert row["n"] >= 0

    @COMMON
    @given(
        idents=st.lists(
            st.sampled_from(["select", "from", "where", "group", "order"]),
            min_size=1,
            max_size=6,
        )
    )
    def test_keyword_soup_is_syntax_error(self, idents):
        with pytest.raises(SQLSyntaxError):
            parse_sql(" ".join(idents))


class TestEngineAgainstBruteForce:
    @COMMON
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=-100, max_value=100),
            ),
            min_size=1,
            max_size=200,
        ),
        threshold=st.integers(min_value=-100, max_value=100),
    )
    def test_group_by_matches_reference(self, rows, threshold):
        """The engine's scalar aggregates against a dict-of-lists reference
        implementation, for any table and predicate."""
        from repro.engine import Query, avg, col, count, max_, min_, sum_

        table = Table.from_dict(
            "t",
            {
                "g": [g for g, _v in rows],
                "v": np.array([v for _g, v in rows], dtype=np.float64),
            },
        )
        result = (
            Query(table)
            .where(col("v") >= threshold)
            .group_by("g")
            .aggregate(count(), sum_("v"), avg("v"), min_("v"), max_("v"))
            .execute(chunk_size=7)
        )
        reference: dict = {}
        for g, v in rows:
            if v >= threshold:
                reference.setdefault(g, []).append(v)
        assert len(result) == len(reference)
        for row in result.rows:
            values = reference[row["g"]]
            assert row["count"] == len(values)
            assert row["sum_v"] == pytest.approx(sum(values))
            assert row["avg_v"] == pytest.approx(sum(values) / len(values))
            assert row["min_v"] == min(values)
            assert row["max_v"] == max(values)

    @COMMON
    @given(
        rows=st.lists(
            st.tuples(
                st.sampled_from(["x", "y"]),
                st.floats(
                    min_value=-1e6,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            min_size=1,
            max_size=300,
        ),
        phi=st.sampled_from([0.25, 0.5, 0.75]),
    )
    def test_group_quantiles_within_epsilon(self, rows, phi):
        from repro.engine import Query, quantile

        eps = 0.05
        table = Table.from_dict(
            "t",
            {
                "g": [g for g, _v in rows],
                "v": np.array([v for _g, v in rows], dtype=np.float64),
            },
        )
        result = (
            Query(table)
            .group_by("g")
            .aggregate(quantile("v", phi, eps))
            .execute(chunk_size=11)
        )
        for row in result.rows:
            group_values = np.sort(
                np.array([v for g, v in rows if g == row["g"]])
            )
            got = row[f"q{phi:g}_v"]
            n_g = len(group_values)
            target = min(max(math.ceil(phi * n_g), 1), n_g)
            lo = int(np.searchsorted(group_values, got, side="left")) + 1
            hi = int(np.searchsorted(group_values, got, side="right"))
            err = 0 if lo <= target <= hi else min(
                abs(target - lo), abs(target - hi)
            )
            # sketches are sized for the whole table (n rows), so the
            # guarantee is eps * len(rows) ranks
            assert err <= eps * len(rows) + 1
