"""Tests for the two-pass exact quantile algorithm."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.streams import random_permutation_stream, sorted_stream, zipf_stream
from repro.twopass import choose_epsilon, exact_quantile_two_pass


class TestExactness:
    @pytest.mark.parametrize("phi", [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0])
    def test_exact_on_permutations(self, phi):
        n = 100_000
        stream = random_permutation_stream(n, seed=2)
        result = exact_quantile_two_pass(stream, phi)
        assert result.value == stream.exact_quantile(phi)

    def test_exact_on_duplicates(self):
        stream = zipf_stream(50_000, exponent=1.2, n_distinct=30, seed=4)
        result = exact_quantile_two_pass(stream, 0.5)
        assert result.value == stream.exact_quantile(0.5)

    def test_exact_on_arrays(self, rng):
        data = rng.normal(0, 1, 30_001)
        result = exact_quantile_two_pass(data, 0.9, epsilon=0.01)
        assert result.value == float(
            np.sort(data)[int(np.ceil(0.9 * 30_001)) - 1]
        )

    def test_exact_with_callable_source(self, rng):
        data = rng.uniform(0, 1, 12_345)

        def chunks():
            for i in range(0, len(data), 1000):
                yield data[i : i + 1000]

        result = exact_quantile_two_pass(chunks, 0.5, n=12_345)
        assert result.value == float(
            np.sort(data)[int(np.ceil(0.5 * 12_345)) - 1]
        )

    def test_single_element(self):
        result = exact_quantile_two_pass(np.array([42.0]), 0.5)
        assert result.value == 42.0


class TestCostAccounting:
    def test_memory_far_below_n(self):
        n = 500_000
        stream = random_permutation_stream(n, seed=7)
        result = exact_quantile_two_pass(stream, 0.5)
        assert result.peak_memory < n // 10
        assert result.retained <= 4 * result.epsilon * n + 2

    def test_bracket_encloses_answer(self):
        stream = sorted_stream(50_000)
        result = exact_quantile_two_pass(stream, 0.3)
        lo, hi = result.bracket
        assert lo <= result.value <= hi

    def test_choose_epsilon_scaling(self):
        # epsilon shrinks as n grows (toward the sqrt balance point)
        values = [choose_epsilon(n) for n in (10**3, 10**5, 10**7, 10**9)]
        assert values == sorted(values, reverse=True)
        assert all(0 < v <= 0.25 for v in values)

    def test_smaller_epsilon_retains_less(self):
        stream = random_permutation_stream(200_000, seed=1)
        loose = exact_quantile_two_pass(stream, 0.5, epsilon=0.02)
        tight = exact_quantile_two_pass(stream, 0.5, epsilon=0.002)
        assert tight.retained < loose.retained
        assert tight.value == loose.value  # both exact


class TestValidation:
    def test_bad_phi(self):
        with pytest.raises(ConfigurationError):
            exact_quantile_two_pass(np.array([1.0]), 1.5)

    def test_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            exact_quantile_two_pass(np.array([1.0]), 0.5, epsilon=0.7)

    def test_callable_needs_n(self):
        with pytest.raises(ConfigurationError):
            exact_quantile_two_pass(lambda: iter([np.array([1.0])]), 0.5)

    def test_empty_stream(self):
        with pytest.raises((EmptySummaryError, ConfigurationError)):
            exact_quantile_two_pass(np.array([]), 0.5)

    def test_unsupported_source(self):
        with pytest.raises(ConfigurationError):
            exact_quantile_two_pass({"not": "a stream"}, 0.5)

    def test_non_replaying_source_detected(self, rng):
        """A source that yields different data on the second pass must be
        caught, not silently produce a wrong answer."""
        calls = {"count": 0}

        def flaky():
            calls["count"] += 1
            seed = calls["count"]
            yield np.random.default_rng(seed).permutation(10_000).astype(
                np.float64
            ) * (1000.0 if seed > 1 else 1.0)

        with pytest.raises(ConfigurationError, match="replay"):
            exact_quantile_two_pass(flaky, 0.5, n=10_000, epsilon=0.01)


class TestMultiPass:
    def test_exact_under_tiny_budgets(self):
        from repro.twopass import exact_quantile_multipass

        n = 200_000
        stream = random_permutation_stream(n, seed=3)
        for budget in (20_000, 2_000, 600):
            result = exact_quantile_multipass(
                stream, 0.5, memory_budget=budget
            )
            assert result.value == stream.exact_quantile(0.5)
            assert result.peak_memory <= budget * 1.2  # small slack

    def test_more_budget_means_fewer_passes(self):
        from repro.twopass import exact_quantile_multipass

        stream = random_permutation_stream(300_000, seed=5)
        rich = exact_quantile_multipass(stream, 0.25, memory_budget=50_000)
        poor = exact_quantile_multipass(stream, 0.25, memory_budget=1_000)
        assert rich.value == poor.value == stream.exact_quantile(0.25)
        assert rich.passes < poor.passes

    def test_windows_shrink_monotonically(self):
        from repro.twopass import exact_quantile_multipass

        stream = random_permutation_stream(500_000, seed=6)
        result = exact_quantile_multipass(stream, 0.9, memory_budget=900)
        assert list(result.windows) == sorted(result.windows, reverse=True)

    def test_hopeless_budget_raises_cleanly(self):
        from repro.twopass import exact_quantile_multipass

        stream = random_permutation_stream(10**6, seed=7)
        with pytest.raises(ConfigurationError, match="too small"):
            exact_quantile_multipass(stream, 0.5, memory_budget=50)

    def test_extremes(self):
        from repro.twopass import exact_quantile_multipass

        stream = random_permutation_stream(50_000, seed=8)
        lo = exact_quantile_multipass(stream, 0.0, memory_budget=2_000)
        hi = exact_quantile_multipass(stream, 1.0, memory_budget=2_000)
        assert lo.value == 0.0
        assert hi.value == 49_999.0

    def test_duplicates(self):
        from repro.twopass import exact_quantile_multipass

        stream = zipf_stream(100_000, exponent=1.2, n_distinct=50, seed=9)
        result = exact_quantile_multipass(stream, 0.5, memory_budget=3_000)
        assert result.value == stream.exact_quantile(0.5)

    def test_validation(self):
        from repro.twopass import exact_quantile_multipass

        with pytest.raises(ConfigurationError):
            exact_quantile_multipass(np.array([1.0]), 2.0, memory_budget=100)
        with pytest.raises(ConfigurationError):
            exact_quantile_multipass(np.array([1.0]), 0.5, memory_budget=4)
