"""Tests for sketch serialisation (round-trip fidelity + corruption)."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, StorageError
from repro.core.framework import QuantileFramework
from repro.core.serialize import dump, dumps, load, loads


def _filled(policy="new", n=50_000, seed=0, **kwargs):
    fw = QuantileFramework.from_accuracy(0.01, n, policy=policy, **kwargs)
    fw.extend(np.random.default_rng(seed).permutation(n).astype(np.float64))
    return fw


class TestRoundTrip:
    @pytest.mark.parametrize(
        "policy", ["new", "munro-paterson", "alsabti-ranka-singh"]
    )
    def test_answers_identical(self, policy):
        fw = _filled(policy)
        restored = loads(dumps(fw))
        phis = [0.01, 0.25, 0.5, 0.75, 0.99]
        assert restored.quantiles(phis) == fw.quantiles(phis)

    def test_certified_bound_preserved(self):
        fw = _filled()
        restored = loads(dumps(fw))
        assert restored.error_bound() == fw.error_bound()
        assert restored.n == fw.n
        assert restored.n_collapses == fw.n_collapses
        assert restored.sum_collapse_weights == fw.sum_collapse_weights

    def test_resumed_ingest_matches(self):
        # serialise mid-stream, keep feeding both copies identically
        rng = np.random.default_rng(4)
        data = rng.permutation(80_000).astype(np.float64)
        fw = QuantileFramework(b=6, k=256)
        fw.extend(data[:50_000])
        restored = loads(dumps(fw))
        fw.extend(data[50_000:])
        restored.extend(data[50_000:])
        assert restored.quantiles([0.5]) == fw.quantiles([0.5])
        assert restored.error_bound() == fw.error_bound()

    def test_offset_alternation_state_preserved(self):
        # the even-weight toggle must survive, or resumed runs would
        # drift from the original's collapse choices
        fw = QuantileFramework(b=4, k=8, policy="munro-paterson")
        fw.extend(np.arange(4 * 8 * 5, dtype=np.float64))
        restored = loads(dumps(fw))
        assert (
            restored._offsets._next_even_is_high
            == fw._offsets._next_even_is_high
        )

    def test_remainder_preserved(self):
        fw = QuantileFramework(b=4, k=100)
        fw.extend(np.arange(130, dtype=np.float64))  # 1 buffer + tail of 30
        restored = loads(dumps(fw))
        assert restored.n == 130
        assert restored.query(1.0) == 129.0

    def test_pending_scalars_flushed_by_dump(self):
        fw = QuantileFramework(b=4, k=10)
        for v in range(7):
            fw.update(float(v))
        restored = loads(dumps(fw))
        assert restored.n == 7
        assert restored.query(0.5) == 3.0

    def test_empty_summary_roundtrips(self):
        fw = QuantileFramework(b=3, k=5)
        restored = loads(dumps(fw))
        assert restored.n == 0

    def test_file_object_api(self, tmp_path):
        fw = _filled()
        path = tmp_path / "sketch.bin"
        with open(path, "wb") as fh:
            dump(fw, fh)
        with open(path, "rb") as fh:
            restored = load(fh)
        assert restored.quantiles([0.5]) == fw.quantiles([0.5])


class TestRejections:
    def test_generic_summaries_do_not_serialise(self):
        fw = QuantileFramework(b=3, k=4)
        for word in ["c", "a", "b", "d", "e"]:
            fw.update(word)
        with pytest.raises(ConfigurationError, match="numeric"):
            dumps(fw)

    def test_bad_magic(self):
        with pytest.raises(StorageError, match="magic"):
            loads(b"NOTASKETCH" + b"\x00" * 64)

    def test_truncated_header(self):
        with pytest.raises(StorageError, match="truncated"):
            loads(b"MRLSKT01\x01")

    def test_truncated_payload(self):
        raw = dumps(_filled())
        with pytest.raises(StorageError, match="truncated"):
            loads(raw[: len(raw) - 16])

    def test_trailing_garbage(self):
        raw = dumps(_filled())
        with pytest.raises(StorageError, match="trailing"):
            loads(raw + b"\x00")

    def test_bad_version(self):
        raw = bytearray(dumps(_filled()))
        raw[8] = 99  # version low byte
        with pytest.raises(StorageError, match="version"):
            loads(bytes(raw))

    def test_corrupt_buffer_count(self):
        fw = QuantileFramework(b=3, k=4)
        fw.extend(np.arange(24, dtype=np.float64))
        raw = bytearray(dumps(fw))
        # n_buffers field: offset of "I" after magic(8)+ver(2)+b(4)+k(4)+
        # policy(1)+offset(1)+toggle(1)+pad(1)+n(8)+C(8)+W(8) = 46
        raw[46] = 200
        with pytest.raises(StorageError):
            loads(bytes(raw))
