"""Unit tests for the three collapse policies (Section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer import Buffer
from repro.core.errors import ConfigurationError
from repro.core.policies import (
    AlsabtiRankaSinghPolicy,
    MunroPatersonPolicy,
    NewPolicy,
    make_policy,
)


def _buf(weight=1, level=0):
    buf = Buffer.from_values(np.array([1.0, 2.0]), k=2, level=level)
    buf.weight = weight
    return buf


class TestMakePolicy:
    def test_names_and_aliases(self):
        assert isinstance(make_policy("new"), NewPolicy)
        assert isinstance(make_policy("mp"), MunroPatersonPolicy)
        assert isinstance(make_policy("munro-paterson"), MunroPatersonPolicy)
        assert isinstance(make_policy("ARS"), AlsabtiRankaSinghPolicy)
        assert isinstance(
            make_policy("alsabti-ranka-singh"), AlsabtiRankaSinghPolicy
        )

    def test_instance_passes_through(self):
        policy = NewPolicy()
        assert make_policy(policy) is policy

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_policy("gk01")


class TestMunroPaterson:
    def test_no_collapse_while_empty_slots(self):
        policy = MunroPatersonPolicy()
        assert policy.pre_new_collapse([_buf(), _buf()], b=3) is None

    def test_collapses_equal_weight_pair(self):
        policy = MunroPatersonPolicy()
        full = [_buf(4), _buf(2), _buf(2)]
        group = policy.pre_new_collapse(full, b=3)
        assert sorted(buf.weight for buf in group) == [2, 2]

    def test_prefers_lightest_equal_pair(self):
        policy = MunroPatersonPolicy()
        full = [_buf(4), _buf(4), _buf(1), _buf(1)]
        group = policy.pre_new_collapse(full, b=4)
        assert [buf.weight for buf in group] == [1, 1]

    def test_fallback_two_lightest_when_all_distinct(self):
        policy = MunroPatersonPolicy()
        full = [_buf(4), _buf(2), _buf(1)]
        group = policy.pre_new_collapse(full, b=3)
        assert sorted(buf.weight for buf in group) == [1, 2]

    def test_no_post_new_collapse(self):
        policy = MunroPatersonPolicy()
        assert policy.post_new_collapse([_buf()], b=3) is None

    def test_new_buffers_at_level_zero(self):
        assert MunroPatersonPolicy().level_for_new([_buf()], b=3) == 0


class TestAlsabtiRankaSingh:
    def test_collapses_round_after_half_filled(self):
        policy = AlsabtiRankaSinghPolicy()
        leaves = [_buf(1) for _ in range(5)]
        group = policy.post_new_collapse(leaves, b=10)
        assert group is not None and len(group) == 5
        assert all(buf.weight == 1 for buf in group)

    def test_no_round_collapse_before_half(self):
        policy = AlsabtiRankaSinghPolicy()
        leaves = [_buf(1) for _ in range(4)]
        assert policy.post_new_collapse(leaves, b=10) is None

    def test_round_outputs_not_included_in_round_collapse(self):
        policy = AlsabtiRankaSinghPolicy()
        full = [_buf(5)] + [_buf(1) for _ in range(5)]
        group = policy.post_new_collapse(full, b=10)
        assert group is not None
        assert all(buf.weight == 1 for buf in group)

    def test_overfull_fallback_merges_round_outputs(self):
        policy = AlsabtiRankaSinghPolicy()
        full = [_buf(5) for _ in range(10)]
        group = policy.pre_new_collapse(full, b=10)
        assert group is not None and len(group) == 2

    def test_degenerate_small_b(self):
        policy = AlsabtiRankaSinghPolicy()
        assert policy.post_new_collapse([_buf(1)], b=2) is None
        group = policy.pre_new_collapse([_buf(1), _buf(1)], b=2)
        assert group is not None and len(group) == 2


class TestNewPolicy:
    def test_level_zero_with_two_or_more_empties(self):
        policy = NewPolicy()
        assert policy.level_for_new([], b=5) == 0
        assert policy.level_for_new([_buf(level=3)], b=5) == 0

    def test_level_is_min_full_level_with_one_empty(self):
        policy = NewPolicy()
        full = [_buf(level=2), _buf(level=1), _buf(level=4), _buf(level=3)]
        assert policy.level_for_new(full, b=5) == 1

    def test_collapse_targets_lowest_level_set(self):
        policy = NewPolicy()
        full = [
            _buf(level=1),
            _buf(level=0),
            _buf(level=0),
            _buf(level=0),
            _buf(level=2),
        ]
        group = policy.pre_new_collapse(full, b=5)
        assert group is not None
        assert all(buf.level == 0 for buf in group)
        assert len(group) == 3

    def test_no_collapse_while_empty_slot(self):
        policy = NewPolicy()
        assert policy.pre_new_collapse([_buf()], b=2) is None

    def test_single_lowest_level_widens_group(self):
        policy = NewPolicy()
        full = [_buf(level=0), _buf(level=1), _buf(level=2)]
        group = policy.pre_new_collapse(full, b=3)
        assert group is not None and len(group) == 2
        assert sorted(buf.level for buf in group) == [0, 1]

    def test_figure4_weight_sequence(self):
        """Drive the policy through a full b=5 cycle and check the level-1
        weights are 5, 4, 3, 2, 1 as in Figure 4."""
        from repro.core.framework import QuantileFramework

        fw = QuantileFramework(b=5, k=10, policy="new", record_tree=True)
        fw.extend(np.arange(15 * 10, dtype=np.float64))  # exactly 15 leaves
        stats = fw.tree_stats()
        assert stats.n_leaves == 15
        # level-1 collapse outputs carry weights 5, 4, 3, 2 and the final
        # straggler leaf joins them at weight 1 before the level-1 collapse
        level1_weights = sorted(
            node.weight
            for node in fw.recorder.nodes.values()
            if node.level == 1 and not node.is_leaf
        )
        assert level1_weights == [2, 3, 4, 5]
