"""Tests for the high-level QuantileSketch API."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError
from repro.core.parameters import ParameterPlan
from repro.core.sampling import SamplingPlan
from repro.core.sketch import (
    DEFAULT_DESIGN_N,
    QuantileSketch,
    approximate_quantiles,
)


def rank_err(value, phi, n):
    target = min(max(math.ceil(phi * n), 1), n)
    return abs((value + 1) - target) / n


class TestConstruction:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            QuantileSketch(epsilon=1.0)

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            QuantileSketch(epsilon=0.01, n=0)

    def test_default_design_n(self):
        sk = QuantileSketch(epsilon=0.05)
        assert sk.design_n == DEFAULT_DESIGN_N

    def test_deterministic_without_delta(self):
        sk = QuantileSketch(epsilon=0.01, n=10**8)
        assert not sk.uses_sampling
        assert isinstance(sk.plan, ParameterPlan)

    def test_sampling_chosen_for_huge_n(self):
        sk = QuantileSketch(epsilon=0.01, n=10**8, delta=1e-4)
        assert sk.uses_sampling
        assert isinstance(sk.plan, SamplingPlan)

    def test_direct_chosen_for_small_n_even_with_delta(self):
        sk = QuantileSketch(epsilon=0.01, n=10**5, delta=1e-4)
        assert not sk.uses_sampling

    def test_memory_matches_plan(self):
        sk = QuantileSketch(epsilon=0.01, n=10**6)
        assert sk.memory_elements == sk.plan.memory


class TestQueries:
    def test_basic_accuracy(self, permutation_100k):
        sk = QuantileSketch(epsilon=0.01, n=100_000)
        sk.extend(permutation_100k)
        assert len(sk) == 100_000
        for phi in (0.05, 0.5, 0.95):
            assert rank_err(sk.query(phi), phi, 100_000) <= 0.01

    def test_median_helper(self, permutation_10k):
        sk = QuantileSketch(epsilon=0.05, n=10_000)
        sk.extend(permutation_10k)
        assert sk.median() == sk.query(0.5)

    def test_equidepth_boundaries(self, permutation_10k):
        sk = QuantileSketch(epsilon=0.01, n=10_000)
        sk.extend(permutation_10k)
        bounds = sk.equidepth_boundaries(4)
        assert len(bounds) == 3
        for i, b in enumerate(bounds, start=1):
            assert rank_err(b, i / 4, 10_000) <= 0.01

    def test_equidepth_needs_two_buckets(self, permutation_10k):
        sk = QuantileSketch(epsilon=0.05, n=10_000)
        sk.extend(permutation_10k)
        with pytest.raises(ConfigurationError):
            sk.equidepth_boundaries(1)

    def test_error_bound_fraction(self, permutation_100k):
        sk = QuantileSketch(epsilon=0.01, n=100_000)
        sk.extend(permutation_100k)
        assert 0.0 <= sk.error_bound_fraction() <= 0.01

    def test_error_bound_fraction_empty(self):
        sk = QuantileSketch(epsilon=0.05, n=100)
        assert sk.error_bound_fraction() == 0.0

    def test_update_path(self):
        sk = QuantileSketch(epsilon=0.1, n=1000)
        for v in range(1000):
            sk.update(float(v))
        assert rank_err(sk.median(), 0.5, 1000) <= 0.1

    def test_sampling_sketch_end_to_end(self):
        rng = np.random.default_rng(6)
        n = 2 * 10**6
        sk = QuantileSketch(epsilon=0.01, n=n, delta=1e-3, seed=9)
        assert sk.uses_sampling
        data = rng.permutation(n).astype(np.float64)
        for i in range(0, n, 1 << 18):
            sk.extend(data[i : i + (1 << 18)])
        assert len(sk) == n
        assert rank_err(sk.median(), 0.5, n) <= 0.01


class TestMerge:
    def test_merge_two_sketches(self, rng):
        n = 50_000
        d1 = rng.permutation(n).astype(np.float64)
        d2 = rng.permutation(n).astype(np.float64) + n
        a = QuantileSketch(epsilon=0.01, n=2 * n)
        b = QuantileSketch(epsilon=0.01, n=2 * n)
        a.extend(d1)
        b.extend(d2)
        a.merge(b)
        assert len(a) == 2 * n
        # the combined stream is a permutation of 0..2n-1
        assert rank_err(a.median(), 0.5, 2 * n) <= 0.02

    def test_merge_sampling_sketch_rejected(self):
        a = QuantileSketch(epsilon=0.01, n=10**8, delta=1e-4)
        b = QuantileSketch(epsilon=0.01, n=10**8, delta=1e-4)
        with pytest.raises(ConfigurationError):
            a.merge(b)


class TestOneShot:
    def test_approximate_quantiles(self, permutation_10k):
        got = approximate_quantiles(permutation_10k, [0.25, 0.5, 0.75], 0.01)
        for phi, v in zip([0.25, 0.5, 0.75], got):
            assert rank_err(v, phi, 10_000) <= 0.01

    def test_works_on_lists(self):
        got = approximate_quantiles([3.0, 1.0, 2.0], [0.5], 0.25)
        assert got == [2.0]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            approximate_quantiles([], [0.5], 0.1)
