"""Windowed & time-decayed sketches: semantics, merge identity, wire.

The load-bearing claims from :mod:`repro.windows`:

* a :class:`WindowedSketch` query is *bit-identical* to the offline
  §4.9 ``merge_serialized`` of its live bucket payloads -- values and
  certified ``error_bound()`` both;
* time is event time: liveness follows the watermark, replaying the
  same ``(values, t)`` batches reproduces the ring bit-for-bit, and
  queries never mutate state;
* serialisation round-trips exactly for both wrapper classes over all
  three inner engines, including the empty-ring and single-bucket
  edge cases, and the engine registry dispatches on the magic;
* :class:`ExpDecaySketch` weights generation ``g`` by
  ``2 ** (-age_g / half_life)``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engines import dumps_any, engine_of, loads_any
from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.core.serialize import merge_serialized
from repro.windows import (
    DECAY_MAGIC,
    WINDOW_MAGIC,
    ExpDecaySketch,
    WindowedSketch,
    parse_duration,
    window_config,
)

T0 = 1_000_000.0  # fixed event-time origin, aligned to whole buckets
PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]

ENGINES = ["paper", "kll", "frugal"]
MERGEABLE = ["paper", "kll"]


def _windowed(engine, *, window=60.0, slide=None, clock=None):
    if engine == "frugal" and slide not in (None, window):
        pytest.skip("frugal windows are tumbling-only")
    return WindowedSketch(
        eps=0.02, window=window, slide=slide, engine=engine, clock=clock
    )


def _decay(engine, *, half_life=60.0, clock=None):
    return ExpDecaySketch(
        eps=0.02, half_life=half_life, engine=engine, clock=clock
    )


# -- duration / config parsing ------------------------------------------------


def test_parse_duration_spellings():
    assert parse_duration(300) == 300.0
    assert parse_duration("300") == 300.0
    assert parse_duration("250ms") == 0.25
    assert parse_duration("5m") == 300.0
    assert parse_duration("1.5h") == 5400.0
    assert parse_duration("2d") == 172800.0


@pytest.mark.parametrize("bad", ["", "5x", "abc", -1, 0, float("inf"), None])
def test_parse_duration_rejects(bad):
    with pytest.raises(ConfigurationError):
        parse_duration(bad)


def test_window_config_validation():
    assert window_config("5m", "1m", None) == (300.0, 60.0, 0.0)
    assert window_config(None, None, "1h") == (0.0, 0.0, 3600.0)
    assert window_config(None, None, None) == (0.0, 0.0, 0.0)
    with pytest.raises(ConfigurationError, match="mutually exclusive"):
        window_config("5m", None, "1h")
    with pytest.raises(ConfigurationError, match="slide= requires"):
        window_config(None, "1m", None)


def test_window_construction_rejects_bad_grids():
    with pytest.raises(ConfigurationError, match="cannot exceed"):
        WindowedSketch(window=60.0, slide=120.0)
    with pytest.raises(ConfigurationError, match="divide"):
        WindowedSketch(window=60.0, slide=7.0)
    with pytest.raises(ConfigurationError, match="tumbling"):
        WindowedSketch(window=60.0, slide=10.0, engine="frugal")


# -- window == offline §4.9 merge ---------------------------------------------


@pytest.mark.parametrize("engine", MERGEABLE)
def test_sliding_query_is_offline_merge_bit_identical(engine):
    """The windowed answer == merge_serialized of the live buckets."""
    rng = np.random.default_rng(7)
    win = _windowed(engine, window=60.0, slide=10.0)
    offline = {}  # bucket index -> standalone sketch fed the same data
    for i in range(6):
        batch = rng.normal(size=400)
        t = T0 + i * 10.0 + 3.0
        win.extend_at(batch, t)
        ref = _windowed(engine, window=60.0, slide=10.0)
        ref.extend_at(batch, t)
        offline[i] = dumps_any(ref._pairs()[0][1])
    merged = merge_serialized([offline[i] for i in range(6)])
    assert win.n == merged.n == 2400
    assert win.quantiles(PHIS) == merged.quantiles(PHIS)
    assert win.error_bound() == float(merged.error_bound())
    assert win.cdf(0.0) == merged.cdf(0.0)


def test_tumbling_window_is_single_bucket():
    win = _windowed("paper", window=60.0)
    assert win.n_buckets == 1
    win.extend_at(np.arange(1000.0), T0)
    assert win.n == 1000
    # no collapses at this size: bound 0, answer exact up to rank rounding
    assert abs(float(win.quantile(0.5)) - 500) <= max(win.error_bound(), 1.0)


# -- event-time semantics: watermark, expiry, out-of-order --------------------


@pytest.mark.parametrize("engine", ENGINES)
def test_expiry_follows_watermark_not_wall_clock(engine):
    win = _windowed(engine, window=60.0, clock=lambda: T0)
    win.extend_at(np.full(100, 1.0), T0)
    # a much later batch advances the watermark; the old bucket expires
    win.extend_at(np.full(50, 9.0), T0 + 600.0)
    assert win.n == 50
    assert float(win.quantile(0.5)) == pytest.approx(9.0, abs=1e-9)


def test_out_of_order_within_span_lands_in_its_bucket():
    win = _windowed("paper", window=60.0, slide=10.0)
    win.extend_at(np.full(100, 5.0), T0 + 50.0)
    win.extend_at(np.full(100, 1.0), T0 + 15.0)  # late but still live
    assert win.n == 200
    assert win.dropped == 0
    assert sorted(idx for idx, _ in win._live()) == sorted(
        int((T0 + dt) // 10.0) for dt in (15.0, 50.0)
    )


def test_too_old_batches_are_dropped_and_counted():
    win = _windowed("paper", window=60.0, slide=10.0)
    win.extend_at(np.full(10, 1.0), T0 + 600.0)
    win.extend_at(np.full(25, 2.0), T0)  # older than the ring span
    assert win.dropped == 25
    assert win.total == 10  # dropped batches never count as ingested
    assert win.n == 10


def test_queries_do_not_mutate_the_ring():
    win = _windowed("paper", window=60.0, slide=10.0)
    win.extend_at(np.arange(500.0), T0)
    before = win.to_bytes()
    win.quantiles(PHIS)
    win.describe()
    win.cdf([10.0, 250.0])
    assert win.to_bytes() == before


def test_empty_window_raises_empty_summary():
    win = _windowed("paper", window=60.0)
    assert win.n == 0
    with pytest.raises(EmptySummaryError):
        win.quantile(0.5)
    dec = _decay("paper")
    assert dec.n == 0
    with pytest.raises(EmptySummaryError):
        dec.quantile(0.5)


def test_plain_extend_stamps_injected_clock():
    now = [T0]
    win = _windowed("paper", window=60.0, slide=10.0, clock=lambda: now[0])
    win.extend(np.full(10, 1.0))
    now[0] = T0 + 600.0  # window has fully passed on the fake clock
    win.extend(np.full(10, 2.0))
    assert win.n == 10
    assert float(win.quantile(0.5)) == pytest.approx(2.0, abs=1e-9)


# -- exponential decay semantics ----------------------------------------------


def test_decay_halves_weight_per_half_life():
    dec = _decay("paper", half_life=60.0)
    dec.extend_at(np.zeros(1000), T0)
    dec.extend_at(np.ones(1000), T0 + 60.0)  # old batch now one HL aged
    # weighted mass: 0.5 * 1000 zeros + 1.0 * 1000 ones
    assert dec.raw_n == 2000
    assert dec.n == 1500
    assert dec.cdf(0.5) == pytest.approx(500.0 / 1500.0, abs=0.02)
    assert dec.rank(0.5) == pytest.approx(500, abs=1500 * 0.03)


def test_decay_quantile_inverts_weighted_rank():
    dec = _decay("paper", half_life=60.0)
    dec.extend_at(np.zeros(1000), T0)
    dec.extend_at(np.ones(1000), T0 + 60.0)
    # phi above the zeros' weighted share must land on the new value
    assert float(dec.quantile(0.9)) == pytest.approx(1.0, abs=1e-6)
    assert float(dec.quantile(0.1)) == pytest.approx(0.0, abs=1e-6)


def test_decay_generations_fall_off_the_ring():
    dec = _decay("paper", half_life=1.0)
    dec.extend_at(np.zeros(100), T0)
    # 20 half-lives later: weight 2**-20 is far past the 2**-10 horizon
    dec.extend_at(np.ones(100), T0 + 20.0)
    assert dec.raw_n == 100
    assert float(dec.quantile(0.5)) == pytest.approx(1.0, abs=1e-9)


# -- absorb (cluster fan-in path) ---------------------------------------------


@pytest.mark.parametrize("engine", MERGEABLE)
def test_absorb_same_grid_equals_union_ring(engine):
    rng = np.random.default_rng(11)
    a = _windowed(engine, window=60.0, slide=10.0)
    b = _windowed(engine, window=60.0, slide=10.0)
    union = _windowed(engine, window=60.0, slide=10.0)
    for i in range(5):
        batch_a = rng.normal(size=300)
        batch_b = rng.normal(size=200)
        t = T0 + i * 10.0
        a.extend_at(batch_a, t)
        b.extend_at(batch_b, t + 2.0)  # same bucket, different offset
        union.extend_at(batch_a, t)
        union.extend_at(batch_b, t + 2.0)
    b_before = b.to_bytes()
    a.absorb(b)
    assert b.to_bytes() == b_before  # absorb must not consume its arg
    assert a.n == union.n
    assert a.quantiles(PHIS) == union.quantiles(PHIS)
    assert a.error_bound() == union.error_bound()


def test_absorb_rejects_config_mismatch():
    a = _windowed("paper", window=60.0, slide=10.0)
    b = _windowed("paper", window=60.0, slide=20.0)
    with pytest.raises(ConfigurationError, match="different"):
        a.absorb(b)
    with pytest.raises(ConfigurationError, match="different"):
        _decay("paper", half_life=60.0).absorb(_decay("paper", half_life=30.0))


def test_absorb_overlapping_frugal_buckets_refused():
    a = _windowed("frugal", window=60.0)
    b = _windowed("frugal", window=60.0)
    a.extend_at(np.arange(10.0), T0)
    b.extend_at(np.arange(10.0), T0)
    with pytest.raises(ConfigurationError, match="not mergeable"):
        a.absorb(b)


def test_absorb_disjoint_frugal_buckets_allowed():
    # tumbling frugal rings CAN fold when their buckets don't collide
    a = _windowed("frugal", window=60.0)
    b = _windowed("frugal", window=60.0)
    a.extend_at(np.arange(100.0), T0)
    b.extend_at(np.arange(100.0, 200.0), T0 + 60.0)
    a.absorb(b)
    assert a.n == 100  # b's newer bucket expired a's older one


# -- serialisation ------------------------------------------------------------

_CASES = [
    pytest.param(cls, engine, id=f"{cls.__name__}-{engine}")
    for cls in (WindowedSketch, ExpDecaySketch)
    for engine in ENGINES
]


def _build(cls, engine):
    if cls is WindowedSketch:
        slide = None if engine == "frugal" else 10.0
        return WindowedSketch(
            eps=0.02, window=60.0, slide=slide, engine=engine
        )
    return ExpDecaySketch(eps=0.02, half_life=60.0, engine=engine)


@pytest.mark.parametrize("cls,engine", _CASES)
def test_roundtrip_empty_ring(cls, engine):
    sk = _build(cls, engine)
    raw = sk.to_bytes()
    back = cls.from_bytes(raw)
    assert back.to_bytes() == raw
    assert back.n == 0
    with pytest.raises(EmptySummaryError):
        back.quantile(0.5)


@pytest.mark.parametrize("cls,engine", _CASES)
def test_roundtrip_single_bucket(cls, engine):
    sk = _build(cls, engine)
    sk.extend_at(np.arange(500.0), T0)
    raw = sk.to_bytes()
    back = cls.from_bytes(raw)
    assert back.to_bytes() == raw
    assert back.n == sk.n
    assert back.quantiles(PHIS) == sk.quantiles(PHIS)


@pytest.mark.parametrize("cls,engine", _CASES)
def test_roundtrip_multi_bucket_via_registry(cls, engine):
    if cls is WindowedSketch and engine == "frugal":
        step = 60.0  # tumbling: advance whole windows
    else:
        step = 10.0
    sk = _build(cls, engine)
    rng = np.random.default_rng(3)
    for i in range(4):
        sk.extend_at(rng.normal(size=200), T0 + i * step)
    raw = dumps_any(sk)
    assert engine_of(raw) == (
        "windowed" if cls is WindowedSketch else "expdecay"
    )
    back = loads_any(raw)
    assert type(back) is cls
    assert back.to_bytes() == sk.to_bytes()
    assert back.n == sk.n
    assert back.quantiles(PHIS) == sk.quantiles(PHIS)
    assert back.error_bound() == sk.error_bound()
    assert back.total == sk.total and back.dropped == sk.dropped


def test_magic_constants_match_registry():
    assert WINDOW_MAGIC == b"WINSKT01"
    assert DECAY_MAGIC == b"EXDSKT01"
    win = WindowedSketch(window=60.0)
    assert win.to_bytes()[:8] == WINDOW_MAGIC
    dec = ExpDecaySketch(half_life=60.0)
    assert dec.to_bytes()[:8] == DECAY_MAGIC


# -- replay determinism (the journal-recovery contract) -----------------------

COMMON = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

#: (values, dt) batches: uneven sizes, timestamps that move forward and
#: backward inside (and occasionally beyond) the ring span
batches = st.lists(
    st.tuples(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.floats(min_value=0.0, max_value=300.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


@COMMON
@given(batches=batches, engine=st.sampled_from(MERGEABLE))
def test_replay_reproduces_ring_bit_identically(batches, engine):
    """Feeding the same (values, t) pairs twice gives identical bytes --
    the property journal recovery relies on."""
    a = _windowed(engine, window=60.0, slide=10.0)
    b = _windowed(engine, window=60.0, slide=10.0)
    for values, dt in batches:
        arr = np.asarray(values, dtype=np.float64)
        a.extend_at(arr, T0 + dt)
    for values, dt in batches:
        arr = np.asarray(values, dtype=np.float64)
        b.extend_at(arr, T0 + dt)
    assert a.to_bytes() == b.to_bytes()
    # ... and a serialised copy keeps answering identically
    back = loads_any(dumps_any(a))
    if a.n:
        assert back.quantiles(PHIS) == a.quantiles(PHIS)


@COMMON
@given(batches=batches)
def test_decay_roundtrip_property(batches):
    sk = _decay("paper", half_life=30.0)
    for values, dt in batches:
        sk.extend_at(np.asarray(values, dtype=np.float64), T0 + dt)
    back = ExpDecaySketch.from_bytes(sk.to_bytes())
    assert back.to_bytes() == sk.to_bytes()
    assert back.n == sk.n
    if sk.raw_n:
        assert back.quantiles(PHIS) == sk.quantiles(PHIS)
        assert back.error_bound() == sk.error_bound()
