"""Streaming deserialization and shard fan-in (`load_from`,
`merge_serialized`) -- the service-facing additions to core/serialize."""

from __future__ import annotations

import io
import os
import socket
import threading

import numpy as np
import pytest

from repro.core import serialize
from repro.core.errors import ConfigurationError
from repro.core.framework import QuantileFramework

PHIS = [0.1, 0.5, 0.9]


def make_framework(seed=0, n=20_000, epsilon=0.02):
    fw = QuantileFramework.from_accuracy(epsilon=epsilon, n=n)
    fw.extend(np.random.default_rng(seed).permutation(n).astype(float))
    return fw


class TestLoadFrom:
    def test_pipe(self):
        """A pipe is non-seekable: the regression `load` cannot see."""
        fw = make_framework()
        payload = serialize.dumps(fw)
        read_fd, write_fd = os.pipe()
        writer = threading.Thread(
            target=lambda: (os.write(write_fd, payload),
                            os.close(write_fd))
        )
        writer.start()
        with os.fdopen(read_fd, "rb") as fh:
            out = serialize.load_from(fh)
        writer.join()
        assert out.quantiles(PHIS) == fw.quantiles(PHIS)
        assert out.error_bound() == fw.error_bound()

    def test_socket(self):
        fw = make_framework(seed=3)
        payload = serialize.dumps(fw)
        a, b = socket.socketpair()
        try:
            writer = threading.Thread(
                target=lambda: (a.sendall(payload), a.close())
            )
            writer.start()
            with b.makefile("rb") as fh:
                out = serialize.load_from(fh)
            writer.join()
            assert out.quantiles(PHIS) == fw.quantiles(PHIS)
        finally:
            b.close()

    def test_does_not_consume_past_payload(self):
        """Frames can be concatenated: each load stops at its own end."""
        fw1, fw2 = make_framework(seed=1), make_framework(seed=2)
        stream = io.BytesIO(serialize.dumps(fw1) + serialize.dumps(fw2))
        out1 = serialize.load_from(stream)
        out2 = serialize.load_from(stream)
        assert stream.read() == b""
        assert out1.quantiles(PHIS) == fw1.quantiles(PHIS)
        assert out2.quantiles(PHIS) == fw2.quantiles(PHIS)

    def test_matches_load(self, tmp_path):
        fw = make_framework(seed=9)
        path = tmp_path / "sketch.bin"
        with open(path, "wb") as fh:
            serialize.dump(fw, fh)
        with open(path, "rb") as fh:
            via_load = serialize.load(fh)
        with open(path, "rb") as fh:
            via_load_from = serialize.load_from(fh)
        assert via_load.quantiles(PHIS) == via_load_from.quantiles(PHIS)


class TestMergeSerialized:
    def test_fan_in_equals_absorb(self):
        """merge_serialized over shard payloads == in-process absorb --
        the paragraph-4.9 exchange, one hop per shard."""
        n_shards, per_shard = 4, 10_000
        rng = np.random.default_rng(5)
        data = rng.permutation(n_shards * per_shard).astype(float)
        parts = np.split(data, n_shards)

        shards = []
        for part in parts:
            fw = QuantileFramework.from_accuracy(
                epsilon=0.02, n=n_shards * per_shard
            )
            fw.extend(part)
            shards.append(fw)
        payloads = [serialize.dumps(fw) for fw in shards]

        merged = serialize.merge_serialized(payloads)
        assert merged.n == n_shards * per_shard

        reference = serialize.loads(payloads[0])
        for payload in payloads[1:]:
            reference.absorb(serialize.loads(payload))
        assert merged.quantiles(PHIS) == reference.quantiles(PHIS)
        assert merged.error_bound() == reference.error_bound()

    def test_single_payload(self):
        fw = make_framework(seed=8)
        merged = serialize.merge_serialized([serialize.dumps(fw)])
        assert merged.quantiles(PHIS) == fw.quantiles(PHIS)

    def test_empty_iterable_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            serialize.merge_serialized([])

    def test_accepts_generator(self):
        fws = [make_framework(seed=s, n=5_000) for s in (1, 2)]
        merged = serialize.merge_serialized(
            serialize.dumps(fw) for fw in fws
        )
        assert merged.n == 10_000
