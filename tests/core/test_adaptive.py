"""Tests for the unknown-N adaptive sketch."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveQuantileSketch
from repro.core.errors import ConfigurationError, EmptySummaryError


def rank_err(value, phi, n):
    target = min(max(math.ceil(phi * n), 1), n)
    return abs((value + 1) - target) / n


class TestConstruction:
    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigurationError):
            AdaptiveQuantileSketch(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            AdaptiveQuantileSketch(epsilon=1.0)

    def test_rejects_tiny_initial_capacity(self):
        with pytest.raises(ConfigurationError):
            AdaptiveQuantileSketch(epsilon=0.1, initial_capacity=2)

    def test_empty_raises(self):
        sk = AdaptiveQuantileSketch(epsilon=0.1)
        with pytest.raises(EmptySummaryError):
            sk.query(0.5)

    def test_rejects_2d(self):
        sk = AdaptiveQuantileSketch(epsilon=0.1)
        with pytest.raises(ConfigurationError):
            sk.extend(np.ones((2, 2)))


class TestGuarantee:
    @pytest.mark.parametrize(
        "n", [100, 5_000, 50_000, 500_000]
    )
    def test_epsilon_honoured_at_any_length(self, n):
        eps = 0.01
        rng = np.random.default_rng(n)
        data = rng.permutation(n).astype(np.float64)
        sk = AdaptiveQuantileSketch(epsilon=eps)
        for i in range(0, n, 1 << 14):
            sk.extend(data[i : i + (1 << 14)])
        assert len(sk) == n
        for phi in (0.1, 0.5, 0.9):
            assert rank_err(sk.query(phi), phi, n) <= eps

    def test_certified_bound_covers_answers(self):
        n, eps = 200_000, 0.02
        data = np.random.default_rng(8).permutation(n).astype(np.float64)
        sk = AdaptiveQuantileSketch(epsilon=eps)
        sk.extend(data)
        answers = {phi: sk.query(phi) for phi in (0.05, 0.5, 0.95)}
        bound = sk.error_bound()
        assert bound <= eps * n
        for phi, got in answers.items():
            assert rank_err(got, phi, n) * n <= bound + 1

    def test_bound_zero_before_any_collapse(self):
        sk = AdaptiveQuantileSketch(epsilon=0.1, initial_capacity=1024)
        sk.extend(np.arange(10, dtype=np.float64))
        assert sk.error_bound() == 0.0
        assert sk.query(0.5) == 4.0  # exact on tiny inputs

    def test_sorted_adversarial_order(self):
        n, eps = 300_000, 0.005
        sk = AdaptiveQuantileSketch(epsilon=eps)
        sk.extend(np.arange(n, dtype=np.float64))
        for phi in (0.25, 0.5, 0.75):
            assert rank_err(sk.query(phi), phi, n) <= eps


class TestStaging:
    def test_stages_grow_geometrically(self):
        sk = AdaptiveQuantileSketch(epsilon=0.05, initial_capacity=1000)
        sk.extend(np.random.default_rng(0).permutation(70_000).astype(float))
        # capacities 1000+2000+4000+8000+16000+32000 = 63000 < 70000
        assert sk.n_stages == 7

    def test_memory_grows_slowly(self):
        # memory at n=1e6 should be far below even sqrt growth
        sk = AdaptiveQuantileSketch(epsilon=0.01)
        data = np.random.default_rng(1).permutation(10**6).astype(float)
        sk.extend(data)
        assert sk.memory_elements < 50_000  # ~5% of n, polylog in theory

    def test_update_scalar_path(self):
        sk = AdaptiveQuantileSketch(epsilon=0.1, initial_capacity=16)
        for v in range(100):
            sk.update(float(v))
        assert len(sk) == 100
        assert rank_err(sk.query(0.5), 0.5, 100) <= 0.1

    def test_mid_stream_queries(self):
        sk = AdaptiveQuantileSketch(epsilon=0.02, initial_capacity=256)
        rng = np.random.default_rng(5)
        data = rng.permutation(40_000).astype(np.float64)
        seen = 0
        for i in range(0, 40_000, 3000):
            chunk = data[i : i + 3000]
            sk.extend(chunk)
            seen += len(chunk)
            got = sk.query(0.5)
            # mid-stream the prefix is itself a uniform sample of ranks,
            # so only a loose sanity check applies
            assert 0 <= got < 40_000
        assert seen == len(sk)


class TestInverseQueries:
    def test_rank_and_cdf(self):
        n = 100_000
        data = np.random.default_rng(3).permutation(n).astype(np.float64)
        sk = AdaptiveQuantileSketch(epsilon=0.01)
        sk.extend(data)
        got = sk.rank(n // 2)
        assert abs(got - (n // 2 + 1)) <= sk.error_bound() + 1
        assert sk.cdf(-1.0) == 0.0
        assert sk.cdf(float(n)) == 1.0

    def test_cdf_monotone(self):
        sk = AdaptiveQuantileSketch(epsilon=0.02, initial_capacity=256)
        sk.extend(np.random.default_rng(4).normal(0, 1, 30_000))
        probes = np.linspace(-3, 3, 13)
        values = [sk.cdf(float(p)) for p in probes]
        assert values == sorted(values)

    def test_rank_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            AdaptiveQuantileSketch(epsilon=0.1).rank(1.0)
