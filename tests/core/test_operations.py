"""Unit tests for NEW/COLLAPSE/OUTPUT mechanics (Section 3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer import Buffer
from repro.core.errors import ConfigurationError
from repro.core.operations import (
    OffsetSelector,
    augmented_phi,
    collapse,
    output,
    weighted_select,
)


def _buf(values, weight=1, k=None):
    buf = Buffer.from_values(np.asarray(values, dtype=np.float64), k=k or len(values))
    buf.weight = weight
    return buf


def _gbuf(values, weight=1, k=None):
    buf = Buffer.from_values(list(values), k=k or len(values))
    buf.weight = weight
    return buf


class TestOffsetSelector:
    def test_odd_weight_is_midpoint(self):
        sel = OffsetSelector()
        assert sel.offset_for(5) == 3
        assert sel.offset_for(7) == 4

    def test_even_weight_alternates(self):
        sel = OffsetSelector()
        offsets = [sel.offset_for(4) for _ in range(4)]
        assert offsets == [2, 3, 2, 3]

    def test_alternation_interleaves_across_weights(self):
        sel = OffsetSelector()
        assert sel.offset_for(4) == 2
        assert sel.offset_for(6) == 4  # (6+2)/2: the "high" turn
        assert sel.offset_for(4) == 2

    def test_odd_weights_do_not_consume_alternation(self):
        sel = OffsetSelector()
        sel.offset_for(5)
        assert sel.offset_for(4) == 2  # still the "low" turn

    def test_pinned_modes(self):
        low = OffsetSelector("low")
        high = OffsetSelector("high")
        assert [low.offset_for(4) for _ in range(3)] == [2, 2, 2]
        assert [high.offset_for(4) for _ in range(3)] == [3, 3, 3]

    def test_invalid_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            OffsetSelector("sideways")

    def test_weight_below_two_rejected(self):
        with pytest.raises(ConfigurationError):
            OffsetSelector().offset_for(1)

    def test_lemma1_sum_of_offsets(self):
        # Over any sequence of collapses, sum(offsets) >= (W + C - 1) / 2.
        sel = OffsetSelector()
        weights = [2, 4, 4, 3, 6, 2, 8, 5, 4, 4, 6, 6]
        offsets = [sel.offset_for(w) for w in weights]
        total_w = sum(weights)
        c = len(weights)
        assert sum(offsets) >= (total_w + c - 1) / 2


class TestWeightedSelect:
    def test_unweighted_is_plain_selection(self):
        got = weighted_select([_buf([1, 3, 5]), _buf([2, 4, 6])], [1, 4, 6])
        assert list(got) == [1.0, 4.0, 6.0]

    def test_weights_duplicate_logically(self):
        # buffer [10, 20] with weight 3 -> logical sequence 10,10,10,20,20,20
        buf = _buf([10, 20], weight=3)
        got = weighted_select([buf], [1, 3, 4, 6])
        assert list(got) == [10.0, 10.0, 20.0, 20.0]

    def test_mixed_weights(self):
        # A: [1, 4] w=2 -> 1,1,4,4 ; B: [2] w=1... but capacities must match.
        a = _buf([1, 4], weight=2)
        b = _buf([2, 9], weight=1)
        # merged weighted: 1,1,2,4,4,9
        got = weighted_select([a, b], [1, 2, 3, 4, 5, 6])
        assert list(got) == [1, 1, 2, 4, 4, 9]

    def test_generic_path_matches_numeric(self):
        values_a, values_b = [1, 4, 7], [2, 4, 9]
        a_num, b_num = _buf(values_a, weight=2), _buf(values_b, weight=3)
        a_gen, b_gen = _gbuf(values_a, weight=2), _gbuf(values_b, weight=3)
        targets = list(range(1, 16))
        num = [float(v) for v in weighted_select([a_num, b_num], targets)]
        gen = [float(v) for v in weighted_select([a_gen, b_gen], targets)]
        assert num == gen

    def test_position_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_select([_buf([1, 2])], [3])
        with pytest.raises(ConfigurationError):
            weighted_select([_buf([1, 2])], [0])

    def test_no_buffers_rejected(self):
        with pytest.raises(ConfigurationError):
            weighted_select([], [1])

    def test_empty_targets(self):
        assert list(weighted_select([_buf([1.0])], [])) == []

    def test_matches_explicit_materialisation(self, rng):
        # Cross-check against physically repeating elements and sorting.
        buffers = [
            _buf(rng.integers(0, 50, 6).astype(np.float64), weight=w)
            for w in (1, 2, 5)
        ]
        expanded = []
        for buf in buffers:
            for v in buf.values:
                expanded.extend([float(v)] * buf.weight)
        expanded.sort()
        targets = [1, 7, 13, 25, len(expanded)]
        got = weighted_select(buffers, targets)
        assert [float(v) for v in got] == [expanded[t - 1] for t in targets]


class TestCollapse:
    def test_paper_semantics_small_example(self):
        # Two weight-1 buffers of k=3 -> w(Y)=2 (even), first offset = 1.
        # merged: 1,2,3,4,5,6 ; positions j*2+1 = 1,3,5 -> 1,3,5
        y = collapse([_buf([1, 3, 5]), _buf([2, 4, 6])], OffsetSelector())
        assert list(y.values) == [1.0, 3.0, 5.0]
        assert y.weight == 2

    def test_explicit_offset(self):
        y = collapse([_buf([1, 3, 5]), _buf([2, 4, 6])], 2)
        # positions 2, 4, 6 -> 2, 4, 6
        assert list(y.values) == [2.0, 4.0, 6.0]

    def test_odd_output_weight_uses_midpoint(self):
        a = _buf([1, 4], weight=2)
        b = _buf([2, 9], weight=1)
        # w(Y)=3, offset=2; merged weighted: 1,1,2,4,4,9 -> positions 2,5
        y = collapse([a, b], OffsetSelector())
        assert list(y.values) == [1.0, 4.0]
        assert y.weight == 3

    def test_weight_is_sum_of_inputs(self):
        y = collapse([_buf([1, 2], weight=4), _buf([3, 4], weight=6)], 5)
        assert y.weight == 10

    def test_level_defaults_to_child_plus_one(self):
        a = Buffer.from_values(np.array([1.0, 2.0]), k=2, level=3)
        b = Buffer.from_values(np.array([3.0, 4.0]), k=2, level=3)
        y = collapse([a, b], 1)
        assert y.level == 4
        y2 = collapse([a, b], 1, level=9)
        assert y2.level == 9

    def test_requires_two_buffers(self):
        with pytest.raises(ConfigurationError):
            collapse([_buf([1, 2])], 1)

    def test_requires_equal_capacity(self):
        with pytest.raises(ConfigurationError):
            collapse([_buf([1, 2]), _buf([1, 2, 3])], 1)

    def test_padding_propagates_through_collapse(self):
        padded = Buffer.from_values(np.array([5.0]), k=4)  # pads: 2 low, 1 high
        full = _buf([1, 2, 3, 4])
        y = collapse([padded, full], OffsetSelector())
        # pads counted from the actual output contents
        n_inf = int(np.isinf(y.values).sum())
        assert n_inf == y.n_low_pad + y.n_high_pad

    def test_generic_collapse_matches_numeric(self):
        nums = [[1, 5, 9], [2, 6, 10], [3, 7, 11]]
        num_bufs = [_buf(v, weight=w) for v, w in zip(nums, (1, 2, 3))]
        gen_bufs = [_gbuf(v, weight=w) for v, w in zip(nums, (1, 2, 3))]
        y_num = collapse(num_bufs, 3)
        y_gen = collapse(gen_bufs, 3)
        assert [float(v) for v in y_num.values] == [
            float(v) for v in y_gen.values
        ]
        assert y_num.weight == y_gen.weight == 6


class TestOutput:
    def test_single_buffer_exact(self):
        buf = _buf([10, 20, 30, 40, 50])
        got = output([buf], [0.0, 0.2, 0.5, 1.0], n_real=5)
        assert got == [10.0, 10.0, 30.0, 50.0]

    def test_weighted_output_position_exact_arithmetic(self):
        # Section 3.3: position ceil(phi' k W) of the weighted merge.
        a = _buf([1, 3], weight=2)
        b = _buf([2, 4], weight=1)
        merged = sorted([1, 1, 3, 3] + [2, 4])
        for phi in (0.01, 0.2, 0.4, 0.5, 0.75, 1.0):
            import math

            rank = min(max(math.ceil(phi * 6), 1), 6)
            assert output([a, b], [phi], n_real=6)[0] == merged[rank - 1]

    def test_padding_shifts_target_rank(self):
        # last buffer padded: 2 low pads, 1 high pad around [7]
        padded = Buffer.from_values(np.array([7.0]), k=4)
        full = _buf([1, 2, 3, 4])
        # augmented sorted: -inf,-inf,1,2,3,4,7,+inf ; real ranks 1..5 map to
        # augmented positions 3..7
        got = output([full, padded], [0.2, 1.0], n_real=5)
        assert got == [1.0, 7.0]

    def test_multiple_phis_preserve_order(self):
        buf = _buf([10, 20, 30, 40, 50])
        got = output([buf], [0.9, 0.1, 0.5], n_real=5)
        assert got == [50.0, 10.0, 30.0]

    def test_phi_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            output([_buf([1.0])], [1.5], n_real=1)

    def test_empty_buffers_rejected(self):
        with pytest.raises(ConfigurationError):
            output([], [0.5], n_real=1)

    def test_zero_real_elements_rejected(self):
        with pytest.raises(ConfigurationError):
            output([_buf([1.0])], [0.5], n_real=0)


class TestAugmentedPhi:
    def test_identity_when_no_padding(self):
        assert augmented_phi(0.3, 1.0) == pytest.approx(0.3)

    def test_paper_formula(self):
        # beta=2: phi' = (2 phi + 1) / 4
        assert augmented_phi(0.5, 2.0) == pytest.approx(0.5)
        assert augmented_phi(0.0, 2.0) == pytest.approx(0.25)
        assert augmented_phi(1.0, 2.0) == pytest.approx(0.75)

    def test_monotone_in_phi(self):
        values = [augmented_phi(p, 1.5) for p in np.linspace(0, 1, 11)]
        assert values == sorted(values)

    def test_beta_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            augmented_phi(0.5, 0.99)


class TestWeightedRank:
    def test_numeric_counts(self):
        from repro.core.operations import weighted_rank

        a = _buf([1, 3, 5], weight=2)
        b = _buf([2, 4, 6], weight=1)
        # weighted: 1,1,2,3,3,4,5,5,6
        assert weighted_rank([a, b], 3.0) == (3, 5)
        assert weighted_rank([a, b], 0.0) == (0, 0)
        assert weighted_rank([a, b], 10.0) == (9, 9)
        assert weighted_rank([a, b], 3.5) == (5, 5)

    def test_generic_matches_numeric(self):
        from repro.core.operations import weighted_rank

        values_a, values_b = [1, 3, 5], [2, 3, 9]
        num = [_buf(values_a, weight=2), _buf(values_b, weight=3)]
        gen = [_gbuf(values_a, weight=2), _gbuf(values_b, weight=3)]
        for probe in (-1, 1, 2, 3, 3.5, 9, 10):
            assert weighted_rank(num, float(probe)) == weighted_rank(
                gen, probe
            )

    def test_pads_excluded(self):
        from repro.core.operations import weighted_rank

        padded = Buffer.from_values(np.array([7.0]), k=5)  # pads around 7
        # -inf pads must not count as elements below any probe
        assert weighted_rank([padded], 3.0) == (0, 0)
        assert weighted_rank([padded], 7.0) == (0, 1)
        assert weighted_rank([padded], 9.0) == (1, 1)

    def test_no_buffers_rejected(self):
        from repro.core.operations import weighted_rank

        with pytest.raises(ConfigurationError):
            weighted_rank([], 1.0)
