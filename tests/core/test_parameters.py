"""Tests for closed-form tree statistics and (b, k) optimisation.

The hard targets here are the actual Table 1 entries of the paper: the
optimisers must reproduce them *exactly* (they are pure arithmetic).
"""

from __future__ import annotations

import math

import pytest

from repro.core.errors import ConfigurationError
from repro.core.parameters import (
    alsabti_ranka_singh_stats,
    best_over_policies,
    munro_paterson_stats,
    new_algorithm_stats,
    optimal_parameters,
    parameter_table,
)

EPSILONS = [0.1, 0.05, 0.01, 0.005, 0.001]
NS = [10**5, 10**6, 10**7, 10**8, 10**9]

# (b, k) entries transcribed from Table 1 of the paper.
TABLE1_MP = {
    (0.100, 10**5): (11, 98),
    (0.100, 10**6): (14, 123),
    (0.100, 10**7): (17, 153),
    (0.100, 10**8): (21, 96),
    (0.100, 10**9): (24, 120),
    (0.050, 10**8): (20, 191),
    (0.050, 10**9): (23, 239),
    (0.010, 10**5): (9, 391),
    (0.010, 10**6): (11, 977),
    (0.010, 10**9): (21, 954),
    (0.005, 10**5): (8, 782),
    (0.001, 10**5): (6, 3125),
    (0.001, 10**7): (11, 9766),
    (0.001, 10**9): (17, 15259),
}

TABLE1_ARS = {
    (0.100, 10**5): (280, 6),
    (0.100, 10**9): (28282, 6),
    (0.050, 10**5): (198, 11),
    (0.050, 10**9): (19998, 11),
    (0.010, 10**5): (88, 52),
    (0.010, 10**7): (892, 51),
    (0.005, 10**6): (198, 103),
    (0.001, 10**5): (26, 592),
    (0.001, 10**9): (2826, 501),
}

TABLE1_NEW = {
    (0.100, 10**5): (5, 55),
    (0.100, 10**6): (7, 54),
    (0.100, 10**7): (10, 60),
    (0.100, 10**8): (15, 51),
    (0.100, 10**9): (12, 77),
    (0.050, 10**5): (6, 78),
    (0.050, 10**6): (6, 117),
    (0.050, 10**7): (8, 129),
    (0.050, 10**8): (7, 211),
    (0.050, 10**9): (8, 235),
    (0.010, 10**5): (7, 217),
    (0.010, 10**6): (12, 229),
    (0.010, 10**7): (9, 412),
    (0.010, 10**8): (10, 596),
    (0.010, 10**9): (10, 765),
    (0.005, 10**5): (3, 953),
    (0.005, 10**6): (8, 583),
    (0.005, 10**7): (8, 875),
    (0.005, 10**8): (8, 1290),
    (0.005, 10**9): (7, 2106),
    (0.001, 10**5): (3, 2778),
    (0.001, 10**6): (5, 3031),
    (0.001, 10**7): (5, 5495),
    (0.001, 10**8): (9, 4114),
    (0.001, 10**9): (10, 5954),
}


class TestClosedForms:
    def test_munro_paterson_figure2_shape(self):
        # b=6: 2^5 = 32 leaves, 30 collapses, W = 4*32, w_max = 16
        stats = munro_paterson_stats(6)
        assert stats.n_leaves == 32
        assert stats.n_collapses == 30
        assert stats.sum_collapse_weights == 128
        assert stats.w_max == 16

    def test_munro_paterson_error_simplification(self):
        # Section 4.3: error = (b-2) 2^(b-2) + 1/2
        for b in range(2, 12):
            stats = munro_paterson_stats(b)
            if stats.n_collapses:
                assert stats.error_bound == (b - 2) * 2 ** (b - 2) + 0.5

    def test_ars_figure3_shape(self):
        # b=10: 25 leaves (5 rounds of 5), 5 collapses of weight 5
        stats = alsabti_ranka_singh_stats(10)
        assert stats.n_leaves == 25
        assert stats.n_collapses == 5
        assert stats.sum_collapse_weights == 25
        assert stats.w_max == 5

    def test_ars_error_simplification(self):
        # Section 4.4: error = b^2/8 + b/4 - 1/2
        for b in range(4, 30, 2):
            stats = alsabti_ranka_singh_stats(b)
            assert stats.error_bound == b * b / 8 + b / 4 - 0.5

    def test_ars_rejects_odd_b(self):
        with pytest.raises(ConfigurationError):
            alsabti_ranka_singh_stats(7)

    def test_new_combinatorial_forms(self):
        # Spot-check the binomials for b=5, h=13 (the eps=.1, N=1e5 winner)
        stats = new_algorithm_stats(5, 13)
        assert stats.n_leaves == math.comb(16, 12)  # 1820
        assert stats.n_collapses == math.comb(15, 11) - 1
        assert stats.w_max == math.comb(15, 11)

    def test_new_error_equals_paper_constraint_halved(self):
        for b in range(2, 10):
            for h in range(3, 10):
                stats = new_algorithm_stats(b, h)
                paper_lhs = (
                    (h - 2) * math.comb(b + h - 2, h - 1)
                    - math.comb(b + h - 3, h - 3)
                    + math.comb(b + h - 3, h - 2)
                )
                assert stats.error_bound == pytest.approx(paper_lhs / 2.0)

    def test_new_rejects_short_trees(self):
        with pytest.raises(ConfigurationError):
            new_algorithm_stats(5, 2)


class TestOptimisers:
    @pytest.mark.parametrize("key,expected", sorted(TABLE1_MP.items()))
    def test_table1_munro_paterson(self, key, expected):
        eps, n = key
        plan = optimal_parameters(eps, n, policy="mp")
        assert (plan.b, plan.k) == expected

    @pytest.mark.parametrize("key,expected", sorted(TABLE1_ARS.items()))
    def test_table1_alsabti_ranka_singh(self, key, expected):
        eps, n = key
        plan = optimal_parameters(eps, n, policy="ars")
        assert (plan.b, plan.k) == expected

    @pytest.mark.parametrize("key,expected", sorted(TABLE1_NEW.items()))
    def test_table1_new_algorithm(self, key, expected):
        eps, n = key
        plan = optimal_parameters(eps, n, policy="new")
        assert (plan.b, plan.k) == expected

    def test_new_beats_others_everywhere(self):
        # Section 4.6: "the new algorithm is always better in terms of space"
        for eps in EPSILONS:
            for n in NS:
                new = optimal_parameters(eps, n, policy="new").memory
                mp = optimal_parameters(eps, n, policy="mp").memory
                ars = optimal_parameters(eps, n, policy="ars").memory
                assert new <= mp
                assert new <= ars

    def test_plans_satisfy_both_constraints(self):
        for eps in EPSILONS:
            for n in (10**5, 10**7):
                for policy in ("new", "mp", "ars"):
                    plan = optimal_parameters(eps, n, policy=policy)
                    assert plan.error_bound <= eps * n + 0.5
                    # coverage: enough leaf capacity for the whole stream
                    if policy == "mp" and plan.b > 2:
                        assert plan.k * 2 ** (plan.b - 1) >= n
                    elif policy == "ars" and plan.b > 2:
                        assert plan.k * plan.b**2 // 4 >= n
                    elif policy == "new" and plan.height is not None:
                        leaves = math.comb(
                            plan.b + plan.height - 2, plan.height - 1
                        )
                        assert plan.k * leaves >= n

    def test_tiny_epsilon_falls_back_to_no_collapse(self):
        plan = optimal_parameters(1e-6, 100, policy="new")
        assert plan.b == 2
        assert plan.k == 50
        assert plan.error_bound == 0.5

    def test_best_over_policies_picks_new(self):
        plan = best_over_policies(0.01, 10**6)
        assert plan.policy == "new"

    def test_parameter_table_grid(self):
        grid = parameter_table([0.1, 0.01], [10**5, 10**6], policy="new")
        assert len(grid) == 4
        assert grid[(0.1, 10**5)].b == 5

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            optimal_parameters(0.0, 100)
        with pytest.raises(ConfigurationError):
            optimal_parameters(1.5, 100)
        with pytest.raises(ConfigurationError):
            optimal_parameters(0.1, 0)
        with pytest.raises(ConfigurationError):
            optimal_parameters(0.1, 100, policy="nope")

    def test_memory_grows_as_epsilon_shrinks(self):
        memories = [
            optimal_parameters(eps, 10**7, policy="new").memory
            for eps in EPSILONS
        ]
        assert memories == sorted(memories)

    def test_memory_grows_with_n(self):
        memories = [
            optimal_parameters(0.01, n, policy="new").memory for n in NS
        ]
        assert memories == sorted(memories)
