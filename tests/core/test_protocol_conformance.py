"""Every sketch-like object answers the same query quartet.

:class:`repro.core.SketchProtocol` formalises the surface --
``quantile(phi)``, ``quantiles(phis)``, ``cdf(value)``, ``describe()``
plus ``n`` and ``error_bound()`` -- and this test drives each
implementation through it with the same data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DESCRIBE_PHIS, SketchProtocol
from repro.core.adaptive import AdaptiveQuantileSketch
from repro.core.framework import QuantileFramework
from repro.core.frugal import FrugalSketch
from repro.core.kll import KLLSketch
from repro.core.parallel import ParallelQuantileEngine
from repro.core.sampling import SampledQuantileFramework
from repro.core.sketch import QuantileSketch
from repro.windows import ExpDecaySketch, WindowedSketch

N = 20_000

#: fixed fake clock for the time-aware wrappers: every batch lands in
#: one live bucket, so they answer over exactly the same N elements
_T0 = 1_000_000.0


def _framework():
    return QuantileFramework(8, 500, policy="new")


def _sketch():
    return QuantileSketch(eps=0.01, n=N)


def _adaptive():
    return AdaptiveQuantileSketch(eps=0.01)


def _sampled():
    return SampledQuantileFramework(0.05, N, 0.01, seed=11)


def _engine():
    return ParallelQuantileEngine(eps=0.02, n=N, n_workers=2, backend="sync")


def _kll():
    return KLLSketch(eps=0.01, seed=0)


def _frugal():
    return FrugalSketch(seed=0)


def _windowed(engine):
    # tumbling hour-wide window; frugal is tumbling-only by construction
    return lambda: WindowedSketch(
        eps=0.01, window=3600.0, engine=engine, clock=lambda: _T0
    )


def _windowed_sliding():
    return WindowedSketch(
        eps=0.01, window=600.0, slide=100.0, engine="kll",
        clock=lambda: _T0,
    )


def _decay(engine):
    return lambda: ExpDecaySketch(
        eps=0.01, half_life=3600.0, engine=engine, clock=lambda: _T0
    )


# (factory, rank tolerance as a fraction of N): the certified engines get
# the tight 0.06; frugal has no bound -- its stochastic-approximation
# estimates on this integer-range stream stay within ~0.12
FACTORIES = [
    pytest.param(_framework, 0.06, id="QuantileFramework"),
    pytest.param(_sketch, 0.06, id="QuantileSketch"),
    pytest.param(_adaptive, 0.06, id="AdaptiveQuantileSketch"),
    pytest.param(_sampled, 0.06, id="SampledQuantileFramework"),
    pytest.param(_engine, 0.06, id="ParallelQuantileEngine"),
    pytest.param(_kll, 0.06, id="KLLSketch"),
    pytest.param(_frugal, 0.12, id="FrugalSketch"),
    pytest.param(_windowed("paper"), 0.06, id="WindowedSketch-paper"),
    pytest.param(_windowed_sliding, 0.06, id="WindowedSketch-kll-sliding"),
    pytest.param(_windowed("frugal"), 0.12, id="WindowedSketch-frugal"),
    pytest.param(_decay("paper"), 0.06, id="ExpDecaySketch-paper"),
    pytest.param(_decay("kll"), 0.06, id="ExpDecaySketch-kll"),
    pytest.param(_decay("frugal"), 0.12, id="ExpDecaySketch-frugal"),
]


@pytest.fixture
def data():
    return np.random.default_rng(3).permutation(N).astype(np.float64)


def _fill(sketch, data):
    if isinstance(sketch, ParallelQuantileEngine):
        sketch.dispatch(data)
    else:
        sketch.extend(data)
    return sketch


@pytest.mark.parametrize("factory,tol", FACTORIES)
def test_satisfies_protocol(factory, tol, data):
    sketch = _fill(factory(), data)
    assert isinstance(sketch, SketchProtocol)


@pytest.mark.parametrize("factory,tol", FACTORIES)
def test_quantile_quartet_consistency(factory, tol, data):
    sketch = _fill(factory(), data)
    assert sketch.n == N
    # scalar == vector spelling
    assert sketch.quantile(0.5) == sketch.quantiles([0.5])[0]
    # values on a permutation of 0..N-1: answer ~ phi * N
    for phi in (0.25, 0.5, 0.75):
        assert abs(float(sketch.quantile(phi)) - phi * N) <= tol * N


@pytest.mark.parametrize("factory,tol", FACTORIES)
def test_cdf_scalar_and_sequence(factory, tol, data):
    sketch = _fill(factory(), data)
    scalar = sketch.cdf(N / 2)
    assert isinstance(scalar, float)
    assert abs(scalar - 0.5) <= tol
    seq = sketch.cdf([N / 4, N / 2, 3 * N / 4])
    assert isinstance(seq, list) and len(seq) == 3
    assert seq == sorted(seq)
    assert seq[1] == scalar


@pytest.mark.parametrize("factory,tol", FACTORIES)
def test_describe_shape(factory, tol, data):
    sketch = _fill(factory(), data)
    report = sketch.describe()
    assert report["n"] == N
    assert set(report["quantiles"]) == set(DESCRIBE_PHIS)
    assert report["min"] <= report["quantiles"][0.5] <= report["max"]
    values = [report["quantiles"][phi] for phi in sorted(DESCRIBE_PHIS)]
    assert values == sorted(values)
    assert report["error_bound"] >= 0.0
    assert report["error_bound_fraction"] == pytest.approx(
        report["error_bound"] / N
    )


def test_bank_answers_quartet_per_id(data):
    from repro.core.bank import SketchBank

    bank = SketchBank(eps=0.02, n=N, n_sketches=2)
    bank.extend_single(0, data)
    bank.extend_single(1, data[: N // 2])
    assert bank.quantile(0, 0.5) == bank.sketch(0).quantile(0.5)
    assert abs(bank.cdf(0, N / 2) - 0.5) <= 0.06
    report = bank.describe(0)
    assert report["n"] == N


def test_generator_ingest_on_sampling_frontend():
    """Regression: ``extend`` must accept generators, not just arrays."""
    sk = SampledQuantileFramework(0.05, 10_000, 0.01, seed=5)
    sk.extend(float(i) for i in range(10_000))
    assert sk.n == 10_000
    assert abs(sk.quantile(0.5) - 5000) <= 0.1 * 10_000
