"""Tests for the analytic bounds of Sections 4.8 and 5.1."""

from __future__ import annotations

import pytest

from repro.core.bounds import (
    ars_asymptotic_space,
    error_bound_alsabti_ranka_singh,
    error_bound_munro_paterson,
    error_bound_new,
    theorem1_space,
    theorem2_space,
)
from repro.core.errors import ConfigurationError
from repro.core.parameters import optimal_parameters


class TestErrorBounds:
    def test_munro_paterson_closed_form(self):
        assert error_bound_munro_paterson(6) == 4 * 16 + 0.5

    def test_ars_closed_form(self):
        assert error_bound_alsabti_ranka_singh(10) == 100 / 8 + 2.5 - 0.5

    def test_new_bound_monotone_in_height(self):
        bounds = [error_bound_new(5, h) for h in range(3, 12)]
        assert bounds == sorted(bounds)

    def test_new_bound_monotone_in_b(self):
        bounds = [error_bound_new(b, 5) for b in range(2, 12)]
        assert bounds == sorted(bounds)


class TestTheorem1:
    def test_shape_is_polylog(self):
        # Doubling N multiplies the guide value by far less than 2.
        small = theorem1_space(0.01, 10**6)
        big = theorem1_space(0.01, 2 * 10**6)
        assert big / small < 1.3

    def test_actual_memory_tracks_theorem1(self):
        # measured bk / guide expression stays within a constant band
        ratios = []
        for n in (10**5, 10**6, 10**7, 10**8, 10**9):
            plan = optimal_parameters(0.01, n, policy="new")
            ratios.append(plan.memory / theorem1_space(0.01, n))
        assert max(ratios) / min(ratios) < 8  # constant-factor band

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            theorem1_space(0.0, 100)
        with pytest.raises(ConfigurationError):
            theorem1_space(0.1, 0)


class TestTheorem2:
    def test_independent_of_n_by_construction(self):
        # theorem2_space takes no N at all; check it is finite and positive
        assert theorem2_space(0.01, 1e-4) > 0

    def test_grows_as_epsilon_shrinks(self):
        assert theorem2_space(0.001, 1e-4) > theorem2_space(0.01, 1e-4)

    def test_weak_delta_dependence(self):
        # the delta term enters as log^2 log(1/delta): tiny
        a = theorem2_space(0.01, 1e-2)
        b = theorem2_space(0.01, 1e-8)
        assert b / a < 2.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            theorem2_space(0.01, 0.0)


class TestArsAsymptotics:
    def test_sqrt_growth(self):
        # quadrupling N should double the ARS guide value
        a = ars_asymptotic_space(0.01, 10**6)
        b = ars_asymptotic_space(0.01, 4 * 10**6)
        assert b / a == pytest.approx(2.0)

    def test_actual_ars_memory_tracks_sqrt(self):
        ratios = []
        for n in (10**5, 10**6, 10**7, 10**8, 10**9):
            plan = optimal_parameters(0.01, n, policy="ars")
            ratios.append(plan.memory / ars_asymptotic_space(0.01, n))
        assert max(ratios) / min(ratios) < 3
