"""KLL compactor engine: accuracy, batch invariance, merge, wire format."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.core.kll import KLL_MAGIC, KLLSketch, k_for_eps

N = 200_000


@pytest.fixture(scope="module")
def stream():
    return np.random.default_rng(42).normal(0.0, 1.0, N)


def _rank_error(data, sketch, phi):
    est = float(sketch.quantile(phi))
    true_rank = np.searchsorted(np.sort(data), est, side="right")
    return abs(true_rank - phi * len(data))


def test_k_for_eps_monotone():
    assert k_for_eps(0.01, 0.01) > k_for_eps(0.05, 0.01)
    assert k_for_eps(0.01, 0.01) % 2 == 0
    assert k_for_eps(0.9, 0.5) >= 8
    with pytest.raises(ConfigurationError):
        k_for_eps(1.0, 0.5)


def test_observed_error_within_certified_bound(stream):
    sk = KLLSketch(eps=0.01, seed=0)
    sk.extend(stream)
    bound = sk.error_bound()
    assert 0 < bound <= 0.01 * N
    for phi in (0.01, 0.25, 0.5, 0.75, 0.99):
        assert _rank_error(stream, sk, phi) <= bound


def test_memory_is_bounded_and_sublinear(stream):
    sk = KLLSketch(eps=0.01, seed=0)
    sk.extend(stream)
    assert sk.stored_elements <= sk.memory_elements
    assert sk.memory_elements < 0.02 * N  # far below the stream itself


def test_batch_invariance_byte_identical(stream):
    """Any chunking of the stream produces the identical serialised state."""
    whole = KLLSketch(eps=0.02, seed=7)
    whole.extend(stream[:50_000])
    ref = whole.to_bytes()
    for chunks in (100, 7):
        sk = KLLSketch(eps=0.02, seed=7)
        for part in np.array_split(stream[:50_000], chunks):
            sk.extend(part)
        assert sk.to_bytes() == ref


def test_exact_extremes_and_scalar_queries(stream):
    sk = KLLSketch(eps=0.01, seed=0)
    sk.extend(stream)
    assert sk.quantile(0.0) == stream.min()
    assert sk.quantile(1.0) == stream.max()
    assert sk.min() == stream.min() and sk.max() == stream.max()
    assert sk.quantile(0.5) == sk.quantiles([0.5])[0]
    assert sk.query(0.5) == sk.quantile(0.5)


def test_cdf_and_rank(stream):
    sk = KLLSketch(eps=0.01, seed=0)
    sk.extend(stream)
    assert abs(sk.cdf(0.0) - 0.5) <= 0.02
    assert sk.rank(stream.max()) == N
    seq = sk.cdf([-1.0, 0.0, 1.0])
    assert seq == sorted(seq)


def test_empty_and_invalid_inputs():
    sk = KLLSketch(eps=0.01)
    with pytest.raises(EmptySummaryError):
        sk.quantile(0.5)
    with pytest.raises(ConfigurationError):
        sk.extend([1.0, float("nan")])
    with pytest.raises(ConfigurationError):
        KLLSketch(eps=0.0)


def test_serialization_roundtrip(stream):
    sk = KLLSketch(eps=0.01, seed=3)
    sk.extend(stream[:30_000])
    raw = sk.to_bytes()
    assert raw[:8] == KLL_MAGIC
    back = KLLSketch.from_bytes(raw)
    assert back.to_bytes() == raw
    assert back.quantiles([0.1, 0.5, 0.9]) == sk.quantiles([0.1, 0.5, 0.9])
    assert back.error_bound() == sk.error_bound()
    # further ingest behaves identically
    sk.extend(stream[30_000:31_000])
    back.extend(stream[30_000:31_000])
    assert back.to_bytes() == sk.to_bytes()


def test_read_from_stops_at_payload_end(stream):
    sk = KLLSketch(eps=0.05, seed=1)
    sk.extend(stream[:5_000])
    buf = io.BytesIO(sk.to_bytes() + b"TRAILING")
    back = KLLSketch.read_from(buf)
    assert back.n == sk.n
    assert buf.read() == b"TRAILING"


def test_merge_matches_union_accuracy(stream):
    a = KLLSketch(eps=0.01, seed=0)
    b = KLLSketch(eps=0.01, seed=1)
    a.extend(stream[: N // 2])
    b.extend(stream[N // 2 :])
    a.absorb(b)
    assert a.n == N
    bound = a.error_bound()
    assert bound <= 2 * 0.01 * N
    for phi in (0.25, 0.5, 0.75):
        assert _rank_error(stream, a, phi) <= bound


def test_merge_requires_equal_k():
    a = KLLSketch(eps=0.01)
    b = KLLSketch(eps=0.05)
    a.extend([1.0])
    b.extend([2.0])
    with pytest.raises(ConfigurationError):
        a.absorb(b)


def test_merge_is_deterministic(stream):
    def build():
        a = KLLSketch(eps=0.02, seed=0)
        b = KLLSketch(eps=0.02, seed=5)
        a.extend(stream[:40_000])
        b.extend(stream[40_000:80_000])
        a.absorb(b)
        return a.to_bytes()

    assert build() == build()
