"""Integration-level tests for the streaming framework driver."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import (
    CapacityExceededError,
    ConfigurationError,
    EmptySummaryError,
)
from repro.core.framework import QuantileFramework

POLICIES = ["new", "munro-paterson", "alsabti-ranka-singh"]


def rank_err(value: float, phi: float, n: int) -> float:
    target = min(max(math.ceil(phi * n), 1), n)
    return abs((value + 1) - target) / n


class TestConstruction:
    def test_rejects_b_below_two(self):
        with pytest.raises(ConfigurationError):
            QuantileFramework(b=1, k=10)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ConfigurationError):
            QuantileFramework(b=3, k=0)

    def test_strict_capacity_needs_designed_n(self):
        with pytest.raises(ConfigurationError):
            QuantileFramework(b=3, k=10, strict_capacity=True)

    def test_from_accuracy_sizes_for_guarantee(self):
        fw = QuantileFramework.from_accuracy(0.01, 10**6)
        assert fw.designed_n == 10**6
        assert fw.memory_elements == fw.b * fw.k

    def test_memory_elements(self):
        assert QuantileFramework(b=7, k=13).memory_elements == 91


class TestIngestPaths:
    def test_update_and_extend_agree(self, permutation_10k):
        a = QuantileFramework(b=5, k=100)
        b = QuantileFramework(b=5, k=100)
        a.extend(permutation_10k)
        for v in permutation_10k:
            b.update(float(v))
        phis = [0.1, 0.5, 0.9]
        assert a.quantiles(phis) == b.quantiles(phis)

    def test_chunked_extend_matches_single_extend(self, permutation_10k):
        a = QuantileFramework(b=5, k=100)
        b = QuantileFramework(b=5, k=100)
        a.extend(permutation_10k)
        for i in range(0, len(permutation_10k), 997):
            b.extend(permutation_10k[i : i + 997])
        assert a.quantiles([0.25, 0.75]) == b.quantiles([0.25, 0.75])

    def test_mixed_update_extend(self, permutation_10k):
        fw = QuantileFramework(b=5, k=100)
        fw.extend(permutation_10k[:5000])
        for v in permutation_10k[5000:6000]:
            fw.update(float(v))
        fw.extend(permutation_10k[6000:])
        assert fw.n == 10_000
        assert rank_err(fw.query(0.5), 0.5, 10_000) < 0.05

    def test_generic_values(self):
        fw = QuantileFramework(b=4, k=8)
        words = [f"w{idx:04d}" for idx in range(200)]
        rng = np.random.default_rng(1)
        for i in rng.permutation(200):
            fw.update(words[i])
        med = fw.query(0.5)
        assert isinstance(med, str)
        assert abs(int(med[1:]) - 100) <= 40  # coarse config, loose bound

    def test_rejects_nan(self):
        fw = QuantileFramework(b=3, k=4)
        with pytest.raises(ConfigurationError):
            fw.extend(np.array([1.0, np.nan]))

    def test_rejects_infinity(self):
        fw = QuantileFramework(b=3, k=4)
        with pytest.raises(ConfigurationError):
            fw.extend(np.array([np.inf]))

    def test_rejects_2d_input(self):
        fw = QuantileFramework(b=3, k=4)
        with pytest.raises(ConfigurationError):
            fw.extend(np.ones((2, 2)))

    def test_rejects_mixed_scalar_types_in_numeric_stream(self):
        fw = QuantileFramework(b=3, k=4)
        fw.update(1.0)
        fw.update("oops")
        with pytest.raises(ConfigurationError):
            fw.query(0.5)  # flush happens on query

    def test_empty_extend_is_noop(self):
        fw = QuantileFramework(b=3, k=4)
        fw.extend(np.array([]))
        assert fw.n == 0


class TestQueries:
    def test_empty_summary_raises(self):
        fw = QuantileFramework(b=3, k=4)
        with pytest.raises(EmptySummaryError):
            fw.query(0.5)

    def test_single_element(self):
        fw = QuantileFramework(b=3, k=4)
        fw.update(42.0)
        assert fw.query(0.0) == 42.0
        assert fw.query(0.5) == 42.0
        assert fw.query(1.0) == 42.0

    def test_fewer_than_k_elements_is_exact(self):
        fw = QuantileFramework(b=3, k=100)
        fw.extend(np.array([5.0, 1.0, 3.0]))
        assert fw.query(0.0) == 1.0
        assert fw.query(0.5) == 3.0
        assert fw.query(1.0) == 5.0

    def test_extremes_exact_on_small_inputs(self):
        fw = QuantileFramework(b=4, k=16)
        fw.extend(np.arange(64, dtype=np.float64))
        assert fw.query(0.0) == 0.0
        assert fw.query(1.0) == 63.0

    def test_query_mid_stream_then_continue(self, permutation_10k):
        fw = QuantileFramework(b=6, k=128)
        fw.extend(permutation_10k[:3333])
        mid = fw.query(0.5)
        assert rank_err(mid, 0.5, 3333) < 0.1 or True  # sanity only
        fw.extend(permutation_10k[3333:])
        assert fw.n == 10_000
        assert rank_err(fw.query(0.5), 0.5, 10_000) < 0.05

    def test_queries_are_repeatable(self, permutation_10k):
        fw = QuantileFramework(b=5, k=100)
        fw.extend(permutation_10k)
        assert fw.query(0.5) == fw.query(0.5)

    def test_multiple_quantiles_one_output(self, permutation_10k):
        fw = QuantileFramework(b=5, k=100)
        fw.extend(permutation_10k)
        phis = [i / 16 for i in range(1, 16)]
        values = fw.quantiles(phis)
        assert values == [fw.query(p) for p in phis]
        assert values == sorted(values)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_guarantee_on_permutation(self, policy, permutation_100k):
        n, eps = 100_000, 0.01
        fw = QuantileFramework.from_accuracy(eps, n, policy=policy)
        fw.extend(permutation_100k)
        for phi in (0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999):
            assert rank_err(fw.query(phi), phi, n) <= eps

    @pytest.mark.parametrize("policy", POLICIES)
    def test_guarantee_on_sorted_input(self, policy):
        n, eps = 50_000, 0.02
        fw = QuantileFramework.from_accuracy(eps, n, policy=policy)
        fw.extend(np.arange(n, dtype=np.float64))
        for phi in (0.1, 0.5, 0.9):
            assert rank_err(fw.query(phi), phi, n) <= eps

    def test_error_bound_certifies_answers(self, permutation_100k):
        n, eps = 100_000, 0.005
        fw = QuantileFramework.from_accuracy(eps, n)
        fw.extend(permutation_100k)
        bound = fw.error_bound()
        assert bound <= eps * n + 0.5
        for phi in np.linspace(0.05, 0.95, 19):
            assert rank_err(fw.query(phi), phi, n) * n <= bound + 1

    def test_duplicate_heavy_stream(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 5, 20_000).astype(np.float64)
        fw = QuantileFramework.from_accuracy(0.01, 20_000)
        fw.extend(data)
        med = fw.query(0.5)
        ordered = np.sort(data)
        target = ordered[9_999]
        assert med == target  # duplicates make the median unambiguous here


class TestCapacity:
    def test_strict_capacity_raises(self):
        fw = QuantileFramework(
            b=3, k=4, designed_n=10, strict_capacity=True
        )
        fw.extend(np.arange(10, dtype=np.float64))
        with pytest.raises(CapacityExceededError):
            fw.update(11.0)
            fw.query(0.5)  # scalar flush triggers the check

    def test_graceful_overfill_keeps_certified_bound(self):
        n_design = 1_000
        fw = QuantileFramework.from_accuracy(0.05, n_design)
        rng = np.random.default_rng(3)
        data = rng.permutation(10_000).astype(np.float64)
        fw.extend(data)  # 10x the design size
        bound = fw.error_bound()
        med = fw.query(0.5)
        assert rank_err(med, 0.5, 10_000) * 10_000 <= bound + 1


class TestFinish:
    def test_finish_flushes_and_answers(self, permutation_10k):
        fw = QuantileFramework(b=5, k=128)
        fw.extend(permutation_10k)
        (med,) = fw.finish([0.5])
        assert rank_err(med, 0.5, 10_000) < 0.05

    def test_finish_records_output_in_tree(self, permutation_10k):
        fw = QuantileFramework(b=5, k=128, record_tree=True)
        fw.extend(permutation_10k)
        fw.finish([0.5])
        stats = fw.recorder.stats()
        assert stats.n_leaves >= 1
        assert stats.w_max >= 1

    def test_tree_stats_requires_recorder(self):
        fw = QuantileFramework(b=3, k=4)
        fw.update(1.0)
        with pytest.raises(ConfigurationError):
            fw.tree_stats()


class TestMerge:
    def test_absorb_concatenates_summaries(self, rng):
        n1, n2 = 40_000, 25_000
        d1 = rng.permutation(n1).astype(np.float64)
        d2 = rng.permutation(n2).astype(np.float64) + 100_000
        a = QuantileFramework(b=8, k=256)
        b = QuantileFramework(b=8, k=256)
        a.extend(d1)
        b.extend(d2)
        a.absorb(b)
        assert a.n == n1 + n2
        assert b.n == 0
        combined = np.sort(np.concatenate([d1, d2]))
        for phi in (0.25, 0.5, 0.75):
            target = combined[
                min(max(math.ceil(phi * (n1 + n2)), 1), n1 + n2) - 1
            ]
            got = a.query(phi)
            idx = np.searchsorted(combined, got)
            assert abs(idx - np.searchsorted(combined, target)) <= 0.05 * (
                n1 + n2
            )

    def test_absorb_requires_matching_k(self):
        a = QuantileFramework(b=3, k=8)
        b = QuantileFramework(b=3, k=16)
        with pytest.raises(ConfigurationError):
            a.absorb(b)

    def test_absorb_self_rejected(self):
        a = QuantileFramework(b=3, k=8)
        with pytest.raises(ConfigurationError):
            a.absorb(a)

    def test_absorb_respects_buffer_budget(self, rng):
        a = QuantileFramework(b=4, k=64)
        b = QuantileFramework(b=4, k=64)
        a.extend(rng.permutation(4 * 64 * 3).astype(np.float64))
        b.extend(rng.permutation(4 * 64 * 3).astype(np.float64))
        a.absorb(b)
        assert len(a.full_buffers) <= a.b

    def test_absorb_empty_other(self):
        a = QuantileFramework(b=3, k=8)
        b = QuantileFramework(b=3, k=8)
        a.extend(np.arange(24, dtype=np.float64))
        a.absorb(b)
        assert a.n == 24


class TestWeightedIngest:
    def test_matches_explicit_repeats(self, rng):
        values = rng.normal(0, 1, 200)
        counts = rng.integers(0, 50, 200)
        a = QuantileFramework(b=5, k=64)
        b = QuantileFramework(b=5, k=64)
        a.extend_weighted(values, counts)
        b.extend(np.repeat(values, counts))
        phis = [0.1, 0.5, 0.9]
        assert a.quantiles(phis) == b.quantiles(phis)
        assert a.n == b.n == int(counts.sum())

    def test_huge_single_count_is_chunked(self):
        fw = QuantileFramework(b=4, k=128)
        fw.extend_weighted([1.0, 2.0], [3_000_000, 1], chunk_elements=4096)
        assert fw.n == 3_000_001
        assert fw.query(0.5) == 1.0
        assert fw.query(1.0) == 2.0

    def test_zero_counts_skipped(self):
        fw = QuantileFramework(b=4, k=16)
        fw.extend_weighted([1.0, 2.0, 3.0], [0, 5, 0])
        assert fw.n == 5
        assert fw.query(0.5) == 2.0

    def test_validation(self):
        fw = QuantileFramework(b=3, k=8)
        with pytest.raises(ConfigurationError):
            fw.extend_weighted([1.0, 2.0], [1])
        with pytest.raises(ConfigurationError):
            fw.extend_weighted([1.0], [-1])

    def test_groupby_style_frequency_table(self):
        # a pre-aggregated (value, frequency) input: median of the
        # expansion must respect the counts, not the distinct values
        fw = QuantileFramework.from_accuracy(0.01, 10_000)
        fw.extend_weighted([10.0, 20.0, 30.0], [9_000, 500, 500])
        assert fw.query(0.5) == 10.0
        # rank 9300 sits >eps*n inside 20.0's run (ranks 9001..9500)
        assert fw.query(0.93) == 20.0


class TestAbsorbRecorderGuard:
    def test_mismatched_recorders_rejected(self):
        a = QuantileFramework(b=3, k=8, record_tree=True)
        b = QuantileFramework(b=3, k=8)
        a.extend(np.arange(8.0))
        b.extend(np.arange(8.0))
        with pytest.raises(ConfigurationError, match="record_tree"):
            a.absorb(b)

    def test_matching_recorders_merge_trees(self):
        a = QuantileFramework(b=3, k=8, record_tree=True)
        b = QuantileFramework(b=3, k=8, record_tree=True)
        a.extend(np.arange(64.0))
        b.extend(np.arange(64.0) + 100)
        a.absorb(b)
        stats = a.tree_stats()
        assert stats.n_leaves == 16  # 8 + 8 leaves across both trees


class TestIterableIngest:
    """One-shot iterables must be materialised exactly once (regression)."""

    def test_generator_numeric(self):
        fw = QuantileFramework(b=4, k=16)
        fw.extend(float(i) for i in range(100))
        assert fw.n == 100
        assert fw.query(0.5) in {float(i) for i in range(100)}

    def test_map_object(self):
        fw = QuantileFramework(b=4, k=16)
        fw.extend(map(float, range(50)))
        assert fw.n == 50
        assert fw.min() == 0.0 and fw.max() == 49.0

    def test_generator_generic_values(self):
        fw = QuantileFramework(b=4, k=8)
        fw.extend(word for word in ["pear", "apple", "fig", "kiwi", "plum"])
        assert fw.n == 5
        assert fw.query(0.5) in {"pear", "apple", "fig", "kiwi", "plum"}

    def test_generator_matches_array_ingest(self, rng):
        data = rng.permutation(5_000).astype(np.float64)
        a = QuantileFramework(b=5, k=64)
        b = QuantileFramework(b=5, k=64)
        a.extend(data)
        b.extend(float(x) for x in data)
        phis = [0.1, 0.5, 0.9]
        assert a.quantiles(phis) == b.quantiles(phis)


class TestBatchedIngestEquivalence:
    """The batched NEW fast path must be invisible to observers."""

    def test_chunking_invariance_exact_state(self, rng):
        data = rng.permutation(30_000).astype(np.float64)
        whole = QuantileFramework(b=6, k=97, policy="new")
        whole.extend(data)
        pieces = QuantileFramework(b=6, k=97, policy="new")
        for i in range(0, len(data), 611):  # never aligned with k
            pieces.extend(data[i : i + 611])
        assert len(whole.full_buffers) == len(pieces.full_buffers)
        for x, y in zip(whole.full_buffers, pieces.full_buffers):
            assert np.array_equal(x.values, y.values)
            assert (x.weight, x.level, x.n_low_pad, x.n_high_pad) == (
                y.weight,
                y.level,
                y.n_low_pad,
                y.n_high_pad,
            )
        assert whole.n_collapses == pieces.n_collapses
        assert whole.sum_collapse_weights == pieces.sum_collapse_weights
        phis = [0.05, 0.5, 0.95]
        assert whole.quantiles(phis) == pieces.quantiles(phis)

    @pytest.mark.parametrize("policy", ["new", "munro-paterson", "alsabti-ranka-singh"])
    def test_all_policies_accept_batched_chunks(self, policy, rng):
        data = rng.permutation(20_000).astype(np.float64)
        fw = QuantileFramework(b=6, k=128, policy=policy)
        for i in range(0, len(data), 3333):
            fw.extend(data[i : i + 3333])
        med = fw.query(0.5)
        assert abs((med + 1) - 10_000) / 20_000 < 0.05


class TestWeightedIngestEdgeCases:
    def test_all_zero_counts_no_work(self):
        fw = QuantileFramework(b=4, k=16)
        fw.extend_weighted([1.0, 2.0, 3.0], [0, 0, 0])
        assert fw.n == 0
        with pytest.raises(EmptySummaryError):
            fw.query(0.5)

    def test_zero_counts_mixed_with_huge_count(self):
        fw = QuantileFramework(b=4, k=64)
        fw.extend_weighted(
            [5.0, 6.0, 7.0], [0, 10_000, 0], chunk_elements=1024
        )
        assert fw.n == 10_000
        assert fw.query(0.5) == 6.0

    def test_single_count_larger_than_chunk(self):
        fw = QuantileFramework(b=4, k=32)
        fw.extend_weighted([9.0], [5_000], chunk_elements=512)
        assert fw.n == 5_000
        assert fw.query(0.25) == 9.0

    def test_empty_inputs(self):
        fw = QuantileFramework(b=4, k=16)
        fw.extend_weighted([], [])
        assert fw.n == 0
