"""The engine registry: magic-tag dispatch, typed mismatch, facade wiring."""

from __future__ import annotations

import io

import numpy as np
import pytest

import repro
from repro.core import serialize
from repro.core.engines import (
    DEFAULT_ENGINE,
    ENGINE_NAMES,
    ENGINES,
    dumps_any,
    engine_of,
    engine_of_sketch,
    get_engine,
    load_any_from,
    loads_any,
)
from repro.core.errors import (
    ConfigurationError,
    EngineMismatchError,
    StorageError,
)
from repro.core.framework import QuantileFramework
from repro.core.frugal import FrugalSketch
from repro.core.kll import KLLSketch

DATA = np.random.default_rng(1).normal(100.0, 15.0, 20_000)


def _paper():
    fw = QuantileFramework(8, 253)
    fw.extend(DATA)
    return fw


def _kll():
    sk = KLLSketch(eps=0.01, seed=0)
    sk.extend(DATA)
    return sk


def _frugal():
    sk = FrugalSketch(seed=0)
    sk.extend(DATA)
    return sk


def test_registry_shape():
    assert ENGINE_NAMES == ("paper", "kll", "frugal", "windowed", "expdecay")
    assert DEFAULT_ENGINE == "paper"
    assert ENGINES["paper"].mergeable and ENGINES["paper"].certified
    assert ENGINES["kll"].mergeable and ENGINES["kll"].certified
    assert not ENGINES["frugal"].mergeable
    assert not ENGINES["frugal"].certified
    assert ENGINES["windowed"].mergeable and ENGINES["windowed"].certified
    assert ENGINES["expdecay"].mergeable and ENGINES["expdecay"].certified
    with pytest.raises(ConfigurationError):
        get_engine("tdigest")


@pytest.mark.parametrize("factory,name", [
    (_paper, "paper"), (_kll, "kll"), (_frugal, "frugal"),
])
def test_dispatch_roundtrip(factory, name):
    sk = factory()
    assert engine_of_sketch(sk) == name
    raw = dumps_any(sk)
    assert engine_of(raw) == name
    back = loads_any(raw)
    assert engine_of_sketch(back) == name
    assert back.quantile(0.5) == sk.quantile(0.5)
    # stream variant leaves trailing bytes unread
    buf = io.BytesIO(raw + b"!tail!")
    assert load_any_from(buf).n == sk.n
    assert buf.read() == b"!tail!"


def test_engine_of_rejects_unknown_magic():
    with pytest.raises(StorageError):
        engine_of(b"BOGUS!!!rest-of-payload")


def test_merge_same_engine_bit_identical():
    """Same payloads folded anywhere give byte-identical results."""
    for factory, name in ((_paper, "paper"), (_kll, "kll")):
        a, b = factory(), factory()
        payloads = [dumps_any(a), dumps_any(b)]
        m1 = serialize.merge_serialized(payloads)
        m2 = serialize.merge_serialized(payloads)
        assert dumps_any(m1) == dumps_any(m2)
        assert engine_of_sketch(m1) == name
        assert m1.n == 2 * len(DATA)


def test_merge_mixed_engines_raises_typed_error():
    with pytest.raises(EngineMismatchError):
        serialize.merge_serialized([dumps_any(_paper()), dumps_any(_kll())])
    with pytest.raises(EngineMismatchError):
        serialize.merge_serialized([dumps_any(_kll()), dumps_any(_frugal())])
    # the typed error is still a ConfigurationError for legacy handlers
    assert issubclass(EngineMismatchError, ConfigurationError)


def test_merge_frugal_single_ok_multiple_rejected():
    raw = dumps_any(_frugal())
    merged = serialize.merge_serialized([raw])
    assert merged.n == len(DATA)
    with pytest.raises(ConfigurationError):
        serialize.merge_serialized([raw, raw])


def test_merge_empty_rejected():
    with pytest.raises(ConfigurationError):
        serialize.merge_serialized([])


# -- facade ------------------------------------------------------------------


def test_facade_sketch_engine_dispatch():
    assert isinstance(repro.Sketch(engine="kll", eps=0.02), KLLSketch)
    assert isinstance(repro.Sketch(engine="frugal"), FrugalSketch)
    with pytest.raises(ConfigurationError):
        repro.Sketch(engine="unknown")


def test_facade_bank_engine_dispatch():
    from repro.core.bank import SketchBank
    from repro.core.frugal import FrugalBank

    assert isinstance(repro.Bank(eps=0.02), SketchBank)
    assert isinstance(repro.Bank(engine="frugal"), FrugalBank)
    with pytest.raises(ConfigurationError):
        repro.Bank(engine="kll")  # no vectorised bank for KLL


@pytest.mark.parametrize("engine", ["paper", "kll", "frugal"])
def test_facade_hist_engines(engine):
    data = np.random.default_rng(5).permutation(10_000).astype(np.float64)
    bounds = repro.hist(data, bins=4, engine=engine)
    assert len(bounds) == 3
    assert bounds == sorted(bounds)
    tol = 0.12 if engine == "frugal" else 0.03
    for i, b in enumerate(bounds, start=1):
        assert abs(b - i / 4 * 10_000) <= tol * 10_000
