"""Tests for inverse queries (rank / cdf) and exact extreme tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import QuantileFramework, QuantileSketch
from repro.core.errors import EmptySummaryError


class TestExtremes:
    def test_exact_min_max_after_many_collapses(self, permutation_100k):
        fw = QuantileFramework.from_accuracy(0.01, 100_000)
        fw.extend(permutation_100k)
        assert fw.min() == 0.0
        assert fw.max() == 99_999.0
        # phi = 0 / 1 answer from the exact extremes, not the summary
        assert fw.query(0.0) == 0.0
        assert fw.query(1.0) == 99_999.0

    def test_extremes_on_scalar_path(self):
        fw = QuantileFramework(b=3, k=4)
        for v in (5.0, -2.0, 9.0, 0.0):
            fw.update(v)
        assert fw.min() == -2.0
        assert fw.max() == 9.0

    def test_generic_extremes(self):
        fw = QuantileFramework(b=3, k=4)
        for word in ["mango", "apple", "zebra", "kiwi", "fig"]:
            fw.update(word)
        assert fw.min() == "apple"
        assert fw.max() == "zebra"

    def test_extremes_survive_merge(self, rng):
        a = QuantileFramework(b=4, k=64)
        b = QuantileFramework(b=4, k=64)
        a.extend(rng.uniform(10, 20, 1000))
        b.extend(rng.uniform(0, 5, 1000))
        a.absorb(b)
        assert a.min() < 5.0
        assert a.max() > 10.0

    def test_empty_raises(self):
        fw = QuantileFramework(b=3, k=4)
        with pytest.raises(EmptySummaryError):
            fw.min()
        with pytest.raises(EmptySummaryError):
            fw.max()

    def test_interior_phis_still_monotone_with_exact_ends(self, rng):
        fw = QuantileFramework.from_accuracy(0.05, 10_000)
        fw.extend(rng.normal(0, 1, 10_000))
        values = fw.quantiles([0.0, 0.1, 0.5, 0.9, 1.0])
        assert values == sorted(values)


class TestRank:
    def test_rank_within_certified_bound(self, permutation_100k):
        n = 100_000
        fw = QuantileFramework.from_accuracy(0.005, n)
        fw.extend(permutation_100k)
        bound = fw.error_bound()
        for probe in (0.0, 12_345.0, 50_000.0, 99_999.0):
            got = fw.rank(probe)
            true = probe + 1  # permutation of 0..n-1: rank(v) = v + 1
            assert abs(got - true) <= bound + 1

    def test_rank_of_absent_value(self, permutation_100k):
        fw = QuantileFramework.from_accuracy(0.005, 100_000)
        fw.extend(permutation_100k)
        # value between two integers: true rank = floor(value) + 1
        got = fw.rank(777.5)
        assert abs(got - 778) <= fw.error_bound() + 1

    def test_rank_extremes(self, permutation_10k):
        fw = QuantileFramework(b=6, k=128)
        fw.extend(permutation_10k)
        assert fw.rank(-1.0) == 0
        assert fw.rank(10_000.0) == 10_000

    def test_cdf_bounds(self, permutation_10k):
        fw = QuantileFramework(b=6, k=128)
        fw.extend(permutation_10k)
        assert fw.cdf(-1.0) == 0.0
        assert fw.cdf(99_999.0) == 1.0
        assert 0.45 <= fw.cdf(4_999.0) <= 0.55

    def test_rank_with_duplicates(self):
        fw = QuantileFramework(b=4, k=64)
        fw.extend(np.repeat([1.0, 2.0, 3.0], 100))
        assert fw.rank(0.5) == 0
        # 2.0 occupies ranks 101..200; the midpoint estimate lands inside
        assert 100 <= fw.rank(2.0) <= 200

    def test_rank_inverse_of_query(self, permutation_100k):
        # query then rank: must come back to ~the target rank
        n = 100_000
        fw = QuantileFramework.from_accuracy(0.005, n)
        fw.extend(permutation_100k)
        for phi in (0.1, 0.5, 0.9):
            value = fw.query(phi)
            back = fw.rank(value)
            assert abs(back - phi * n) <= 2 * fw.error_bound() + 2

    def test_rank_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            QuantileFramework(b=3, k=4).rank(1.0)


class TestSketchLevelAPI:
    def test_sketch_rank_and_cdf(self, permutation_100k):
        sk = QuantileSketch(epsilon=0.005, n=100_000)
        sk.extend(permutation_100k)
        assert abs(sk.rank(50_000.0) - 50_001) <= 0.005 * 100_000 + 1
        assert 0.24 <= sk.cdf(24_999.0) <= 0.26
        assert sk.min() == 0.0
        assert sk.max() == 99_999.0

    def test_sampling_sketch_rank_rescales(self):
        n = 2 * 10**6
        sk = QuantileSketch(epsilon=0.01, n=n, delta=1e-3, seed=4)
        assert sk.uses_sampling
        data = np.random.default_rng(2).permutation(n).astype(np.float64)
        for i in range(0, n, 1 << 19):
            sk.extend(data[i : i + (1 << 19)])
        got = sk.rank(n // 2)
        assert abs(got - n // 2) / n <= 0.01

    def test_empty_sketch_cdf_zero(self):
        sk = QuantileSketch(epsilon=0.1, n=100)
        assert sk.cdf(5.0) == 0.0
