"""Tests for the Section 4.9 parallel/partitioned mode."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.core.framework import QuantileFramework
from repro.core.parallel import ParallelQuantileEngine, merge_frameworks


def rank_err(value, phi, n):
    target = min(max(math.ceil(phi * n), 1), n)
    return abs((value + 1) - target) / n


class TestMergeFrameworks:
    def test_two_workers_cover_disjoint_ranges(self, rng):
        n = 60_000
        data = rng.permutation(n).astype(np.float64)
        w1 = QuantileFramework(b=6, k=256)
        w2 = QuantileFramework(b=6, k=256)
        w1.extend(data[: n // 2])
        w2.extend(data[n // 2 :])
        (med,) = merge_frameworks([w1, w2], [0.5])
        assert rank_err(med, 0.5, n) < 0.02

    def test_idle_workers_ignored(self, rng):
        data = rng.permutation(10_000).astype(np.float64)
        w1 = QuantileFramework(b=5, k=128)
        w2 = QuantileFramework(b=5, k=128)
        w1.extend(data)
        (med,) = merge_frameworks([w1, w2], [0.5])
        assert rank_err(med, 0.5, 10_000) < 0.05

    def test_all_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            merge_frameworks([QuantileFramework(b=3, k=8)], [0.5])


class TestParallelEngine:
    @pytest.mark.parametrize("n_workers", [1, 4, 24])
    def test_accuracy_across_parallelism(self, n_workers, rng):
        n = 120_000
        data = rng.permutation(n).astype(np.float64)
        engine = ParallelQuantileEngine(n_workers, b=6, k=256)
        for i in range(0, n, 10_000):
            engine.dispatch(data[i : i + 10_000])
        assert engine.n == n
        for phi in (0.1, 0.5, 0.9):
            assert rank_err(engine.query(phi), phi, n) < 0.02

    def test_static_partitioning(self, rng):
        n = 30_000
        data = rng.permutation(n).astype(np.float64)
        engine = ParallelQuantileEngine(3, b=5, k=128)
        third = n // 3
        for w in range(3):
            engine.extend_worker(w, data[w * third : (w + 1) * third])
        assert rank_err(engine.query(0.5), 0.5, n) < 0.05

    def test_high_parallelism_two_stage(self, rng):
        # the >100-node regime: pre-combine root buffers in groups
        n = 200_000
        data = rng.permutation(n).astype(np.float64)
        engine = ParallelQuantileEngine(
            64, b=4, k=64, combine_fanin=8
        )
        engine.dispatch(data)
        med = engine.query(0.5)
        assert rank_err(med, 0.5, n) < 0.05

    def test_memory_is_per_worker(self):
        engine = ParallelQuantileEngine(10, b=5, k=100)
        assert engine.memory_elements == 10 * 500

    def test_empty_engine_raises(self):
        engine = ParallelQuantileEngine(2, b=3, k=8)
        with pytest.raises(EmptySummaryError):
            engine.query(0.5)

    def test_error_bound_certifies(self, rng):
        n = 100_000
        data = rng.permutation(n).astype(np.float64)
        engine = ParallelQuantileEngine(8, b=6, k=256)
        engine.dispatch(data)
        bound = engine.error_bound()
        for phi in (0.25, 0.5, 0.75):
            err = rank_err(engine.query(phi), phi, n) * n
            assert err <= bound + 1

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ParallelQuantileEngine(0, b=3, k=8)
        with pytest.raises(ConfigurationError):
            ParallelQuantileEngine(2, b=3, k=8, combine_fanin=1)

    def test_repeated_queries_stable(self, rng):
        data = rng.permutation(20_000).astype(np.float64)
        engine = ParallelQuantileEngine(4, b=5, k=128)
        engine.dispatch(data)
        assert engine.query(0.5) == engine.query(0.5)


class TestProcessBackend:
    """backend="process": true multiprocessing workers (Section 4.9)."""

    def test_agrees_with_sync_backend(self, rng):
        n = 30_000
        data = rng.permutation(n).astype(np.float64)
        sync = ParallelQuantileEngine(3, b=5, k=128)
        with ParallelQuantileEngine(3, b=5, k=128, backend="process") as proc:
            for i in range(0, n, 4096):
                sync.dispatch(data[i : i + 4096])
                proc.dispatch(data[i : i + 4096])
            assert proc.n == sync.n == n
            # certified bound and quantiles must agree exactly: the process
            # backend replays the identical buffer dataflow
            assert proc.error_bound() == sync.error_bound()
            phis = [0.05, 0.25, 0.5, 0.75, 0.95]
            assert proc.quantiles(phis) == sync.quantiles(phis)

    def test_snapshot_queries_do_not_disturb_ingest(self, rng):
        data = rng.permutation(12_000).astype(np.float64)
        with ParallelQuantileEngine(2, b=5, k=64, backend="process") as engine:
            engine.dispatch(data[:6_000])
            first = engine.query(0.5)
            assert first is not None
            engine.dispatch(data[6_000:])
            assert engine.n == 12_000
            med = engine.query(0.5)
            assert rank_err(med, 0.5, 12_000) < 0.05

    def test_extend_worker_routing(self, rng):
        data = rng.permutation(8_000).astype(np.float64)
        with ParallelQuantileEngine(2, b=5, k=64, backend="process") as engine:
            engine.extend_worker(0, data[:4_000])
            engine.extend_worker(1, data[4_000:])
            assert engine.n == 8_000
            med = engine.query(0.5)
            assert rank_err(med, 0.5, 8_000) < 0.05

    def test_combine_fanin_supported(self, rng):
        n = 40_000
        data = rng.permutation(n).astype(np.float64)
        with ParallelQuantileEngine(
            8, b=4, k=64, backend="process", combine_fanin=4
        ) as engine:
            engine.dispatch(data)
            med = engine.query(0.5)
            assert rank_err(med, 0.5, n) < 0.05

    def test_generic_streams_rejected(self):
        with ParallelQuantileEngine(2, b=3, k=8, backend="process") as engine:
            with pytest.raises(ConfigurationError, match="numeric"):
                engine.dispatch(["a", "b", "c"])

    def test_closed_engine_rejects_ingest(self):
        engine = ParallelQuantileEngine(2, b=3, k=8, backend="process")
        engine.close()
        with pytest.raises(ConfigurationError, match="closed"):
            engine.dispatch(np.arange(8.0))
        engine.close()  # idempotent

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ParallelQuantileEngine(2, b=3, k=8, backend="threads")

    def test_custom_policy_instance_rejected(self):
        from repro.core.policies import NewPolicy

        with pytest.raises(ConfigurationError, match="named policy"):
            ParallelQuantileEngine(
                2, b=3, k=8, backend="process", policy=NewPolicy()
            )

    def test_empty_process_engine_raises(self):
        with ParallelQuantileEngine(2, b=3, k=8, backend="process") as engine:
            with pytest.raises(EmptySummaryError):
                engine.query(0.5)
