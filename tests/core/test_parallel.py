"""Tests for the Section 4.9 parallel/partitioned mode."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.core.framework import QuantileFramework
from repro.core.parallel import ParallelQuantileEngine, merge_frameworks


def rank_err(value, phi, n):
    target = min(max(math.ceil(phi * n), 1), n)
    return abs((value + 1) - target) / n


class TestMergeFrameworks:
    def test_two_workers_cover_disjoint_ranges(self, rng):
        n = 60_000
        data = rng.permutation(n).astype(np.float64)
        w1 = QuantileFramework(b=6, k=256)
        w2 = QuantileFramework(b=6, k=256)
        w1.extend(data[: n // 2])
        w2.extend(data[n // 2 :])
        (med,) = merge_frameworks([w1, w2], [0.5])
        assert rank_err(med, 0.5, n) < 0.02

    def test_idle_workers_ignored(self, rng):
        data = rng.permutation(10_000).astype(np.float64)
        w1 = QuantileFramework(b=5, k=128)
        w2 = QuantileFramework(b=5, k=128)
        w1.extend(data)
        (med,) = merge_frameworks([w1, w2], [0.5])
        assert rank_err(med, 0.5, 10_000) < 0.05

    def test_all_empty_raises(self):
        with pytest.raises(EmptySummaryError):
            merge_frameworks([QuantileFramework(b=3, k=8)], [0.5])


class TestParallelEngine:
    @pytest.mark.parametrize("n_workers", [1, 4, 24])
    def test_accuracy_across_parallelism(self, n_workers, rng):
        n = 120_000
        data = rng.permutation(n).astype(np.float64)
        engine = ParallelQuantileEngine(n_workers, b=6, k=256)
        for i in range(0, n, 10_000):
            engine.dispatch(data[i : i + 10_000])
        assert engine.n == n
        for phi in (0.1, 0.5, 0.9):
            assert rank_err(engine.query(phi), phi, n) < 0.02

    def test_static_partitioning(self, rng):
        n = 30_000
        data = rng.permutation(n).astype(np.float64)
        engine = ParallelQuantileEngine(3, b=5, k=128)
        third = n // 3
        for w in range(3):
            engine.extend_worker(w, data[w * third : (w + 1) * third])
        assert rank_err(engine.query(0.5), 0.5, n) < 0.05

    def test_high_parallelism_two_stage(self, rng):
        # the >100-node regime: pre-combine root buffers in groups
        n = 200_000
        data = rng.permutation(n).astype(np.float64)
        engine = ParallelQuantileEngine(
            64, b=4, k=64, combine_fanin=8
        )
        engine.dispatch(data)
        med = engine.query(0.5)
        assert rank_err(med, 0.5, n) < 0.05

    def test_memory_is_per_worker(self):
        engine = ParallelQuantileEngine(10, b=5, k=100)
        assert engine.memory_elements == 10 * 500

    def test_empty_engine_raises(self):
        engine = ParallelQuantileEngine(2, b=3, k=8)
        with pytest.raises(EmptySummaryError):
            engine.query(0.5)

    def test_error_bound_certifies(self, rng):
        n = 100_000
        data = rng.permutation(n).astype(np.float64)
        engine = ParallelQuantileEngine(8, b=6, k=256)
        engine.dispatch(data)
        bound = engine.error_bound()
        for phi in (0.25, 0.5, 0.75):
            err = rank_err(engine.query(phi), phi, n) * n
            assert err <= bound + 1

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            ParallelQuantileEngine(0, b=3, k=8)
        with pytest.raises(ConfigurationError):
            ParallelQuantileEngine(2, b=3, k=8, combine_fanin=1)

    def test_repeated_queries_stable(self, rng):
        data = rng.permutation(20_000).astype(np.float64)
        engine = ParallelQuantileEngine(4, b=5, k=128)
        engine.dispatch(data)
        assert engine.query(0.5) == engine.query(0.5)
