"""Property suite: SketchBank is bit-identical to independent sketches.

The ISSUE-2 acceptance criterion, verified by hypothesis: for random
chunked streams and destination ids, across all three collapse policies
and with the sorted-run kernels both enabled and disabled
(``REPRO_KERNELS`` argsort fallback), every sketch in a
:class:`SketchBank` is *bit-identical* to a :class:`QuantileSketch` fed
the same subsequence on its own -- quantile answers, certified Lemma 5
``error_bound``, ``memory_elements``, and the serialized wire format.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels, serialize
from repro.core.bank import SketchBank
from repro.core.sketch import QuantileSketch

COMMON = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

policies = st.sampled_from(["new", "munro-paterson", "alsabti-ranka-singh"])
kernel_modes = st.booleans()

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)

#: a stream of (ids, values) chunks: a few sketches, uneven chunk sizes,
#: including chunks that miss some sketches entirely
chunk_streams = st.integers(min_value=1, max_value=4).flatmap(
    lambda n_sketches: st.tuples(
        st.just(n_sketches),
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n_sketches - 1),
                    finite_floats,
                ),
                min_size=0,
                max_size=120,
            ),
            min_size=1,
            max_size=8,
        ),
    )
)


def _feed_both(n_sketches, chunks, policy, epsilon, design_n):
    bank = SketchBank(
        epsilon, n=design_n, policy=policy, n_sketches=n_sketches
    )
    refs = [
        QuantileSketch(epsilon, n=design_n, policy=policy)
        for _ in range(n_sketches)
    ]
    for chunk in chunks:
        if not chunk:
            continue
        ids = np.array([i for i, _ in chunk], dtype=np.int64)
        vals = np.array([v for _, v in chunk], dtype=np.float64)
        bank.extend(ids, vals)
        for g in range(n_sketches):
            sub = vals[ids == g]
            if len(sub):
                refs[g].extend(sub)
    return bank, refs


def _assert_bit_identical(bank, refs):
    phis = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0]
    for g, ref in enumerate(refs):
        assert bank.sketch(g).n == len(ref)
        if len(ref):
            got = [float(v) for v in bank.quantiles(g, phis)]
            want = [float(v) for v in ref.quantiles(phis)]
            assert got == want  # exact float equality, not approx
            assert bank.error_bound(g) == ref._impl.error_bound()
        assert bank.sketch(g).memory_elements == ref.memory_elements
        assert serialize.dumps(bank.sketch(g)) == serialize.dumps(ref._impl)
    assert bank.memory_elements == sum(r.memory_elements for r in refs)


class TestBankBitIdentity:
    @COMMON
    @given(stream=chunk_streams, policy=policies, use_kernels=kernel_modes)
    def test_bank_matches_independent_sketches(
        self, stream, policy, use_kernels
    ):
        n_sketches, chunks = stream
        kernels.set_enabled(use_kernels)
        try:
            bank, refs = _feed_both(
                n_sketches, chunks, policy, epsilon=0.05, design_n=20_000
            )
        finally:
            kernels.set_enabled(True)
        _assert_bit_identical(bank, refs)

    @COMMON
    @given(
        stream=chunk_streams,
        policy=policies,
        epsilon=st.sampled_from([0.2, 0.05, 0.01]),
    )
    def test_bank_matches_across_configurations(self, stream, policy, epsilon):
        n_sketches, chunks = stream
        bank, refs = _feed_both(
            n_sketches, chunks, policy, epsilon=epsilon, design_n=5_000
        )
        _assert_bit_identical(bank, refs)

    @COMMON
    @given(
        values=st.lists(finite_floats, min_size=1, max_size=400),
        policy=policies,
        use_kernels=kernel_modes,
    )
    def test_extend_runs_matches_extend(self, values, policy, use_kernels):
        """Pre-partitioned ingest == id-routed ingest == direct extend."""
        vals = np.asarray(values, dtype=np.float64)
        kernels.set_enabled(use_kernels)
        try:
            via_runs = SketchBank(
                0.1, n=10_000, policy=policy, n_sketches=2
            )
            mid = len(vals) // 2
            via_runs.extend_runs(
                [0, 1], [0, mid], [mid, len(vals)], vals
            )
            direct = [
                QuantileSketch(0.1, n=10_000, policy=policy)
                for _ in range(2)
            ]
            if mid:
                direct[0].extend(vals[:mid])
            direct[1].extend(vals[mid:])
        finally:
            kernels.set_enabled(True)
        _assert_bit_identical(via_runs, direct)
