"""Tests for the Section 5 sampling front-end (Lemma 7, Table 2, Figure 8)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.core.parameters import ParameterPlan, optimal_parameters
from repro.core.sampling import (
    SampledQuantileFramework,
    SamplingPlan,
    choose_strategy,
    hoeffding_sample_size,
    optimize_alpha,
    sampling_threshold,
)


class TestHoeffdingSampleSize:
    def test_lemma7_formula(self):
        # S = ceil(log(2/delta) / (2 eps2^2))
        s = hoeffding_sample_size(0.01, 1e-4)
        assert s == math.ceil(math.log(2e4) / (2 * 1e-4))

    def test_union_bound_for_multiple_quantiles(self):
        single = hoeffding_sample_size(0.01, 1e-4)
        multi = hoeffding_sample_size(0.01, 1e-4, n_quantiles=15)
        assert multi > single
        assert multi == math.ceil(math.log(2 * 15 / 1e-4) / (2 * 1e-4))

    def test_table2_rule_uses_full_epsilon(self):
        # matches the S column actually printed in the paper's Table 2
        cases = {
            (0.1, 1e-2): 265,
            (0.05, 1e-3): 1521,
            (0.01, 1e-4): 49518,
            (0.005, 1e-2): 105967,
            (0.001, 1e-4): 4951744,
        }
        for (eps, delta), expected in cases.items():
            s = hoeffding_sample_size(
                0.0, delta, rule="table2", epsilon=eps
            )
            assert abs(s - expected) <= 2  # rounding of ln inputs

    def test_smaller_eps2_needs_more_samples(self):
        assert hoeffding_sample_size(0.005, 1e-4) > hoeffding_sample_size(
            0.01, 1e-4
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            hoeffding_sample_size(0.0, 1e-4)
        with pytest.raises(ConfigurationError):
            hoeffding_sample_size(0.01, 0.0)
        with pytest.raises(ConfigurationError):
            hoeffding_sample_size(0.01, 1e-4, n_quantiles=0)
        with pytest.raises(ConfigurationError):
            hoeffding_sample_size(0.01, 1e-4, rule="bogus")
        with pytest.raises(ConfigurationError):
            hoeffding_sample_size(0.01, 1e-4, rule="table2")  # no epsilon


class TestOptimizeAlpha:
    def test_reproduces_table2_bk_column(self):
        # Table 2 entries (alpha*eps, b, k) for delta = 1e-4; the faithful
        # Lemma 7 optimiser reproduces these exactly.
        plan = optimize_alpha(0.01, 1e-4)
        assert (plan.b, plan.k) == (6, 472)
        assert plan.eps1 == pytest.approx(0.0064, abs=5e-4)

    def test_table2_delta_1em2(self):
        plan = optimize_alpha(0.1, 1e-2)
        assert plan.memory <= 200  # paper: 0.13 K

    def test_alpha_stays_in_grid(self):
        plan = optimize_alpha(0.05, 1e-3)
        assert 0.2 <= plan.alpha <= 0.8

    def test_memory_independent_of_population(self):
        # The sampling plan never sees N; two different deltas still give
        # finite, N-free configurations.
        p1 = optimize_alpha(0.01, 1e-2)
        p2 = optimize_alpha(0.01, 1e-4)
        assert p1.memory <= p2.memory  # more confidence costs more

    def test_epsilon_split_adds_up(self):
        plan = optimize_alpha(0.02, 1e-3)
        assert plan.eps1 + plan.eps2 == pytest.approx(0.02)

    def test_inner_plan_sized_for_sample(self):
        plan = optimize_alpha(0.01, 1e-4)
        direct = optimal_parameters(plan.eps1, plan.sample_size, policy="new")
        assert plan.inner.memory == direct.memory


class TestThresholdAndStrategy:
    def test_threshold_matches_table1_crossover(self):
        # Table 1 (sampling sub-table, delta=1e-4): for eps=0.01 the direct
        # algorithm wins at N=1e6 and sampling wins at N=1e7.
        threshold = sampling_threshold(0.01, 1e-4)
        assert 10**6 < threshold <= 10**7

    def test_threshold_monotone_shape(self):
        # Figure 8: threshold rises steeply as eps shrinks.
        t_loose = sampling_threshold(0.1, 1e-4)
        t_tight = sampling_threshold(0.01, 1e-4)
        assert t_tight > t_loose

    def test_choose_strategy_small_n_direct(self):
        plan = choose_strategy(0.01, 10**5, 1e-4)
        assert isinstance(plan, ParameterPlan)

    def test_choose_strategy_large_n_sampling(self):
        plan = choose_strategy(0.01, 10**8, 1e-4)
        assert isinstance(plan, SamplingPlan)
        # Table 1, sampling sub-table: b=6, k=472 for eps=0.01, N>=1e7
        assert (plan.b, plan.k) == (6, 472)

    def test_choose_strategy_without_delta_is_direct(self):
        plan = choose_strategy(0.01, 10**9)
        assert isinstance(plan, ParameterPlan)


class TestSampledFramework:
    def test_population_accuracy(self):
        n, eps, delta = 500_000, 0.02, 1e-3
        rng = np.random.default_rng(11)
        data = rng.permutation(n).astype(np.float64)
        s = SampledQuantileFramework(eps, n, delta, seed=5)
        for i in range(0, n, 65536):
            s.extend(data[i : i + 65536])
        assert s.n_seen == n
        for phi in (0.1, 0.5, 0.9):
            got = s.query(phi)
            target = min(max(math.ceil(phi * n), 1), n)
            assert abs((got + 1) - target) / n <= eps

    def test_sample_size_concentrates(self):
        n = 200_000
        s = SampledQuantileFramework(0.05, n, 1e-3, seed=1)
        s.extend(np.arange(n, dtype=np.float64))
        expected = s.plan.sample_size
        assert abs(s.n_sampled - expected) < 5 * math.sqrt(expected) + 10

    def test_update_scalar_path(self):
        s = SampledQuantileFramework(0.1, 1000, 1e-2, seed=2)
        for v in range(1000):
            s.update(float(v))
        assert s.n_seen == 1000
        assert 0 < s.n_sampled <= 1000

    def test_memory_far_below_population(self):
        s = SampledQuantileFramework(0.01, 10**8, 1e-4)
        assert s.memory_elements < 10**4

    def test_empty_sample_raises(self):
        s = SampledQuantileFramework(0.1, 10**6, 1e-2, seed=3)
        with pytest.raises(EmptySummaryError):
            s.query(0.5)

    def test_rejects_bad_population(self):
        with pytest.raises(ConfigurationError):
            SampledQuantileFramework(0.1, 0, 1e-2)

    def test_rejects_2d(self):
        s = SampledQuantileFramework(0.1, 100, 1e-2)
        with pytest.raises(ConfigurationError):
            s.extend(np.ones((2, 2)))

    def test_error_bound_within_sample(self):
        s = SampledQuantileFramework(0.05, 100_000, 1e-3, seed=4)
        s.extend(np.random.default_rng(0).permutation(100_000).astype(float))
        assert s.error_bound() <= s.plan.eps1 * s.n_sampled + 1
