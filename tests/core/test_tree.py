"""Tests for collapse-tree recording and the Lemma 1-5 arithmetic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ReproError
from repro.core.framework import QuantileFramework
from repro.core.parameters import (
    alsabti_ranka_singh_stats,
    munro_paterson_stats,
)
from repro.core.tree import TreeRecorder, canonical_munro_paterson_tree


def run_tree(b, k, n, policy, seed=0):
    fw = QuantileFramework(b=b, k=k, policy=policy, record_tree=True)
    rng = np.random.default_rng(seed)
    fw.extend(rng.permutation(n).astype(np.float64))
    fw.finish([0.5])
    return fw


class TestRecorderBasics:
    def test_unused_recorder_raises(self):
        with pytest.raises(ReproError):
            TreeRecorder().stats()

    def test_leaf_counting(self):
        fw = run_tree(b=5, k=10, n=200, policy="new")
        stats = fw.recorder.stats()
        assert stats.n_leaves == 20  # 200 / k

    def test_collapse_stats_match_framework_counters(self):
        fw = run_tree(b=5, k=10, n=500, policy="new")
        stats = fw.recorder.stats()
        assert stats.n_collapses == fw.n_collapses
        assert stats.sum_collapse_weights == fw.sum_collapse_weights

    def test_lemma1_offset_sum(self):
        # Lemma 1: sum of offsets >= (W + C - 1) / 2.
        for policy in ("new", "munro-paterson", "alsabti-ranka-singh"):
            fw = run_tree(b=6, k=8, n=900, policy=policy, seed=3)
            stats = fw.recorder.stats()
            if stats.n_collapses:
                assert stats.sum_offsets >= stats.lemma1_lower_bound()

    def test_lemma2_root_children_weights_sum_to_leaves(self):
        # Lemma 2: the children of the root carry total weight L.
        for policy in ("new", "munro-paterson", "alsabti-ranka-singh"):
            fw = run_tree(b=6, k=8, n=777, policy=policy, seed=5)
            recorder = fw.recorder
            top_weight = sum(
                recorder.nodes[i].weight for i in recorder.root_children
            )
            assert top_weight == recorder.stats().n_leaves

    def test_error_bound_formula(self):
        fw = run_tree(b=5, k=16, n=2000, policy="new")
        stats = fw.recorder.stats()
        expected = (
            stats.sum_collapse_weights - stats.n_collapses - 1
        ) / 2 + stats.w_max
        assert stats.error_bound == expected
        assert fw.error_bound() == expected

    def test_no_collapse_bound_is_zero(self):
        fw = QuantileFramework(b=4, k=100, record_tree=True)
        fw.extend(np.arange(150, dtype=np.float64))
        fw.finish([0.5])
        assert fw.recorder.stats().error_bound == 0.0


class TestTreeShapes:
    """The trees of Figures 2-4, produced by actually running the policies."""

    def test_figure2_munro_paterson_b6_canonical(self):
        # The canonical Figure 2 tree: 32 leaves, pairwise equal-weight
        # collapses, root children of weight 16 + 16.
        closed = munro_paterson_stats(6)
        recorder = canonical_munro_paterson_tree(6)
        stats = recorder.stats()
        assert stats.n_leaves == closed.n_leaves
        assert stats.n_collapses == closed.n_collapses
        assert stats.sum_collapse_weights == closed.sum_collapse_weights
        assert stats.w_max == closed.w_max
        top = [recorder.nodes[i].weight for i in recorder.root_children]
        assert sorted(top) == [16, 16]

    def test_runtime_mp_never_worse_than_canonical(self):
        # The driver defers Munro-Paterson merges until a slot is needed,
        # which can only *lower* W (fewer, later collapses).  The certified
        # bound must therefore never exceed the paper's closed form.
        closed = munro_paterson_stats(6)
        fw = run_tree(b=6, k=4, n=32 * 4, policy="munro-paterson")
        stats = fw.recorder.stats()
        assert stats.n_leaves == closed.n_leaves
        assert stats.error_bound <= closed.error_bound

    def test_figure3_alsabti_ranka_singh_b10(self):
        # b=10: 5 rounds of 5 leaves; root children all weight 5.
        closed = alsabti_ranka_singh_stats(10)
        fw = run_tree(b=10, k=4, n=25 * 4, policy="alsabti-ranka-singh")
        stats = fw.recorder.stats()
        assert stats.n_leaves == closed.n_leaves
        assert stats.n_collapses == closed.n_collapses
        assert stats.sum_collapse_weights == closed.sum_collapse_weights
        assert stats.w_max == closed.w_max
        top = [
            fw.recorder.nodes[i].weight for i in fw.recorder.root_children
        ]
        assert sorted(top) == [5, 5, 5, 5, 5]

    def test_figure4_new_policy_b5(self):
        # b=5, 15 leaves: exactly Figure 4 -- the root's (broken-edge)
        # children carry weights 5, 4, 3, 2, 1, and the level-1 collapse
        # outputs are the 5, 4, 3, 2.
        fw = run_tree(b=5, k=4, n=15 * 4, policy="new")
        recorder = fw.recorder
        top = sorted(
            recorder.nodes[i].weight for i in recorder.root_children
        )
        assert top == [1, 2, 3, 4, 5]
        level1 = sorted(
            node.weight
            for node in recorder.nodes.values()
            if not node.is_leaf and node.level == 1
        )
        assert level1 == [2, 3, 4, 5]

    def test_heights(self):
        mp = run_tree(b=6, k=4, n=128, policy="munro-paterson")
        ars = run_tree(b=10, k=4, n=100, policy="alsabti-ranka-singh")
        # ARS trees have height 2 (leaves -> round outputs -> root).
        assert ars.recorder.stats().height == 2
        # The lazy MP schedule reaches weight 16 in at most b levels.
        assert 4 <= mp.recorder.stats().height <= 6


class TestRendering:
    def test_render_contains_all_top_weights(self):
        fw = run_tree(b=5, k=4, n=60, policy="new")
        text = fw.recorder.render()
        assert text.startswith("OUTPUT")
        for i in fw.recorder.root_children:
            assert str(fw.recorder.nodes[i].weight) in text

    def test_weights_by_depth_top_level_first(self):
        fw = run_tree(b=5, k=4, n=60, policy="new")
        levels = fw.recorder.weights_by_depth()
        top = [fw.recorder.nodes[i].weight for i in fw.recorder.root_children]
        assert levels[0] == top
        assert all(w == 1 for w in levels[-1])

    def test_render_before_output_needs_buffers(self):
        fw = QuantileFramework(b=4, k=4, record_tree=True)
        fw.extend(np.arange(16, dtype=np.float64))
        with pytest.raises(ReproError):
            fw.recorder.render()
        text = fw.recorder.render(final_buffers=fw.full_buffers)
        assert "OUTPUT" in text


class TestCanonicalArs:
    def test_figure3_canonical_builder(self):
        from repro.core.tree import canonical_alsabti_ranka_singh_tree

        recorder = canonical_alsabti_ranka_singh_tree(10)
        stats = recorder.stats()
        closed = alsabti_ranka_singh_stats(10)
        assert stats.n_leaves == closed.n_leaves
        assert stats.n_collapses == closed.n_collapses
        assert stats.sum_collapse_weights == closed.sum_collapse_weights
        assert stats.w_max == closed.w_max
        top = [recorder.nodes[i].weight for i in recorder.root_children]
        assert top == [5] * 5

    def test_canonical_builders_validate(self):
        from repro.core.tree import (
            canonical_alsabti_ranka_singh_tree,
            canonical_munro_paterson_tree,
        )

        with pytest.raises(ReproError):
            canonical_munro_paterson_tree(1)
        with pytest.raises(ReproError):
            canonical_alsabti_ranka_singh_tree(7)
