"""Kernel-vs-argsort equivalence: the sorted-run kernels must be exact.

The vectorised kernels of :mod:`repro.core.kernels` exist purely for
speed; every one of them must return *bit-identical* results to the
reference global-argsort implementation for any valid input.  Hypothesis
drives random buffer sets -- mixed weights, duplicated values, odd/even
capacities, and ``+/-inf`` padding sentinels -- through both paths.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import kernels
from repro.core.buffer import Buffer
from repro.core.framework import QuantileFramework
from repro.core.operations import OffsetSelector, collapse, weighted_select

COMMON = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def buffer_sets(draw, same_k: bool = True, min_c: int = 1):
    """A list of sorted weighted runs plus matching Buffer objects.

    Values are small integers (cast to float64) so duplicates across and
    within runs are common -- ties are where stability bugs hide.  Some
    runs are padded with ``-inf`` / ``+inf`` sentinels at the edges,
    mirroring the partially-filled leaf buffers of the framework.
    """
    c = draw(st.integers(min_value=min_c, max_value=6))
    k = draw(st.integers(min_value=1, max_value=24))
    buffers = []
    for _ in range(c):
        length = k if same_k else draw(st.integers(min_value=1, max_value=24))
        n_low = draw(st.integers(min_value=0, max_value=max(length - 1, 0)))
        n_high = draw(
            st.integers(min_value=0, max_value=max(length - 1 - n_low, 0))
        )
        n_real = length - n_low - n_high
        body = sorted(
            draw(
                st.lists(
                    st.integers(min_value=-50, max_value=50),
                    min_size=n_real,
                    max_size=n_real,
                )
            )
        )
        values = np.concatenate(
            [
                np.full(n_low, -np.inf),
                np.asarray(body, dtype=np.float64),
                np.full(n_high, np.inf),
            ]
        )
        weight = draw(st.integers(min_value=1, max_value=7))
        buffers.append(
            Buffer(
                values=values,
                weight=weight,
                n_low_pad=n_low,
                n_high_pad=n_high,
            )
        )
    return buffers


def _targets_for(draw_total: int, rng: np.random.Generator) -> np.ndarray:
    count = int(rng.integers(1, 8))
    return np.sort(rng.integers(1, draw_total + 1, size=count))


class TestSelectEquivalence:
    @COMMON
    @given(data=st.data())
    def test_weighted_select_runs_matches_argsort(self, data):
        buffers = data.draw(buffer_sets())
        runs = [b.values for b in buffers]
        weights = [b.weight for b in buffers]
        total = sum(b.weighted_count for b in buffers)
        n_targets = data.draw(st.integers(min_value=1, max_value=8))
        targets = np.sort(
            np.asarray(
                data.draw(
                    st.lists(
                        st.integers(min_value=1, max_value=total),
                        min_size=n_targets,
                        max_size=n_targets,
                    )
                ),
                dtype=np.int64,
            )
        )
        got = kernels.weighted_select_runs(runs, weights, targets)
        ref = kernels.weighted_select_argsort(runs, weights, targets)
        assert np.array_equal(got, ref)

    @COMMON
    @given(data=st.data())
    def test_collapse_select_matches_argsort(self, data):
        buffers = data.draw(buffer_sets())
        runs = [b.values for b in buffers]
        weights = [b.weight for b in buffers]
        k = len(runs[0])
        out_weight = sum(weights)
        offset = data.draw(st.integers(min_value=1, max_value=out_weight))
        got = kernels.collapse_select_runs(runs, weights, out_weight, offset, k)
        targets = np.arange(k, dtype=np.int64) * out_weight + offset
        ref = kernels.weighted_select_argsort(runs, weights, targets)
        assert np.array_equal(got, ref)

    @COMMON
    @given(data=st.data())
    def test_merge_strategies_agree(self, data):
        buffers = data.draw(buffer_sets(same_k=False))
        runs = [b.values for b in buffers]
        weights = [b.weight for b in buffers]
        v1, w1 = kernels.merge_sorted_runs(runs, weights, strategy="stable")
        v2, w2 = kernels.merge_sorted_runs(runs, weights, strategy="searchsorted")
        assert np.array_equal(v1, v2)
        assert np.array_equal(w1, w2)
        # the merged sequence is the sorted concatenation
        assert np.array_equal(v1, np.sort(np.concatenate(runs), kind="stable"))
        assert int(w1.sum()) == sum(
            w * len(r) for r, w in zip(runs, weights)
        )

    @COMMON
    @given(data=st.data())
    def test_collapse_pads_match_value_scan(self, data):
        buffers = data.draw(buffer_sets(min_c=2))
        k = len(buffers[0].values)
        out_weight = sum(b.weight for b in buffers)
        offset = data.draw(st.integers(min_value=1, max_value=out_weight))
        out = collapse(buffers, offset)
        # the arithmetic pad counts must equal what a scan of the output sees
        assert out.n_low_pad == int(np.isneginf(out.values).sum())
        assert out.n_high_pad == int(np.isposinf(out.values).sum())
        assert len(out.values) == k


class TestFallback:
    def test_disabled_kernels_route_through_argsort(self):
        rng = np.random.default_rng(5)
        buffers = [
            Buffer(values=np.sort(rng.integers(0, 20, 9).astype(np.float64)), weight=w)
            for w in (1, 3, 2)
        ]
        targets = [1, 5, 20, 54]
        kernels.set_enabled(False)
        try:
            assert not kernels.is_enabled()
            off = weighted_select(buffers, targets)
        finally:
            kernels.set_enabled(True)
        on = weighted_select(buffers, targets)
        assert np.array_equal(np.asarray(on), np.asarray(off))

    def test_disabled_kernels_identical_framework_state(self):
        data = np.random.default_rng(11).permutation(20_000).astype(np.float64)

        def run():
            fw = QuantileFramework(b=5, k=73, policy="new")
            for i in range(0, len(data), 1717):
                fw.extend(data[i : i + 1717])
            return fw

        kernels.set_enabled(False)
        try:
            ref = run()
        finally:
            kernels.set_enabled(True)
        fast = run()
        assert len(fast.full_buffers) == len(ref.full_buffers)
        for a, b in zip(fast.full_buffers, ref.full_buffers):
            assert np.array_equal(a.values, b.values)
            assert (a.weight, a.level, a.n_low_pad, a.n_high_pad) == (
                b.weight,
                b.level,
                b.n_low_pad,
                b.n_high_pad,
            )
        phis = [0.01, 0.25, 0.5, 0.75, 0.99]
        assert fast.quantiles(phis) == ref.quantiles(phis)
        assert fast.error_bound() == ref.error_bound()

    def test_single_run_short_circuit(self):
        values = np.sort(np.random.default_rng(3).random(16))
        got = kernels.weighted_select_runs([values], [4], np.asarray([1, 17, 64]))
        ref = kernels.weighted_select_argsort([values], [4], np.asarray([1, 17, 64]))
        assert np.array_equal(got, ref)

    def test_merge_rejects_bad_input(self):
        with pytest.raises(ValueError):
            kernels.merge_sorted_runs([], [])
        with pytest.raises(ValueError):
            kernels.merge_sorted_runs(
                [np.arange(3.0)], [1, 2]
            )
        with pytest.raises(ValueError):
            kernels.merge_sorted_runs(
                [np.arange(3.0), np.arange(3.0)], [1, 1], strategy="bogus"
            )


class TestCollapseOffsetAlternation:
    def test_alternation_preserved_through_kernel_path(self):
        # the offset selector state must advance identically however the
        # selection is computed
        sel_fast = OffsetSelector()
        sel_ref = OffsetSelector()
        rng = np.random.default_rng(9)
        for _ in range(6):
            bufs = [
                Buffer(values=np.sort(rng.random(8)), weight=1)
                for _ in range(2)
            ]
            kernels.set_enabled(False)
            try:
                ref = collapse([b for b in bufs], sel_ref)
            finally:
                kernels.set_enabled(True)
            fast = collapse([b for b in bufs], sel_fast)
            assert np.array_equal(fast.values, ref.values)
            assert fast.weight == ref.weight
