"""Unit tests for repro.core.buffer: buffers, sentinels, padding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.buffer import MINUS_INF, PLUS_INF, Buffer, is_sentinel
from repro.core.errors import ConfigurationError


class TestSentinels:
    def test_minus_inf_below_everything(self):
        assert MINUS_INF < 0
        assert MINUS_INF < -1e300
        assert MINUS_INF < "aardvark"
        assert MINUS_INF < PLUS_INF

    def test_plus_inf_above_everything(self):
        assert PLUS_INF > 0
        assert PLUS_INF > 1e300
        assert PLUS_INF > "zzz"
        assert PLUS_INF > MINUS_INF

    def test_sentinels_not_below_or_above_themselves(self):
        assert not MINUS_INF < MINUS_INF
        assert not PLUS_INF > PLUS_INF
        assert MINUS_INF <= MINUS_INF
        assert PLUS_INF >= PLUS_INF

    def test_equality_is_identity(self):
        assert MINUS_INF == MINUS_INF
        assert MINUS_INF != PLUS_INF
        assert MINUS_INF != float("-inf")

    def test_sorting_with_sentinels(self):
        values = [PLUS_INF, 3, MINUS_INF, 1, 2]
        assert sorted(values) == [MINUS_INF, 1, 2, 3, PLUS_INF]

    def test_is_sentinel(self):
        assert is_sentinel(MINUS_INF)
        assert is_sentinel(PLUS_INF)
        assert not is_sentinel(float("inf"))
        assert not is_sentinel(0)

    def test_hashable(self):
        assert len({MINUS_INF, PLUS_INF, MINUS_INF}) == 2


class TestBufferConstruction:
    def test_full_numeric_buffer(self):
        buf = Buffer.from_values(np.array([3.0, 1.0, 2.0]), k=3)
        assert buf.is_numeric
        assert list(buf.values) == [1.0, 2.0, 3.0]
        assert buf.weight == 1
        assert buf.n_low_pad == buf.n_high_pad == 0
        assert buf.n_real == 3

    def test_full_generic_buffer(self):
        buf = Buffer.from_values(["b", "a", "c"], k=3)
        assert not buf.is_numeric
        assert buf.values == ["a", "b", "c"]

    def test_even_deficit_pads_equally(self):
        buf = Buffer.from_values(np.array([5.0, 4.0]), k=4)
        assert buf.n_low_pad == 1
        assert buf.n_high_pad == 1
        assert np.isneginf(buf.values[0])
        assert np.isposinf(buf.values[-1])
        assert buf.n_real == 2

    def test_odd_deficit_extra_pad_goes_low(self):
        buf = Buffer.from_values(np.array([7.0]), k=4)
        assert buf.n_low_pad == 2
        assert buf.n_high_pad == 1
        assert buf.n_real == 1

    def test_generic_padding_uses_sentinels(self):
        buf = Buffer.from_values(["m"], k=3)
        assert buf.values[0] is MINUS_INF
        assert buf.values[-1] is PLUS_INF
        assert buf.values[1] == "m"

    def test_weighted_count(self):
        buf = Buffer.from_values(np.arange(4.0), k=4)
        buf.weight = 3
        assert buf.weighted_count == 12

    def test_overfull_rejected(self):
        with pytest.raises(ConfigurationError):
            Buffer.from_values(np.arange(5.0), k=4)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Buffer.from_values(np.array([]), k=4)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            Buffer.from_values(np.array([1.0]), k=0)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            Buffer(values=np.array([1.0]), weight=0)

    def test_negative_pad_rejected(self):
        with pytest.raises(ConfigurationError):
            Buffer(values=np.array([1.0]), n_low_pad=-1)

    def test_no_sort_flag_preserves_order(self):
        buf = Buffer.from_values(np.array([1.0, 2.0, 3.0]), k=3, sort=False)
        assert list(buf.values) == [1.0, 2.0, 3.0]

    def test_integer_array_promoted_to_float(self):
        buf = Buffer.from_values(np.array([3, 1, 2]), k=3)
        assert buf.is_numeric
        assert buf.values.dtype == np.float64

    def test_buffer_ids_unique(self):
        a = Buffer.from_values(np.array([1.0]), k=1)
        b = Buffer.from_values(np.array([1.0]), k=1)
        assert a.buffer_id != b.buffer_id

    def test_real_values_excludes_padding(self):
        buf = Buffer.from_values(np.array([5.0, 9.0]), k=5)
        assert list(buf.real_values()) == [5.0, 9.0]
        gbuf = Buffer.from_values(["x", "y"], k=5)
        assert list(gbuf.real_values()) == ["x", "y"]

    def test_level_assignment(self):
        buf = Buffer.from_values(np.array([1.0]), k=1, level=7)
        assert buf.level == 7
