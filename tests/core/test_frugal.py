"""Frugal-2U engine: bank/sketch equivalence, determinism, wire format."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.core.frugal import (
    DEFAULT_BANK_PHIS,
    FRUGAL_MAGIC,
    FrugalBank,
    FrugalSketch,
)

N = 50_000


@pytest.fixture(scope="module")
def stream():
    # integer-scale data: the regime Frugal-2U's unit steps are built for
    return np.random.default_rng(9).permutation(N).astype(np.float64)


def _rank_error_fraction(data, est, phi):
    true_rank = np.searchsorted(np.sort(data), est, side="right")
    return abs(true_rank - phi * len(data)) / len(data)


def test_tracked_fractions_converge(stream):
    sk = FrugalSketch(phis=(0.25, 0.5, 0.75), seed=0)
    sk.extend(stream)
    assert sk.n == N
    for phi in (0.25, 0.5, 0.75):
        assert _rank_error_fraction(stream, sk.quantile(phi), phi) <= 0.12


def test_memory_is_constant(stream):
    sk = FrugalSketch(seed=0)
    before = sk.memory_elements
    sk.extend(stream)
    assert sk.memory_elements == before  # ingest never grows the state


def test_bank_matches_per_sketch_bit_identical(stream):
    """One vectorised bank pass == feeding each sketch its subsequence."""
    n_metrics = 64
    rng = np.random.default_rng(4)
    ids = rng.integers(0, n_metrics, stream.size)
    bank = FrugalBank(DEFAULT_BANK_PHIS, seed=0)
    bank.extend(ids, stream)
    solo = FrugalBank(DEFAULT_BANK_PHIS, seed=0)
    for i in range(n_metrics):
        solo.extend_single(i, stream[ids == i])
    for i in range(n_metrics):
        assert bank.quantiles(i, [0.5, 0.99]) == solo.quantiles(i, [0.5, 0.99])
        assert bank.n_of(i) == solo.n_of(i)


def test_chunking_invariance(stream):
    """Counter-mode randomness: state is independent of batch boundaries."""
    whole = FrugalSketch(seed=3)
    whole.extend(stream)
    chunked = FrugalSketch(seed=3)
    for part in np.array_split(stream, 137):
        chunked.extend(part)
    assert chunked.to_bytes() == whole.to_bytes()


def test_memory_bytes_per_metric():
    bank = FrugalBank(DEFAULT_BANK_PHIS, seed=0)
    bank.extend_single(9_999, [1.0])  # materialise 10k metrics
    assert bank.memory_bytes / len(bank) <= 64


def test_error_bound_is_uncertified(stream):
    sk = FrugalSketch(seed=0)
    sk.extend(stream[:100])
    assert sk.error_bound() == float("inf")
    assert sk.describe()["error_bound"] == float("inf")


def test_empty_and_invalid():
    sk = FrugalSketch(seed=0)
    with pytest.raises(EmptySummaryError):
        sk.quantile(0.5)
    with pytest.raises(ConfigurationError):
        sk.extend([np.inf])
    with pytest.raises(ConfigurationError):
        FrugalSketch(phis=(1.5,))


def test_serialization_roundtrip(stream):
    sk = FrugalSketch(phis=(0.5, 0.9), seed=11)
    sk.extend(stream[:10_000])
    raw = sk.to_bytes()
    assert raw[:8] == FRUGAL_MAGIC
    back = FrugalSketch.from_bytes(raw)
    assert back.to_bytes() == raw
    assert back.quantiles([0.5, 0.9]) == sk.quantiles([0.5, 0.9])
    # identical behaviour under further ingest (seed + counters restored)
    sk.extend(stream[10_000:11_000])
    back.extend(stream[10_000:11_000])
    assert back.to_bytes() == sk.to_bytes()


def test_read_from_stops_at_payload_end(stream):
    sk = FrugalSketch(seed=2)
    sk.extend(stream[:500])
    buf = io.BytesIO(sk.to_bytes() + b"XYZ")
    back = FrugalSketch.read_from(buf)
    assert back.n == sk.n
    assert buf.read() == b"XYZ"


def test_adopt_preserves_history_and_future(stream):
    sk = FrugalSketch(phis=DEFAULT_BANK_PHIS, seed=0)
    sk.extend(stream[:5_000])
    before = sk.quantiles([0.5, 0.99])
    bank = FrugalBank(DEFAULT_BANK_PHIS, seed=0)
    row = bank.adopt(sk)
    assert sk.quantiles([0.5, 0.99]) == before
    sk.extend(stream[5_000:6_000])
    assert bank.n_of(row) == 6_000


def test_adopt_rejects_mismatched_config():
    bank = FrugalBank(DEFAULT_BANK_PHIS, seed=0)
    with pytest.raises(ConfigurationError):
        bank.adopt(FrugalSketch(phis=(0.25,), seed=0))
    with pytest.raises(ConfigurationError):
        bank.adopt(FrugalSketch(phis=DEFAULT_BANK_PHIS, seed=1))
