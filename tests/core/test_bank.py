"""SketchBank: many logically-independent MRL summaries, one ingest path.

The bank's contract is strict: every sketch must behave exactly as if it
were a standalone :class:`QuantileFramework` fed its own subsequence of
the stream (the property suite in ``test_property_bank.py`` checks
bit-identity exhaustively; here we cover construction, validation, lazy
materialisation, capacity limits, and the query surface).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import serialize
from repro.core.bank import SketchBank
from repro.core.errors import CapacityExceededError, ConfigurationError
from repro.core.framework import QuantileFramework
from repro.core.sketch import QuantileSketch

EPS = 0.05
N = 50_000


def _fed_pair(rng, n_sketches=4, chunks=6, chunk_rows=2000):
    """A bank and independently-fed reference sketches, same stream."""
    bank = SketchBank(EPS, n=N, n_sketches=n_sketches)
    refs = [QuantileSketch(EPS, n=N) for _ in range(n_sketches)]
    for _ in range(chunks):
        ids = rng.integers(0, n_sketches, size=chunk_rows)
        vals = rng.normal(size=chunk_rows)
        bank.extend(ids, vals)
        for g in range(n_sketches):
            sub = vals[ids == g]
            if len(sub):
                refs[g].extend(sub)
    return bank, refs


class TestConstruction:
    def test_epsilon_validated(self):
        with pytest.raises(ConfigurationError):
            SketchBank(0.0)
        with pytest.raises(ConfigurationError):
            SketchBank(1.0)

    def test_n_validated(self):
        with pytest.raises(ConfigurationError):
            SketchBank(0.01, n=0)

    def test_negative_n_sketches_rejected(self):
        with pytest.raises(ConfigurationError):
            SketchBank(0.01, n=1000, n_sketches=-1)

    def test_bad_max_sketches_rejected(self):
        with pytest.raises(ConfigurationError):
            SketchBank(0.01, n=1000, max_sketches=0)

    def test_preallocated_sketches(self):
        bank = SketchBank(EPS, n=N, n_sketches=3)
        assert len(bank) == bank.n_sketches == 3

    def test_plan_matches_single_sketch(self):
        bank = SketchBank(EPS, n=N, n_sketches=1)
        single = QuantileSketch(EPS, n=N)
        assert bank.memory_elements == single.memory_elements
        assert (bank.plan.b, bank.plan.k) == (
            single.plan.b,
            single.plan.k,
        )


class TestLazyMaterialisation:
    def test_extend_materialises_through_max_id(self):
        bank = SketchBank(EPS, n=N)
        assert len(bank) == 0
        bank.extend([5, 2, 5], [1.0, 2.0, 3.0])
        # ids 0..5 all exist (dense id space), only 2 and 5 hold data
        assert len(bank) == 6
        assert bank.counts().tolist() == [0, 0, 1, 0, 0, 2]
        assert bank.n_total == 3

    def test_empty_sketches_still_count_memory(self):
        bank = SketchBank(EPS, n=N, n_sketches=4)
        single = QuantileSketch(EPS, n=N)
        assert bank.memory_elements == 4 * single.memory_elements

    def test_single_row_sketch(self):
        bank = SketchBank(EPS, n=N)
        bank.extend([0, 1], [7.0, -1.0])
        assert float(bank.query(1, 0.5)) == -1.0
        assert bank.counts().tolist() == [1, 1]

    def test_max_sketches_cap(self):
        bank = SketchBank(EPS, n=N, max_sketches=3)
        bank.extend([0, 1, 2], [1.0, 2.0, 3.0])
        with pytest.raises(CapacityExceededError):
            bank.extend([3], [4.0])
        with pytest.raises(CapacityExceededError):
            bank.add_sketch()
        # the failed call must not have corrupted the existing sketches
        assert bank.counts().tolist() == [1, 1, 1]

    def test_adopt_respects_cap(self):
        bank = SketchBank(EPS, n=N, max_sketches=1, n_sketches=1)
        with pytest.raises(CapacityExceededError):
            bank.adopt(QuantileSketch(EPS, n=N)._impl)


class TestValidation:
    def test_mismatched_lengths(self):
        bank = SketchBank(EPS, n=N)
        with pytest.raises(ConfigurationError):
            bank.extend([0, 1], [1.0])

    def test_negative_ids(self):
        bank = SketchBank(EPS, n=N)
        with pytest.raises(ConfigurationError):
            bank.extend([-1], [1.0])
        with pytest.raises(ConfigurationError):
            bank.extend_single(-1, [1.0])

    def test_non_integer_ids(self):
        bank = SketchBank(EPS, n=N)
        with pytest.raises(ConfigurationError):
            bank.extend([0.5], [1.0])

    def test_integral_float_ids_accepted(self):
        bank = SketchBank(EPS, n=N)
        bank.extend(np.array([0.0, 1.0]), [1.0, 2.0])
        assert bank.counts().tolist() == [1, 1]

    def test_non_finite_values_rejected(self):
        bank = SketchBank(EPS, n=N, n_sketches=1)
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(ConfigurationError):
                bank.extend([0], [bad])
            with pytest.raises(ConfigurationError):
                bank.extend_single(0, [bad])

    def test_2d_values_rejected(self):
        bank = SketchBank(EPS, n=N, n_sketches=1)
        with pytest.raises(ConfigurationError):
            bank.extend_single(0, np.zeros((2, 2)))

    def test_empty_extend_is_noop(self):
        bank = SketchBank(EPS, n=N, n_sketches=2)
        bank.extend(np.array([], dtype=np.int64), np.array([]))
        bank.extend_single(0, [])
        assert bank.n_total == 0

    def test_unknown_sketch_id_query(self):
        bank = SketchBank(EPS, n=N, n_sketches=1)
        with pytest.raises(ConfigurationError):
            bank.sketch(1)
        with pytest.raises(ConfigurationError):
            bank.sketch(-1)

    def test_adopt_rejects_non_framework(self):
        bank = SketchBank(EPS, n=N)
        with pytest.raises(ConfigurationError):
            bank.adopt(QuantileSketch(EPS, n=N))  # wrapper, not framework

    def test_adopt_rejects_generic_mode(self):
        fw = QuantileFramework(b=3, k=10)
        fw.extend(["a", "b", "c"])
        with pytest.raises(ConfigurationError):
            SketchBank(EPS, n=N).adopt(fw)


class TestBitIdentity:
    def test_quantiles_bounds_memory_serialization(self, rng):
        bank, refs = _fed_pair(rng)
        phis = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0]
        for g, ref in enumerate(refs):
            assert [float(v) for v in bank.quantiles(g, phis)] == [
                float(v) for v in ref.quantiles(phis)
            ]
            assert bank.error_bound(g) == ref._impl.error_bound()
            assert serialize.dumps(bank.sketch(g)) == serialize.dumps(
                ref._impl
            )
        assert bank.memory_elements == sum(
            ref.memory_elements for ref in refs
        )
        assert bank.error_bounds() == [
            ref._impl.error_bound() for ref in refs
        ]

    def test_extend_single_matches_extend(self, rng):
        vals = rng.normal(size=5000)
        via_single = SketchBank(EPS, n=N, n_sketches=1)
        via_ids = SketchBank(EPS, n=N, n_sketches=1)
        for s in range(0, len(vals), 700):
            chunk = vals[s : s + 700]
            via_single.extend_single(0, chunk)
            via_ids.extend(np.zeros(len(chunk), dtype=np.int64), chunk)
        phis = [0.1, 0.5, 0.9]
        assert via_single.quantiles(0, phis) == via_ids.quantiles(0, phis)
        assert serialize.dumps(via_single.sketch(0)) == serialize.dumps(
            via_ids.sketch(0)
        )

    def test_scratch_reuse_does_not_corrupt(self, rng):
        """Growing/shrinking chunks share scratch; history must be stable."""
        bank = SketchBank(EPS, n=N, n_sketches=3)
        sizes = [3000, 17, 4500, 1, 2999]
        streams = [
            (rng.integers(0, 3, size=m), rng.normal(size=m)) for m in sizes
        ]
        for ids, vals in streams:
            bank.extend(ids, vals)
        for g in range(3):
            fresh = QuantileSketch(EPS, n=N)
            for ids, vals in streams:
                sub = vals[ids == g]
                if len(sub):
                    fresh.extend(sub)
            assert bank.quantiles(g, [0.5]) == [fresh.query(0.5)]

    def test_adopted_framework_is_shared(self, rng):
        sk = QuantileSketch(EPS, n=N)
        bank = SketchBank(EPS, n=N)
        i = bank.adopt(sk._impl)
        bank.extend_single(i, rng.normal(size=1000))
        assert len(sk) == 1000
        assert float(sk.query(0.5)) == float(bank.query(i, 0.5))


class TestQueries:
    def test_quantiles_all_with_empty_sketches(self, rng):
        bank = SketchBank(EPS, n=N, n_sketches=3)
        bank.extend_single(1, rng.normal(size=100))
        answers = bank.quantiles_all([0.25, 0.75])
        assert answers[0] is None and answers[2] is None
        assert len(answers[1]) == 2

    def test_counts_and_total(self, rng):
        bank = SketchBank(EPS, n=N)
        bank.extend([0, 0, 2], [1.0, 2.0, 3.0])
        assert bank.counts().tolist() == [2, 0, 1]
        assert bank.n_total == 3
