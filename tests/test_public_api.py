"""Snapshot of the public API surface: the facade and the legacy shims.

CI runs this to catch accidental changes to ``repro.__all__``, the
facade signatures, and the deprecation behaviour of the pre-facade
import paths.
"""

from __future__ import annotations

import inspect
import warnings

import numpy as np
import pytest

import repro


# -- the facade surface -------------------------------------------------------


def test_public_all_snapshot():
    assert repro.__all__ == [
        "Sketch",
        "Bank",
        "connect",
        "hist",
        "obs",
        "__version__",
    ]


def test_sketch_signature():
    params = inspect.signature(repro.Sketch).parameters
    assert list(params) == [
        "eps", "n", "policy", "kernels", "adaptive", "engine",
        "window", "slide", "decay", "kwargs",
    ]
    assert params["eps"].default == 0.01
    assert params["n"].default is None
    assert params["policy"].kind is inspect.Parameter.KEYWORD_ONLY
    assert params["policy"].default == "new"
    assert params["kernels"].kind is inspect.Parameter.KEYWORD_ONLY
    assert params["adaptive"].kind is inspect.Parameter.KEYWORD_ONLY
    assert params["engine"].kind is inspect.Parameter.KEYWORD_ONLY
    assert params["engine"].default == "paper"
    for name in ("window", "slide", "decay"):
        assert params[name].kind is inspect.Parameter.KEYWORD_ONLY
        assert params[name].default is None


def test_bank_signature():
    params = inspect.signature(repro.Bank).parameters
    assert list(params) == [
        "eps", "n", "policy", "kernels", "engine", "kwargs",
    ]
    assert params["engine"].default == "paper"


def test_connect_signature():
    params = inspect.signature(repro.connect).parameters
    assert list(params) == ["host", "port", "cluster", "kwargs"]
    assert params["port"].default == 7337
    assert params["cluster"].kind is inspect.Parameter.KEYWORD_ONLY
    assert params["cluster"].default is None


def test_hist_signature():
    params = inspect.signature(repro.hist).parameters
    assert list(params) == [
        "data", "bins", "eps", "policy", "kernels", "engine",
        "window", "slide", "decay", "kwargs",
    ]
    assert params["engine"].default == "paper"
    assert params["eps"].kind is inspect.Parameter.KEYWORD_ONLY
    assert params["kernels"].kind is inspect.Parameter.KEYWORD_ONLY


def test_time_kwargs_agree_across_surfaces():
    """window=/slide=/decay= are spelled identically on every surface
    that accepts them (the facade constructors and the service client)."""
    from repro.service.client import QuantileClient

    for fn in (repro.Sketch, repro.hist):
        params = inspect.signature(fn).parameters
        for name in ("window", "slide", "decay"):
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY
            assert params[name].default is None
    client_params = inspect.signature(QuantileClient.create).parameters
    for name in ("window", "slide", "decay"):
        assert client_params[name].kind is inspect.Parameter.KEYWORD_ONLY
        assert client_params[name].default is None
    # the accuracy knob is eps= on the client too (epsilon= is the
    # deprecated alias, shimmed with a one-shot warning)
    assert "eps" in client_params
    assert client_params["epsilon"].default is None


def test_client_epsilon_alias_warns_once(tmp_path):
    from repro.service import client as client_mod

    client_mod._WARNED_KWARGS.discard("epsilon")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        client_mod._deprecated_kwarg("epsilon", "eps")
        client_mod._deprecated_kwarg("epsilon", "eps")
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert "eps=" in str(deprecations[0].message)


def test_sketch_dispatch():
    from repro.core.adaptive import AdaptiveQuantileSketch
    from repro.core.sketch import QuantileSketch

    assert isinstance(repro.Sketch(eps=0.02), AdaptiveQuantileSketch)
    assert isinstance(repro.Sketch(eps=0.02, n=10_000), QuantileSketch)
    assert isinstance(
        repro.Sketch(eps=0.02, n=10_000, adaptive=True),
        AdaptiveQuantileSketch,
    )


def test_hist_returns_equidepth_boundaries():
    data = np.arange(10_000, dtype=np.float64)
    edges = repro.hist(data, bins=4, eps=0.01)
    assert len(edges) == 3
    for target, edge in zip((2500, 5000, 7500), edges):
        assert abs(float(edge) - target) <= 0.01 * 10_000


def test_obs_is_exported():
    assert repro.obs.is_enabled() in (True, False)
    assert callable(repro.obs.enable)
    assert callable(repro.obs.render_prometheus)


# -- legacy import paths ------------------------------------------------------

LEGACY_NAMES = [
    "QuantileSketch",
    "AdaptiveQuantileSketch",
    "QuantileFramework",
    "ParallelQuantileEngine",
    "approximate_quantiles",
    "optimal_parameters",
    "MultiColumnSketcher",
    "exact_quantile_two_pass",
    "verify_guarantee",
]


@pytest.mark.parametrize("name", LEGACY_NAMES)
def test_legacy_name_still_importable(name):
    repro._reset_deprecation_warnings()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        obj = getattr(repro, name)
    assert obj is not None


@pytest.mark.parametrize("name", LEGACY_NAMES)
def test_legacy_name_warns_exactly_once(name):
    repro._reset_deprecation_warnings()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        getattr(repro, name)
        getattr(repro, name)  # second access: shim stays silent
    deprecations = [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]
    assert len(deprecations) == 1
    assert name in str(deprecations[0].message)


def test_legacy_object_identity():
    """The shim returns the same object as the canonical import."""
    import repro.core as core

    repro._reset_deprecation_warnings()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert repro.QuantileSketch is core.QuantileSketch
        assert repro.QuantileFramework is core.QuantileFramework


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.NoSuchThing


def test_dir_lists_facade_and_legacy():
    listing = dir(repro)
    for name in repro.__all__:
        assert name in listing
    for name in LEGACY_NAMES:
        assert name in listing
