"""Tests for analysis utilities: tables, memory accounting, evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    MemoryReport,
    QuantileEvaluation,
    ascii_series,
    evaluate,
    format_memory,
    format_table,
    observed_epsilon,
    observed_rank_error,
    report_memory,
)
from repro.core import QuantileFramework
from repro.core.errors import ConfigurationError, EmptySummaryError


class TestFormatMemory:
    def test_table1_rendering(self):
        # matches the units of the paper's Table 1
        assert format_memory(275) == "275"
        assert format_memory(2600) == "2.6 K"
        assert format_memory(107_400) == "107.4 K"
        assert format_memory(1_415_800) == "1.4 M"

    def test_boundaries(self):
        assert format_memory(999) == "999"
        assert format_memory(1000) == "1.0 K"
        assert format_memory(10**6) == "1.0 M"


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["a", 1], ["longer", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) == {"-"}
        # all rows equal width
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_floats_fixed_precision(self):
        text = format_table(["x"], [[0.5]])
        assert "0.50000" in text

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestAsciiSeries:
    def test_markers_present(self):
        text = ascii_series(
            [1.0, 2.0], {"up": [1, 10], "down": [10, 1]}, width=20
        )
        assert "*" in text and "+" in text
        assert "legend" in text

    def test_log_scale(self):
        text = ascii_series(
            [1.0], {"s": [1000.0]}, width=10, log_y=True
        )
        assert "|" in text

    def test_empty(self):
        assert ascii_series([], {}) == "(empty)"


class TestMemoryReport:
    def test_framework_accounting(self):
        fw = QuantileFramework(b=5, k=100)
        report = report_memory(fw)
        assert report.elements == 500
        assert report.data_bytes == 4000
        assert report.total_bytes > report.data_bytes
        assert "500 elements" in str(report)

    def test_baseline_accounting(self):
        from repro.baselines import P2Quantile

        report = report_memory(P2Quantile(0.5))
        assert report.elements == 5

    def test_dataclass_fields(self):
        report = MemoryReport(elements=10, bookkeeping_bytes=64)
        assert report.total_bytes == 144


class TestEvaluation:
    def test_observed_rank_error_basics(self):
        data = np.array([1.0, 2, 3, 4, 5])
        assert observed_rank_error(data, 0.5, 3.0) == 0
        assert observed_rank_error(data, 0.5, 5.0) == 2
        assert observed_epsilon(data, 0.5, 5.0) == pytest.approx(0.4)

    def test_duplicates_count_as_interval(self):
        data = np.array([1.0, 2, 2, 2, 5])
        # target rank 3; 2.0 occupies ranks 2..4 -> error 0
        assert observed_rank_error(data, 0.5, 2.0) == 0

    def test_absent_value_measured_to_gap(self):
        data = np.array([1.0, 2, 3, 4, 5])
        # 2.5 sits between ranks 2 and 3; target 3 -> distance 0-ish
        assert observed_rank_error(data, 0.5, 2.5) <= 1

    def test_evaluate_batch(self):
        data = np.arange(100, dtype=np.float64)
        report = evaluate(data, [0.1, 0.5], [9.0, 60.0])
        assert isinstance(report, QuantileEvaluation)
        assert report.errors[0] == 0.0
        assert report.max_error == pytest.approx(0.11)
        assert report.mean_error == pytest.approx(0.055)

    def test_evaluate_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            evaluate(np.arange(10.0), [0.5], [1.0, 2.0])

    def test_empty_data_rejected(self):
        with pytest.raises(EmptySummaryError):
            observed_rank_error(np.array([]), 0.5, 1.0)

    def test_bad_phi_rejected(self):
        with pytest.raises(ConfigurationError):
            observed_rank_error(np.array([1.0]), 1.5, 1.0)
