"""Engine-labelled obs counters: KLL compactions, Frugal step moves.

The pluggable engines report their internal work through
``hooks.on_engine_event`` behind the same ``ENABLED`` gate as the paper
counters, labelled by engine so a mixed deployment can see which
engine is doing what.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.frugal import FrugalBank, FrugalSketch
from repro.core.kll import KLLSketch
from repro.obs import hooks

DATA = np.random.default_rng(0).normal(0.0, 1000.0, 30_000)


@pytest.fixture(autouse=True)
def _isolated_obs():
    hooks.reset()
    yield
    hooks.reset()


def test_kll_compactions_counted_and_labelled():
    hooks.enable()
    sk = KLLSketch(eps=0.02, seed=0)
    sk.extend(DATA)
    counted = hooks.registry().value("engine.compactions", engine="kll")
    assert counted == sk._n_compactions > 0


def test_frugal_step_adjustments_counted_and_labelled():
    hooks.enable()
    sk = FrugalSketch(seed=0)
    sk.extend(DATA)
    moved = hooks.registry().value(
        "engine.step_adjustments", engine="frugal"
    )
    # almost every non-coin-flip observation moves some estimate
    assert 0 < moved <= len(DATA) * len(sk.phis)


def test_bank_kernel_reports_through_the_same_counter():
    hooks.enable()
    bank = FrugalBank((0.5,), seed=0)
    rng = np.random.default_rng(1)
    bank.extend(rng.integers(0, 32, 5_000), rng.normal(0, 1000, 5_000))
    assert hooks.registry().value(
        "engine.step_adjustments", engine="frugal"
    ) > 0


def test_disabled_gate_records_no_engine_events():
    assert not hooks.is_enabled()
    sk = KLLSketch(eps=0.02, seed=0)
    sk.extend(DATA)
    fr = FrugalSketch(seed=0)
    fr.extend(DATA[:5_000])
    assert hooks.registry().value(
        "engine.compactions", engine="kll"
    ) == 0
    assert hooks.registry().value(
        "engine.step_adjustments", engine="frugal"
    ) == 0
