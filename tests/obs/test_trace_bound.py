"""The live trace-event bound IS the certified a-posteriori bound.

The key invariant: NEW adds weight-1 buffers and changes none of
``W``/``C``/``w_max`` (collapse outputs always weigh >= 2), so the bound
recorded at the most recent COLLAPSE trace event equals
``framework.error_bound()`` for any answer issued before the next
collapse -- bit-equal, at every stream prefix.  And because the bound is
Lemma 5, the *observed* rank error of every answered quantile stays
under it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.rank_error import observed_rank_error
from repro.core.framework import QuantileFramework
from repro.obs import hooks

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9]


@pytest.fixture(autouse=True)
def _isolated_obs():
    hooks.reset()
    yield
    hooks.reset()


@settings(max_examples=25, deadline=None)
@given(
    b=st.integers(min_value=3, max_value=6),
    k=st.integers(min_value=4, max_value=24),
    n_chunks=st.integers(min_value=1, max_value=30),
    chunk=st.integers(min_value=1, max_value=97),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_trace_bound_equals_certified_bound_at_every_prefix(
    b, k, n_chunks, chunk, seed
):
    hooks.reset()
    hooks.enable()
    fw = QuantileFramework(b, k, policy="new")
    data = np.random.default_rng(seed).normal(size=n_chunks * chunk)
    tracer = hooks.tracer()
    for i in range(n_chunks):
        fw.extend(data[i * chunk : (i + 1) * chunk])
        live = tracer.current_bound()
        if fw.n_collapses == 0:
            assert live is None
            assert fw.error_bound() == 0.0
        else:
            # bit-equal: the last collapse event certified this prefix
            assert live == fw.error_bound()


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(min_value=50, max_value=4000),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_certified_bound_dominates_observed_rank_error(n, seed):
    hooks.reset()
    hooks.enable()
    fw = QuantileFramework(4, 16, policy="new")
    data = np.random.default_rng(seed).permutation(n).astype(np.float64)
    fw.extend(data)
    estimates = fw.quantiles(PHIS)
    bound = fw.error_bound()
    live = hooks.tracer().current_bound()
    if fw.n_collapses:
        assert live == bound
    ordered = np.sort(data)
    for phi, est in zip(PHIS, estimates):
        assert observed_rank_error(ordered, phi, float(est)) <= bound


def test_trace_events_are_monotone_in_n():
    hooks.enable()
    fw = QuantileFramework(3, 8, policy="new")
    fw.extend(np.random.default_rng(7).normal(size=2000))
    events = hooks.tracer().ring.events("collapse")
    assert len(events) == fw.n_collapses
    ns = [ev.n for ev in events]
    assert ns == sorted(ns)
    # each event's bound recomputes from its own recorded fields
    for ev in events:
        assert ev.bound == (
            ev.sum_collapse_weights - ev.n_collapses - 1
        ) / 2.0 + ev.w_max
