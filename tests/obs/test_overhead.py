"""Disabled-mode instrumentation must cost (almost) nothing.

The guards in :mod:`repro.core` are one module-attribute read plus a
branch each, placed at buffer/chunk granularity -- never per element.
This test bounds the *analytic* overhead: measured guard cost times
guards-per-element, as a fraction of the measured per-element ingest
cost.  The same quantity is measured end-to-end by the ``obs`` section
of ``benchmarks/bench_hotpath.py`` and gated in CI at 2%.
"""

from __future__ import annotations

import time
import timeit

import numpy as np
import pytest

from repro.core.framework import QuantileFramework
from repro.obs import hooks


@pytest.fixture(autouse=True)
def _isolated_obs():
    hooks.reset()
    yield
    hooks.reset()


def test_disabled_guard_cost_is_under_two_percent_of_ingest():
    k = 1000
    n = 200_000
    reps = 200_000

    # cost of one disabled guard: the exact expression the core uses
    t_guard = (
        timeit.timeit(
            "if h.ENABLED:\n    pass", globals={"h": hooks}, number=reps
        )
        / reps
    )

    # per-element cost of the real (instrumented, disabled) ingest path
    data = np.random.default_rng(0).permutation(n).astype(np.float64)
    fw = QuantileFramework(10, k, policy="new")
    t0 = time.perf_counter()
    fw.extend(data)
    per_element = (time.perf_counter() - t0) / n
    assert not hooks.is_enabled()

    # guard sites fire per buffer op (NEW + COLLAPSE amortise to ~2/k
    # per element) plus once per extend chunk
    guards_per_element = 2.0 / k + 1.0 / n
    overhead = (t_guard * guards_per_element) / per_element
    assert overhead < 0.02, (
        f"disabled-mode guard overhead {overhead:.2%} "
        f"(guard={t_guard * 1e9:.1f}ns, ingest={per_element * 1e9:.1f}ns/elt)"
    )


def test_enabled_mode_still_ingests_correctly():
    # enabling must never change answers, only record them
    data = np.random.default_rng(1).permutation(50_000).astype(np.float64)
    fw_off = QuantileFramework(8, 500, policy="new")
    fw_off.extend(data)
    hooks.enable()
    fw_on = QuantileFramework(8, 500, policy="new")
    fw_on.extend(data)
    phis = [0.1, 0.5, 0.9]
    assert fw_on.quantiles(phis) == fw_off.quantiles(phis)
    assert fw_on.error_bound() == fw_off.error_bound()
