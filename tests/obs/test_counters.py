"""Obs counters against a hand-traced b=3, k=5 collapse sequence.

With three buffers of five elements, the ``new`` policy consumes 25
elements as::

    NEW NEW NEW          -> three full (level 0, weight 1) buffers
    COLLAPSE             -> one (level 1, weight 3) buffer, two free
    NEW NEW              -> 25 elements consumed

so exactly 5 NEW operations place level-0 leaves, exactly 1 COLLAPSE
fires at level 1 merging weights (1, 1, 1) into weight 3, and Lemma 5
gives the certified bound (W - C - 1)/2 + w_max = (3 - 1 - 1)/2 + 3
= 3.5 ranks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.framework import QuantileFramework
from repro.obs import hooks


@pytest.fixture(autouse=True)
def _isolated_obs():
    hooks.reset()
    yield
    hooks.reset()


def _traced_framework() -> QuantileFramework:
    hooks.enable()
    fw = QuantileFramework(3, 5, policy="new")
    fw.extend(np.arange(25, dtype=np.float64))
    return fw


def test_hand_traced_new_and_collapse_counts():
    fw = _traced_framework()
    stats = hooks.stats_for(fw)
    assert stats.new_by_level == {0: 5}
    assert stats.collapses_by_level == {1: 1}
    assert stats.elements == 25
    assert stats.n_new == 5
    assert stats.n_collapses == fw.n_collapses == 1


def test_hand_traced_registry_counters_match():
    fw = _traced_framework()
    reg = hooks.registry()
    assert reg.value("core.new", level=0) == 5
    assert reg.value("core.collapse", level=1) == 1
    assert reg.total("core.elements_ingested") == 25
    # one extend chunk of 25 float64 values
    assert reg.total("core.bytes_ingested") == 25 * 8
    # final state: the weight-3 survivor plus two level-0 buffers
    assert reg.value("core.buffers_in_use") == 3


def test_hand_traced_trace_event():
    fw = _traced_framework()
    events = hooks.tracer().ring.events("collapse")
    assert len(events) == 1
    (ev,) = events
    assert ev.level == 1
    assert ev.weights == (1, 1, 1)
    assert ev.out_weight == 3
    assert ev.n_collapses == 1
    assert ev.sum_collapse_weights == 3
    assert ev.w_max == 3
    assert ev.bound == 3.5
    assert ev.bound == fw.error_bound()
    assert hooks.tracer().current_bound() == 3.5


def test_hand_traced_bound_in_stats():
    fw = _traced_framework()
    assert hooks.stats_for(fw).last_bound == fw.error_bound() == 3.5


def test_disabled_gate_records_nothing():
    fw = QuantileFramework(3, 5, policy="new")
    fw.extend(np.arange(25, dtype=np.float64))
    assert getattr(fw, "_obs_stats", None) is None
    assert len(hooks.registry()) == 0
    assert hooks.tracer().ring.n_emitted == 0


def test_disable_keeps_collected_state_readable():
    fw = _traced_framework()
    hooks.disable()
    assert not hooks.is_enabled()
    # collected state survives the gate flip
    assert hooks.registry().value("core.new", level=0) == 5
    assert hooks.tracer().current_bound() == 3.5
    # ...but nothing further is recorded
    fw.extend(np.arange(25, dtype=np.float64))
    assert hooks.registry().total("core.elements_ingested") == 25


def test_adaptive_stage_roll_preserves_counts():
    from repro.core.adaptive import AdaptiveQuantileSketch

    hooks.enable()
    sk = AdaptiveQuantileSketch(epsilon=0.05, initial_capacity=64)
    sk.extend(np.arange(1000, dtype=np.float64))
    assert sk.n_stages > 1  # stages rolled
    stats = hooks.collected_stats(sk)
    assert stats is not None
    # every element is accounted across rolled + live stages
    assert stats.elements == 1000
    # so is every collapse, including the stage-close ones (_ClosedStage
    # fires the hooks before the roll merges the retired stage's stats)
    assert stats.n_collapses == (
        sum(s.n_collapses for s in sk._closed) + sk._active.n_collapses
    )
