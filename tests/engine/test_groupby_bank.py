"""Bank-backed GROUP BY execution: lazy groups, vectorised keys, bounds.

Covers the executor rewrite on top of :class:`SketchBank`: group
accumulators materialise the moment a key first appears (even in the
last chunk), answers stay bit-identical to feeding each group's own
:class:`QuantileSketch` its arrival-order slices, very large group
counts behave (and fail) exactly like per-sketch construction, and the
certified per-group Lemma 5 bounds are exposed on the result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bank import SketchBank
from repro.core.errors import (
    CapacityExceededError,
    ConfigurationError,
)
from repro.core.sketch import QuantileSketch
from repro.engine import count, execute_group_by, median, quantile, sum_
from repro.engine.table import Chunk

EPS = 0.05


def _chunks(specs):
    """Build chunks from ``[(keys, values), ...]`` specs."""
    out = []
    for keys, values in specs:
        keys = np.asarray(keys)
        values = np.asarray(values, dtype=np.float64)
        out.append(
            Chunk(columns={"g": keys, "x": values}, n_rows=len(values))
        )
    return out


def _reference_rows(specs, phi=0.5, n_hint=1000):
    """Old-path semantics: per-group sketches fed arrival-order slices."""
    sketches = {}
    counts = {}
    for keys, values in specs:
        keys = np.asarray(keys)
        values = np.asarray(values, dtype=np.float64)
        for key in dict.fromkeys(k.item() for k in keys):
            sub = values[keys == key]
            sub = sub[~np.isnan(sub)]
            if key not in sketches:
                sketches[key] = QuantileSketch(EPS, n=n_hint)
                counts[key] = 0
            if len(sub):
                sketches[key].extend(sub)
            counts[key] += int((keys == key).sum())
    return [
        {
            "g": key,
            f"q{phi:g}_x": (
                float(sk.query(phi)) if len(sk) else None
            ),
            "count": counts[key],
        }
        for key, sk in sketches.items()
    ]


class TestLazyGroupMaterialisation:
    def test_group_first_seen_in_last_chunk(self, rng):
        specs = [
            (np.zeros(500, dtype=np.int64), rng.normal(size=500)),
            (np.zeros(500, dtype=np.int64), rng.normal(size=500)),
            (np.array([0] * 499 + [7]), rng.normal(size=500)),
        ]
        result = execute_group_by(
            iter(_chunks(specs)),
            ["g"],
            [median("x", EPS), count()],
            n_hint=1500,
        )
        assert result.rows == _reference_rows(specs, n_hint=1500)
        late = [row for row in result.rows if row["g"] == 7]
        assert late[0]["count"] == 1
        # both groups own fully-sized sketches: memory is per group
        single = QuantileSketch(EPS, n=1500)
        assert result.sketch_memory_elements == 2 * single.memory_elements

    def test_single_row_group(self, rng):
        keys = np.array([1, 1, 2, 1, 1], dtype=np.int64)
        vals = np.array([5.0, 1.0, 42.0, 3.0, 2.0])
        result = execute_group_by(
            iter(_chunks([(keys, vals)])),
            ["g"],
            [median("x", EPS), count()],
            n_hint=5,
        )
        by_key = {row["g"]: row for row in result.rows}
        assert by_key[2]["count"] == 1
        assert by_key[2]["q0.5_x"] == 42.0

    def test_first_seen_ordering_preserved(self, rng):
        # old dict-bucketing emitted rows in first-appearance order
        specs = [
            (np.array([3, 1, 3, 2]), rng.normal(size=4)),
            (np.array([2, 5, 1, 5]), rng.normal(size=4)),
        ]
        result = execute_group_by(
            iter(_chunks(specs)), ["g"], [count()], n_hint=8
        )
        assert [row["g"] for row in result.rows] == [3, 1, 2, 5]

    def test_many_groups_match_per_sketch_answers(self, rng):
        n = 12_000
        keys = rng.integers(0, 200, size=n).astype(np.int64)
        vals = rng.normal(size=n)
        specs = [
            (keys[s : s + 1024], vals[s : s + 1024])
            for s in range(0, n, 1024)
        ]
        result = execute_group_by(
            iter(_chunks(specs)),
            ["g"],
            [median("x", EPS), count()],
            n_hint=n,
        )
        assert len(result.rows) == 200
        assert result.rows == _reference_rows(specs, n_hint=n)

    def test_over_10k_groups_under_memory_cap(self, rng):
        """>10k distinct groups against a capped bank fails exactly like
        per-sketch construction (same capacity error), and an uncapped
        bank handles them."""
        n_groups = 10_050
        ids = np.arange(n_groups, dtype=np.int64)
        vals = rng.normal(size=n_groups)
        capped = SketchBank(0.2, n=n_groups, max_sketches=10_000)
        with pytest.raises(CapacityExceededError):
            capped.extend(ids, vals)
        uncapped = SketchBank(0.2, n=n_groups)
        uncapped.extend(ids, vals)
        assert len(uncapped) == n_groups
        assert uncapped.n_total == n_groups
        # configuration errors match per-sketch construction exactly
        with pytest.raises(ConfigurationError) as bank_err:
            SketchBank(2.0, n=n_groups)
        with pytest.raises(ConfigurationError) as sketch_err:
            QuantileSketch(2.0, n=n_groups)
        assert str(bank_err.value) == str(sketch_err.value)

    def test_over_10k_groups_through_executor(self, rng):
        n = 22_000
        keys = rng.permutation(n).astype(np.int64) % 11_000
        vals = rng.normal(size=n)
        specs = [
            (keys[s : s + 4096], vals[s : s + 4096])
            for s in range(0, n, 4096)
        ]
        result = execute_group_by(
            iter(_chunks(specs)),
            ["g"],
            [quantile("x", 0.5, 0.2), count()],
            n_hint=n,
        )
        assert len(result.rows) == 11_000
        assert sum(row["count"] for row in result.rows) == n
        single = QuantileSketch(0.2, n=n)
        assert (
            result.sketch_memory_elements
            == 11_000 * single.memory_elements
        )


class TestVectorisedKeys:
    def test_string_keys(self, rng):
        keys = [["b", "a", "b", "c"], ["c", "a", "a", "d"]]
        chunks = [
            Chunk(
                columns={"g": list(k), "x": rng.normal(size=4)},
                n_rows=4,
            )
            for k in keys
        ]
        result = execute_group_by(
            iter(chunks), ["g"], [count()], n_hint=8
        )
        assert [row["g"] for row in result.rows] == ["b", "a", "c", "d"]
        assert {row["g"]: row["count"] for row in result.rows} == {
            "a": 3,
            "b": 2,
            "c": 2,
            "d": 1,
        }
        assert all(isinstance(row["g"], str) for row in result.rows)

    def test_composite_keys(self, rng):
        n = 4000
        k1 = rng.integers(0, 5, size=n).astype(np.int64)
        k2 = rng.integers(0, 3, size=n).astype(np.int64)
        x = rng.normal(size=n)
        chunks = [
            Chunk(
                columns={
                    "a": k1[s : s + 512],
                    "b": k2[s : s + 512],
                    "x": x[s : s + 512],
                },
                n_rows=min(512, n - s),
            )
            for s in range(0, n, 512)
        ]
        result = execute_group_by(
            iter(chunks), ["a", "b"], [count(), sum_("x")], n_hint=n
        )
        assert len(result.rows) == 15
        for row in result.rows:
            mask = (k1 == row["a"]) & (k2 == row["b"])
            assert row["count"] == int(mask.sum())
            assert row["sum_x"] == pytest.approx(float(x[mask].sum()))
            assert isinstance(row["a"], int) and isinstance(row["b"], int)

    def test_scalar_only_query_uses_vectorised_path(self, rng):
        # COUNT/SUM-only queries never build a bank but share the
        # argsort partition; exact integer/float agreement expected
        n = 8000
        keys = rng.integers(0, 37, size=n).astype(np.int64)
        x = rng.exponential(size=n)
        chunks = [
            Chunk(
                columns={"g": keys[s : s + 1000], "x": x[s : s + 1000]},
                n_rows=min(1000, n - s),
            )
            for s in range(0, n, 1000)
        ]
        result = execute_group_by(
            iter(chunks), ["g"], [count(), sum_("x")], n_hint=n
        )
        assert result.sketch_memory_elements == 0
        for row in result.rows:
            mask = keys == row["g"]
            assert row["count"] == int(mask.sum())

    def test_nan_values_ignored_in_quantiles(self, rng):
        vals = rng.normal(size=1000)
        vals[::7] = np.nan
        keys = rng.integers(0, 4, size=1000).astype(np.int64)
        specs = [(keys, vals)]
        result = execute_group_by(
            iter(_chunks(specs)),
            ["g"],
            [median("x", EPS), count()],
            n_hint=1000,
        )
        assert result.rows == _reference_rows(specs, n_hint=1000)
        # count(*) still counts NaN rows
        assert sum(row["count"] for row in result.rows) == 1000


class TestCertifiedBounds:
    def test_error_bounds_exposed_per_group(self, rng):
        n = 6000
        keys = rng.integers(0, 6, size=n).astype(np.int64)
        vals = rng.normal(size=n)
        specs = [(keys, vals)]
        result = execute_group_by(
            iter(_chunks(specs)),
            ["g"],
            [median("x", EPS), count()],
            n_hint=n,
        )
        bounds = result.quantile_error_bounds["q0.5_x"]
        assert set(bounds) == {(row["g"],) for row in result.rows}
        for row in result.rows:
            bound = bounds[(row["g"],)]
            # certified bound honours the configured guarantee
            assert 0 <= bound <= EPS * n
            # and matches the per-sketch certified bound exactly
            sk = QuantileSketch(EPS, n=n)
            sub = vals[keys == row["g"]]
            sk.extend(sub)
            sk.query(0.5)
            assert bound == sk._impl.error_bound()

    def test_no_bounds_without_quantile_aggregates(self, rng):
        specs = [(np.zeros(10, dtype=np.int64), rng.normal(size=10))]
        result = execute_group_by(
            iter(_chunks(specs)), ["g"], [count()], n_hint=10
        )
        assert result.quantile_error_bounds == {}

    def test_ungrouped_bounds_keyed_by_empty_tuple(self, rng):
        specs = [(np.zeros(100, dtype=np.int64), rng.normal(size=100))]
        result = execute_group_by(
            iter(_chunks(specs)), [], [median("x", EPS)], n_hint=100
        )
        assert list(result.quantile_error_bounds["q0.5_x"]) == [()]
