"""Tests for CSV ingestion/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, StorageError
from repro.engine import DataType, Table, execute_sql, load_csv, save_csv


def write(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


class TestLoadCsv:
    def test_type_inference(self, tmp_path):
        path = write(tmp_path, "sym,price,qty\nIBM,10.5,3\nMSFT,20.0,7\n")
        table = load_csv(path)
        assert table.schema["sym"].dtype is DataType.STRING
        assert table.schema["price"].dtype is DataType.FLOAT64
        assert table.schema["qty"].dtype is DataType.INT64
        assert table.n_rows == 2

    def test_int_widens_to_float_on_mixed(self, tmp_path):
        path = write(tmp_path, "x\n1\n2.5\n3\n")
        table = load_csv(path)
        assert table.schema["x"].dtype is DataType.FLOAT64

    def test_numeric_widens_to_string_on_text(self, tmp_path):
        path = write(tmp_path, "x\n1\ntwo\n3\n")
        table = load_csv(path)
        assert table.schema["x"].dtype is DataType.STRING
        assert table.column("x") == ["1", "two", "3"]

    def test_empty_cells_become_nan(self, tmp_path):
        path = write(tmp_path, "x,y\n1,2\n,4\n")
        table = load_csv(path)
        assert table.schema["x"].dtype is DataType.FLOAT64
        assert np.isnan(table.column("x")[1])

    def test_blank_lines_skipped(self, tmp_path):
        path = write(tmp_path, "x\n1\n\n3\n")
        table = load_csv(path)
        assert table.n_rows == 2
        assert table.schema["x"].dtype is DataType.INT64

    def test_table_name_from_filename(self, tmp_path):
        path = write(tmp_path, "a\n1\n", name="trades.csv")
        assert load_csv(path).name == "trades"
        assert load_csv(path, table_name="t").name == "t"

    def test_headerless_with_names(self, tmp_path):
        path = write(tmp_path, "IBM,10\nMSFT,20\n")
        table = load_csv(
            path, has_header=False, column_names=["sym", "price"]
        )
        assert table.n_rows == 2
        assert table.column("sym") == ["IBM", "MSFT"]

    def test_headerless_default_names(self, tmp_path):
        path = write(tmp_path, "1,2\n3,4\n")
        table = load_csv(path, has_header=False)
        assert table.schema.names() == ["c0", "c1"]

    def test_custom_delimiter(self, tmp_path):
        path = write(tmp_path, "a;b\n1;2\n")
        table = load_csv(path, delimiter=";")
        assert table.schema.names() == ["a", "b"]

    def test_ragged_row_reports_line(self, tmp_path):
        path = write(tmp_path, "a,b\n1,2\n3\n")
        with pytest.raises(StorageError, match=":3"):
            load_csv(path)

    def test_empty_file(self, tmp_path):
        with pytest.raises(StorageError, match="empty"):
            load_csv(write(tmp_path, ""))

    def test_header_only(self, tmp_path):
        with pytest.raises(StorageError, match="no data rows"):
            load_csv(write(tmp_path, "a,b\n"))

    def test_duplicate_headers(self, tmp_path):
        with pytest.raises(StorageError, match="duplicate"):
            load_csv(write(tmp_path, "a,a\n1,2\n"))

    def test_sql_over_csv(self, tmp_path, rng):
        rows = ["sym,price"]
        symbols = ["A", "B"]
        values = rng.lognormal(2, 0.5, 2000)
        for i, v in enumerate(values):
            rows.append(f"{symbols[i % 2]},{float(v)!r}")
        path = write(tmp_path, "\n".join(rows) + "\n")
        table = load_csv(path)
        result = execute_sql(
            "SELECT MEDIAN(price, 0.01) AS med, COUNT(*) FROM data"
            " GROUP BY sym ORDER BY sym",
            {"data": table},
        )
        assert [r["sym"] for r in result.rows] == ["A", "B"]
        for row in result.rows:
            mask = np.array([symbols[i % 2] == row["sym"] for i in range(2000)])
            assert row["count"] == int(mask.sum())
            true_med = float(np.quantile(values[mask], 0.5))
            assert row["med"] == pytest.approx(true_med, rel=0.1)


class TestSaveCsv:
    def test_round_trip(self, tmp_path):
        table = Table.from_dict(
            "t",
            {
                "sym": ["IBM", "MSFT"],
                "price": np.array([10.5, 20.25]),
                "qty": np.array([3, 7]),
            },
        )
        path = tmp_path / "out.csv"
        save_csv(table, path)
        loaded = load_csv(path)
        assert loaded.column("sym") == ["IBM", "MSFT"]
        assert np.array_equal(loaded.column("price"), table.column("price"))
        assert np.array_equal(loaded.column("qty"), table.column("qty"))
        assert loaded.schema["qty"].dtype is DataType.INT64

    def test_float_precision_survives(self, tmp_path):
        value = 0.1 + 0.2  # a classic repr pitfall
        table = Table.from_dict("t", {"x": np.array([value])})
        path = tmp_path / "x.csv"
        save_csv(table, path)
        assert load_csv(path).column("x")[0] == value

    def test_empty_table_rejected(self, tmp_path):
        table = Table.from_dict("t", {"x": np.array([], dtype=np.float64)})
        with pytest.raises(ConfigurationError):
            save_csv(table, tmp_path / "x.csv")
