"""Tests for GROUP BY execution, the query builder and the SQL front-end."""

from __future__ import annotations

import math
import numpy as np
import pytest

from repro.core.errors import QueryError, SQLSyntaxError
from repro.engine import (
    Query,
    Table,
    avg,
    col,
    count,
    execute_group_by,
    execute_sql,
    max_,
    median,
    min_,
    parse_sql,
    quantile,
    sum_,
)


@pytest.fixture
def sales(rng) -> Table:
    n = 30_000
    regions = np.array(["east", "west", "north"])[rng.integers(0, 3, n)]
    amounts = rng.lognormal(4, 1, n)
    units = rng.integers(1, 50, n)
    return Table.from_dict(
        "sales",
        {"region": list(regions), "amount": amounts, "units": units},
    )


def exact_group_quantile(table, group_col, group, value_col, phi):
    mask = np.array([g == group for g in table.column(group_col)])
    values = np.sort(np.asarray(table.column(value_col), dtype=float)[mask])
    import math

    rank = min(max(math.ceil(phi * len(values)), 1), len(values))
    return values[rank - 1], len(values)


class TestGroupBy:
    def test_per_group_quantiles_are_guaranteed(self, sales):
        eps = 0.005
        result = (
            Query(sales)
            .group_by("region")
            .aggregate(quantile("amount", 0.5, eps), count())
            .execute()
        )
        assert len(result) == 3
        for row in result.rows:
            exact, n_group = exact_group_quantile(
                sales, "region", row["region"], "amount", 0.5
            )
            got = row["q0.5_amount"]
            group_vals = np.sort(
                np.asarray(sales.column("amount"))[
                    np.array([g == row["region"] for g in sales.column("region")])
                ]
            )
            got_rank = np.searchsorted(group_vals, got) + 1
            target = int(np.ceil(0.5 * n_group))
            # the sketch is sized for the full table, so each group's rank
            # error is far below eps * n_group; allow the full guarantee
            assert abs(got_rank - target) <= eps * len(sales) + 1

    def test_scalar_aggregates_exact(self, sales):
        result = (
            Query(sales)
            .group_by("region")
            .aggregate(
                count(),
                sum_("units"),
                avg("units"),
                min_("amount"),
                max_("amount"),
            )
            .execute()
        )
        for row in result.rows:
            mask = np.array(
                [g == row["region"] for g in sales.column("region")]
            )
            units = np.asarray(sales.column("units"))[mask]
            amounts = np.asarray(sales.column("amount"))[mask]
            assert row["count"] == int(mask.sum())
            assert row["sum_units"] == pytest.approx(float(units.sum()))
            assert row["avg_units"] == pytest.approx(float(units.mean()))
            assert row["min_amount"] == pytest.approx(float(amounts.min()))
            assert row["max_amount"] == pytest.approx(float(amounts.max()))

    def test_no_group_by_is_single_group(self, sales):
        result = Query(sales).aggregate(count(), median("amount")).execute()
        assert len(result) == 1
        assert result.rows[0]["count"] == len(sales)

    def test_composite_group_keys(self):
        table = Table.from_dict(
            "t",
            {
                "a": ["x", "x", "y", "y"],
                "b": ["1", "2", "1", "1"],
                "v": np.array([1.0, 2.0, 3.0, 4.0]),
            },
        )
        result = (
            Query(table).group_by("a", "b").aggregate(count()).execute()
        )
        keys = {(r["a"], r["b"]): r["count"] for r in result.rows}
        assert keys == {("x", "1"): 1, ("x", "2"): 1, ("y", "1"): 2}

    def test_where_filters_before_grouping(self, sales):
        full = Query(sales).group_by("region").aggregate(count()).execute()
        filtered = (
            Query(sales)
            .where(col("units") > 25)
            .group_by("region")
            .aggregate(count())
            .execute()
        )
        full_counts = {r["region"]: r["count"] for r in full.rows}
        for row in filtered.rows:
            assert row["count"] < full_counts[row["region"]]

    def test_shared_sketch_for_same_column(self, sales):
        # three quantiles on one column at one epsilon share one sketch
        result = (
            Query(sales)
            .group_by("region")
            .aggregate(
                quantile("amount", 0.25, 0.01),
                quantile("amount", 0.5, 0.01),
                quantile("amount", 0.75, 0.01),
            )
            .execute()
        )
        single = (
            Query(sales)
            .group_by("region")
            .aggregate(quantile("amount", 0.5, 0.01))
            .execute()
        )
        assert result.sketch_memory_elements == single.sketch_memory_elements
        for row in result.rows:
            assert (
                row["q0.25_amount"] <= row["q0.5_amount"] <= row["q0.75_amount"]
            )

    def test_numeric_group_keys(self):
        table = Table.from_dict(
            "t", {"g": np.array([1, 2, 1, 2, 3]), "v": np.arange(5.0)}
        )
        result = Query(table).group_by("g").aggregate(count()).execute()
        counts = {r["g"]: r["count"] for r in result.rows}
        assert counts == {1: 2, 2: 2, 3: 1}

    def test_empty_group_by_result_on_empty_filter(self, sales):
        result = (
            Query(sales)
            .where(col("amount") < -1.0)
            .group_by("region")
            .aggregate(count())
            .execute()
        )
        assert len(result) == 0

    def test_needs_aggregates(self, sales):
        with pytest.raises(QueryError):
            Query(sales).group_by("region").execute()

    def test_rejects_unknown_columns(self, sales):
        with pytest.raises(Exception):
            Query(sales).group_by("nope")
        with pytest.raises(Exception):
            Query(sales).where(col("nope") > 1)

    def test_rejects_quantile_on_strings(self, sales):
        with pytest.raises(QueryError):
            Query(sales).aggregate(median("region"))

    def test_execute_group_by_requires_aggregates(self, sales):
        with pytest.raises(QueryError):
            execute_group_by(sales.scan(), ["region"], [])

    def test_aggregate_validation(self):
        with pytest.raises(QueryError):
            quantile("x", 1.5)
        with pytest.raises(QueryError):
            quantile("x", 0.5, epsilon=0.0)
        from repro.engine import Aggregate

        with pytest.raises(QueryError):
            Aggregate("bogus", "x")
        with pytest.raises(QueryError):
            Aggregate("sum")  # needs a column

    def test_result_column_accessor(self, sales):
        result = Query(sales).group_by("region").aggregate(count()).execute()
        assert sorted(result.column("region")) == ["east", "north", "west"]
        with pytest.raises(QueryError):
            result.column("nope")


class TestSQL:
    def test_parse_basic(self):
        parsed = parse_sql("SELECT QUANTILE(0.5, price) FROM trades")
        assert parsed.table == "trades"
        assert parsed.predicate is None
        assert parsed.group_by == []
        assert parsed.aggregates[0].kind == "quantile"
        assert parsed.aggregates[0].phi == 0.5

    def test_parse_full_statement(self):
        parsed = parse_sql(
            "SELECT QUANTILE(0.35, col1), QUANTILE(0.50, col1, 0.001) AS med,"
            " COUNT(*), AVG(col1) FROM t WHERE col2 > 10 AND grp = 'a'"
            " GROUP BY grp, col3"
        )
        aggs = parsed.aggregates
        assert len(aggs) == 4
        assert aggs[1].alias == "med"
        assert aggs[1].epsilon == 0.001
        assert aggs[2].kind == "count"
        assert parsed.group_by == ["grp", "col3"]
        assert parsed.predicate is not None

    def test_keywords_case_insensitive(self):
        parsed = parse_sql("select median(v) from t group by g")
        assert parsed.table == "t"
        assert parsed.group_by == ["g"]
        assert parsed.aggregates[0].phi == 0.5

    def test_string_escapes(self):
        parsed = parse_sql(
            "SELECT COUNT(*) FROM t WHERE name = 'O''Brien'"
        )
        assert "O'Brien" in repr(parsed.predicate)

    def test_parentheses_and_not(self, sales):
        result = execute_sql(
            "SELECT COUNT(*) FROM sales WHERE NOT (region = 'east' OR"
            " region = 'west')",
            {"sales": sales},
        )
        expected = sum(1 for g in sales.column("region") if g == "north")
        assert result.rows[0]["count"] == expected

    def test_execute_against_catalog(self, sales):
        result = execute_sql(
            "SELECT MEDIAN(amount, 0.01) AS med, COUNT(*) FROM sales"
            " GROUP BY region",
            {"sales": sales},
        )
        assert len(result) == 3
        assert all(row["med"] > 0 for row in result.rows)

    def test_section7_motivating_query(self, sales):
        # the exact shape Section 7 cites as the hard case
        result = execute_sql(
            "SELECT QUANTILE(0.35, amount), QUANTILE(0.50, amount) FROM sales",
            {"sales": sales},
        )
        row = result.rows[0]
        assert row["q0.35_amount"] <= row["q0.5_amount"]

    def test_unknown_table(self):
        with pytest.raises(QueryError, match="unknown table"):
            execute_sql("SELECT COUNT(*) FROM ghosts", {})

    def test_syntax_errors(self):
        for bad in (
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT COUNT(*) t",
            "SELECT COUNT(*) FROM t WHERE",
            "SELECT BOGUS(x) FROM t",
            "SELECT COUNT(*) FROM t GROUP x",
            "SELECT COUNT(*) FROM t trailing",
            "SELECT COUNT(*) FROM t WHERE a ~ 1",
        ):
            with pytest.raises(SQLSyntaxError):
                parse_sql(bad)

    def test_count_requires_star(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT COUNT(x) FROM t")

    def test_sql_on_stored_table(self, sales, tmp_path):
        from repro.engine import StoredTable, save_table

        save_table(sales, tmp_path / "sales")
        stored = StoredTable(tmp_path / "sales")
        mem = execute_sql(
            "SELECT COUNT(*), MIN(amount) FROM sales GROUP BY region",
            {"sales": sales},
        )
        disk = execute_sql(
            "SELECT COUNT(*), MIN(amount) FROM sales GROUP BY region",
            {"sales": stored},
        )
        assert sorted(
            (r["region"], r["count"]) for r in mem.rows
        ) == sorted((r["region"], r["count"]) for r in disk.rows)


class TestHavingOrderLimit:
    def test_having_filters_result_rows(self, sales):
        result = execute_sql(
            "SELECT COUNT(*) AS n FROM sales GROUP BY region"
            " HAVING n > 9000",
            {"sales": sales},
        )
        full = execute_sql(
            "SELECT COUNT(*) AS n FROM sales GROUP BY region",
            {"sales": sales},
        )
        expected = [r for r in full.rows if r["n"] > 9000]
        assert len(result) == len(expected)
        assert all(row["n"] > 9000 for row in result.rows)

    def test_having_on_quantile_alias(self, sales):
        result = execute_sql(
            "SELECT MEDIAN(amount, 0.01) AS med FROM sales GROUP BY region"
            " HAVING med > 0",
            {"sales": sales},
        )
        assert len(result) == 3  # lognormal: all medians positive

    def test_order_by_ascending_and_descending(self, sales):
        asc = execute_sql(
            "SELECT COUNT(*) AS n FROM sales GROUP BY region ORDER BY n",
            {"sales": sales},
        )
        desc = execute_sql(
            "SELECT COUNT(*) AS n FROM sales GROUP BY region"
            " ORDER BY n DESC",
            {"sales": sales},
        )
        ns_asc = [r["n"] for r in asc.rows]
        ns_desc = [r["n"] for r in desc.rows]
        assert ns_asc == sorted(ns_asc)
        assert ns_desc == sorted(ns_desc, reverse=True)

    def test_order_by_group_key_with_limit(self, sales):
        result = execute_sql(
            "SELECT COUNT(*) FROM sales GROUP BY region"
            " ORDER BY region LIMIT 2",
            {"sales": sales},
        )
        regions = [r["region"] for r in result.rows]
        assert regions == ["east", "north"]

    def test_limit_zero(self, sales):
        result = execute_sql(
            "SELECT COUNT(*) FROM sales GROUP BY region LIMIT 0",
            {"sales": sales},
        )
        assert len(result) == 0

    def test_multi_key_order(self):
        table = Table.from_dict(
            "t",
            {
                "a": ["x", "y", "x", "y"],
                "b": ["2", "1", "1", "2"],
                "v": np.arange(4.0),
            },
        )
        result = execute_sql(
            "SELECT COUNT(*) FROM t GROUP BY a, b ORDER BY a, b DESC",
            {"t": table},
        )
        keys = [(r["a"], r["b"]) for r in result.rows]
        assert keys == [("x", "2"), ("x", "1"), ("y", "2"), ("y", "1")]

    def test_having_unknown_column(self, sales):
        with pytest.raises(QueryError, match="unknown output column"):
            execute_sql(
                "SELECT COUNT(*) AS n FROM sales GROUP BY region"
                " HAVING ghost > 1",
                {"sales": sales},
            )

    def test_order_by_unknown_column(self, sales):
        with pytest.raises(QueryError, match="unknown output column"):
            execute_sql(
                "SELECT COUNT(*) FROM sales GROUP BY region ORDER BY ghost",
                {"sales": sales},
            )

    def test_fractional_limit_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT COUNT(*) FROM t LIMIT 1.5")

    def test_negative_limit_rejected(self, sales):
        with pytest.raises(QueryError):
            Query(sales).aggregate(count()).limit(-1)

    def test_builder_having_composes_with_and(self, sales):
        result = (
            Query(sales)
            .group_by("region")
            .aggregate(count(alias="n"))
            .having(col("n") > 0)
            .having(col("n") < 10**9)
            .execute()
        )
        assert len(result) == 3

    def test_parse_having_order_limit_fields(self):
        parsed = parse_sql(
            "SELECT COUNT(*) AS n FROM t GROUP BY g"
            " HAVING n > 5 ORDER BY n DESC, g LIMIT 7"
        )
        assert parsed.having is not None
        assert parsed.order_by == [("n", True), ("g", False)]
        assert parsed.limit == 7


class TestProjectionSelect:
    def test_select_columns(self, sales):
        result = Query(sales).select("region", "units").limit(5).execute()
        assert len(result) == 5
        assert set(result.rows[0]) == {"region", "units"}

    def test_select_star_sql(self, sales):
        result = execute_sql("SELECT * FROM sales LIMIT 3", {"sales": sales})
        assert len(result) == 3
        assert set(result.rows[0]) == {"region", "amount", "units"}

    def test_where_then_project(self, sales):
        result = execute_sql(
            "SELECT amount FROM sales WHERE units > 45 LIMIT 10000",
            {"sales": sales},
        )
        units = np.asarray(sales.column("units"))
        assert len(result) == int((units > 45).sum())

    def test_order_and_limit(self, sales):
        result = execute_sql(
            "SELECT amount FROM sales ORDER BY amount DESC LIMIT 3",
            {"sales": sales},
        )
        amounts = np.sort(np.asarray(sales.column("amount")))[::-1][:3]
        got = [row["amount"] for row in result.rows]
        assert got == [pytest.approx(a) for a in amounts]

    def test_early_exit_scans_less(self, sales):
        result = Query(sales).select("region").limit(10).execute(
            chunk_size=1000
        )
        assert len(result) == 10
        assert result.n_rows_scanned <= 1000

    def test_predicate_column_not_in_projection(self, sales):
        result = execute_sql(
            "SELECT region FROM sales WHERE amount > 0 LIMIT 2",
            {"sales": sales},
        )
        assert set(result.rows[0]) == {"region"}

    def test_projection_with_group_by_rejected(self, sales):
        with pytest.raises(SQLSyntaxError):
            parse_sql("SELECT region FROM sales GROUP BY region")
        with pytest.raises(QueryError):
            Query(sales).select("region").group_by("region").aggregate(
                count()
            ).execute()

    def test_order_by_unselected_column_rejected(self, sales):
        with pytest.raises(QueryError, match="unselected"):
            Query(sales).select("region").order_by("amount").execute()

    def test_unknown_column_rejected(self, sales):
        with pytest.raises(Exception):
            Query(sales).select("ghost")

    def test_aggregates_still_parse(self, sales):
        # the projection detector must not swallow aggregate lists
        result = execute_sql(
            "SELECT COUNT(*) FROM sales", {"sales": sales}
        )
        assert result.rows[0]["count"] == len(sales)

    def test_projection_on_stored_table(self, sales, tmp_path):
        from repro.engine import StoredTable, save_table

        save_table(sales, tmp_path / "s")
        stored = StoredTable(tmp_path / "s")
        result = execute_sql(
            "SELECT units FROM sales WHERE units = 7 LIMIT 5",
            {"sales": stored},
        )
        assert all(row["units"] == 7 for row in result.rows)


class TestVarianceAggregates:
    def test_var_and_stddev_match_numpy(self, sales):
        from repro.engine import stddev, var_

        result = (
            Query(sales)
            .group_by("region")
            .aggregate(var_("amount"), stddev("amount"))
            .execute(chunk_size=777)  # odd chunking: Welford must not care
        )
        regions = np.array(sales.column("region"))
        amounts = np.asarray(sales.column("amount"))
        for row in result.rows:
            values = amounts[regions == row["region"]]
            assert row["var_amount"] == pytest.approx(float(values.var()))
            assert row["stddev_amount"] == pytest.approx(float(values.std()))

    def test_sql_surface(self, sales):
        result = execute_sql(
            "SELECT STDDEV(amount) AS sd, VAR(amount) AS v FROM sales",
            {"sales": sales},
        )
        row = result.rows[0]
        assert row["sd"] == pytest.approx(math.sqrt(row["v"]))

    def test_single_element_group(self):
        from repro.engine import var_

        table = Table.from_dict("t", {"g": ["a"], "v": np.array([7.0])})
        result = Query(table).group_by("g").aggregate(var_("v")).execute()
        assert result.rows[0]["var_v"] == 0.0

    def test_constant_column(self):
        from repro.engine import stddev

        table = Table.from_dict(
            "t", {"g": ["a"] * 100, "v": np.full(100, 5.0)}
        )
        result = Query(table).group_by("g").aggregate(stddev("v")).execute()
        assert result.rows[0]["stddev_v"] == 0.0


class TestNullSemantics:
    """SQL NULLs (NaN cells) are ignored by aggregates; COUNT(*) is not."""

    def test_aggregates_skip_nan(self):
        from repro.engine import max_, min_, sum_

        table = Table.from_dict(
            "t", {"v": np.array([1.0, np.nan, 3.0, np.nan, 5.0])}
        )
        result = (
            Query(table)
            .aggregate(count(), sum_("v"), avg("v"), min_("v"), max_("v"))
            .execute()
        )
        row = result.rows[0]
        assert row["count"] == 5
        assert row["sum_v"] == 9.0
        assert row["avg_v"] == 3.0
        assert row["min_v"] == 1.0
        assert row["max_v"] == 5.0

    def test_quantiles_skip_nan(self):
        table = Table.from_dict(
            "t",
            {"v": np.concatenate([np.arange(100.0), [np.nan] * 50])},
        )
        result = Query(table).aggregate(median("v", 0.01)).execute()
        # median over the 100 real values, not 150 rows
        assert abs(result.rows[0]["q0.5_v"] - 49.0) <= 2

    def test_all_null_group(self):
        table = Table.from_dict(
            "t",
            {
                "g": ["a", "a", "b"],
                "v": np.array([np.nan, np.nan, 1.0]),
            },
        )
        result = (
            Query(table)
            .group_by("g")
            .aggregate(avg("v"), median("v", 0.3), count())
            .execute()
        )
        rows = {r["g"]: r for r in result.rows}
        assert rows["a"]["avg_v"] is None
        assert rows["a"]["q0.5_v"] is None
        assert rows["a"]["count"] == 2
        assert rows["b"]["avg_v"] == 1.0

    def test_variance_skips_nan(self):
        from repro.engine import var_

        clean = np.array([1.0, 2.0, 3.0, 4.0])
        dirty = np.array([1.0, np.nan, 2.0, 3.0, np.nan, 4.0])
        t1 = Table.from_dict("t", {"v": clean})
        t2 = Table.from_dict("t", {"v": dirty})
        v1 = Query(t1).aggregate(var_("v")).execute().rows[0]["var_v"]
        v2 = Query(t2).aggregate(var_("v")).execute().rows[0]["var_v"]
        assert v1 == pytest.approx(v2)

    def test_csv_nulls_flow_through_sql(self, tmp_path):
        from repro.engine import load_csv

        path = tmp_path / "x.csv"
        path.write_text("g,v\na,1\na,\na,3\nb,5\n")
        table = load_csv(path)
        result = execute_sql(
            "SELECT AVG(v) AS m, COUNT(*) AS n FROM x GROUP BY g ORDER BY g",
            {"x": table},
        )
        rows = {r["g"]: r for r in result.rows}
        assert rows["a"]["m"] == 2.0  # (1 + 3) / 2, NULL skipped
        assert rows["a"]["n"] == 3
