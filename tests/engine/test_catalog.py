"""Tests for the table catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import QueryError, StorageError
from repro.engine import Catalog, StoredTable, Table, save_table


@pytest.fixture
def trades() -> Table:
    return Table.from_dict(
        "trades",
        {"sym": ["a", "b", "a", "b"], "price": np.array([1.0, 2.0, 3.0, 4.0])},
    )


class TestRegistration:
    def test_register_and_sql(self, trades):
        db = Catalog()
        db.register(trades)
        result = db.sql("SELECT COUNT(*) FROM trades GROUP BY sym")
        assert len(result) == 2
        assert "trades" in db
        assert db.names() == ["trades"]

    def test_register_under_alias(self, trades):
        db = Catalog()
        db.register(trades, name="t2")
        assert db.sql("SELECT COUNT(*) FROM t2").rows[0]["count"] == 4

    def test_drop(self, trades):
        db = Catalog()
        db.register(trades)
        db.drop("trades")
        assert len(db) == 0
        with pytest.raises(QueryError):
            db.drop("trades")

    def test_unknown_table(self):
        with pytest.raises(QueryError, match="unknown table"):
            Catalog().table("ghost")

    def test_query_builder(self, trades):
        db = Catalog()
        db.register(trades)
        from repro.engine import count

        result = db.query("trades").group_by("sym").aggregate(count()).execute()
        assert len(result) == 2


class TestPersistence:
    def test_save_swaps_to_stored(self, trades, tmp_path):
        db = Catalog(tmp_path / "wh")
        db.register(trades)
        stored = db.save("trades")
        assert isinstance(stored, StoredTable)
        assert isinstance(db.table("trades"), StoredTable)
        # still queryable, now from disk
        assert db.sql("SELECT COUNT(*) FROM trades").rows[0]["count"] == 4

    def test_save_is_idempotent(self, trades, tmp_path):
        db = Catalog(tmp_path / "wh")
        db.register(trades)
        first = db.save("trades")
        assert db.save("trades") is first

    def test_reopen_attaches_everything(self, trades, tmp_path):
        db = Catalog(tmp_path / "wh")
        db.register(trades)
        db.save("trades")
        reopened = Catalog(tmp_path / "wh")
        assert reopened.names() == ["trades"]
        assert (
            reopened.sql("SELECT COUNT(*) FROM trades").rows[0]["count"] == 4
        )

    def test_save_without_directory(self, trades):
        db = Catalog()
        db.register(trades)
        with pytest.raises(StorageError):
            db.save("trades")

    def test_attach_explicit_directory(self, trades, tmp_path):
        save_table(trades, tmp_path / "elsewhere")
        db = Catalog()
        db.attach(tmp_path / "elsewhere", name="imported")
        assert db.sql("SELECT COUNT(*) FROM imported").rows[0]["count"] == 4

    def test_reopen_ignores_non_table_entries(self, tmp_path):
        wh = tmp_path / "wh"
        wh.mkdir()
        (wh / "README.txt").write_text("hello")
        (wh / "random_dir").mkdir()
        assert Catalog(wh).names() == []
