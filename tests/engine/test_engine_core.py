"""Tests for engine schema/table/storage/expression layers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, StorageError
from repro.engine import (
    Chunk,
    DataType,
    Field,
    Schema,
    StoredTable,
    Table,
    col,
    lit,
    save_table,
)


@pytest.fixture
def trades() -> Table:
    return Table.from_dict(
        "trades",
        {
            "symbol": ["IBM", "MSFT", "IBM", "ORCL", "IBM"],
            "price": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
            "qty": np.array([1, 2, 3, 4, 5]),
        },
    )


class TestTypes:
    def test_inference(self):
        assert DataType.infer(np.array([1.5])) is DataType.FLOAT64
        assert DataType.infer(np.array([1, 2])) is DataType.INT64
        assert DataType.infer(["a"]) is DataType.STRING
        assert DataType.infer([1.5]) is DataType.FLOAT64
        assert DataType.infer([7]) is DataType.INT64

    def test_bool_rejected(self):
        with pytest.raises(ConfigurationError):
            DataType.infer([True])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            DataType.infer([])

    def test_field_name_validation(self):
        Field("ok_name2", DataType.FLOAT64)
        with pytest.raises(ConfigurationError):
            Field("bad name", DataType.FLOAT64)
        with pytest.raises(ConfigurationError):
            Field("", DataType.FLOAT64)

    def test_schema_lookup_and_duplicates(self):
        schema = Schema([Field("a", DataType.INT64), Field("b", DataType.STRING)])
        assert "a" in schema
        assert schema["b"].dtype is DataType.STRING
        assert schema.names() == ["a", "b"]
        with pytest.raises(ConfigurationError):
            Schema([Field("a", DataType.INT64), Field("a", DataType.INT64)])
        with pytest.raises(ConfigurationError):
            Schema([])
        with pytest.raises(ConfigurationError):
            schema["missing"]


class TestTable:
    def test_from_dict_infers_schema(self, trades):
        assert trades.schema["symbol"].dtype is DataType.STRING
        assert trades.schema["price"].dtype is DataType.FLOAT64
        assert trades.schema["qty"].dtype is DataType.INT64
        assert len(trades) == 5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigurationError):
            Table.from_dict("t", {"a": [1, 2], "b": [1.0]})

    def test_scan_chunks(self, trades):
        chunks = list(trades.scan(chunk_size=2))
        assert [c.n_rows for c in chunks] == [2, 2, 1]
        assert list(chunks[0]["symbol"]) == ["IBM", "MSFT"]
        assert chunks[2]["price"][0] == 50.0

    def test_scan_projection(self, trades):
        chunk = next(trades.scan(columns=["price"]))
        assert "price" in chunk.columns
        assert "symbol" not in chunk.columns

    def test_scan_unknown_column(self, trades):
        with pytest.raises(ConfigurationError):
            list(trades.scan(columns=["nope"]))

    def test_head(self, trades):
        rows = trades.head(2)
        assert rows[0] == {"symbol": "IBM", "price": 10.0, "qty": 1}

    def test_chunk_take(self, trades):
        chunk = next(trades.scan())
        filtered = chunk.take(np.array([True, False, True, False, True]))
        assert filtered.n_rows == 3
        assert list(filtered["symbol"]) == ["IBM", "IBM", "IBM"]

    def test_chunk_take_bad_mask(self, trades):
        chunk = next(trades.scan())
        with pytest.raises(ConfigurationError):
            chunk.take(np.array([True]))

    def test_chunk_unknown_column(self):
        chunk = Chunk(columns={"a": np.array([1.0])}, n_rows=1)
        with pytest.raises(ConfigurationError):
            chunk["b"]


class TestStorage:
    def test_round_trip(self, trades, tmp_path):
        save_table(trades, tmp_path / "t")
        stored = StoredTable(tmp_path / "t")
        assert stored.n_rows == 5
        assert stored.schema == trades.schema
        loaded = stored.load()
        assert list(loaded.column("symbol")) == list(trades.column("symbol"))
        assert np.array_equal(loaded.column("price"), trades.column("price"))
        assert np.array_equal(loaded.column("qty"), trades.column("qty"))

    def test_scan_matches_memory_scan(self, trades, tmp_path):
        save_table(trades, tmp_path / "t", page_rows=2)
        stored = StoredTable(tmp_path / "t")
        mem_rows = [c.n_rows for c in trades.scan(chunk_size=2)]
        disk_rows = [c.n_rows for c in stored.scan(chunk_size=2)]
        assert mem_rows == disk_rows

    def test_unicode_strings(self, tmp_path):
        table = Table.from_dict(
            "t", {"name": ["café", "über", "日本"]}
        )
        save_table(table, tmp_path / "t")
        loaded = StoredTable(tmp_path / "t").load()
        assert list(loaded.column("name")) == ["café", "über", "日本"]

    def test_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            StoredTable(tmp_path / "nothing")

    def test_corrupt_metadata(self, tmp_path):
        d = tmp_path / "t"
        d.mkdir()
        (d / "meta.json").write_text("{not json")
        with pytest.raises(StorageError):
            StoredTable(d)

    def test_missing_column_file(self, trades, tmp_path):
        save_table(trades, tmp_path / "t")
        (tmp_path / "t" / "price.col").unlink()
        with pytest.raises(StorageError, match="missing column"):
            StoredTable(tmp_path / "t")

    def test_truncated_column_payload(self, trades, tmp_path):
        save_table(trades, tmp_path / "t")
        path = tmp_path / "t" / "price.col"
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 8])
        with pytest.raises(StorageError):
            list(StoredTable(tmp_path / "t").scan())

    def test_header_row_count_mismatch(self, trades, tmp_path):
        save_table(trades, tmp_path / "t")
        import json

        meta_path = tmp_path / "t" / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["n_rows"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(StorageError):
            StoredTable(tmp_path / "t")


class TestExpressions:
    def _chunk(self, trades):
        return next(trades.scan())

    def test_numeric_comparisons(self, trades):
        chunk = self._chunk(trades)
        mask = (col("price") > 20.0).evaluate(chunk)
        assert list(mask) == [False, False, True, True, True]
        mask = (col("qty") <= 2).evaluate(chunk)
        assert list(mask) == [True, True, False, False, False]

    def test_string_equality(self, trades):
        chunk = self._chunk(trades)
        mask = (col("symbol") == "IBM").evaluate(chunk)
        assert list(mask) == [True, False, True, False, True]

    def test_boolean_combinators(self, trades):
        chunk = self._chunk(trades)
        expr = (col("symbol") == "IBM") & (col("price") > 20.0)
        assert list(expr.evaluate(chunk)) == [False, False, True, False, True]
        expr = (col("qty") == 1) | (col("qty") == 4)
        assert list(expr.evaluate(chunk)) == [True, False, False, True, False]
        expr = ~(col("symbol") == "IBM")
        assert list(expr.evaluate(chunk)) == [False, True, False, True, False]

    def test_columns_introspection(self):
        expr = (col("a") > 1) & ~(col("b") == "x")
        assert sorted(expr.columns()) == ["a", "b"]

    def test_literal_comparison_broadcasts(self, trades):
        chunk = self._chunk(trades)
        assert list((lit(1) == 1).evaluate(chunk)) == [True] * 5
