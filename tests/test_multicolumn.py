"""Tests for the single-pass multi-column sketcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.engine import Table
from repro.multicolumn import MultiColumnSketcher


@pytest.fixture
def columns(rng):
    n = 40_000
    return {
        "uniform": rng.uniform(0, 100, n),
        "normal": rng.normal(50, 10, n),
        "skewed": rng.lognormal(1, 1, n),
    }


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(ConfigurationError):
            MultiColumnSketcher([], 0.01)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            MultiColumnSketcher(["a", "a"], 0.01)

    def test_unknown_column_lookup(self):
        sketcher = MultiColumnSketcher(["a"], 0.01, n=100)
        with pytest.raises(ConfigurationError):
            sketcher.sketch("b")


class TestSinglePass:
    def test_all_columns_accurate(self, columns):
        n = len(columns["uniform"])
        sketcher = MultiColumnSketcher(
            list(columns), epsilon=0.005, n=n
        )
        for start in range(0, n, 4096):
            sketcher.consume(
                {k: v[start : start + 4096] for k, v in columns.items()}
            )
        assert sketcher.n_rows == n
        for name, values in columns.items():
            ordered = np.sort(values)
            for phi in (0.1, 0.5, 0.9):
                got = sketcher.quantiles(name, [phi])[0]
                rank = int(np.searchsorted(ordered, got, side="left")) + 1
                target = int(np.ceil(phi * n))
                assert abs(rank - target) <= 0.005 * n + 1, name

    def test_all_quantiles_shape(self, columns):
        n = len(columns["uniform"])
        sketcher = MultiColumnSketcher(list(columns), 0.01, n=n)
        sketcher.consume(columns)
        result = sketcher.all_quantiles([0.25, 0.5, 0.75])
        assert set(result) == set(columns)
        for values in result.values():
            assert values == sorted(values)

    def test_histograms_per_column(self, columns):
        n = len(columns["uniform"])
        sketcher = MultiColumnSketcher(list(columns), 0.005, n=n)
        sketcher.consume(columns)
        hist = sketcher.histogram("skewed", 10)
        assert hist.n_buckets == 10
        assert hist.low == pytest.approx(float(columns["skewed"].min()))
        assert hist.high == pytest.approx(float(columns["skewed"].max()))
        # median bucket boundary close to the true median in rank terms
        ordered = np.sort(columns["skewed"])
        boundary = hist.boundaries[4]  # the 0.5 boundary
        rank = int(np.searchsorted(ordered, boundary)) + 1
        assert abs(rank - n // 2) <= 0.005 * n + 1

    def test_engine_chunks_accepted(self, columns):
        n = len(columns["uniform"])
        table = Table.from_dict("t", dict(columns))
        sketcher = MultiColumnSketcher(["uniform", "normal"], 0.01, n=n)
        for chunk in table.scan(chunk_size=8192):
            sketcher.consume(chunk)
        assert sketcher.n_rows == n

    def test_memory_sums_over_columns(self, columns):
        n = len(columns["uniform"])
        one = MultiColumnSketcher(["uniform"], 0.01, n=n)
        three = MultiColumnSketcher(list(columns), 0.01, n=n)
        assert three.memory_elements == 3 * one.memory_elements


class TestValidation:
    def test_missing_column_in_chunk(self):
        sketcher = MultiColumnSketcher(["a", "b"], 0.1, n=100)
        with pytest.raises(ConfigurationError, match="missing"):
            sketcher.consume({"a": np.arange(5.0)})

    def test_ragged_chunk(self):
        sketcher = MultiColumnSketcher(["a", "b"], 0.1, n=100)
        with pytest.raises(ConfigurationError, match="ragged"):
            sketcher.consume(
                {"a": np.arange(5.0), "b": np.arange(4.0)}
            )

    def test_non_mapping_rejected(self):
        sketcher = MultiColumnSketcher(["a"], 0.1, n=100)
        with pytest.raises(ConfigurationError):
            sketcher.consume([1.0, 2.0])

    def test_empty_chunk_noop(self):
        sketcher = MultiColumnSketcher(["a"], 0.1, n=100)
        sketcher.consume({"a": np.array([])})
        assert sketcher.n_rows == 0

    def test_histogram_before_data(self):
        sketcher = MultiColumnSketcher(["a"], 0.1, n=100)
        with pytest.raises(EmptySummaryError):
            sketcher.histogram("a", 4)
