"""Tests for the single-pass multi-column sketcher."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import ConfigurationError, EmptySummaryError
from repro.engine import Table
from repro.multicolumn import MultiColumnSketcher


@pytest.fixture
def columns(rng):
    n = 40_000
    return {
        "uniform": rng.uniform(0, 100, n),
        "normal": rng.normal(50, 10, n),
        "skewed": rng.lognormal(1, 1, n),
    }


class TestConstruction:
    def test_needs_columns(self):
        with pytest.raises(ConfigurationError):
            MultiColumnSketcher([], 0.01)

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            MultiColumnSketcher(["a", "a"], 0.01)

    def test_unknown_column_lookup(self):
        sketcher = MultiColumnSketcher(["a"], 0.01, n=100)
        with pytest.raises(ConfigurationError):
            sketcher.sketch("b")


class TestSinglePass:
    def test_all_columns_accurate(self, columns):
        n = len(columns["uniform"])
        sketcher = MultiColumnSketcher(
            list(columns), epsilon=0.005, n=n
        )
        for start in range(0, n, 4096):
            sketcher.consume(
                {k: v[start : start + 4096] for k, v in columns.items()}
            )
        assert sketcher.n_rows == n
        for name, values in columns.items():
            ordered = np.sort(values)
            for phi in (0.1, 0.5, 0.9):
                got = sketcher.quantiles(name, [phi])[0]
                rank = int(np.searchsorted(ordered, got, side="left")) + 1
                target = int(np.ceil(phi * n))
                assert abs(rank - target) <= 0.005 * n + 1, name

    def test_all_quantiles_shape(self, columns):
        n = len(columns["uniform"])
        sketcher = MultiColumnSketcher(list(columns), 0.01, n=n)
        sketcher.consume(columns)
        result = sketcher.all_quantiles([0.25, 0.5, 0.75])
        assert set(result) == set(columns)
        for values in result.values():
            assert values == sorted(values)

    def test_histograms_per_column(self, columns):
        n = len(columns["uniform"])
        sketcher = MultiColumnSketcher(list(columns), 0.005, n=n)
        sketcher.consume(columns)
        hist = sketcher.histogram("skewed", 10)
        assert hist.n_buckets == 10
        assert hist.low == pytest.approx(float(columns["skewed"].min()))
        assert hist.high == pytest.approx(float(columns["skewed"].max()))
        # median bucket boundary close to the true median in rank terms
        ordered = np.sort(columns["skewed"])
        boundary = hist.boundaries[4]  # the 0.5 boundary
        rank = int(np.searchsorted(ordered, boundary)) + 1
        assert abs(rank - n // 2) <= 0.005 * n + 1

    def test_engine_chunks_accepted(self, columns):
        n = len(columns["uniform"])
        table = Table.from_dict("t", dict(columns))
        sketcher = MultiColumnSketcher(["uniform", "normal"], 0.01, n=n)
        for chunk in table.scan(chunk_size=8192):
            sketcher.consume(chunk)
        assert sketcher.n_rows == n

    def test_memory_sums_over_columns(self, columns):
        n = len(columns["uniform"])
        one = MultiColumnSketcher(["uniform"], 0.01, n=n)
        three = MultiColumnSketcher(list(columns), 0.01, n=n)
        assert three.memory_elements == 3 * one.memory_elements


class TestMatrixConsume:
    def test_2d_ndarray_matches_mapping(self, columns):
        n = len(columns["uniform"])
        names = list(columns)
        matrix = np.column_stack([columns[name] for name in names])
        via_map = MultiColumnSketcher(names, 0.01, n=n)
        via_mat = MultiColumnSketcher(names, 0.01, n=n)
        for start in range(0, n, 4096):
            via_map.consume(
                {k: v[start : start + 4096] for k, v in columns.items()}
            )
            via_mat.consume(matrix[start : start + 4096])
        phis = [0.1, 0.25, 0.5, 0.75, 0.9]
        # bit-identical, not just approximately equal
        assert via_mat.all_quantiles(phis) == via_map.all_quantiles(phis)
        assert via_mat.n_rows == via_map.n_rows == n
        assert via_mat.error_bounds() == via_map.error_bounds()

    def test_matches_independent_sketches(self, columns):
        from repro.core.sketch import QuantileSketch

        n = len(columns["uniform"])
        names = list(columns)
        sketcher = MultiColumnSketcher(names, 0.01, n=n)
        refs = {name: QuantileSketch(0.01, n=n) for name in names}
        for start in range(0, n, 8192):
            sketcher.consume(
                {k: v[start : start + 8192] for k, v in columns.items()}
            )
            for name in names:
                refs[name].extend(columns[name][start : start + 8192])
        phis = [0.05, 0.5, 0.95]
        got = sketcher.all_quantiles(phis)
        for name in names:
            assert got[name] == [float(v) for v in refs[name].quantiles(phis)]
            assert (
                sketcher.sketch(name).error_bound()
                == refs[name].error_bound()
            )

    def test_wrong_column_count_rejected(self):
        sketcher = MultiColumnSketcher(["a", "b"], 0.1, n=100)
        with pytest.raises(ConfigurationError):
            sketcher.consume(np.zeros((5, 3)))

    def test_1d_ndarray_rejected(self):
        sketcher = MultiColumnSketcher(["a"], 0.1, n=100)
        with pytest.raises(ConfigurationError):
            sketcher.consume(np.zeros(5))

    def test_empty_matrix_noop(self):
        sketcher = MultiColumnSketcher(["a", "b"], 0.1, n=100)
        sketcher.consume(np.zeros((0, 2)))
        assert sketcher.n_rows == 0

    def test_histograms_for_all_columns(self, columns):
        n = len(columns["uniform"])
        sketcher = MultiColumnSketcher(list(columns), 0.01, n=n)
        sketcher.consume(columns)
        hists = sketcher.histograms(8)
        assert set(hists) == set(columns)
        single = sketcher.histogram("normal", 8)
        assert hists["normal"].boundaries == single.boundaries


class TestSamplingFallback:
    def test_delta_path_keeps_per_column_sketches(self, rng):
        n = 10**7  # large design size makes sampling the cheaper plan
        sketcher = MultiColumnSketcher(
            ["a", "b"], 0.05, n=n, delta=0.01
        )
        assert sketcher._bank is None
        assert all(
            sketcher.sketch(c).uses_sampling for c in ("a", "b")
        )
        # ingest still works per column (answers are probabilistic and
        # seeded elsewhere; here we only pin the fallback wiring)
        data = {"a": rng.normal(size=4000), "b": rng.uniform(size=4000)}
        sketcher.consume(data)
        assert sketcher.n_rows == 4000
        assert len(sketcher.sketch("a")) == 4000


class TestValidation:
    def test_missing_column_in_chunk(self):
        sketcher = MultiColumnSketcher(["a", "b"], 0.1, n=100)
        with pytest.raises(ConfigurationError, match="missing"):
            sketcher.consume({"a": np.arange(5.0)})

    def test_ragged_chunk(self):
        sketcher = MultiColumnSketcher(["a", "b"], 0.1, n=100)
        with pytest.raises(ConfigurationError, match="ragged"):
            sketcher.consume(
                {"a": np.arange(5.0), "b": np.arange(4.0)}
            )

    def test_non_mapping_rejected(self):
        sketcher = MultiColumnSketcher(["a"], 0.1, n=100)
        with pytest.raises(ConfigurationError):
            sketcher.consume([1.0, 2.0])

    def test_empty_chunk_noop(self):
        sketcher = MultiColumnSketcher(["a"], 0.1, n=100)
        sketcher.consume({"a": np.array([])})
        assert sketcher.n_rows == 0

    def test_histogram_before_data(self):
        sketcher = MultiColumnSketcher(["a"], 0.1, n=100)
        with pytest.raises(EmptySummaryError):
            sketcher.histogram("a", 4)
