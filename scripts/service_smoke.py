#!/usr/bin/env python
"""CI smoke for the quantile-sketch service: ingest, kill -9, recover.

Drives the full stack the way an operator would, as real OS processes:

1. start ``repro serve`` as a subprocess with a data directory;
2. batch-ingest from 4 concurrent client threads into one fixed metric
   (plus an adaptive metric from the main thread);
3. query quantiles and check the certified Lemma 5 bound matches an
   offline in-process sketch fed the same data, and that every answer
   honours the bound against true ranks;
4. force a snapshot mid-stream, keep ingesting so the tail lives only
   in the journal, record the exact answers;
5. ``SIGKILL`` the server (no shutdown hook runs), restart it on the
   same data directory, and require bit-identical answers;
6. keep ingesting after recovery to prove the server is fully live.

Exit code 0 on success; any assertion or timeout fails the job.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--port 7455]
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service import QuantileClient  # noqa: E402
from repro.service.registry import SketchRegistry  # noqa: E402

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
N_CLIENTS = 4
BATCHES_PER_CLIENT = 25
BATCH = 2_000
TOTAL = N_CLIENTS * BATCHES_PER_CLIENT * BATCH


def start_server(port: int, data_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--data-dir", data_dir,
            "--shards", "2",
            "--snapshot-interval", "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode() if proc.stdout else ""
            raise SystemExit(f"server died on startup:\n{out}")
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return proc
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise SystemExit("server did not start listening within 15s")


def concurrent_ingest(port: int, parts: list) -> None:
    errors: list = []

    def worker(part: np.ndarray) -> None:
        try:
            with QuantileClient("127.0.0.1", port) as client:
                for batch in np.split(part, BATCHES_PER_CLIENT):
                    client.ingest_nowait("smoke/fixed", batch)
                client.flush()
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(part,)) for part in parts
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise SystemExit(f"concurrent ingest failed: {errors[0]!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=7455)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(2026)
    data = rng.permutation(TOTAL).astype(np.float64)
    adaptive_data = rng.exponential(size=5_000)

    with tempfile.TemporaryDirectory(prefix="repro-smoke-") as data_dir:
        proc = start_server(args.port, data_dir)
        try:
            with QuantileClient("127.0.0.1", args.port) as client:
                client.create(
                    "smoke/fixed", kind="fixed", epsilon=0.02, n=TOTAL
                )
                client.create(
                    "smoke/adaptive", kind="adaptive", epsilon=0.02
                )

            print(f"[1/5] concurrent ingest: {N_CLIENTS} clients x "
                  f"{BATCHES_PER_CLIENT} batches x {BATCH} values")
            concurrent_ingest(args.port, list(np.split(data, N_CLIENTS)))

            with QuantileClient("127.0.0.1", args.port) as client:
                client.ingest("smoke/adaptive", adaptive_data[:3_000])
                values, bound, n = client.query("smoke/fixed", PHIS)
                assert n == TOTAL, f"expected n={TOTAL}, got {n}"

                print("[2/5] certified bound vs offline sketch")
                offline = SketchRegistry(n_shards=1)
                offline.create(
                    "smoke/fixed", kind="fixed", epsilon=0.02, n=TOTAL
                )
                offline.ingest("smoke/fixed", data)
                _, offline_bound, offline_n = offline.quantiles(
                    "smoke/fixed", PHIS
                )
                assert bound == offline_bound, (
                    f"certified bound diverged: service {bound}, "
                    f"offline {offline_bound}"
                )
                assert n == offline_n
                for phi, value in zip(PHIS, values):
                    err = abs((value + 1) - phi * TOTAL)
                    assert err <= bound + 1, (
                        f"phi={phi}: |rank error| {err} > bound {bound}"
                    )

                print("[3/5] snapshot mid-stream + journal-only tail")
                client.snapshot()
                client.ingest("smoke/fixed", rng.uniform(
                    0, TOTAL, size=4_096
                ))
                client.ingest("smoke/adaptive", adaptive_data[3_000:])
                client.drain()
                before = {
                    name: client.query(name, PHIS)
                    for name in ("smoke/fixed", "smoke/adaptive")
                }

            print(f"[4/5] SIGKILL pid {proc.pid}, restart, compare")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            proc = start_server(args.port, data_dir)

            with QuantileClient("127.0.0.1", args.port) as client:
                for name, want in before.items():
                    got = client.query(name, PHIS)
                    assert got == want, (
                        f"{name} diverged after recovery:\n"
                        f"  before: {want}\n   after: {got}"
                    )
                stats = client.stats()
                recovered = stats["durability"]["journal_records_recovered"]
                assert recovered > 0, "nothing replayed from the journal"

                print(f"[5/5] post-recovery ingest (replayed "
                      f"{recovered} journal records)")
                client.ingest("smoke/fixed", rng.uniform(
                    0, TOTAL, size=1_000
                ))
                _, _, n_after = client.query("smoke/fixed", [0.5])
                assert n_after == before["smoke/fixed"][2] + 1_000

            print("service smoke OK: concurrent ingest, certified "
                  "answers, SIGKILL recovery all bit-identical")
            return 0
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
