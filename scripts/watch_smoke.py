#!/usr/bin/env python
"""CI smoke for the WATCH/alerting layer: windowed metric, synthetic
clock, certified alerts, kill -9, recover.

Drives the full alerting stack as real OS processes, the way an
operator would:

1. start ``repro serve`` with ``--clock-file`` (the synthetic event-time
   source) and a fast ``--watch-interval``;
2. create a sliding-window metric and a frugal metric, ingest a latency
   spike, and register rules through the ``repro watch`` CLI;
3. wait for the *background* watcher to fire one ``definite`` alert
   (certified bound proves the crossing) and one ``possible`` alert
   (frugal has no bound, so it can never prove one);
4. advance the clock file past the window and ingest calm data: the
   spike expires by event time and the rule settles back to ``ok``;
5. ``SIGKILL`` the server, restart it on the same data directory, and
   require the windowed ring bit-identical (journal replay of
   timestamped batches) and the rule table intact;
6. re-evaluate after recovery to prove the watcher is fully live.

Exit code 0 on success; any assertion or timeout fails the job.

Usage::

    PYTHONPATH=src python scripts/watch_smoke.py [--port 7457]
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service import QuantileClient  # noqa: E402

T0 = 1_000_000.0


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return env


def start_server(port: int, data_dir: str, clock_file: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--data-dir", data_dir,
            "--shards", "2",
            "--snapshot-interval", "0",
            "--watch-interval", "0.1",
            "--clock-file", clock_file,
        ],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode() if proc.stdout else ""
            raise SystemExit(f"server died on startup:\n{out}")
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return proc
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise SystemExit("server did not start listening within 15s")


def cli(*argv: str) -> str:
    """Run one ``repro`` CLI command; returns stdout, asserts exit 0."""
    result = subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env=_env(), capture_output=True, text=True, timeout=30,
    )
    assert result.returncode == 0, (
        f"repro {' '.join(argv)} exited {result.returncode}:\n"
        f"{result.stdout}{result.stderr}"
    )
    return result.stdout


def set_clock(clock_file: str, t: float) -> None:
    tmp = clock_file + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(str(t))
    os.replace(tmp, clock_file)


def wait_for(predicate, what: str, timeout: float = 15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    raise SystemExit(f"timed out waiting for {what}")


def rules_via_cli(port: int, *, evaluate: bool = False) -> dict:
    argv = ["watch", "--port", str(port), "ls", "--json"]
    if evaluate:
        argv.insert(-1, "--evaluate")
    return {r["rule_id"]: r for r in json.loads(cli(*argv))}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=7457)
    args = parser.parse_args(argv)
    port = args.port

    with tempfile.TemporaryDirectory(prefix="repro-watch-smoke-") as root:
        data_dir = os.path.join(root, "data")
        clock_file = os.path.join(root, "clock")
        set_clock(clock_file, T0)
        proc = start_server(port, data_dir, clock_file)
        try:
            print("[1/6] create windowed + frugal metrics, ingest a spike")
            with QuantileClient("127.0.0.1", port) as client:
                client.create("lat", kind="fixed", eps=0.01,
                              window=60.0, slide=10.0)
                client.create("fr", kind="fixed", engine="frugal")
                client.ingest("lat", np.full(2_000, 100.0))
                client.ingest("fr", np.arange(2_000.0))

            print("[2/6] register rules through the CLI")
            out = cli("watch", "--port", str(port), "add", "hot", "lat",
                      "--phi", "0.5", "--threshold", "50")
            assert "added" in out, out
            out = cli("watch", "--port", str(port), "add", "fuzzy", "fr",
                      "--phi", "0.9", "--threshold", "10")
            assert "added" in out, out

            print("[3/6] background watcher fires definite + possible")

            def fired():
                with QuantileClient("127.0.0.1", port) as client:
                    watch = client.stats()["watch"]
                return (
                    watch
                    if watch["alerts_definite_total"] >= 1
                    and watch["alerts_possible_total"] >= 1
                    else None
                )

            watch = wait_for(fired, "one definite + one possible alert")
            rules = rules_via_cli(port)
            assert rules["hot"]["state"] == "definite", rules["hot"]
            assert rules["fuzzy"]["state"] == "possible", rules["fuzzy"]
            print(f"      definite={watch['alerts_definite_total']} "
                  f"possible={watch['alerts_possible_total']} after "
                  f"{watch['evaluations']} evaluations")

            print("[4/6] advance the clock past the window: spike expires")
            set_clock(clock_file, T0 + 600.0)
            with QuantileClient("127.0.0.1", port) as client:
                client.ingest("lat", np.full(2_000, 1.0))
            wait_for(
                lambda: rules_via_cli(port)["hot"]["state"] == "ok",
                "the windowed rule to settle back to ok",
            )

            with QuantileClient("127.0.0.1", port) as client:
                client.drain()
                before_ring = client.fetch_raw("lat")
                before_rules = {
                    rid: (r["metric"], r["phi"], r["op"], r["threshold"])
                    for rid, r in rules_via_cli(port).items()
                }

            print(f"[5/6] SIGKILL pid {proc.pid}, restart, compare")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            proc = start_server(port, data_dir, clock_file)

            with QuantileClient("127.0.0.1", port) as client:
                after_ring = client.fetch_raw("lat")
                assert after_ring == before_ring, (
                    "windowed ring diverged after journal-only recovery"
                )
            after_rules = {
                rid: (r["metric"], r["phi"], r["op"], r["threshold"])
                for rid, r in rules_via_cli(port).items()
            }
            assert after_rules == before_rules, (
                f"rules diverged:\n  before: {before_rules}\n"
                f"   after: {after_rules}"
            )

            print("[6/6] post-recovery evaluation still answers")
            recovered = rules_via_cli(port, evaluate=True)
            assert recovered["hot"]["state"] == "ok", recovered["hot"]
            assert recovered["fuzzy"]["state"] == "possible", (
                recovered["fuzzy"]
            )

            print("watch smoke OK: certified alerts, event-time expiry, "
                  "SIGKILL recovery of rules + ring all verified")
            return 0
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    sys.exit(main())
