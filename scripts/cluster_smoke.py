#!/usr/bin/env python
"""CI cluster smoke: 3 nodes, R=2, lost acks, a real SIGKILL, certified fan-in.

The multi-node twin of ``chaos_smoke.py``.  A real
:class:`~repro.cluster.ClusterCoordinator` spawns three full server
processes (own journals, own snapshot dirs); the run then asserts the
ISSUE-8 acceptance scenario end to end:

1. front the metric's **senior** replica with a :class:`ChaosProxy`
   that truncates server->client bytes -- acks for applied batches are
   lost, the per-node client resends with the SAME idempotency token,
   and the node's journal-backed dedup window absorbs the duplicate;
2. halfway through the stream, ``SIGKILL`` that node's real OS process
   (no drain, no final snapshot); the cluster client marks it down and
   the consistent-hash walk re-derives, so replicated ingest continues
   against the surviving owner without a gap;
3. require the cluster answer to be **exact**: ``n`` equals the
   elements ingested (zero lost, zero duplicated -- the token-dedup
   proof), and quantiles + certified bound are bit-identical to an
   offline in-process sketch fed the same batches;
4. fan-in: a second metric on a different replica set, then a
   cluster-wide ``query_merged`` whose Section-4.9 recombination must
   match the offline merge exactly, bound included -- and the bound
   must hold against true ranks (the streams are permutations);
5. the death is *observable*: ``poll()`` names the corpse, the epoch
   bumps, the on-disk ``cluster.json`` marks the node down, the
   Prometheus exposition counts 2/3 nodes up, and the ``repro cluster
   status`` CLI exits non-zero.

Exit code 0 on success.

Usage::

    PYTHONPATH=src python scripts/cluster_smoke.py [--seed 42]
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.cluster import ClusterCoordinator, ClusterManifest  # noqa: E402
from repro.service import ChaosProxy, FaultEvent, FaultSchedule  # noqa: E402
from repro.service.registry import SketchRegistry  # noqa: E402

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
BATCH = 1_000
TOTAL = 40_000
SIDE_TOTAL = 10_000
EPSILON = 0.01


def check(ok: bool, what: str) -> None:
    if not ok:
        print(f"FAIL: {what}")
        sys.exit(1)
    print(f"ok: {what}")


def offline_registry(name: str, n: int, batches) -> SketchRegistry:
    reg = SketchRegistry()
    reg.create(name, kind="fixed", epsilon=EPSILON, n=n)
    for batch in batches:
        reg.ingest(name, batch)
    reg.apply_all()
    return reg


def true_rank_ok(values, bound: float, n: int) -> bool:
    """On a permutation of 0..n-1 the value of rank r is r-1, so the
    certified bound is directly checkable against true ranks."""
    for phi, value in zip(PHIS, values):
        target = max(1, int(np.ceil(phi * n)))
        if abs((value + 1) - target) > bound:
            return False
    return True


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    rng = np.random.default_rng(args.seed)
    data = rng.permutation(TOTAL).astype(np.float64)
    batches = np.split(data, TOTAL // BATCH)
    side_data = rng.permutation(SIDE_TOTAL).astype(np.float64)

    tmp = tempfile.mkdtemp(prefix="repro-cluster-smoke-")
    data_dir = os.path.join(tmp, "cluster")
    t0 = time.monotonic()

    with ClusterCoordinator(
        nodes=3,
        replication=2,
        data_dir=data_dir,
        n_shards=2,
        snapshot_interval_s=None,
    ) as coord:
        print(
            f"cluster up: nodes={coord.node_ids} ports={coord.ports} "
            f"epoch={coord.epoch} ({time.monotonic() - t0:.1f}s)"
        )
        name = "cluster/latency_ms"
        side = "cluster/errors"

        with coord.client() as probe:
            senior, junior = probe.ring.owners(name, 2)
        spec = coord.manifest.node(senior)
        # lose acks on the first three connections to the senior, then
        # run transparent; every lost ack forces a token resend
        plan = (
            FaultEvent(kind="truncate", direction="s2c", after_bytes=64),
        )
        with ChaosProxy(
            spec.host,
            spec.port,
            schedule=FaultSchedule([plan, plan, plan]),
        ) as proxy:
            client = coord.client(
                endpoint_overrides={senior: (proxy.host, proxy.port)},
                timeout=10.0,
                max_retries=4,
                backoff_base=0.01,
            )
            try:
                client.create(name, kind="fixed", epsilon=EPSILON, n=TOTAL)
                check(
                    client.owners_of(name) == [senior, junior],
                    f"replica set [{senior}, {junior}] from the ring",
                )
                kill_at = len(batches) // 2
                for i, batch in enumerate(batches):
                    if i == kill_at:
                        coord.kill_node(senior)
                        print(
                            f"SIGKILLed {senior} after batch {i} "
                            f"({i * BATCH} elements in flight)"
                        )
                    client.ingest(name, batch)
                check(
                    len(proxy.faults_injected) > 0,
                    f"chaos proxy injected "
                    f"{len(proxy.faults_injected)} ack-loss fault(s)",
                )
                check(
                    coord.poll() == [senior],
                    f"health sweep detected the death of {senior}",
                )
                check(senior in client.down_nodes,
                      "client routed around the corpse")

                # -- exactly-once + certified answer -------------------
                client.drain()
                values, bound, n = client.query(name, PHIS)
                check(
                    n == TOTAL,
                    f"n == {TOTAL} exactly (zero lost, zero duplicated)",
                )
                offline = offline_registry(name, TOTAL, batches)
                ov, ob, on = offline.quantiles(name, PHIS)
                check(
                    values == ov and bound == ob and n == on,
                    "cluster answer bit-identical to the offline sketch",
                )
                check(
                    true_rank_ok(values, bound, TOTAL),
                    f"certified bound ({bound:g} elements) holds "
                    f"against true ranks",
                )

                # -- certified fan-in across metrics -------------------
                # same (epsilon, N) plan as the main metric: the
                # Sec-4.9 recombination requires equal-k summaries
                client.create(
                    side, kind="fixed", epsilon=EPSILON, n=TOTAL
                )
                client.ingest(side, side_data)
                client.drain()
                mv, mb, mn = client.query_merged([name, side], PHIS)
                check(
                    mn == TOTAL + SIDE_TOTAL,
                    f"fan-in n == {TOTAL + SIDE_TOTAL}",
                )
                side_reg = offline_registry(
                    side, TOTAL, [side_data]
                )
                from repro.cluster import merge_tagged

                merged = merge_tagged(
                    [
                        (name, offline.fetch_serialized(name)),
                        (side, side_reg.fetch_serialized(side)),
                    ]
                )
                check(
                    mv == [float(v) for v in merged.quantiles(PHIS)]
                    and mb == float(merged.error_bound()),
                    "fan-in matches the offline Sec-4.9 recombination, "
                    "bound included",
                )

                # -- the death is observable ---------------------------
                manifest = ClusterManifest.load(coord.manifest_path)
                check(
                    manifest.node(senior).status == "down"
                    and manifest.epoch == coord.epoch,
                    "cluster.json marks the node down at the new epoch",
                )
                prom = coord.prometheus()
                check(
                    "repro_cluster_nodes_up 2.0" in prom
                    and "repro_cluster_node_deaths 1" in prom,
                    "Prometheus exposition shows 2/3 up, 1 death",
                )
                env = dict(os.environ)
                env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
                status = subprocess.run(
                    [
                        sys.executable, "-m", "repro",
                        "cluster", "status",
                        "--manifest", coord.manifest_path,
                    ],
                    env=env,
                    capture_output=True,
                    text=True,
                )
                check(
                    status.returncode != 0
                    and "DOWN" in status.stdout,
                    "`repro cluster status` exits non-zero naming the "
                    "dead node",
                )
            finally:
                client.close()

        # === ISSUE-9: resurrect, re-sync, rebalance -- stream flowing ==
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        totals = {name: TOTAL, side: SIDE_TOTAL}

        def cli_status() -> "subprocess.CompletedProcess[str]":
            return subprocess.run(
                [
                    sys.executable, "-m", "repro", "cluster", "status",
                    "--manifest", coord.manifest_path,
                ],
                env=env, capture_output=True, text=True,
            )

        def ingest_more(n_batches: int) -> None:
            with coord.client() as cl:
                for _ in range(n_batches):
                    for metric in (name, side):
                        cl.ingest(metric, rng.standard_normal(BATCH))
                        totals[metric] += BATCH
                cl.drain()

        def counts_exact(when: str) -> None:
            with coord.client() as cl:
                got = {m: cl.query(m, [0.5])[2] for m in (name, side)}
            check(
                got == totals,
                f"counts exact {when}: {sorted(totals.values())} "
                f"(zero lost, zero duplicated)",
            )

        ingest_more(2)  # the corpse stays dead; survivors take writes
        coord.restart_node(senior, resync=False)
        status = cli_status()
        check(
            status.returncode == 4 and "SYNCING" in status.stdout,
            "status exits 4 (degraded-but-recovering, not an outage) "
            "while the node re-syncs",
        )
        ingest_more(2)  # still routed around the syncing node
        report = coord.resync_node(senior)
        check(
            bool(report.synced)
            and all(m.verified for m in report.synced),
            f"re-sync verified {len(report.synced)} owned metric(s) "
            f"bit-identical over {report.rounds} round(s)",
        )
        with coord.client() as cl:
            cl.drain()
            for metric in (name, side):
                payloads = {p for _, p in cl.fetch_replicas(metric)}
                check(
                    len(payloads) == 1,
                    f"{metric}: every replica serializes to the same "
                    f"bytes after re-sync",
                )
        counts_exact("after kill + re-sync")

        joined = coord.add_node()
        manifest = ClusterManifest.load(coord.manifest_path)
        check(
            manifest.node(joined).status == "up"
            and len(manifest.nodes) == 4,
            f"{joined} joined, migrated its ring share, flipped up",
        )
        ingest_more(2)
        counts_exact(f"after {joined} joined")

        coord.remove_node(senior)
        manifest = ClusterManifest.load(coord.manifest_path)
        check(
            senior not in manifest.node_ids()
            and len(manifest.nodes) == 3,
            f"{senior} drained its keys to the survivors and left",
        )
        ingest_more(2)
        counts_exact(f"after {senior} left")
        status = cli_status()
        check(
            status.returncode == 0,
            "`repro cluster status` exits 0 on the rewired cluster",
        )

    print(f"PASS cluster smoke in {time.monotonic() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
