#!/usr/bin/env python
"""CI chaos smoke: the service survives a seeded fault storm, exactly once.

The resilient twin of ``service_smoke.py``: the same real ``repro
serve`` subprocess and real TCP clients, but every byte flows through a
:class:`ChaosProxy` with a seeded :class:`FaultSchedule` -- connection
resets, truncations, delays and partial reads at deterministic byte
offsets.  The run asserts the full resilience contract:

1. start ``repro serve`` with a data directory; put the chaos proxy in
   front of it;
2. batch-ingest from 2 concurrent client threads through the proxy with
   retries enabled; every client must finish without an error escaping
   the typed retry layer;
3. require the final count to equal the data exactly -- retried batches
   applied **exactly once** (the idempotency-token dedup proof), and
   the certified Lemma 5 bound to match an offline in-process sketch;
4. snapshot mid-stream, keep ingesting so a tail lives only in the
   journal, record the exact answers;
5. ``SIGKILL`` the server, restart on the same data directory, and
   require bit-identical answers -- still through the proxy.

Exit code 0 on success.  The schedule is a pure function of ``--seed``,
so a failure reproduces locally with the same arguments.

Usage::

    PYTHONPATH=src python scripts/chaos_smoke.py [--port 7456] [--seed 63]
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.service import (  # noqa: E402
    ChaosProxy,
    FaultSchedule,
    QuantileClient,
)
from repro.service.registry import SketchRegistry  # noqa: E402

PHIS = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
N_CLIENTS = 2
BATCHES_PER_CLIENT = 20
BATCH = 1_000
TOTAL = N_CLIENTS * BATCHES_PER_CLIENT * BATCH


def start_server(port: int, data_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", str(port),
            "--data-dir", data_dir,
            "--shards", "2",
            "--snapshot-interval", "0",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 15.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read().decode() if proc.stdout else ""
            raise SystemExit(f"server died on startup:\n{out}")
        try:
            socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
            return proc
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise SystemExit("server did not start listening within 15s")


def chaos_client(port: int) -> QuantileClient:
    """A client with the retry budget the fault storm demands."""
    return QuantileClient(
        "127.0.0.1", port,
        timeout=30.0, max_retries=10,
        backoff_base=0.01, retry_seed=0,
    )


def concurrent_ingest(port: int, parts: list) -> int:
    errors: list = []
    retries = [0] * len(parts)

    def worker(idx: int, part: np.ndarray) -> None:
        try:
            with chaos_client(port) as client:
                # synchronous ingest: each batch individually acked, so
                # a retry storm cannot reorder batches within a client
                for batch in np.split(part, BATCHES_PER_CLIENT):
                    client.ingest("smoke/fixed", batch)
                retries[idx] = client.retries_total
        except Exception as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(i, part))
        for i, part in enumerate(parts)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise SystemExit(f"chaos ingest failed: {errors[0]!r}")
    return sum(retries)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=7456)
    parser.add_argument("--seed", type=int, default=63)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    data = rng.permutation(TOTAL).astype(np.float64)

    schedule = FaultSchedule.from_seed(
        args.seed, fault_probability=0.5, max_delay_s=0.02
    )
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as data_dir:
        proc = start_server(args.port, data_dir)
        proxy = ChaosProxy(
            "127.0.0.1", args.port, schedule=schedule
        ).start()
        try:
            with chaos_client(proxy.port) as client:
                client.create(
                    "smoke/fixed", kind="fixed", epsilon=0.02, n=TOTAL
                )

            print(f"[1/5] chaos ingest through proxy (seed {args.seed}): "
                  f"{N_CLIENTS} clients x {BATCHES_PER_CLIENT} x {BATCH}")
            retries = concurrent_ingest(
                proxy.port, list(np.split(data, N_CLIENTS))
            )
            fired = len(proxy.faults_injected)
            print(f"      faults injected: {fired}, client retries: "
                  f"{retries}")
            assert fired > 0, (
                "the schedule injected nothing -- the smoke is vacuous; "
                "pick a different --seed"
            )
            if args.seed == 63:
                # the default seed is chosen so worker connections draw
                # lethal client->server faults: the exactly-once check
                # below is only meaningful if batches were really retried
                assert retries > 0, (
                    "default-seed schedule fired no retries -- the "
                    "exactly-once assertion would be vacuous"
                )

            print("[2/5] exactly-once + certified bound vs offline sketch")
            with chaos_client(proxy.port) as client:
                client.drain()
                values, bound, n = client.query("smoke/fixed", PHIS)
                assert n == TOTAL, (
                    f"expected n={TOTAL}, got {n}: a retried batch was "
                    f"dropped or double-applied"
                )
                offline = SketchRegistry(n_shards=1)
                offline.create(
                    "smoke/fixed", kind="fixed", epsilon=0.02, n=TOTAL
                )
                offline.ingest("smoke/fixed", data)
                _, offline_bound, offline_n = offline.quantiles(
                    "smoke/fixed", PHIS
                )
                assert bound == offline_bound and n == offline_n
                for phi, value in zip(PHIS, values):
                    err = abs((value + 1) - phi * TOTAL)
                    assert err <= bound + 1, (
                        f"phi={phi}: |rank error| {err} > bound {bound}"
                    )

                print("[3/5] snapshot mid-stream + journal-only tail")
                client.snapshot()
                client.ingest(
                    "smoke/fixed", rng.uniform(0, TOTAL, size=4_096)
                )
                client.drain()
                before = client.query("smoke/fixed", PHIS)

            print(f"[4/5] SIGKILL pid {proc.pid}, restart, compare "
                  f"(still through the proxy)")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=10)
            proc = start_server(args.port, data_dir)

            with chaos_client(proxy.port) as client:
                got = client.query("smoke/fixed", PHIS)
                assert got == before, (
                    f"diverged after recovery:\n  before: {before}\n"
                    f"   after: {got}"
                )
                stats = client.stats()
                recovered = stats["durability"]["journal_records_recovered"]
                assert recovered > 0, "nothing replayed from the journal"

                print(f"[5/5] post-recovery ingest (replayed {recovered} "
                      f"journal records)")
                client.ingest("smoke/fixed", rng.uniform(
                    0, TOTAL, size=1_000
                ))
                _, _, n_after = client.query("smoke/fixed", [0.5])
                assert n_after == before[2] + 1_000

            print(f"chaos smoke OK: {fired} faults injected, {retries} "
                  f"client retries, every batch exactly once, SIGKILL "
                  f"recovery bit-identical")
            return 0
        finally:
            proxy.stop()
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    raise SystemExit(main())
