"""Many columns, one pass (Section 1.2).

*"This is especially important for query optimization as it is desirable
to compute histograms for multiple columns of a table in a single pass
over a table."*

:class:`MultiColumnSketcher` maintains one quantile summary per column and
feeds them all from a single scan, then hands back per-column quantiles,
equi-depth histograms, or the raw sketches.  It accepts either dictionaries
of arrays (one per chunk) or the engine's :class:`~repro.engine.table.Chunk`
objects, so it plugs directly into table scans::

    sketcher = MultiColumnSketcher(["price", "qty"], epsilon=0.005, n=len(t))
    for chunk in t.scan():
        sketcher.consume(chunk)
    boundaries = sketcher.histogram("price", 20)
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .core.errors import ConfigurationError, EmptySummaryError
from .core.sketch import QuantileSketch
from .histogram.equidepth import EquiDepthHistogram

__all__ = ["MultiColumnSketcher"]


class MultiColumnSketcher:
    """Per-column quantile summaries filled by one table scan.

    Parameters
    ----------
    columns:
        Column names to summarise (all must be numeric).
    epsilon:
        Guarantee for every column's quantiles.
    n:
        Expected row count (sizes each sketch).
    delta:
        Optional: allow the probabilistic sampling path per column.
    """

    def __init__(
        self,
        columns: Sequence[str],
        epsilon: float,
        n: Optional[int] = None,
        *,
        delta: Optional[float] = None,
        policy: str = "new",
    ) -> None:
        if not columns:
            raise ConfigurationError("need at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigurationError(f"duplicate column names in {columns}")
        self.columns = list(columns)
        self.epsilon = epsilon
        self._sketches: Dict[str, QuantileSketch] = {
            name: QuantileSketch(
                epsilon, n=n, delta=delta, policy=policy
            )
            for name in self.columns
        }
        self._minima: Dict[str, float] = {}
        self._maxima: Dict[str, float] = {}
        self._n_rows = 0

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def memory_elements(self) -> int:
        """Total footprint across all column sketches."""
        return sum(sk.memory_elements for sk in self._sketches.values())

    def consume(self, chunk: "Mapping[str, Any] | Any") -> None:
        """Feed one scan chunk (a mapping or an engine ``Chunk``)."""
        columns = getattr(chunk, "columns", chunk)
        if not isinstance(columns, Mapping):
            raise ConfigurationError(
                "consume() expects a mapping of column -> values or an "
                "engine Chunk"
            )
        arrays = {}
        n_rows = None
        for name in self.columns:
            if name not in columns:
                raise ConfigurationError(
                    f"chunk is missing column {name!r}"
                )
            arr = np.asarray(columns[name], dtype=np.float64)
            if n_rows is None:
                n_rows = len(arr)
            elif len(arr) != n_rows:
                raise ConfigurationError(
                    f"ragged chunk: column {name!r} has {len(arr)} rows, "
                    f"expected {n_rows}"
                )
            arrays[name] = arr
        if not n_rows:
            return
        self._n_rows += n_rows
        for name, arr in arrays.items():
            self._sketches[name].extend(arr)
            low = float(arr.min())
            high = float(arr.max())
            self._minima[name] = min(self._minima.get(name, low), low)
            self._maxima[name] = max(self._maxima.get(name, high), high)

    # -- per-column outputs ------------------------------------------------

    def sketch(self, column: str) -> QuantileSketch:
        """The underlying sketch for *column*."""
        if column not in self._sketches:
            raise ConfigurationError(
                f"unknown column {column!r}; tracking {self.columns}"
            )
        return self._sketches[column]

    def quantiles(self, column: str, phis: Sequence[float]) -> List[float]:
        """Approximate quantiles of one column."""
        return [float(v) for v in self.sketch(column).quantiles(phis)]

    def all_quantiles(
        self, phis: Sequence[float]
    ) -> Dict[str, List[float]]:
        """The same quantile fractions for every tracked column."""
        return {name: self.quantiles(name, phis) for name in self.columns}

    def histogram(self, column: str, n_buckets: int) -> EquiDepthHistogram:
        """An equi-depth histogram of one column from its sketch."""
        sketch = self.sketch(column)
        if self._n_rows == 0:
            raise EmptySummaryError("no rows consumed yet")
        boundaries = [
            float(v) for v in sketch.equidepth_boundaries(n_buckets)
        ]
        boundaries.sort()
        return EquiDepthHistogram(
            boundaries,
            n=self._n_rows,
            low=self._minima[column],
            high=self._maxima[column],
            epsilon=self.epsilon,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiColumnSketcher(columns={self.columns}, "
            f"eps={self.epsilon}, rows={self._n_rows})"
        )
