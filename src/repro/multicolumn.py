"""Many columns, one pass (Section 1.2).

*"This is especially important for query optimization as it is desirable
to compute histograms for multiple columns of a table in a single pass
over a table."*

:class:`MultiColumnSketcher` maintains one quantile summary per column and
feeds them all from a single scan, then hands back per-column quantiles,
equi-depth histograms, or the raw sketches.  It accepts dictionaries of
arrays (one per chunk), the engine's :class:`~repro.engine.table.Chunk`
objects, or a plain 2D ``(rows, columns)`` ndarray, so it plugs directly
into table scans::

    sketcher = MultiColumnSketcher(["price", "qty"], epsilon=0.005, n=len(t))
    for chunk in t.scan():
        sketcher.consume(chunk)
    boundaries = sketcher.histogram("price", 20)

On the deterministic path every column's
:class:`~repro.core.framework.QuantileFramework` is adopted into one
:class:`~repro.core.bank.SketchBank`, so a chunk is ingested as one bank
operation per column slice with no per-column Python dispatch beyond the
slice itself; answers are bit-identical to feeding each
:class:`QuantileSketch` separately.  The Section 5 sampling front-end
(``delta``) composes per column exactly as before.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .core.bank import SketchBank
from .core.errors import ConfigurationError, EmptySummaryError
from .core.sketch import QuantileSketch
from .histogram.equidepth import EquiDepthHistogram

__all__ = ["MultiColumnSketcher"]


class MultiColumnSketcher:
    """Per-column quantile summaries filled by one table scan.

    Parameters
    ----------
    columns:
        Column names to summarise (all must be numeric).
    epsilon:
        Guarantee for every column's quantiles.
    n:
        Expected row count (sizes each sketch).
    delta:
        Optional: allow the probabilistic sampling path per column.
    """

    def __init__(
        self,
        columns: Sequence[str],
        epsilon: float,
        n: Optional[int] = None,
        *,
        delta: Optional[float] = None,
        policy: str = "new",
    ) -> None:
        if not columns:
            raise ConfigurationError("need at least one column")
        if len(set(columns)) != len(columns):
            raise ConfigurationError(f"duplicate column names in {columns}")
        self.columns = list(columns)
        self.epsilon = epsilon
        self._sketches: Dict[str, QuantileSketch] = {
            name: QuantileSketch(
                epsilon, n=n, delta=delta, policy=policy
            )
            for name in self.columns
        }
        # Deterministic sketches route their ingest through one shared
        # bank (sketch id == column index); the sampling front-end keeps
        # its per-column path (the sampler owns the stream thinning).
        self._bank: Optional[SketchBank] = None
        if not any(sk.uses_sampling for sk in self._sketches.values()):
            bank = SketchBank(epsilon, n=n, policy=policy)
            for name in self.columns:
                bank.adopt(self._sketches[name]._impl)
            self._bank = bank
        self._minima: Dict[str, float] = {}
        self._maxima: Dict[str, float] = {}
        self._n_rows = 0

    @property
    def n_rows(self) -> int:
        return self._n_rows

    @property
    def memory_elements(self) -> int:
        """Total footprint across all column sketches."""
        return sum(sk.memory_elements for sk in self._sketches.values())

    def _coerce_matrix(self, matrix: np.ndarray) -> Dict[str, np.ndarray]:
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"ndarray chunks must be 2D (rows, columns), got shape "
                f"{matrix.shape}"
            )
        if matrix.shape[1] != len(self.columns):
            raise ConfigurationError(
                f"chunk has {matrix.shape[1]} columns, sketcher tracks "
                f"{len(self.columns)}: {self.columns}"
            )
        matrix = np.asarray(matrix, dtype=np.float64)
        return {
            name: matrix[:, j] for j, name in enumerate(self.columns)
        }

    def consume(self, chunk: "Mapping[str, Any] | np.ndarray | Any") -> None:
        """Feed one scan chunk.

        Accepts a mapping of column name to values, an engine ``Chunk``,
        or a 2D ``(rows, columns)`` ndarray whose columns are in
        ``self.columns`` order.
        """
        if isinstance(chunk, np.ndarray):
            arrays = self._coerce_matrix(chunk)
            n_rows = len(chunk)
        else:
            columns = getattr(chunk, "columns", chunk)
            if not isinstance(columns, Mapping):
                raise ConfigurationError(
                    "consume() expects a mapping of column -> values, an "
                    "engine Chunk, or a 2D (rows, columns) ndarray"
                )
            arrays = {}
            n_rows = None
            for name in self.columns:
                if name not in columns:
                    raise ConfigurationError(
                        f"chunk is missing column {name!r}"
                    )
                arr = np.asarray(columns[name], dtype=np.float64)
                if n_rows is None:
                    n_rows = len(arr)
                elif len(arr) != n_rows:
                    raise ConfigurationError(
                        f"ragged chunk: column {name!r} has {len(arr)} "
                        f"rows, expected {n_rows}"
                    )
                arrays[name] = arr
        if not n_rows:
            return
        self._n_rows += n_rows
        for j, name in enumerate(self.columns):
            arr = arrays[name]
            if self._bank is not None:
                self._bank.extend_single(j, arr)
            else:
                self._sketches[name].extend(arr)
            low = float(arr.min())
            high = float(arr.max())
            self._minima[name] = min(self._minima.get(name, low), low)
            self._maxima[name] = max(self._maxima.get(name, high), high)

    # -- per-column outputs ------------------------------------------------

    def sketch(self, column: str) -> QuantileSketch:
        """The underlying sketch for *column*."""
        if column not in self._sketches:
            raise ConfigurationError(
                f"unknown column {column!r}; tracking {self.columns}"
            )
        return self._sketches[column]

    def quantiles(self, column: str, phis: Sequence[float]) -> List[float]:
        """Approximate quantiles of one column."""
        return [float(v) for v in self.sketch(column).quantiles(phis)]

    def all_quantiles(
        self, phis: Sequence[float]
    ) -> Dict[str, List[float]]:
        """The same quantile fractions for every tracked column.

        Each column answers every fraction off a single buffer snapshot
        (Section 4.7) -- via :meth:`SketchBank.quantiles_all` on the
        deterministic path.
        """
        if self._bank is not None:
            per_sketch = self._bank.quantiles_all(phis)
            out: Dict[str, List[float]] = {}
            for name, answers in zip(self.columns, per_sketch):
                if answers is None:
                    raise EmptySummaryError("no elements have been ingested")
                out[name] = [float(v) for v in answers]
            return out
        return {name: self.quantiles(name, phis) for name in self.columns}

    def error_bounds(self) -> Dict[str, float]:
        """Certified Lemma 5 rank-error bound (elements) per column."""
        return {
            name: float(sk.error_bound())
            for name, sk in self._sketches.items()
        }

    def histogram(self, column: str, n_buckets: int) -> EquiDepthHistogram:
        """An equi-depth histogram of one column from its sketch."""
        sketch = self.sketch(column)
        if self._n_rows == 0:
            raise EmptySummaryError("no rows consumed yet")
        boundaries = [
            float(v) for v in sketch.equidepth_boundaries(n_buckets)
        ]
        boundaries.sort()
        return EquiDepthHistogram(
            boundaries,
            n=self._n_rows,
            low=self._minima[column],
            high=self._maxima[column],
            epsilon=self.epsilon,
        )

    def histograms(self, n_buckets: int) -> Dict[str, EquiDepthHistogram]:
        """Equi-depth histograms for every tracked column."""
        return {
            name: self.histogram(name, n_buckets) for name in self.columns
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MultiColumnSketcher(columns={self.columns}, "
            f"eps={self.epsilon}, rows={self._n_rows})"
        )
