"""Agrawal & Swami's one-pass adaptive equi-depth histogram -- reference [17].

Section 2.2: *"The idea here is to adjust equi-depth histogram boundaries
on the fly when they do not appear to be in balance.  Again, there are no
strong and a-priori guarantees on error."*

The original COMAD-95 paper maintains ``p`` buckets over the value domain
and rebalances their boundaries as observations accumulate.  This module
is a faithful-in-spirit reconstruction of that scheme (the original text
is not machine-readable today):

* the first ``p + 1`` distinct-ish observations seed the boundaries;
* each arrival increments the count of its bucket (extending the extreme
  boundaries when the value falls outside the current range);
* whenever some bucket's count exceeds ``2x`` the ideal depth, it is
  *split* at its interpolated midpoint and the pair of adjacent buckets
  with the smallest combined count is *merged*, keeping the bucket count
  constant -- boundary adjustment "on the fly when they do not appear to
  be in balance".

Quantiles are read off the histogram by linear interpolation within the
bucket containing the target rank.  As the MRL paper stresses, nothing
here carries an a-priori guarantee; the benchmarks quantify exactly how
far it drifts on adversarial arrival orders.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from ..core.errors import ConfigurationError, EmptySummaryError

__all__ = ["AgrawalSwamiHistogram"]


class AgrawalSwamiHistogram:
    """Adaptive equi-depth histogram with ``p`` buckets (O(p) memory)."""

    name = "agrawal-swami"

    def __init__(self, n_buckets: int = 50, imbalance_factor: float = 2.0) -> None:
        if n_buckets < 2:
            raise ConfigurationError(
                f"need at least 2 buckets, got {n_buckets}"
            )
        if imbalance_factor <= 1.0:
            raise ConfigurationError("imbalance_factor must exceed 1")
        self.n_buckets = n_buckets
        self.imbalance_factor = imbalance_factor
        self._bootstrap: List[float] = []
        self._bounds: List[float] = []  # n_buckets + 1 boundaries
        self._counts: List[int] = []  # n_buckets counts
        self._n = 0

    @property
    def n(self) -> int:
        return self._n

    @property
    def memory_elements(self) -> int:
        """Boundaries + counts, in elements."""
        return 2 * self.n_buckets + 1

    # -- ingest ----------------------------------------------------------------

    def update(self, value: float) -> None:
        value = float(value)
        self._n += 1
        if not self._bounds:
            self._bootstrap.append(value)
            if len(self._bootstrap) > self.n_buckets:
                self._initialise()
            return
        self._observe(value)

    def extend(self, data: "np.ndarray | Sequence[float]") -> None:
        for v in np.asarray(data, dtype=np.float64):
            self.update(float(v))

    def _initialise(self) -> None:
        ordered = sorted(self._bootstrap)
        # p+1 seed boundaries spread over the bootstrap sample
        idx = np.linspace(0, len(ordered) - 1, self.n_buckets + 1)
        self._bounds = [float(ordered[int(round(i))]) for i in idx]
        # strictly widen degenerate (equal) boundaries a hair so bucket
        # intervals stay well-defined under heavy duplication
        for i in range(1, len(self._bounds)):
            if self._bounds[i] <= self._bounds[i - 1]:
                self._bounds[i] = np.nextafter(
                    self._bounds[i - 1], math.inf
                )
        self._counts = [0] * self.n_buckets
        seeds = self._bootstrap
        self._bootstrap = []
        self._n -= len(seeds)  # _observe re-counts them
        for v in seeds:
            self._n += 1
            self._observe(v)

    def _bucket_of(self, value: float) -> int:
        bounds = self._bounds
        if value <= bounds[0]:
            bounds[0] = min(bounds[0], value)
            return 0
        if value >= bounds[-1]:
            bounds[-1] = max(bounds[-1], value)
            return self.n_buckets - 1
        lo = int(np.searchsorted(np.asarray(bounds), value, side="right")) - 1
        return min(lo, self.n_buckets - 1)

    def _observe(self, value: float) -> None:
        i = self._bucket_of(value)
        self._counts[i] += 1
        ideal = max(sum(self._counts) / self.n_buckets, 1.0)
        if self._counts[i] > self.imbalance_factor * ideal:
            self._rebalance(i)

    def _rebalance(self, heavy: int) -> None:
        """Split the heavy bucket, merge the lightest adjacent pair."""
        counts, bounds = self._counts, self._bounds
        # find the lightest adjacent pair, excluding pairs touching `heavy`
        # (merging into the bucket being split would cancel the split)
        best_pair = -1
        best_weight = math.inf
        for j in range(self.n_buckets - 1):
            if j == heavy or j + 1 == heavy:
                continue
            w = counts[j] + counts[j + 1]
            if w < best_weight:
                best_weight = w
                best_pair = j
        if best_pair < 0:
            return  # p == 2 with the heavy bucket involved everywhere
        mid = 0.5 * (bounds[heavy] + bounds[heavy + 1])
        if not (bounds[heavy] < mid < bounds[heavy + 1]):
            return  # zero-width bucket (all duplicates): nothing to split
        # merge: buckets best_pair and best_pair+1 become one
        counts[best_pair] += counts[best_pair + 1]
        del counts[best_pair + 1]
        del bounds[best_pair + 1]
        # split: heavy bucket (index shifts if it sat after the merge)
        h = heavy if heavy < best_pair else heavy - 1
        half = counts[h] / 2.0
        counts[h] = int(math.floor(half))
        counts.insert(h + 1, int(math.ceil(half)))
        bounds.insert(h + 1, mid)

    # -- queries -----------------------------------------------------------------

    def query(self, phi: float) -> float:
        return self.quantiles([phi])[0]

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        if not self._bounds:
            ordered = sorted(self._bootstrap)
            out = []
            for phi in phis:
                rank = min(
                    max(math.ceil(phi * len(ordered)), 1), len(ordered)
                )
                out.append(ordered[rank - 1])
            return out
        total = sum(self._counts)
        cum = np.concatenate([[0], np.cumsum(self._counts)])
        out = []
        for phi in phis:
            if not 0.0 <= phi <= 1.0:
                raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
            rank = min(max(math.ceil(phi * total), 1), total)
            i = int(np.searchsorted(cum, rank, side="left")) - 1
            i = min(max(i, 0), self.n_buckets - 1)
            within = self._counts[i] or 1
            frac = (rank - cum[i]) / within
            lo, hi = self._bounds[i], self._bounds[i + 1]
            out.append(float(lo + frac * (hi - lo)))
        return out

    def boundaries(self) -> List[float]:
        """The current bucket boundaries (for histogram comparisons)."""
        return list(self._bounds)
