"""Antecedent algorithms (Section 2) plus exact ground truth.

Every baseline exposes the same ``update`` / ``extend`` / ``query`` /
``quantiles`` / ``memory_elements`` interface as the core framework so the
benchmarks can swap them in uniformly:

* :class:`ExactQuantiles` -- sort-everything ground truth (O(N) memory);
* :class:`P2Quantile` / :class:`P2Ensemble` -- Jain & Chlamtac [16],
  constant memory, no guarantee;
* :class:`AgrawalSwamiHistogram` -- adaptive equi-depth histogram [17],
  no guarantee;
* :class:`ReservoirSampler` -- the naive random-sampling estimator of
  Section 2.1, probabilistic guarantee, O(sample) memory.
"""

from .agrawal_swami import AgrawalSwamiHistogram
from .exact import ExactQuantiles, exact_quantile, rank_interval
from .naive_sampling import ReservoirSampler, naive_sample_size
from .p2 import P2Ensemble, P2Quantile

__all__ = [
    "ExactQuantiles",
    "exact_quantile",
    "rank_interval",
    "P2Quantile",
    "P2Ensemble",
    "AgrawalSwamiHistogram",
    "ReservoirSampler",
    "naive_sample_size",
]
