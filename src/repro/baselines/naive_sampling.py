"""Naive random sampling baseline (Section 2.1 of the paper).

*"The naive randomized algorithm, which outputs the median of a random
sample of size O(eps^-2 log delta^-1), uses a number of comparisons
independent of N."*

This is sampling *without* the deterministic summary behind it: keep a
uniform reservoir of ``m`` elements (Vitter's Algorithm R), answer quantile
queries from the sorted reservoir.  Memory is the full reservoir -- the
contrast with Section 5's scheme, which compresses the sample through the
deterministic framework and therefore needs far less than ``S`` elements
resident.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigurationError, EmptySummaryError

__all__ = ["ReservoirSampler", "naive_sample_size"]


def naive_sample_size(epsilon: float, delta: float) -> int:
    """The classic ``O(eps^-2 log(1/delta))`` sample size.

    Uses the two-sided Hoeffding constant, i.e. ``log(2/delta)/(2 eps^2)``
    -- the same arithmetic as Lemma 7 with the whole budget assigned to
    ``eps2``.
    """
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ConfigurationError("need epsilon and delta in (0, 1)")
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


class ReservoirSampler:
    """Uniform fixed-size reservoir (Algorithm R) with quantile queries."""

    name = "naive-sampling"

    def __init__(self, size: int, seed: Optional[int] = None) -> None:
        if size < 1:
            raise ConfigurationError(f"reservoir size must be >= 1, got {size}")
        self.size = size
        self._reservoir = np.empty(size, dtype=np.float64)
        self._n = 0
        self._rng = np.random.default_rng(seed)

    @classmethod
    def for_guarantee(
        cls, epsilon: float, delta: float, seed: Optional[int] = None
    ) -> "ReservoirSampler":
        """Reservoir sized so quantiles are ``epsilon``-approximate with
        probability at least ``1 - delta``."""
        return cls(naive_sample_size(epsilon, delta), seed=seed)

    @property
    def n(self) -> int:
        return self._n

    @property
    def memory_elements(self) -> int:
        """The whole reservoir stays resident."""
        return self.size

    def update(self, value: float) -> None:
        self._n += 1
        if self._n <= self.size:
            self._reservoir[self._n - 1] = value
        else:
            j = int(self._rng.integers(0, self._n))
            if j < self.size:
                self._reservoir[j] = value

    def extend(self, data: "np.ndarray | Sequence[float]") -> None:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(f"expected 1-d data, got {arr.shape}")
        start = self._n
        fill = min(max(self.size - start, 0), len(arr))
        if fill:
            self._reservoir[start : start + fill] = arr[:fill]
            self._n += fill
            arr = arr[fill:]
        if len(arr) == 0:
            return
        # Vectorised Algorithm R for the remainder: element i (0-based in
        # arr, global index start_n + i, 1-indexed count start_n + i + 1)
        # replaces a random slot with probability size / count.
        counts = self._n + 1 + np.arange(len(arr))
        draws = self._rng.integers(0, counts)
        hits = np.nonzero(draws < self.size)[0]
        for i in hits:  # later hits overwrite earlier ones, as in the scalar loop
            self._reservoir[draws[i]] = arr[i]
        self._n += len(arr)

    def sample(self) -> np.ndarray:
        """The current reservoir contents (a copy)."""
        return self._reservoir[: min(self._n, self.size)].copy()

    def query(self, phi: float) -> float:
        return self.quantiles([phi])[0]

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        ordered = np.sort(self.sample())
        out = []
        for phi in phis:
            if not 0.0 <= phi <= 1.0:
                raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
            rank = min(max(math.ceil(phi * len(ordered)), 1), len(ordered))
            out.append(float(ordered[rank - 1]))
        return out
