"""Exact quantiles: the ground truth every experiment compares against.

Stores the entire input (O(N) memory -- exactly what the paper's
algorithms exist to avoid) and answers rank queries exactly.  Also provides
the rank arithmetic used by the error-measurement code: with duplicates, an
estimate is "correct at rank r" if *some* occurrence of it sits at rank r,
so ranks are reported as closed intervals.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import ConfigurationError, EmptySummaryError

__all__ = ["ExactQuantiles", "exact_quantile", "rank_interval"]


def exact_quantile(data: np.ndarray, phi: float, *, presorted: bool = False) -> float:
    """The element at rank ``ceil(phi * n)`` (1-indexed) of *data*."""
    n = len(data)
    if n == 0:
        raise EmptySummaryError("cannot take a quantile of no data")
    if not 0.0 <= phi <= 1.0:
        raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
    ordered = data if presorted else np.sort(data)
    rank = min(max(math.ceil(phi * n), 1), n)
    return float(ordered[rank - 1])


def rank_interval(sorted_data: np.ndarray, value: float) -> Tuple[int, int]:
    """The closed 1-indexed rank interval occupied by *value*.

    For a value present ``m >= 1`` times the interval spans its first and
    last occurrence; for an absent value both endpoints name the gap it
    would occupy (``lo = hi + 1`` convention is avoided by clamping to the
    neighbouring ranks), which is what rank-error measurement wants: the
    distance from a target rank to the nearest rank the value could hold.
    """
    n = len(sorted_data)
    if n == 0:
        raise EmptySummaryError("rank query against empty data")
    lo = int(np.searchsorted(sorted_data, value, side="left")) + 1
    hi = int(np.searchsorted(sorted_data, value, side="right"))
    if hi < lo:  # value absent: it would sit between ranks hi and lo
        return lo - 1 if lo > 1 else 1, min(lo, n)
    return lo, hi


class ExactQuantiles:
    """Buffer-everything baseline with the same update/query interface."""

    name = "exact"

    def __init__(self) -> None:
        self._chunks: List[np.ndarray] = []
        self._sorted: "np.ndarray | None" = None

    @property
    def n(self) -> int:
        return sum(len(c) for c in self._chunks)

    @property
    def memory_elements(self) -> int:
        """Elements held -- the whole input, by design."""
        return self.n

    def update(self, value: float) -> None:
        self.extend([value])

    def extend(self, data: "np.ndarray | Sequence[float]") -> None:
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(f"expected 1-d data, got {arr.shape}")
        if len(arr):
            self._chunks.append(arr.copy())
            self._sorted = None

    def _ordered(self) -> np.ndarray:
        if self._sorted is None:
            if not self._chunks:
                raise EmptySummaryError("no elements have been ingested")
            self._sorted = np.sort(np.concatenate(self._chunks))
        return self._sorted

    def query(self, phi: float) -> float:
        return exact_quantile(self._ordered(), phi, presorted=True)

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        ordered = self._ordered()
        return [exact_quantile(ordered, phi, presorted=True) for phi in phis]

    def error_bound(self) -> float:
        """Exact answers: zero rank error, always."""
        return 0.0
