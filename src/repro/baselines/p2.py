"""The P-squared algorithm of Jain & Chlamtac (CACM 1985) -- reference [16].

Section 2.2 of the MRL paper cites this as the classic constant-memory
one-pass quantile estimator *without* a-priori error guarantees.  It keeps
five *markers* per tracked quantile ``p``: the minimum, the ``p/2``,
``p``, ``(1+p)/2`` quantile estimates and the maximum.  Marker heights are
nudged toward their desired positions with piecewise-parabolic (P^2)
interpolation as elements arrive.

It is reproduced here faithfully (marker initialisation from the first
five observations, parabolic adjustment with linear fallback) because the
benchmarks contrast its unbounded error against the MRL framework's
guaranteed one at comparable memory.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.errors import ConfigurationError, EmptySummaryError

__all__ = ["P2Quantile", "P2Ensemble"]


class P2Quantile:
    """Single-quantile P^2 estimator (5 markers, O(1) memory)."""

    name = "p2"

    def __init__(self, phi: float) -> None:
        if not 0.0 < phi < 1.0:
            raise ConfigurationError(
                f"P^2 tracks interior quantiles only, got phi={phi}"
            )
        self.phi = phi
        self._initial: List[float] = []
        # marker heights q, integer positions n (1-indexed), desired
        # positions n' and desired-position increments dn'
        self._q: List[float] = []
        self._n: List[int] = []
        self._np: List[float] = []
        self._dn: List[float] = []
        self._count = 0

    @property
    def n(self) -> int:
        return self._count

    @property
    def memory_elements(self) -> int:
        """Five markers regardless of stream length."""
        return 5

    def update(self, value: float) -> None:
        self._count += 1
        if len(self._initial) < 5 and not self._q:
            self._initial.append(float(value))
            if len(self._initial) == 5:
                self._initialise()
            return
        self._observe(float(value))

    def extend(self, data: "np.ndarray | Sequence[float]") -> None:
        for v in np.asarray(data, dtype=np.float64):
            self.update(float(v))

    def _initialise(self) -> None:
        self._initial.sort()
        p = self.phi
        self._q = list(self._initial)
        self._n = [1, 2, 3, 4, 5]
        self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
        self._dn = [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0]
        self._initial = []

    def _observe(self, x: float) -> None:
        q, n = self._q, self._n
        if x < q[0]:
            q[0] = x
            cell = 0
        elif x >= q[4]:
            q[4] = x
            cell = 3
        else:
            cell = 0
            while x >= q[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            n[i] += 1
        for i in range(5):
            self._np[i] += self._dn[i]
        # adjust the three interior markers
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1 and n[i + 1] - n[i] > 1) or (
                d <= -1 and n[i - 1] - n[i] < -1
            ):
                sign = 1 if d >= 1 else -1
                candidate = self._parabolic(i, sign)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, sign)
                n[i] += sign

    def _parabolic(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d)
            * (q[i + 1] - q[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: int) -> float:
        q, n = self._q, self._n
        return q[i] + d * (q[i + d] - q[i]) / (n[i + d] - n[i])

    def query(self, phi: "float | None" = None) -> float:
        """Current estimate of the tracked quantile.

        *phi* is accepted for interface compatibility but must match the
        quantile this instance tracks.
        """
        if phi is not None and abs(phi - self.phi) > 1e-12:
            raise ConfigurationError(
                f"this P^2 instance tracks phi={self.phi}, asked for {phi}"
            )
        if self._count == 0:
            raise EmptySummaryError("no elements have been ingested")
        if self._q:
            return self._q[2]
        # fewer than 5 observations: answer from the raw values
        ordered = sorted(self._initial)
        rank = min(
            max(int(np.ceil(self.phi * len(ordered))), 1), len(ordered)
        )
        return ordered[rank - 1]


class P2Ensemble:
    """Several quantiles tracked by independent P^2 estimators.

    Unlike the MRL framework (Section 4.7: many quantiles for free), P^2
    pays five markers *per quantile* and offers no shared structure -- one
    of the contrasts the benchmarks draw.
    """

    name = "p2-ensemble"

    def __init__(self, phis: Sequence[float]) -> None:
        if not phis:
            raise ConfigurationError("need at least one quantile")
        self.phis = list(phis)
        self._estimators = [P2Quantile(phi) for phi in self.phis]

    @property
    def n(self) -> int:
        return self._estimators[0].n

    @property
    def memory_elements(self) -> int:
        return 5 * len(self._estimators)

    def update(self, value: float) -> None:
        for est in self._estimators:
            est.update(value)

    def extend(self, data: "np.ndarray | Sequence[float]") -> None:
        arr = np.asarray(data, dtype=np.float64)
        for v in arr:
            self.update(float(v))

    def quantiles(self, phis: "Sequence[float] | None" = None) -> List[float]:
        if phis is not None and list(phis) != self.phis:
            raise ConfigurationError(
                "P^2 ensembles answer exactly the quantiles they track"
            )
        return [est.query() for est in self._estimators]
