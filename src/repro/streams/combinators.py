"""Stream combinators: build compound workloads from simple ones.

The evaluation's arrival orders (Section 1.2) are rarely pure in practice:
a real table is *mostly* sorted with a shuffled tail, or several sorted
partitions concatenated, or two sources interleaved by a merge operator.
These combinators compose :class:`~repro.streams.generators.DataStream`
objects into such shapes while keeping every property the consumers rely
on -- deterministic replay, chunked single-pass iteration, exact
quantiles via a one-off sort.

* :func:`concat` -- one stream after another (partitioned tables);
* :func:`interleave` -- block-wise round-robin (merge-join-ish arrival);
* :func:`take` / :func:`repeat` -- prefixes and periodic re-arrival;
* :func:`transform` -- apply a deterministic element-wise function
  (unit conversions, jitter with a seeded RNG).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..core.errors import ConfigurationError
from .generators import DataStream

__all__ = ["concat", "interleave", "take", "repeat", "transform"]


def _segmented(
    name: str,
    segments: "List[tuple[DataStream, int, int]]",
) -> DataStream:
    """A stream reading ``(source, src_start, length)`` segments in order."""
    total = sum(length for _s, _o, length in segments)
    offsets = []
    pos = 0
    for _source, _src_start, length in segments:
        offsets.append(pos)
        pos += length

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        out = np.empty(stop - start, dtype=np.float64)
        written = 0
        pos = start
        for (source, src_start, length), seg_off in zip(segments, offsets):
            if pos >= seg_off + length or pos >= stop:
                continue
            if stop <= seg_off:
                break
            lo = max(pos, seg_off)
            hi = min(stop, seg_off + length)
            if hi <= lo:
                continue
            src_lo = src_start + (lo - seg_off)
            src_hi = src_start + (hi - seg_off)
            piece = source._chunk_fn(src_lo, src_hi)
            out[written : written + (hi - lo)] = piece
            written += hi - lo
            pos = hi
        return out[:written] if written != stop - start else out

    return DataStream(name, total, chunk_fn)


def concat(*streams: DataStream) -> DataStream:
    """The streams back to back -- a partitioned table read in order."""
    if not streams:
        raise ConfigurationError("concat needs at least one stream")
    segments = [(s, 0, s.n) for s in streams]
    name = "+".join(s.name for s in streams)
    return _segmented(f"concat({name})", segments)


def interleave(
    streams: Sequence[DataStream], block: int = 1024
) -> DataStream:
    """Round-robin blocks of *block* elements from each stream.

    Models a merge operator consuming several ordered runs: locally each
    run is in its own order, globally they alternate.
    """
    if not streams:
        raise ConfigurationError("interleave needs at least one stream")
    if block < 1:
        raise ConfigurationError("block must be >= 1")
    segments: List[tuple] = []
    cursors = [0] * len(streams)
    exhausted = 0
    while exhausted < len(streams):
        exhausted = 0
        for i, stream in enumerate(streams):
            remaining = stream.n - cursors[i]
            if remaining <= 0:
                exhausted += 1
                continue
            taken = min(block, remaining)
            segments.append((stream, cursors[i], taken))
            cursors[i] += taken
    name = "|".join(s.name for s in streams)
    return _segmented(f"interleave({name})", segments)


def take(stream: DataStream, n: int) -> DataStream:
    """The first *n* elements of *stream* (a table prefix)."""
    if not 1 <= n <= stream.n:
        raise ConfigurationError(
            f"take needs 1 <= n <= {stream.n}, got {n}"
        )
    return _segmented(f"take({stream.name},{n})", [(stream, 0, n)])


def repeat(stream: DataStream, times: int) -> DataStream:
    """The stream played *times* times in a row (periodic re-arrival)."""
    if times < 1:
        raise ConfigurationError(f"times must be >= 1, got {times}")
    segments = [(stream, 0, stream.n) for _ in range(times)]
    return _segmented(f"repeat({stream.name},{times})", segments)


def transform(
    stream: DataStream,
    fn: Callable[[np.ndarray], np.ndarray],
    *,
    name: str = "transform",
) -> DataStream:
    """Apply an element-wise, deterministic *fn* to every chunk.

    *fn* must be pure and length-preserving (it is re-invoked on replay,
    so randomness must be seeded from the data or avoided).
    """

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        out = np.asarray(
            fn(stream._chunk_fn(start, stop)), dtype=np.float64
        )
        if len(out) != stop - start:
            raise ConfigurationError(
                "transform functions must preserve chunk length"
            )
        return out

    return DataStream(f"{name}({stream.name})", stream.n, chunk_fn)
