"""Workload generators, combinators, and disk-resident streams (§1.2, §6)."""

from .combinators import concat, interleave, repeat, take, transform
from .file_stream import FileStream, write_stream
from .generators import (
    DEFAULT_CHUNK,
    STANDARD_ORDERS,
    DataStream,
    alternating_extremes_stream,
    clustered_stream,
    correlated_stream,
    normal_stream,
    random_permutation_stream,
    reverse_sorted_stream,
    sorted_stream,
    uniform_stream,
    zipf_stream,
)

__all__ = [
    "DataStream",
    "FileStream",
    "write_stream",
    "sorted_stream",
    "reverse_sorted_stream",
    "random_permutation_stream",
    "uniform_stream",
    "normal_stream",
    "zipf_stream",
    "clustered_stream",
    "correlated_stream",
    "alternating_extremes_stream",
    "STANDARD_ORDERS",
    "DEFAULT_CHUNK",
    "concat",
    "interleave",
    "take",
    "repeat",
    "transform",
]
