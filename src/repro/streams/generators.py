"""Workload generators: arrival orders and value distributions.

Section 1.2 of the paper stresses that *"arrival orders and value
distributions are hard to characterize"* -- streams may come from stored
tables (insert order, clustering) or from intermediate query results (e.g.
a merge join emits its join column sorted).  Section 6 evaluates on two
permutations of ranks, **sorted** and **random**; we provide those plus the
other shapes the introduction worries about so the benchmarks and tests can
probe the algorithms from every angle:

* :func:`sorted_stream` / :func:`reverse_sorted_stream` -- fully clustered
  inputs (merge-join outputs, clustered tables);
* :func:`random_permutation_stream` -- the paper's "random" workload;
* :func:`clustered_stream` -- sorted runs arriving in shuffled order
  (a table clustered on a correlated column);
* :func:`correlated_stream` -- values trending with arrival position;
* :func:`alternating_extremes_stream` -- an adversarial order that
  maximises buffer churn;
* :func:`uniform_stream` / :func:`normal_stream` / :func:`zipf_stream` --
  value distributions (zipf produces the heavy duplication that exercises
  tie handling).

Every generator returns a :class:`DataStream`: a named, seeded, repeatable
source that yields numpy chunks (so multi-gigabyte runs never materialise
the dataset) and knows its exact quantiles either analytically (rank
permutations) or by a one-off sort.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigurationError

__all__ = [
    "DataStream",
    "sorted_stream",
    "reverse_sorted_stream",
    "random_permutation_stream",
    "uniform_stream",
    "normal_stream",
    "zipf_stream",
    "clustered_stream",
    "correlated_stream",
    "alternating_extremes_stream",
    "STANDARD_ORDERS",
]

DEFAULT_CHUNK = 1 << 16


class DataStream:
    """A repeatable, chunked stream of ``float64`` values.

    Parameters
    ----------
    name:
        Human-readable label used by benchmarks ("sorted", "random", ...).
    n:
        Total number of elements.
    chunk_fn:
        ``chunk_fn(start, stop) -> np.ndarray`` producing elements
        ``start .. stop-1`` of the stream.  Must be deterministic so the
        stream can be replayed (e.g. to compute exact quantiles).
    exact_quantile_fn:
        Optional analytic ``phi -> value`` for the exact quantile (used for
        rank permutations, where the ``ceil(phi n)``-th smallest value is
        known in closed form).  When absent, exact quantiles are computed
        by materialising and sorting once.
    """

    def __init__(
        self,
        name: str,
        n: int,
        chunk_fn: Callable[[int, int], np.ndarray],
        exact_quantile_fn: Optional[Callable[[float], float]] = None,
    ) -> None:
        if n < 1:
            raise ConfigurationError(f"stream length must be >= 1, got {n}")
        self.name = name
        self.n = n
        self._chunk_fn = chunk_fn
        self._exact_quantile_fn = exact_quantile_fn
        self._sorted_cache: Optional[np.ndarray] = None

    def chunks(self, chunk_size: int = DEFAULT_CHUNK) -> Iterator[np.ndarray]:
        """Yield the stream as consecutive numpy chunks (a single pass)."""
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        for start in range(0, self.n, chunk_size):
            stop = min(start + chunk_size, self.n)
            chunk = self._chunk_fn(start, stop)
            if len(chunk) != stop - start:
                raise ConfigurationError(
                    f"stream {self.name!r} produced {len(chunk)} elements "
                    f"for [{start}, {stop})"
                )
            yield chunk

    def materialize(self) -> np.ndarray:
        """The whole stream as one array (tests / exact baselines only)."""
        return np.concatenate(list(self.chunks()))

    def __iter__(self) -> Iterator[float]:
        for chunk in self.chunks():
            yield from chunk

    def __len__(self) -> int:
        return self.n

    # -- ground truth --------------------------------------------------------

    def exact_quantile(self, phi: float) -> float:
        """The exact ``phi``-quantile (element at rank ``ceil(phi n)``)."""
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
        if self._exact_quantile_fn is not None:
            return self._exact_quantile_fn(phi)
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(self.materialize())
        rank = min(max(math.ceil(phi * self.n), 1), self.n)
        return float(self._sorted_cache[rank - 1])

    def exact_quantiles(self, phis: Sequence[float]) -> List[float]:
        return [self.exact_quantile(phi) for phi in phis]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DataStream({self.name!r}, n={self.n})"


def _rank_quantile(n: int) -> Callable[[float], float]:
    """Exact quantile for any permutation of ``0 .. n-1``."""

    def fn(phi: float) -> float:
        rank = min(max(math.ceil(phi * n), 1), n)
        return float(rank - 1)

    return fn


def sorted_stream(n: int) -> DataStream:
    """``0, 1, ..., n-1`` in order -- the paper's "sorted" permutation."""
    return DataStream(
        "sorted",
        n,
        lambda start, stop: np.arange(start, stop, dtype=np.float64),
        exact_quantile_fn=_rank_quantile(n),
    )


def reverse_sorted_stream(n: int) -> DataStream:
    """``n-1, n-2, ..., 0`` -- fully descending arrival order."""
    return DataStream(
        "reverse-sorted",
        n,
        lambda start, stop: np.arange(
            n - 1 - start, n - 1 - stop, -1, dtype=np.float64
        ),
        exact_quantile_fn=_rank_quantile(n),
    )


def random_permutation_stream(n: int, seed: int = 0) -> DataStream:
    """A uniformly random permutation of ``0 .. n-1`` (paper's "random").

    Chunks are generated by replaying a seeded Fisher-Yates-equivalent
    permutation; the permutation is materialised once lazily (ranks, i.e.
    8 bytes per element) and sliced per chunk, which keeps replay cheap
    while staying deterministic.
    """
    holder: dict = {}

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        if "perm" not in holder:
            rng = np.random.default_rng(seed)
            holder["perm"] = rng.permutation(n).astype(np.float64)
        return holder["perm"][start:stop]

    return DataStream(
        "random", n, chunk_fn, exact_quantile_fn=_rank_quantile(n)
    )


def uniform_stream(
    n: int, low: float = 0.0, high: float = 1.0, seed: int = 0
) -> DataStream:
    """I.i.d. uniform values in ``[low, high)``."""
    if not high > low:
        raise ConfigurationError("need high > low")

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        rng = np.random.default_rng((seed, start))
        return rng.uniform(low, high, stop - start)

    return DataStream("uniform", n, chunk_fn)


def normal_stream(
    n: int, mean: float = 0.0, std: float = 1.0, seed: int = 0
) -> DataStream:
    """I.i.d. normal values (a bell-shaped column)."""
    if std <= 0:
        raise ConfigurationError("std must be positive")

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        rng = np.random.default_rng((seed, start))
        return rng.normal(mean, std, stop - start)

    return DataStream("normal", n, chunk_fn)


def zipf_stream(
    n: int, exponent: float = 1.3, n_distinct: int = 1000, seed: int = 0
) -> DataStream:
    """Zipf-distributed values over ``n_distinct`` items -- heavy duplicates.

    Real column values are highly skewed; a handful of values dominate.
    This stresses tie handling in the merge/selection code (many equal
    elements straddling a quantile boundary).
    """
    if exponent <= 1.0:
        raise ConfigurationError("zipf exponent must be > 1")
    if n_distinct < 1:
        raise ConfigurationError("need n_distinct >= 1")
    ranks = np.arange(1, n_distinct + 1, dtype=np.float64)
    pmf = ranks**-exponent
    pmf /= pmf.sum()
    cdf = np.cumsum(pmf)

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        rng = np.random.default_rng((seed, start))
        u = rng.random(stop - start)
        return np.searchsorted(cdf, u).astype(np.float64)

    return DataStream(f"zipf({exponent})", n, chunk_fn)


def clustered_stream(
    n: int, n_clusters: int = 100, seed: int = 0
) -> DataStream:
    """Sorted runs of values arriving in shuffled cluster order.

    Models a table physically clustered on a column correlated with the
    quantile column (Section 1.2): within each cluster the values ascend;
    the clusters themselves arrive in random order.
    """
    if n_clusters < 1:
        raise ConfigurationError("need n_clusters >= 1")
    n_clusters = min(n_clusters, n)
    rng = np.random.default_rng(seed)
    cluster_order = rng.permutation(n_clusters)
    bounds = np.linspace(0, n, n_clusters + 1).astype(np.int64)

    # element i of the stream = the i-th element of the concatenation of
    # the shuffled clusters, where cluster c holds ranks bounds[c]..bounds[c+1)
    sizes = np.diff(bounds)
    shuffled_sizes = sizes[cluster_order]
    starts = np.concatenate([[0], np.cumsum(shuffled_sizes)[:-1]])

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        out = np.empty(stop - start, dtype=np.float64)
        pos = start
        while pos < stop:
            c = int(np.searchsorted(starts, pos, side="right") - 1)
            within = pos - starts[c]
            take = min(stop - pos, int(shuffled_sizes[c]) - within)
            base = bounds[cluster_order[c]]
            out[pos - start : pos - start + take] = np.arange(
                base + within, base + within + take, dtype=np.float64
            )
            pos += take
        return out

    return DataStream(
        "clustered", n, chunk_fn, exact_quantile_fn=_rank_quantile(n)
    )


def correlated_stream(
    n: int, trend: float = 1.0, noise: float = 0.1, seed: int = 0
) -> DataStream:
    """Values trending upward with arrival position plus noise.

    An intermediate result ordered on a column *correlated* with the
    aggregated one -- the awkward middle ground between sorted and random
    that Section 1.2 singles out.
    """

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        rng = np.random.default_rng((seed, start))
        idx = np.arange(start, stop, dtype=np.float64) / n
        return trend * idx + noise * rng.standard_normal(stop - start)

    return DataStream("correlated", n, chunk_fn)


def alternating_extremes_stream(n: int) -> DataStream:
    """``0, n-1, 1, n-2, ...`` -- smallest/largest values alternating.

    An adversarial arrival order: every buffer spans nearly the full value
    range, maximising the work the collapse selection must absorb.
    """

    def chunk_fn(start: int, stop: int) -> np.ndarray:
        i = np.arange(start, stop, dtype=np.int64)
        low = i // 2
        high = n - 1 - low
        return np.where(i % 2 == 0, low, high).astype(np.float64)

    return DataStream(
        "alternating-extremes", n, chunk_fn, exact_quantile_fn=_rank_quantile(n)
    )


def STANDARD_ORDERS(n: int, seed: int = 0) -> List[DataStream]:
    """The arrival-order suite used across benchmarks and tests."""
    return [
        sorted_stream(n),
        reverse_sorted_stream(n),
        random_permutation_stream(n, seed=seed),
        clustered_stream(n, seed=seed),
        alternating_extremes_stream(n),
    ]
