"""Disk-resident streams: the paper's "large online or disk-resident data".

The evaluation targets datasets far larger than main memory.  This module
provides a tiny, self-contained binary stream format so the library can be
exercised against genuinely disk-resident inputs:

* a fixed 32-byte header (magic, version, element count, checksum salt);
* little-endian ``float64`` payload, written and read in blocks.

:func:`write_stream` spools any iterable of chunks to disk;
:class:`FileStream` reads it back block-by-block and plugs into the same
consumers as the in-memory generators (it exposes the ``chunks`` /
``materialize`` / ``exact_quantile`` interface of
:class:`~repro.streams.generators.DataStream`).
"""

from __future__ import annotations

import os
import struct
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..core.errors import ConfigurationError, StorageError
from .generators import DEFAULT_CHUNK, DataStream

__all__ = ["write_stream", "FileStream"]

_MAGIC = b"MRLSTRM1"
_HEADER = struct.Struct("<8sQQQ")  # magic, version, n, reserved


def write_stream(
    path: "str | os.PathLike",
    chunks: Iterable[np.ndarray],
) -> int:
    """Write *chunks* of float64 values to *path*; returns element count."""
    n = 0
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(_MAGIC, 1, 0, 0))  # placeholder count
        for chunk in chunks:
            arr = np.ascontiguousarray(chunk, dtype="<f8")
            if arr.ndim != 1:
                raise ConfigurationError(
                    f"stream chunks must be 1-d, got shape {arr.shape}"
                )
            fh.write(arr.tobytes())
            n += len(arr)
        fh.seek(0)
        fh.write(_HEADER.pack(_MAGIC, 1, n, 0))
    return n


class FileStream:
    """A disk-resident float64 stream in the library's binary format.

    Behaves like a :class:`~repro.streams.generators.DataStream`: yields
    numpy chunks in a single forward pass and can compute exact quantiles
    (by materialising once -- only tests and baselines do that).
    """

    def __init__(self, path: "str | os.PathLike") -> None:
        self.path = os.fspath(path)
        with open(self.path, "rb") as fh:
            header = fh.read(_HEADER.size)
            if len(header) != _HEADER.size:
                raise StorageError(f"{self.path}: truncated header")
            magic, version, n, _reserved = _HEADER.unpack(header)
            if magic != _MAGIC:
                raise StorageError(
                    f"{self.path}: bad magic {magic!r} (not an MRL stream)"
                )
            if version != 1:
                raise StorageError(f"{self.path}: unsupported version {version}")
            payload = os.path.getsize(self.path) - _HEADER.size
            if payload != n * 8:
                raise StorageError(
                    f"{self.path}: header says {n} elements but payload holds "
                    f"{payload // 8}"
                )
        self.n = int(n)
        self.name = f"file:{os.path.basename(self.path)}"
        self._sorted_cache: Optional[np.ndarray] = None

    def chunks(self, chunk_size: int = DEFAULT_CHUNK) -> Iterator[np.ndarray]:
        """Yield the file contents in blocks of *chunk_size* elements."""
        if chunk_size < 1:
            raise ConfigurationError("chunk_size must be >= 1")
        with open(self.path, "rb") as fh:
            fh.seek(_HEADER.size)
            remaining = self.n
            while remaining > 0:
                take = min(chunk_size, remaining)
                raw = fh.read(take * 8)
                if len(raw) != take * 8:
                    raise StorageError(f"{self.path}: truncated payload")
                yield np.frombuffer(raw, dtype="<f8")
                remaining -= take

    def materialize(self) -> np.ndarray:
        return np.concatenate(list(self.chunks()))

    def __iter__(self) -> Iterator[float]:
        for chunk in self.chunks():
            yield from chunk

    def __len__(self) -> int:
        return self.n

    def exact_quantile(self, phi: float) -> float:
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
        if self._sorted_cache is None:
            self._sorted_cache = np.sort(self.materialize())
        import math

        rank = min(max(math.ceil(phi * self.n), 1), self.n)
        return float(self._sorted_cache[rank - 1])

    def exact_quantiles(self, phis: Sequence[float]) -> List[float]:
        return [self.exact_quantile(phi) for phi in phis]

    @classmethod
    def from_stream(
        cls, path: "str | os.PathLike", stream: DataStream
    ) -> "FileStream":
        """Spool a generated stream to disk and reopen it as a FileStream."""
        write_stream(path, stream.chunks())
        return cls(path)
