"""Command-line interface: ``python -m repro <command> ...``.

Four commands cover the library's day-to-day uses without writing code:

``plan``
    Print the optimal configuration for a target ``(epsilon, N)`` --
    which policy, how many buffers, how much memory, whether sampling
    would be cheaper at some confidence.

``generate``
    Write a synthetic stream (any of the workload generators) to the
    library's binary stream format.

``quantile``
    One pass over a binary stream file; print epsilon-approximate
    quantiles with the certified error bound.

``histogram``
    One pass; print equi-depth bucket boundaries (equivalently:
    splitters for value-range partitioning).

``describe``
    One pass; print a five-number-summary-style distribution report
    with certified accuracy.

``serve``
    Run the quantile-sketch service (:mod:`repro.service`) in the
    foreground: live ingest over TCP, periodic snapshots, journal
    crash recovery.

``client``
    Talk to a running server from the shell: create metrics, ingest
    values (from arguments or stdin), query quantiles/CDF, list
    metrics, dump stats, force snapshots.

``stats``
    Live observability view of a running server: per-shard ingest and
    collapse-by-level counters, per-metric certified epsilon*N, and the
    self-metered per-op latency percentiles.  ``--watch`` refreshes in
    place; ``--prom`` prints the Prometheus exposition instead.

``watch``
    Manage the server's declarative alert rules: ``watch add`` registers
    "alert when the phi-quantile of METRIC crosses THRESHOLD" (evaluated
    server-side on the scheduler tick, with certified
    definite/possible severities), ``watch rm`` drops a rule,
    ``watch ls`` prints every rule with its last evaluation state and
    cumulative fire counters.  Exit codes follow the client convention:
    0 ok, 2 connection failure, 3 timeout.

``cluster``
    The multi-node layer (:mod:`repro.cluster`): ``cluster serve``
    launches and supervises N server processes with a consistent-hash
    manifest, ``cluster status`` probes every node in a manifest
    (``--prom`` for scrapers; exit 0 all up / 4 re-syncing / 1 down),
    ``cluster client`` routes create/ingest/query/merge across the
    ring with replication and failover, and the membership verbs --
    ``cluster resync``, ``cluster add-node``, ``cluster remove-node``
    -- drive the re-sync/rebalance protocol against externally managed
    node processes (see docs/cluster.md).

``quantile`` and ``describe`` accept ``-`` as the input path to read
whitespace-separated values from stdin, so they compose with shell
pipelines.  The offline commands are pure and deterministic given
``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from .analysis import format_memory
from .core.errors import ConfigurationError, ReproError
from .core.parameters import optimal_parameters
from .core.sampling import choose_strategy, optimize_alpha, sampling_threshold
from .core.sketch import QuantileSketch
from .streams import (
    FileStream,
    alternating_extremes_stream,
    clustered_stream,
    normal_stream,
    random_permutation_stream,
    reverse_sorted_stream,
    sorted_stream,
    uniform_stream,
    write_stream,
    zipf_stream,
)

__all__ = ["main"]

_GENERATORS = {
    "sorted": lambda n, seed: sorted_stream(n),
    "reverse": lambda n, seed: reverse_sorted_stream(n),
    "random": random_permutation_stream,
    "uniform": lambda n, seed: uniform_stream(n, seed=seed),
    "normal": lambda n, seed: normal_stream(n, seed=seed),
    "zipf": lambda n, seed: zipf_stream(n, seed=seed),
    "clustered": lambda n, seed: clustered_stream(n, seed=seed),
    "alternating": lambda n, seed: alternating_extremes_stream(n),
}


def _cmd_plan(args: argparse.Namespace) -> int:
    for policy in ("new", "munro-paterson", "alsabti-ranka-singh"):
        plan = optimal_parameters(args.epsilon, args.n, policy=policy)
        h = f", h={plan.height}" if plan.height is not None else ""
        print(
            f"{policy:<21} b={plan.b:<6} k={plan.k:<8} "
            f"bk={format_memory(plan.memory)}{h}"
        )
    if args.delta is not None:
        chosen = choose_strategy(args.epsilon, args.n, args.delta)
        sampled = optimize_alpha(args.epsilon, args.delta)
        threshold = sampling_threshold(args.epsilon, args.delta)
        print(
            f"\nsampling (delta={args.delta:g}): "
            f"S={sampled.sample_size}, b={sampled.b}, k={sampled.k}, "
            f"bk={format_memory(sampled.memory)}"
        )
        print(f"sampling pays off above N ~ {threshold:.3e}")
        from .core.sampling import SamplingPlan

        mode = "sampling" if isinstance(chosen, SamplingPlan) else "direct"
        print(f"recommended for N={args.n}: {mode}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    stream = _GENERATORS[args.kind](args.n, args.seed)
    n = write_stream(args.output, stream.chunks())
    print(f"wrote {n} elements ({args.kind}) to {args.output}")
    return 0


class _StdinStream:
    """Adapter giving stdin values the same (n, chunks) shape as FileStream."""

    def __init__(self, values: "np.ndarray") -> None:
        self._values = values
        self.n = int(values.size)

    def chunks(self):
        if self.n:
            yield self._values


def _open_stream(path: str):
    """Open *path* as a value stream; ``-`` reads floats from stdin."""
    if path != "-":
        return FileStream(path)
    import numpy as np

    tokens = sys.stdin.read().split()
    try:
        values = np.array(tokens, dtype=np.float64)
    except ValueError as exc:
        raise ConfigurationError(f"stdin is not numbers: {exc}") from None
    if values.size and not np.all(np.isfinite(values)):
        raise ConfigurationError("stdin values must be finite")
    return _StdinStream(values)


def _build_sketch(args: argparse.Namespace, n: int) -> QuantileSketch:
    return QuantileSketch(
        epsilon=args.epsilon,
        n=n,
        delta=getattr(args, "delta", None),
        seed=getattr(args, "seed", None),
    )


def _cmd_quantile(args: argparse.Namespace) -> int:
    stream = _open_stream(args.input)
    if stream.n == 0:
        print("error: stream is empty", file=sys.stderr)
        return 1
    sketch = _build_sketch(args, stream.n)
    for chunk in stream.chunks():
        sketch.extend(chunk)
    mode = "sampling" if sketch.uses_sampling else "deterministic"
    print(
        f"n={stream.n}, mode={mode}, "
        f"memory={format_memory(sketch.memory_elements)} elements"
    )
    values = sketch.quantiles(args.phi)
    for phi, value in zip(args.phi, values):
        print(f"phi={phi:g}: {float(value):g}")
    print(f"certified rank bound: {sketch.error_bound_fraction():.6f} * n")
    return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    stream = FileStream(args.input)
    if stream.n == 0:
        print("error: stream is empty", file=sys.stderr)
        return 1
    sketch = _build_sketch(args, stream.n)
    for chunk in stream.chunks():
        sketch.extend(chunk)
    boundaries = sorted(
        float(v) for v in sketch.equidepth_boundaries(args.buckets)
    )
    print(
        f"{args.buckets} equi-depth buckets over {stream.n} elements "
        f"(~{stream.n / args.buckets:.0f} each, boundary eps={args.epsilon})"
    )
    for i, b in enumerate(boundaries, start=1):
        print(f"  {i / args.buckets:6.3f}-quantile  {b:g}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .analysis import describe

    stream = _open_stream(args.input)
    if stream.n == 0:
        print("error: stream is empty", file=sys.stderr)
        return 1
    report = describe(stream.chunks(), epsilon=args.epsilon, n=stream.n)
    print(report)
    return 0


def _cmd_serve_cluster(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .service import ClusterService

    if args.chaos:
        print(
            "error: --chaos fronts a single listener; use --workers 1",
            file=sys.stderr,
        )
        return 1
    cluster = ClusterService(
        workers=args.workers,
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        n_shards=args.shards,
        snapshot_interval_s=(
            None if args.snapshot_interval <= 0 else args.snapshot_interval
        ),
        fsync=args.fsync,
        batch_window_s=args.batch_window,
    )
    cluster.start()
    durability = f"data_dir={args.data_dir}" if args.data_dir else "ephemeral"
    ports = ",".join(str(p) for p in cluster.ports)
    print(
        f"repro cluster listening on {args.host}:[{ports}] "
        f"({args.workers} workers x {args.shards} shards, {durability}); "
        f"metric -> worker routing is crc32(name) % {args.workers}",
        flush=True,
    )
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    print("shutting down cluster (graceful)", flush=True)
    cluster.stop(graceful=True)
    return 0


def _file_clock(path: str):
    """A clock that reads its time from *path* (synthetic-time servers).

    The file holds one float (seconds).  Unreadable or empty reads
    repeat the last good value, so an in-flight rewrite never makes
    time jump backwards to zero.  This is the CI/e2e hook: a harness
    advances the server's event time by writing the file, making window
    expiry and WATCH firing deterministic without patching the server.
    """
    last = [0.0]

    def clock() -> float:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read().strip()
            if text:
                last[0] = float(text)
        except (OSError, ValueError):
            pass
        return last[0]

    return clock


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from .service import ChaosProxy, FaultSchedule, QuantileService

    if args.workers > 1:
        return _cmd_serve_cluster(args)

    # under --chaos the service binds an ephemeral port and a seeded
    # fault-injecting proxy takes the public one, so every client
    # connection exercises the retry/dedup path
    service = QuantileService(
        host=args.host,
        port=0 if args.chaos else args.port,
        data_dir=args.data_dir,
        n_shards=args.shards,
        snapshot_interval_s=(
            None if args.snapshot_interval <= 0 else args.snapshot_interval
        ),
        fsync=args.fsync,
        batch_window_s=args.batch_window,
        watch_interval_s=(
            None if args.watch_interval <= 0 else args.watch_interval
        ),
        clock=_file_clock(args.clock_file) if args.clock_file else None,
    )

    async def _run() -> None:
        await service.start()
        proxy = None
        if args.chaos:
            proxy = ChaosProxy(
                service.host,
                service.port,
                schedule=FaultSchedule.from_seed(args.chaos_seed),
                host=args.host,
                port=args.port,
            ).start()
        durability = (
            f"data_dir={service.data_dir}" if service.data_dir else "ephemeral"
        )
        public_port = proxy.port if proxy is not None else service.port
        chaos = (
            f", CHAOS seed={args.chaos_seed} upstream={service.port}"
            if proxy is not None
            else ""
        )
        print(
            f"repro service listening on {service.host}:{public_port} "
            f"({service.n_shards} shards, {durability}{chaos})",
            flush=True,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        print("shutting down (graceful)", flush=True)
        if proxy is not None:
            proxy.stop()
        await service.stop(graceful=True)

    asyncio.run(_run())
    return 0


def _client_values(args: argparse.Namespace) -> "object":
    import numpy as np

    if args.values == ["-"]:
        tokens = sys.stdin.read().split()
    else:
        tokens = args.values
    try:
        values = np.array(tokens, dtype=np.float64)
    except ValueError as exc:
        raise ConfigurationError(f"values are not numbers: {exc}") from None
    return values


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from .service import QuantileClient

    with QuantileClient(
        args.host,
        args.port,
        timeout=args.timeout,
        max_retries=args.retries,
    ) as client:
        if args.action == "create":
            # non-paper engines are always kind="fixed" (their own knobs
            # size the sketch), as are windowed/decayed metrics; the
            # plain paper engine defaults to adaptive
            windowed = args.window is not None or args.decay is not None
            kind = args.kind or (
                "adaptive"
                if args.engine == "paper" and not windowed
                else "fixed"
            )
            created = client.create(
                args.name,
                kind=kind,
                eps=args.epsilon,
                n=args.n,
                policy=args.policy,
                engine=args.engine,
                window=args.window,
                slide=args.slide,
                decay=args.decay,
            )
            print("created" if created else "exists")
        elif args.action == "ingest":
            values = _client_values(args)
            seq = client.ingest(args.name, values)
            print(f"ingested {values.size} values (journal seq {seq})")
        elif args.action == "query":
            values, bound, n = client.query(args.name, args.phi)
            for phi, value in zip(args.phi, values):
                print(f"phi={phi:g}: {value:g}")
            print(f"n={n}, certified rank bound: {bound:g} elements")
        elif args.action == "cdf":
            body = client.cdf(args.name, args.value)
            print(
                f"rank(x <= {args.value:g}) ~ {body['rank']} of {body['n']} "
                f"({body['fraction']:.6f}), "
                f"certified bound {body['error_bound']:g} elements"
            )
        elif args.action == "list":
            for metric in client.list_metrics():
                time_cfg = ""
                if metric.get("window_s"):
                    time_cfg = (
                        f" window={metric['window_s']:g}s"
                        f"/{metric['slide_s'] or metric['window_s']:g}s"
                    )
                elif metric.get("decay_s"):
                    time_cfg = f" decay={metric['decay_s']:g}s"
                print(
                    f"{metric['name']:<32} {metric['kind']:<9} "
                    f"n={metric['n']:<12} shard={metric['shard']} "
                    f"memory={metric['memory_elements']} elements"
                    f"{time_cfg}"
                )
        elif args.action == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.action == "snapshot":
            seq, path = client.snapshot()
            print(f"snapshot at seq {seq}: {path}")
        elif args.action == "drain":
            print(f"drained through seq {client.drain()}")
    return 0


#: shell-friendly spellings of the rule comparison operators
_WATCH_OPS = {">": ">", "<": "<", "gt": ">", "lt": "<"}


def _cmd_watch(args: argparse.Namespace) -> int:
    import json

    from .service import QuantileClient

    with QuantileClient(
        args.host,
        args.port,
        timeout=args.timeout,
        max_retries=args.retries,
    ) as client:
        if args.watch_command == "add":
            added = client.watch_add(
                args.rule_id,
                args.metric,
                args.phi,
                args.threshold,
                op=_WATCH_OPS[args.op],
            )
            print("added" if added else "exists")
        elif args.watch_command == "rm":
            removed = client.watch_remove(args.rule_id)
            print("removed" if removed else "no such rule")
        elif args.watch_command == "ls":
            alerts = client.alerts(evaluate=args.evaluate)
            if args.json:
                print(json.dumps(alerts, indent=2, sort_keys=True))
            else:
                for a in alerts:
                    value = (
                        f"{a['last_value']:g}"
                        if a["last_value"] is not None
                        else "-"
                    )
                    print(
                        f"{a['rule_id']:<24} "
                        f"q{a['phi']:g}({a['metric']}) {a['op']} "
                        f"{a['threshold']:g}  state={a['state']:<9} "
                        f"value={value:<12} "
                        f"fired definite={a['definite_total']} "
                        f"possible={a['possible_total']}"
                    )
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .cluster import ClusterCoordinator

    coord = ClusterCoordinator(
        nodes=args.nodes,
        replication=args.replication,
        host=args.host,
        base_port=args.base_port,
        data_dir=args.data_dir,
        vnodes=args.vnodes,
        health_interval_s=(
            args.health_interval if args.health_interval > 0 else None
        ),
        n_shards=args.shards,
        snapshot_interval_s=(
            None if args.snapshot_interval <= 0 else args.snapshot_interval
        ),
        fsync=args.fsync,
        batch_window_s=args.batch_window,
    )
    coord.start()
    durability = f"data_dir={args.data_dir}" if args.data_dir else "ephemeral"
    ports = ",".join(str(p) for p in coord.ports)
    manifest = coord.manifest_path or "(in-memory)"
    print(
        f"repro cluster of {args.nodes} nodes listening on "
        f"{args.host}:[{ports}] (replication={args.replication}, "
        f"epoch={coord.epoch}, {durability})\n"
        f"manifest: {manifest}; routing: consistent hash ring, "
        f"{args.vnodes} vnodes/node",
        flush=True,
    )
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    stop.wait()
    print("shutting down cluster (graceful)", flush=True)
    coord.stop(graceful=True)
    return 0


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    import json

    from .cluster import ClusterClient, ClusterManifest

    manifest = ClusterManifest.load(args.manifest)
    with ClusterClient(
        manifest, timeout=args.timeout, max_retries=0
    ) as client:
        rows = client.status()
    # three-way health: a syncing node is alive and mid-recovery -- it
    # must not trip the "cluster degraded" exit code a dead node does,
    # or every re-sync window would page as an outage
    n_up = sum(
        1 for r in rows if r["alive"] and r["manifest_status"] == "up"
    )
    n_syncing = sum(
        1 for r in rows if r["alive"] and r["manifest_status"] == "syncing"
    )
    n_down = len(rows) - n_up - n_syncing
    if args.prom:
        # the same gauges the coordinator publishes, derived from a
        # live probe so any scraper can watch ring health from outside
        from .obs import MetricsRegistry, render_prometheus

        reg = MetricsRegistry()
        reg.gauge("cluster.nodes_up").set(n_up)
        reg.gauge("cluster.nodes_syncing").set(n_syncing)
        reg.gauge("cluster.nodes_total").set(len(rows))
        reg.gauge("cluster.replication").set(manifest.replication)
        reg.gauge("cluster.epoch").set(manifest.epoch)
        for row in rows:
            reg.gauge("cluster.node_up", node=row["id"]).set(
                1 if row["alive"] else 0
            )
        print(render_prometheus(reg), end="")
        return 0
    if args.json:
        print(
            json.dumps(
                {
                    "epoch": manifest.epoch,
                    "replication": manifest.replication,
                    "vnodes": manifest.vnodes,
                    "nodes": rows,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    print(
        f"cluster epoch {manifest.epoch}, replication "
        f"{manifest.replication}, {n_up}/{len(rows)} nodes up"
        + (f", {n_syncing} syncing" if n_syncing else "")
    )
    for row in rows:
        if not row["alive"]:
            state = "DOWN"
        elif row["manifest_status"] == "up":
            state = "up"
        else:
            # alive but not serving reads yet (syncing) or not yet
            # swept back into the manifest (down-but-answering)
            state = row["manifest_status"].upper()
        extra = ""
        if row["alive"]:
            extra = (
                f"  uptime={row['uptime_s']:.0f}s "
                f"metrics={row['n_metrics']} elements={row['elements']}"
            )
        print(
            f"  {row['id']:<10} {row['host']}:{row['port']:<6} "
            f"{state:<7} (manifest: {row['manifest_status']}){extra}"
        )
    if n_down:
        return 1
    return 4 if n_syncing else 0


def _cmd_cluster_client(args: argparse.Namespace) -> int:
    import json

    from .cluster import ClusterClient

    with ClusterClient(
        args.manifest,
        replication=args.replication,
        timeout=args.timeout,
        max_retries=args.retries,
    ) as client:
        if args.action == "create":
            # Fixed-N is the default whenever it is expressible: only
            # fixed-N metrics serialise, and serialisation is what the
            # cluster's fan-in merge rides on.
            kind = args.kind or (
                "fixed"
                if args.n is not None
                or args.engine != "paper"
                or args.window is not None
                or args.decay is not None
                else "adaptive"
            )
            created = client.create(
                args.name,
                kind=kind,
                eps=args.epsilon,
                n=args.n,
                policy=args.policy,
                engine=args.engine,
                window=args.window,
                slide=args.slide,
                decay=args.decay,
            )
            print("created" if created else "exists")
        elif args.action == "ingest":
            values = _client_values(args)
            seq = client.ingest(args.name, values)
            owners = ",".join(client.owners_of(args.name))
            print(
                f"ingested {values.size} values to replicas [{owners}] "
                f"(max journal seq {seq})"
            )
        elif args.action == "query":
            values, bound, n = client.query(args.name, args.phi)
            for phi, value in zip(args.phi, values):
                print(f"phi={phi:g}: {value:g}")
            print(f"n={n}, certified rank bound: {bound:g} elements")
        elif args.action == "merge":
            values, bound, n = client.query_merged(args.names, args.phi)
            for phi, value in zip(args.phi, values):
                print(f"phi={phi:g}: {value:g}")
            print(
                f"union of {len(args.names)} metrics: n={n}, certified "
                f"rank bound: {bound:g} elements (Sec. 4.9 recombination)"
            )
        elif args.action == "cdf":
            body = client.cdf(args.name, args.value)
            print(
                f"rank(x <= {args.value:g}) ~ {body['rank']} of {body['n']} "
                f"({body['fraction']:.6f}), "
                f"certified bound {body['error_bound']:g} elements"
            )
        elif args.action == "list":
            for metric in client.list_metrics():
                owners = ",".join(metric["owners"])
                print(
                    f"{metric['name']:<32} {metric['kind']:<9} "
                    f"n={metric['n']:<12} node={metric['node']} "
                    f"owners=[{owners}]"
                )
        elif args.action == "stats":
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
        elif args.action == "drain":
            print(f"drained through seq {client.drain()}")
    return 0


def _manifest_file(path: str) -> str:
    """Resolve a manifest argument (file or data dir) to the file path,
    so the membership verbs can save their edits back."""
    import os

    from .cluster.manifest import MANIFEST_FILE

    return os.path.join(path, MANIFEST_FILE) if os.path.isdir(path) else path


def _cmd_cluster_resync(args: argparse.Namespace) -> int:
    from .cluster import ClusterManifest, SyncDriver

    path = _manifest_file(args.manifest)
    manifest = ClusterManifest.load(path)
    spec = manifest.node(args.node)  # raises on unknown id
    changed = manifest.mark(args.node, "syncing")
    if args.endpoint is not None:
        # the relaunched process may have bound a fresh port; record the
        # address the operator gives us so clients dial the right one
        host, _, port = args.endpoint.rpartition(":")
        if not host or not port.isdigit():
            raise ConfigurationError(
                f"--endpoint must be HOST:PORT, got {args.endpoint!r}"
            )
        changed = (
            changed or spec.host != host or spec.port != int(port)
        )
        spec.host, spec.port = host, int(port)
    if changed:
        manifest.epoch += 1
        manifest.save(path)
    ring = manifest.ring()
    live = set(manifest.live_ids())
    with SyncDriver(
        manifest, max_rounds=args.max_rounds, timeout=args.timeout
    ) as driver:
        report = driver.resync_node(
            args.node,
            ring=ring,
            replication=manifest.replication,
            live=live,
            require_identity=True,
        )
        manifest.mark(args.node, "up")
        manifest.epoch += 1
        manifest.save(path)
        if report.synced:
            # closing pass: absorb batches that stale-manifest clients
            # routed only to the donors while the node was syncing --
            # donor tokens keep it exactly-once against direct writes
            driver.resync_node(
                args.node,
                ring=ring,
                replication=manifest.replication,
                live=live,
                metrics=[m.name for m in report.synced],
                require_identity=False,
            )
    print(
        f"{args.node} re-synced at epoch {manifest.epoch}: "
        f"{len(report.synced)} metrics verified bit-identical "
        f"({report.bytes} bytes, {report.rounds} rounds), "
        f"{len(report.defined)} defined, {len(report.kept)} kept "
        f"(sole surviving copy)"
    )
    return 0


def _cmd_cluster_add_node(args: argparse.Namespace) -> int:
    from .cluster import (
        ClusterManifest,
        NodeSpec,
        SyncDriver,
        delta_donor,
        ownership_delta,
    )

    path = _manifest_file(args.manifest)
    manifest = ClusterManifest.load(path)
    if args.id is not None:
        nid = args.id
    else:
        indices = []
        for spec in manifest.nodes:
            tail = spec.id.rsplit("-", 1)[-1]
            if tail.isdigit():
                indices.append(int(tail))
        nid = f"node-{(max(indices) + 1) if indices else len(manifest.nodes)}"
    ring_before = manifest.ring()
    live = set(manifest.live_ids())
    manifest.nodes.append(
        NodeSpec(id=nid, host=args.host, port=args.port, status="syncing")
    )
    manifest.epoch += 1
    manifest.save(path)
    ring_after = manifest.ring()
    with SyncDriver(manifest, timeout=args.timeout) as driver:
        names = driver.metric_names(sorted(live))
        delta = ownership_delta(
            ring_before, ring_after, names, manifest.replication
        )
        moved: set = set()
        for key, gainer in delta.transfers():
            donor = delta_donor(
                key, gainer, ring_before, manifest.replication, live
            )
            driver.sync_metric(key, donor, gainer)
            if gainer == nid:
                moved.add(key)
        for name in names:
            if name not in moved and live:
                driver.define_metric(name, sorted(live)[0], nid)
        manifest.mark(nid, "up")
        manifest.epoch += 1
        manifest.save(path)
        if moved:
            driver.resync_node(
                nid,
                ring=ring_after,
                replication=manifest.replication,
                live=live,
                metrics=sorted(moved),
                require_identity=False,
            )
    print(
        f"{nid} ({args.host}:{args.port}) joined at epoch "
        f"{manifest.epoch}: {len(delta.moved)}/{len(names)} metrics "
        f"moved ({delta.moved_fraction:.1%}), rest defined only"
    )
    return 0


def _cmd_cluster_remove_node(args: argparse.Namespace) -> int:
    from .cluster import (
        ClusterConfigError,
        ClusterManifest,
        HashRing,
        SyncDriver,
        delta_donor,
        ownership_delta,
    )

    path = _manifest_file(args.manifest)
    manifest = ClusterManifest.load(path)
    spec = manifest.node(args.node)  # raises on unknown id
    if len(manifest.nodes) - 1 < manifest.replication:
        raise ClusterConfigError(
            f"removing {args.node} would leave "
            f"{len(manifest.nodes) - 1} node(s), fewer than "
            f"replication={manifest.replication}"
        )
    ring_before = manifest.ring()
    surviving = [s.id for s in manifest.nodes if s.id != args.node]
    ring_after = HashRing(surviving, vnodes=manifest.vnodes)
    live = set(manifest.live_ids())
    with SyncDriver(manifest, timeout=args.timeout) as driver:
        names = driver.metric_names(sorted(live)) if live else []
        delta = ownership_delta(
            ring_before, ring_after, names, manifest.replication
        )
        transfers = delta.transfers()
        for key, gainer in transfers:
            donor = delta_donor(
                key, gainer, ring_before, manifest.replication, live
            )
            driver.sync_metric(key, donor, gainer)
        leaving_up = spec.status == "up"
        if leaving_up:
            # cache the leaving node's connection now: its manifest
            # entry disappears below, but the closing pass still
            # drains its journal
            driver.client(args.node)
        manifest.nodes.remove(spec)
        manifest.epoch += 1
        manifest.save(path)
        if leaving_up:
            for key, gainer in transfers:
                driver.sync_metric(key, args.node, gainer,
                                   require_identity=False)
    print(
        f"{args.node} removed at epoch {manifest.epoch}: "
        f"{len(delta.moved)}/{len(names)} metrics migrated to new "
        f"owners; its process can be stopped now"
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json
    import time

    from .obs import render_stats_text
    from .service import QuantileClient

    def render(client: "QuantileClient") -> str:
        stats = client.stats(detail=1 if args.prom else 0)
        if args.prom:
            return str(stats.get("prometheus", ""))
        if args.json:
            return json.dumps(stats, indent=2, sort_keys=True) + "\n"
        return render_stats_text(stats)

    with QuantileClient(
        args.host, args.port, timeout=args.timeout
    ) as client:
        if not args.watch:
            print(render(client), end="")
            return 0
        while True:
            # clear screen + home, then the fresh frame
            sys.stdout.write("\x1b[2J\x1b[H" + render(client))
            sys.stdout.flush()
            time.sleep(args.interval)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "One-pass approximate quantiles with limited memory "
            "(Manku-Rajagopalan-Lindsay, SIGMOD 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser(
        "plan", help="print optimal configurations for (epsilon, N)"
    )
    plan.add_argument("--epsilon", type=float, required=True)
    plan.add_argument("--n", type=int, required=True)
    plan.add_argument(
        "--delta",
        type=float,
        default=None,
        help="also evaluate the sampling strategy at this confidence",
    )
    plan.set_defaults(func=_cmd_plan)

    gen = sub.add_parser(
        "generate", help="write a synthetic stream to a binary file"
    )
    gen.add_argument("output", help="output path")
    gen.add_argument(
        "--kind", choices=sorted(_GENERATORS), default="random"
    )
    gen.add_argument("--n", type=int, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    quant = sub.add_parser(
        "quantile", help="one-pass quantiles of a binary stream file"
    )
    quant.add_argument(
        "input", help="stream file (see 'generate'), or '-' for stdin values"
    )
    quant.add_argument("--epsilon", type=float, required=True)
    quant.add_argument(
        "--phi",
        type=float,
        action="append",
        required=True,
        help="quantile fraction; repeatable",
    )
    quant.add_argument("--delta", type=float, default=None)
    quant.add_argument("--seed", type=int, default=None)
    quant.set_defaults(func=_cmd_quantile)

    hist = sub.add_parser(
        "histogram",
        help="equi-depth bucket boundaries / range-partition splitters",
    )
    hist.add_argument("input")
    hist.add_argument("--epsilon", type=float, required=True)
    hist.add_argument("--buckets", type=int, required=True)
    hist.add_argument("--delta", type=float, default=None)
    hist.add_argument("--seed", type=int, default=None)
    hist.set_defaults(func=_cmd_histogram)

    desc = sub.add_parser(
        "describe", help="distribution report of a binary stream file"
    )
    desc.add_argument("input", help="stream file, or '-' for stdin values")
    desc.add_argument("--epsilon", type=float, default=0.005)
    desc.set_defaults(func=_cmd_describe)

    serve = sub.add_parser(
        "serve",
        help="run the quantile-sketch service in the foreground",
        description=(
            "Run the quantile-sketch service.  Metrics are created by "
            "clients (repro client create) and may use any sketch "
            "engine -- paper (deterministic Lemma 5 bound), kll "
            "(probabilistic bound, less memory) or frugal (a few words "
            "per metric, no bound); mixed-engine registries journal, "
            "snapshot and recover bit-identically."
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7337)
    serve.add_argument(
        "--data-dir",
        default=None,
        help="directory for snapshot + journal; omit for an ephemeral server",
    )
    serve.add_argument("--shards", type=int, default=4)
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes; >1 runs one full service per process, "
            "worker i on port+i, metrics routed by crc32(name) mod N "
            "(per-metric state stays bit-identical to a single process)"
        ),
    )
    serve.add_argument(
        "--snapshot-interval",
        type=float,
        default=30.0,
        help="seconds between automatic snapshots; <= 0 disables",
    )
    serve.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the journal per batch (power-loss durability)",
    )
    serve.add_argument(
        "--batch-window",
        type=float,
        default=0.0,
        help="seconds the shard flusher waits to accumulate a batch",
    )
    serve.add_argument(
        "--watch-interval",
        type=float,
        default=1.0,
        help=(
            "seconds between WATCH rule evaluations; <= 0 disables the "
            "scheduler (rules still evaluate on 'watch ls --evaluate')"
        ),
    )
    serve.add_argument(
        "--clock-file",
        default=None,
        help=(
            "read event time (one float, seconds) from this file "
            "instead of the wall clock -- deterministic windows/alerts "
            "for tests and demos"
        ),
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help=(
            "front the listener with a seeded fault-injecting proxy "
            "(resets, truncation, delays) for resilience testing"
        ),
    )
    serve.add_argument(
        "--chaos-seed",
        type=int,
        default=0,
        help="seed for the --chaos fault schedule (deterministic)",
    )
    serve.set_defaults(func=_cmd_serve)

    client = sub.add_parser(
        "client", help="talk to a running quantile-sketch server"
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7337)
    client.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request deadline in seconds (retries included)",
    )
    client.add_argument(
        "--retries",
        type=int,
        default=4,
        help="max reconnect attempts per request on connection faults",
    )
    actions = client.add_subparsers(dest="action", required=True)

    c_create = actions.add_parser("create", help="create a metric")
    c_create.add_argument("name")
    c_create.add_argument(
        "--kind",
        choices=("fixed", "adaptive"),
        default=None,
        help=(
            "paper engine: adaptive (default) or fixed; other engines "
            "are always fixed"
        ),
    )
    c_create.add_argument(
        "--engine",
        choices=("paper", "kll", "frugal"),
        default="paper",
        help=(
            "sketch engine: paper (deterministic Lemma 5 bound), kll "
            "(probabilistic bound, less memory) or frugal (a few words "
            "per metric, no bound)"
        ),
    )
    c_create.add_argument("--epsilon", type=float, default=0.01)
    c_create.add_argument(
        "--n", type=int, default=None, help="designed N (fixed kind)"
    )
    c_create.add_argument("--policy", default="new")
    c_create.add_argument(
        "--window",
        default=None,
        help="answer over the trailing window only (e.g. '5m', '300')",
    )
    c_create.add_argument(
        "--slide",
        default=None,
        help="window slide granularity (must divide --window evenly)",
    )
    c_create.add_argument(
        "--decay",
        default=None,
        help="exponential-decay half-life (mutually exclusive w/ --window)",
    )

    c_ingest = actions.add_parser(
        "ingest", help="ingest values from arguments or stdin"
    )
    c_ingest.add_argument("name")
    c_ingest.add_argument(
        "values", nargs="+", help="values, or a single '-' to read stdin"
    )

    c_query = actions.add_parser("query", help="quantiles with certified bound")
    c_query.add_argument("name")
    c_query.add_argument(
        "--phi", type=float, action="append", required=True
    )

    c_cdf = actions.add_parser("cdf", help="rank / CDF of a value")
    c_cdf.add_argument("name")
    c_cdf.add_argument("value", type=float)

    actions.add_parser("list", help="list metrics")
    actions.add_parser("stats", help="dump server metrics as JSON")
    actions.add_parser("snapshot", help="force a snapshot")
    actions.add_parser("drain", help="apply all queued ingest batches")
    client.set_defaults(func=_cmd_client)

    watch = sub.add_parser(
        "watch",
        help="manage server-side quantile alert rules",
        description=(
            "Declarative alerting on a running server: a rule fires "
            "when the phi-quantile of a metric crosses a threshold.  "
            "Severity is certified -- 'definite' means the sketch's "
            "rank bound proves the crossing, 'possible' means only the "
            "estimate crosses (engines without a bound, like frugal, "
            "are always 'possible').  Rules are journaled and survive "
            "server restarts."
        ),
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=7337)
    watch.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request deadline in seconds (retries included)",
    )
    watch.add_argument(
        "--retries", type=int, default=4,
        help="max reconnect attempts per request on connection faults",
    )
    wsub = watch.add_subparsers(dest="watch_command", required=True)

    w_add = wsub.add_parser("add", help="register an alert rule")
    w_add.add_argument("rule_id", help="rule name (unique on the server)")
    w_add.add_argument("metric", help="metric the rule watches")
    w_add.add_argument(
        "--phi", type=float, required=True,
        help="quantile fraction to watch, e.g. 0.99",
    )
    w_add.add_argument(
        "--threshold", type=float, required=True,
        help="alert when the phi-quantile crosses this value",
    )
    w_add.add_argument(
        "--op",
        choices=sorted(_WATCH_OPS),
        default=">",
        help="crossing direction: '>'/'gt' above, '<'/'lt' below",
    )

    w_rm = wsub.add_parser("rm", help="remove an alert rule")
    w_rm.add_argument("rule_id")

    w_ls = wsub.add_parser(
        "ls", help="list rules with state and fire counters"
    )
    w_ls.add_argument(
        "--evaluate", action="store_true",
        help="run one evaluation pass server-side before listing",
    )
    w_ls.add_argument(
        "--json", action="store_true", help="print raw records as JSON"
    )
    watch.set_defaults(func=_cmd_watch)

    stats = sub.add_parser(
        "stats",
        help="live observability view of a running server",
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument("--port", type=int, default=7337)
    stats.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request deadline in seconds",
    )
    stats.add_argument(
        "--watch", action="store_true",
        help="refresh in place until interrupted",
    )
    stats.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period for --watch, seconds",
    )
    stats.add_argument(
        "--prom", action="store_true",
        help="print the Prometheus text exposition instead",
    )
    stats.add_argument(
        "--json", action="store_true",
        help="print the raw STATS response as JSON",
    )
    stats.set_defaults(func=_cmd_stats)

    cluster = sub.add_parser(
        "cluster",
        help="multi-node quantile cluster (serve / status / client)",
        description=(
            "Run and talk to a multi-node cluster: N independent server "
            "processes, consistent-hash routing on metric id, ingest "
            "replicated to R nodes with exactly-once idempotency "
            "tokens, and cluster-wide queries merged with a certified "
            "error bound (see docs/cluster.md)."
        ),
    )
    csub = cluster.add_subparsers(dest="cluster_command", required=True)

    cl_serve = csub.add_parser(
        "serve", help="launch and supervise a cluster in the foreground"
    )
    cl_serve.add_argument("--nodes", type=int, default=3)
    cl_serve.add_argument(
        "--replication",
        type=int,
        default=2,
        help="distinct nodes holding each metric's full stream",
    )
    cl_serve.add_argument("--host", default="127.0.0.1")
    cl_serve.add_argument(
        "--base-port",
        type=int,
        default=7400,
        help="node i listens on base-port + i; 0 for ephemeral ports",
    )
    cl_serve.add_argument(
        "--data-dir",
        default=None,
        help=(
            "root for cluster.json and per-node journal/snapshot dirs "
            "(node-0 ...); omit for an ephemeral cluster"
        ),
    )
    cl_serve.add_argument("--shards", type=int, default=4)
    cl_serve.add_argument(
        "--vnodes",
        type=int,
        default=64,
        help="virtual points per node on the hash ring",
    )
    cl_serve.add_argument(
        "--health-interval",
        type=float,
        default=1.0,
        help="seconds between node health sweeps; <= 0 disables",
    )
    cl_serve.add_argument(
        "--snapshot-interval",
        type=float,
        default=30.0,
        help="seconds between automatic snapshots; <= 0 disables",
    )
    cl_serve.add_argument("--fsync", action="store_true")
    cl_serve.add_argument("--batch-window", type=float, default=0.0)
    cl_serve.set_defaults(func=_cmd_cluster_serve)

    cl_status = csub.add_parser(
        "status", help="probe every node in a cluster manifest"
    )
    cl_status.add_argument(
        "--manifest",
        required=True,
        help="path to cluster.json (or the data dir holding it)",
    )
    cl_status.add_argument("--timeout", type=float, default=5.0)
    cl_status.add_argument(
        "--prom",
        action="store_true",
        help="print ring health as a Prometheus exposition",
    )
    cl_status.add_argument(
        "--json", action="store_true", help="print the probe as JSON"
    )
    cl_status.set_defaults(func=_cmd_cluster_status)

    cl_resync = csub.add_parser(
        "resync",
        help="re-sync a restarted node from its senior replicas",
        description=(
            "Mark the node syncing, stream every metric it owns from "
            "its senior surviving replica (full-payload install + "
            "journal-tail catch-up under the donors' idempotency "
            "tokens), verify bit-identity, then flip it up and bump the "
            "manifest epoch.  The node's process must already be "
            "running (under `cluster serve` the coordinator does all of "
            "this automatically on restart)."
        ),
    )
    cl_resync.add_argument("node", help="node id, e.g. node-1")
    cl_resync.add_argument(
        "--manifest",
        required=True,
        help="path to cluster.json (or the data dir holding it)",
    )
    cl_resync.add_argument(
        "--endpoint",
        default=None,
        metavar="HOST:PORT",
        help=(
            "where the relaunched node actually listens, if it rebound "
            "away from its manifest entry"
        ),
    )
    cl_resync.add_argument("--timeout", type=float, default=30.0)
    cl_resync.add_argument(
        "--max-rounds",
        type=int,
        default=64,
        help="per-metric catch-up round budget before giving up",
    )
    cl_resync.set_defaults(func=_cmd_cluster_resync)

    cl_add = csub.add_parser(
        "add-node",
        help="join an already-running node and migrate its keys",
        description=(
            "Append a node to the manifest as syncing, compute the "
            "ring's ownership delta, stream only the moved metrics "
            "(~R/N of keys) from their senior pre-join owners with "
            "bit-identity verification, replicate every other metric's "
            "definition, then flip the node up.  Start the node's "
            "server process first; this verb only rewires topology."
        ),
    )
    cl_add.add_argument(
        "--manifest",
        required=True,
        help="path to cluster.json (or the data dir holding it)",
    )
    cl_add.add_argument(
        "--host", default="127.0.0.1", help="where the new node listens"
    )
    cl_add.add_argument(
        "--port", type=int, required=True, help="the new node's port"
    )
    cl_add.add_argument(
        "--id",
        default=None,
        help="node id (default: next free node-<i>)",
    )
    cl_add.add_argument("--timeout", type=float, default=30.0)
    cl_add.set_defaults(func=_cmd_cluster_add_node)

    cl_remove = csub.add_parser(
        "remove-node",
        help="drain a node's keys to their new owners and drop it",
        description=(
            "Migrate every metric the node exclusively anchors to its "
            "post-removal owner (the leaving node donates while still "
            "up), remove it from the manifest, then run a closing pass "
            "so stale-manifest writes are not stranded in its journal.  "
            "Refused when the remaining nodes could not satisfy the "
            "replication factor.  Stop the node's process afterwards."
        ),
    )
    cl_remove.add_argument("node", help="node id, e.g. node-0")
    cl_remove.add_argument(
        "--manifest",
        required=True,
        help="path to cluster.json (or the data dir holding it)",
    )
    cl_remove.add_argument("--timeout", type=float, default=30.0)
    cl_remove.set_defaults(func=_cmd_cluster_remove_node)

    cl_client = csub.add_parser(
        "client", help="talk to a running cluster from the shell"
    )
    cl_client.add_argument(
        "--manifest",
        required=True,
        help="path to cluster.json (or the data dir holding it)",
    )
    cl_client.add_argument(
        "--replication",
        type=int,
        default=None,
        help="override the manifest's replication factor",
    )
    cl_client.add_argument("--timeout", type=float, default=30.0)
    cl_client.add_argument("--retries", type=int, default=4)
    cl_actions = cl_client.add_subparsers(dest="action", required=True)

    cc_create = cl_actions.add_parser(
        "create", help="create a metric on every live node"
    )
    cc_create.add_argument("name")
    cc_create.add_argument(
        "--kind", choices=("fixed", "adaptive"), default=None
    )
    cc_create.add_argument(
        "--engine", choices=("paper", "kll", "frugal"), default="paper"
    )
    cc_create.add_argument("--epsilon", type=float, default=0.01)
    cc_create.add_argument("--n", type=int, default=None)
    cc_create.add_argument("--policy", default="new")
    cc_create.add_argument("--window", default=None)
    cc_create.add_argument("--slide", default=None)
    cc_create.add_argument("--decay", default=None)

    cc_ingest = cl_actions.add_parser(
        "ingest", help="replicate values to the metric's owners"
    )
    cc_ingest.add_argument("name")
    cc_ingest.add_argument(
        "values", nargs="+", help="values, or a single '-' to read stdin"
    )

    cc_query = cl_actions.add_parser(
        "query", help="quantiles from the senior live replica"
    )
    cc_query.add_argument("name")
    cc_query.add_argument("--phi", type=float, action="append", required=True)

    cc_merge = cl_actions.add_parser(
        "merge",
        help="certified fan-in quantiles over the union of metrics",
    )
    cc_merge.add_argument("names", nargs="+")
    cc_merge.add_argument("--phi", type=float, action="append", required=True)

    cc_cdf = cl_actions.add_parser("cdf", help="rank / CDF of a value")
    cc_cdf.add_argument("name")
    cc_cdf.add_argument("value", type=float)

    cl_actions.add_parser(
        "list", help="metrics on every node with their replica sets"
    )
    cl_actions.add_parser("stats", help="per-node STATS as JSON")
    cl_actions.add_parser("drain", help="barrier on every live node")
    cl_client.set_defaults(func=_cmd_cluster_client)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    from .cluster.errors import NodeUnavailableError
    from .service.errors import ServiceConnectionError, ServiceTimeoutError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ServiceTimeoutError as exc:
        print(f"error: timed out: {exc}", file=sys.stderr)
        return 3
    except (ServiceConnectionError, NodeUnavailableError) as exc:
        print(f"error: connection failed: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # covers missing/invalid paths and refused connections alike, so
        # every subcommand exits 1 on environmental failures too
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130
