"""Command-line interface: ``python -m repro <command> ...``.

Four commands cover the library's day-to-day uses without writing code:

``plan``
    Print the optimal configuration for a target ``(epsilon, N)`` --
    which policy, how many buffers, how much memory, whether sampling
    would be cheaper at some confidence.

``generate``
    Write a synthetic stream (any of the workload generators) to the
    library's binary stream format.

``quantile``
    One pass over a binary stream file; print epsilon-approximate
    quantiles with the certified error bound.

``histogram``
    One pass; print equi-depth bucket boundaries (equivalently:
    splitters for value-range partitioning).

``describe``
    One pass; print a five-number-summary-style distribution report
    with certified accuracy.

All commands are pure, offline, and deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from .analysis import format_memory
from .core.errors import ReproError
from .core.parameters import optimal_parameters
from .core.sampling import choose_strategy, optimize_alpha, sampling_threshold
from .core.sketch import QuantileSketch
from .streams import (
    FileStream,
    alternating_extremes_stream,
    clustered_stream,
    normal_stream,
    random_permutation_stream,
    reverse_sorted_stream,
    sorted_stream,
    uniform_stream,
    write_stream,
    zipf_stream,
)

__all__ = ["main"]

_GENERATORS = {
    "sorted": lambda n, seed: sorted_stream(n),
    "reverse": lambda n, seed: reverse_sorted_stream(n),
    "random": random_permutation_stream,
    "uniform": lambda n, seed: uniform_stream(n, seed=seed),
    "normal": lambda n, seed: normal_stream(n, seed=seed),
    "zipf": lambda n, seed: zipf_stream(n, seed=seed),
    "clustered": lambda n, seed: clustered_stream(n, seed=seed),
    "alternating": lambda n, seed: alternating_extremes_stream(n),
}


def _cmd_plan(args: argparse.Namespace) -> int:
    for policy in ("new", "munro-paterson", "alsabti-ranka-singh"):
        plan = optimal_parameters(args.epsilon, args.n, policy=policy)
        h = f", h={plan.height}" if plan.height is not None else ""
        print(
            f"{policy:<21} b={plan.b:<6} k={plan.k:<8} "
            f"bk={format_memory(plan.memory)}{h}"
        )
    if args.delta is not None:
        chosen = choose_strategy(args.epsilon, args.n, args.delta)
        sampled = optimize_alpha(args.epsilon, args.delta)
        threshold = sampling_threshold(args.epsilon, args.delta)
        print(
            f"\nsampling (delta={args.delta:g}): "
            f"S={sampled.sample_size}, b={sampled.b}, k={sampled.k}, "
            f"bk={format_memory(sampled.memory)}"
        )
        print(f"sampling pays off above N ~ {threshold:.3e}")
        from .core.sampling import SamplingPlan

        mode = "sampling" if isinstance(chosen, SamplingPlan) else "direct"
        print(f"recommended for N={args.n}: {mode}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    stream = _GENERATORS[args.kind](args.n, args.seed)
    n = write_stream(args.output, stream.chunks())
    print(f"wrote {n} elements ({args.kind}) to {args.output}")
    return 0


def _build_sketch(args: argparse.Namespace, n: int) -> QuantileSketch:
    return QuantileSketch(
        epsilon=args.epsilon,
        n=n,
        delta=getattr(args, "delta", None),
        seed=getattr(args, "seed", None),
    )


def _cmd_quantile(args: argparse.Namespace) -> int:
    stream = FileStream(args.input)
    if stream.n == 0:
        print("error: stream is empty", file=sys.stderr)
        return 1
    sketch = _build_sketch(args, stream.n)
    for chunk in stream.chunks():
        sketch.extend(chunk)
    mode = "sampling" if sketch.uses_sampling else "deterministic"
    print(
        f"n={stream.n}, mode={mode}, "
        f"memory={format_memory(sketch.memory_elements)} elements"
    )
    values = sketch.quantiles(args.phi)
    for phi, value in zip(args.phi, values):
        print(f"phi={phi:g}: {float(value):g}")
    print(f"certified rank bound: {sketch.error_bound_fraction():.6f} * n")
    return 0


def _cmd_histogram(args: argparse.Namespace) -> int:
    stream = FileStream(args.input)
    if stream.n == 0:
        print("error: stream is empty", file=sys.stderr)
        return 1
    sketch = _build_sketch(args, stream.n)
    for chunk in stream.chunks():
        sketch.extend(chunk)
    boundaries = sorted(
        float(v) for v in sketch.equidepth_boundaries(args.buckets)
    )
    print(
        f"{args.buckets} equi-depth buckets over {stream.n} elements "
        f"(~{stream.n / args.buckets:.0f} each, boundary eps={args.epsilon})"
    )
    for i, b in enumerate(boundaries, start=1):
        print(f"  {i / args.buckets:6.3f}-quantile  {b:g}")
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    from .analysis import describe

    stream = FileStream(args.input)
    if stream.n == 0:
        print("error: stream is empty", file=sys.stderr)
        return 1
    report = describe(stream.chunks(), epsilon=args.epsilon, n=stream.n)
    print(report)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "One-pass approximate quantiles with limited memory "
            "(Manku-Rajagopalan-Lindsay, SIGMOD 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser(
        "plan", help="print optimal configurations for (epsilon, N)"
    )
    plan.add_argument("--epsilon", type=float, required=True)
    plan.add_argument("--n", type=int, required=True)
    plan.add_argument(
        "--delta",
        type=float,
        default=None,
        help="also evaluate the sampling strategy at this confidence",
    )
    plan.set_defaults(func=_cmd_plan)

    gen = sub.add_parser(
        "generate", help="write a synthetic stream to a binary file"
    )
    gen.add_argument("output", help="output path")
    gen.add_argument(
        "--kind", choices=sorted(_GENERATORS), default="random"
    )
    gen.add_argument("--n", type=int, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.set_defaults(func=_cmd_generate)

    quant = sub.add_parser(
        "quantile", help="one-pass quantiles of a binary stream file"
    )
    quant.add_argument("input", help="stream file (see 'generate')")
    quant.add_argument("--epsilon", type=float, required=True)
    quant.add_argument(
        "--phi",
        type=float,
        action="append",
        required=True,
        help="quantile fraction; repeatable",
    )
    quant.add_argument("--delta", type=float, default=None)
    quant.add_argument("--seed", type=int, default=None)
    quant.set_defaults(func=_cmd_quantile)

    hist = sub.add_parser(
        "histogram",
        help="equi-depth bucket boundaries / range-partition splitters",
    )
    hist.add_argument("input")
    hist.add_argument("--epsilon", type=float, required=True)
    hist.add_argument("--buckets", type=int, required=True)
    hist.add_argument("--delta", type=float, default=None)
    hist.add_argument("--seed", type=int, default=None)
    hist.set_defaults(func=_cmd_histogram)

    desc = sub.add_parser(
        "describe", help="distribution report of a binary stream file"
    )
    desc.add_argument("input")
    desc.add_argument("--epsilon", type=float, default=0.005)
    desc.set_defaults(func=_cmd_describe)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
