"""Windowed and time-decayed quantile sketches.

Everything else in the library summarises *all* data it has ever seen;
real monitoring asks "p99 over the last 5 minutes".  This module grows
two time-aware wrappers out of the paper's own mergeability (§4.9: two
summaries fold via ``absorb`` with the certified bound intact):

* :class:`WindowedSketch` -- a ring of per-bucket sketches.  Ingest
  lands in the bucket covering its timestamp; a query merges the live
  buckets through :func:`repro.core.serialize.merge_serialized`, so the
  windowed answer *is* the offline §4.9 merge of those buckets,
  bit-for-bit, including ``error_bound()``.  ``slide == window`` gives
  tumbling windows (one bucket); ``slide < window`` gives sliding
  windows (``window / slide`` buckets).
* :class:`ExpDecaySketch` -- exponential time-decay.  A ring of
  generation buckets, each a full sketch; queries weight generation
  ``g`` by ``2 ** (-age_g / half_life)`` and invert the weighted rank
  function, so old data fades smoothly instead of falling off a cliff.

Both are engine-agnostic (``engine="paper" | "kll" | "frugal"`` picks
the per-bucket machinery via :mod:`repro.core.engines`), speak the full
:class:`~repro.core.protocols.SketchProtocol` quartet plus ``rank``,
serialise to self-describing wire formats (magic ``WINSKT01`` /
``EXDSKT01``, registered in the engine registry so ``loads_any`` and
cluster fan-in dispatch on them), and merge bucket-wise via ``absorb``.

Time semantics are **event time**: every batch carries a timestamp
(``extend_at``; plain ``extend`` stamps the injected ``clock``, default
``time.time``).  Liveness is decided by the *watermark* -- the newest
bucket index ever written -- never by the wall clock, so queries are
pure functions of the ingested (values, timestamp) pairs: replaying a
journal of timestamped batches reproduces the ring bit-identically, and
queries never mutate state (expired buckets are only physically cleared
when their ring slot is reused by a newer bucket).

Frugal windows must be tumbling: Frugal-2U summaries are not mergeable,
so a sliding window (which must merge several live buckets per query)
is refused at construction.  Frugal *decay* works -- decay queries sum
per-bucket ranks and never merge -- but its ``error_bound()`` stays
``inf``, so a WATCH rule over it can only ever fire ``possible``.
"""

from __future__ import annotations

import math
import struct
import time
from typing import Any, BinaryIO, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .core.errors import ConfigurationError, EmptySummaryError, StorageError
from .core.protocols import describe_dict

__all__ = [
    "WindowedSketch",
    "ExpDecaySketch",
    "parse_duration",
    "window_config",
    "WINDOW_MAGIC",
    "DECAY_MAGIC",
]

WINDOW_MAGIC = b"WINSKT01"
DECAY_MAGIC = b"EXDSKT01"

_WIRE_VERSION = 1

#: wire ids for the *inner* engine (mirrors the service convention)
_ENGINE_IDS = {"paper": 0, "kll": 1, "frugal": 2}
_ENGINE_NAMES = {v: k for k, v in _ENGINE_IDS.items()}

#: per-bucket design capacity for paper-engine buckets created without n
DEFAULT_BUCKET_DESIGN_N = 1 << 30

#: decay resolution: generations per half-life, and how small a weight a
#: generation may decay to before it falls off the ring entirely
DECAY_GENERATIONS_PER_HALF_LIFE = 4
DECAY_MIN_WEIGHT_LOG2 = 10  # keep generations down to weight 2**-10

_DURATION_UNITS = {
    "ms": 0.001,
    "s": 1.0,
    "m": 60.0,
    "h": 3600.0,
    "d": 86400.0,
}

_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def parse_duration(spec: "str | float | int") -> float:
    """Seconds from a duration spec: ``300``, ``"300"``, ``"5m"``, ``"1.5h"``.

    Unit suffixes: ``ms``, ``s``, ``m``, ``h``, ``d``.  A bare number is
    seconds.  The result must be strictly positive and finite.
    """
    if isinstance(spec, (int, float)) and not isinstance(spec, bool):
        seconds = float(spec)
    elif isinstance(spec, str):
        text = spec.strip().lower()
        unit = 1.0
        for suffix, scale in sorted(
            _DURATION_UNITS.items(), key=lambda kv: -len(kv[0])
        ):
            if text.endswith(suffix):
                text = text[: -len(suffix)]
                unit = scale
                break
        try:
            seconds = float(text) * unit
        except ValueError:
            raise ConfigurationError(
                f"cannot parse duration {spec!r}: use seconds or a "
                "number with an ms/s/m/h/d suffix (e.g. '5m')"
            ) from None
    else:
        raise ConfigurationError(
            f"cannot parse duration {spec!r}: expected a number or string"
        )
    if not math.isfinite(seconds) or seconds <= 0:
        raise ConfigurationError(
            f"duration must be a positive finite number of seconds, "
            f"got {spec!r}"
        )
    return seconds


def window_config(
    window: "str | float | None",
    slide: "str | float | None",
    decay: "str | float | None",
) -> Tuple[float, float, float]:
    """Validate the facade's time kwargs into ``(window_s, slide_s, decay_s)``.

    The one parsing/validation path behind every surface that accepts
    ``window=``/``slide=``/``decay=`` (``repro.Sketch``, ``repro.hist``,
    ``connect().create``, ``repro client create``), so they agree on
    duration spellings and reject the same nonsense the same way:
    ``window`` and ``decay`` are mutually exclusive, ``slide`` requires
    ``window``.  Zeros mean "not windowed".
    """
    if window is not None and decay is not None:
        raise ConfigurationError(
            "window= and decay= are mutually exclusive: a metric is "
            "either windowed or exponentially decayed"
        )
    if slide is not None and window is None:
        raise ConfigurationError("slide= requires window=")
    window_s = parse_duration(window) if window is not None else 0.0
    slide_s = parse_duration(slide) if slide is not None else 0.0
    decay_s = parse_duration(decay) if decay is not None else 0.0
    return window_s, slide_s, decay_s


def _read_exact(fh: BinaryIO, size: int, what: str) -> bytes:
    # loop: raw streams may legally return short reads
    chunks = []
    remaining = size
    while remaining:
        chunk = fh.read(remaining)
        if not chunk:
            raise StorageError(
                f"truncated sketch: expected {size} bytes of {what}"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class _Cursor:
    """Bounds-checked reader over one serialised payload."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, size: int, what: str) -> bytes:
        end = self.pos + size
        if end > len(self.buf):
            raise StorageError(
                f"truncated sketch: expected {size} bytes of {what}"
            )
        raw = self.buf[self.pos : end]
        self.pos = end
        return raw

    def unpack(self, st: struct.Struct, what: str):
        return st.unpack(self.take(st.size, what))

    def string(self, what: str) -> str:
        (n,) = self.unpack(_U16, what)
        return self.take(n, what).decode("utf-8")


class _TimeBucketedSketch:
    """Shared machinery: the ring of per-bucket engine sketches.

    Subclasses fix the magic tag, interpret the two config floats
    (``p1``/``p2``) and define query semantics over the live buckets.
    """

    MAGIC = b""

    def __init__(
        self,
        eps: float,
        bucket_s: float,
        n_buckets: int,
        *,
        engine: str = "paper",
        policy: str = "new",
        n: Optional[int] = None,
        seed: int = 0,
        phis: Optional[Sequence[float]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if engine not in _ENGINE_IDS:
            raise ConfigurationError(
                f"unknown sketch engine {engine!r}; choose one of "
                f"{tuple(_ENGINE_IDS)}"
            )
        if not (0 < eps < 1):
            raise ConfigurationError(f"need 0 < eps < 1, got {eps}")
        if n_buckets < 1:
            raise ConfigurationError(f"need >= 1 bucket, got {n_buckets}")
        self.eps = float(eps)
        self.engine = engine
        self.policy = policy
        self.design_n = None if n is None else int(n)
        self.seed = int(seed)
        self.bucket_s = float(bucket_s)
        self.n_buckets = int(n_buckets)
        self._clock: Callable[[], float] = clock or time.time
        if engine == "frugal":
            from .core.frugal import DEFAULT_BANK_PHIS

            self.phis: Tuple[float, ...] = tuple(
                float(p) for p in (phis if phis is not None else DEFAULT_BANK_PHIS)
            )
        else:
            self.phis = tuple(float(p) for p in (phis or ()))
        self._factory = self._build_factory()
        from .core.engines import ENGINES

        self._spec = ENGINES[engine]
        self._indices: List[int] = [-1] * self.n_buckets
        self._sketches: List[Any] = [None] * self.n_buckets
        self._max_index = -1
        self._total = 0
        self._dropped = 0
        self._version = 0
        self._cache: Optional[Tuple[int, Any]] = None

    # -- construction ------------------------------------------------------

    def _build_factory(self) -> Callable[[], Any]:
        if self.engine == "kll":
            from .core.kll import KLLSketch

            eps, seed = self.eps, self.seed
            return lambda: KLLSketch(eps=eps, seed=seed)
        if self.engine == "frugal":
            from .core.frugal import FrugalSketch

            phis, seed = self.phis, self.seed
            return lambda: FrugalSketch(phis=phis, seed=seed)
        from .core.framework import QuantileFramework
        from .core.parameters import optimal_parameters

        design_n = (
            DEFAULT_BUCKET_DESIGN_N if self.design_n is None else self.design_n
        )
        plan = optimal_parameters(self.eps, design_n, policy=self.policy)
        policy = self.policy

        def make() -> QuantileFramework:
            fw = QuantileFramework(
                plan.b, plan.k, policy=policy, designed_n=design_n
            )
            fw._mode = "numeric"  # time-bucketed streams are numeric-only
            return fw

        return make

    def _config_key(self) -> Tuple:
        return (
            type(self).__name__,
            self.engine,
            self.eps,
            self.design_n,
            self.policy,
            self.seed,
            self.phis,
            self.bucket_s,
            self.n_buckets,
            self._p1(),
            self._p2(),
        )

    # subclasses map their duration config onto two wire floats
    def _p1(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def _p2(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    # -- ingest ------------------------------------------------------------

    def extend(self, values: Any) -> None:
        """Ingest *values* stamped with the injected clock's current time."""
        self.extend_at(values, self._clock())

    def extend_at(self, values: Any, t: float) -> None:
        """Ingest *values* as having occurred at event time *t* (seconds).

        Deterministic in ``(values, t)``: replaying the same timestamped
        batches in the same order reproduces the ring bit-identically.
        Batches older than the ring's span (watermark minus ``n_buckets``
        buckets) are dropped and counted in ``dropped``.
        """
        arr = np.ascontiguousarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-d batch, got shape {arr.shape}"
            )
        if arr.size == 0:
            return
        if not math.isfinite(t):
            raise ConfigurationError(f"event time must be finite, got {t}")
        idx = int(math.floor(t / self.bucket_s))
        if idx <= self._max_index - self.n_buckets:
            self._dropped += arr.size
            return
        slot = idx % self.n_buckets
        if self._indices[slot] != idx:
            # the slot holds an expired bucket (or nothing): reuse it
            self._indices[slot] = idx
            self._sketches[slot] = self._factory()
        self._sketches[slot].extend(arr)
        if idx > self._max_index:
            self._max_index = idx
        self._total += arr.size
        self._version += 1
        self._cache = None

    # -- ring introspection ------------------------------------------------

    def _pairs(self) -> List[Tuple[int, Any]]:
        """Every allocated bucket as ``(index, sketch)``, oldest first."""
        return sorted(
            (idx, sk)
            for idx, sk in zip(self._indices, self._sketches)
            if idx >= 0
        )

    def _live(self) -> List[Tuple[int, Any]]:
        """Buckets inside the ring span of the watermark, oldest first."""
        horizon = self._max_index - self.n_buckets
        return [(idx, sk) for idx, sk in self._pairs() if idx > horizon]

    @property
    def watermark_index(self) -> int:
        """Newest bucket index ever written (-1 before any data)."""
        return self._max_index

    @property
    def total(self) -> int:
        """Elements ever ingested (including since-expired buckets)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Elements dropped for arriving older than the ring's span."""
        return self._dropped

    @property
    def memory_elements(self) -> int:
        return sum(sk.memory_elements for _, sk in self._pairs())

    # -- merge -------------------------------------------------------------

    def absorb(self, other: "_TimeBucketedSketch") -> "_TimeBucketedSketch":
        """Fold *other*'s buckets into this ring, bucket index by index.

        Same-grid merge: both rings must share the full configuration
        (engine, eps, policy, durations).  Buckets present on both sides
        merge via the inner engine's ``absorb`` (certified bounds add);
        buckets only *other* has are copied in; buckets older than the
        merged watermark's span expire as usual.  This is what makes the
        cluster's §4.9 fan-in work on windowed payloads.
        """
        if self._config_key() != other._config_key():
            raise ConfigurationError(
                f"cannot absorb a time-bucketed sketch with a different "
                f"configuration: {self._config_key()} vs "
                f"{other._config_key()}"
            )
        for idx, sk in other._pairs():
            payload = self._spec.dumps(sk)
            slot = idx % self.n_buckets
            if self._indices[slot] == idx:
                if not self._spec.mergeable:
                    raise ConfigurationError(
                        f"{self.engine!r} buckets are not mergeable; "
                        "rings can only fold when their buckets are "
                        "disjoint"
                    )
                # absorb a fresh copy: the engine's absorb may consume
                # its argument, and *other* must stay intact
                self._sketches[slot].absorb(self._spec.loads(payload))
            elif self._indices[slot] < idx:
                self._indices[slot] = idx
                self._sketches[slot] = self._spec.loads(payload)
            # else: the slot holds a newer bucket; *other*'s is expired
            if idx > self._max_index:
                self._max_index = idx
        self._total += other._total
        self._dropped += other._dropped
        self._version += 1
        self._cache = None
        return self

    # -- serialisation -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Self-describing wire format (magic | config | ring buckets)."""
        out = [
            self.MAGIC,
            _U16.pack(_WIRE_VERSION),
            bytes([_ENGINE_IDS[self.engine]]),
            _F64.pack(self.eps),
            _U64.pack(0 if self.design_n is None else self.design_n),
        ]
        policy_raw = self.policy.encode("utf-8")
        out.append(_U16.pack(len(policy_raw)))
        out.append(policy_raw)
        out.append(_U32.pack(self.seed))
        out.append(_U16.pack(len(self.phis)))
        for p in self.phis:
            out.append(_F64.pack(p))
        out.append(_F64.pack(self._p1()))
        out.append(_F64.pack(self._p2()))
        out.append(_U64.pack(self._total))
        out.append(_U64.pack(self._dropped))
        out.append(_U32.pack(self.n_buckets))
        for slot in range(self.n_buckets):
            idx = self._indices[slot]
            out.append(_I64.pack(idx))
            if idx < 0:
                out.append(_U32.pack(0))
            else:
                payload = self._spec.dumps(self._sketches[slot])
                out.append(_U32.pack(len(payload)))
                out.append(payload)
        return b"".join(out)

    @classmethod
    def _parse_config(cls, c: _Cursor) -> Dict[str, Any]:
        magic = c.take(8, "magic")
        if magic != cls.MAGIC:
            raise StorageError(
                f"bad magic {magic!r}: not a serialised {cls.__name__}"
            )
        (version,) = c.unpack(_U16, "version")
        if version != _WIRE_VERSION:
            raise StorageError(
                f"unsupported {cls.__name__} wire version {version}"
            )
        engine_id = c.take(1, "engine")[0]
        if engine_id not in _ENGINE_NAMES:
            raise StorageError(f"unknown inner engine id {engine_id}")
        (eps,) = c.unpack(_F64, "eps")
        (design_n,) = c.unpack(_U64, "design n")
        policy = c.string("policy")
        (seed,) = c.unpack(_U32, "seed")
        (n_phis,) = c.unpack(_U16, "phi count")
        phis = tuple(c.unpack(_F64, "phi")[0] for _ in range(n_phis))
        (p1,) = c.unpack(_F64, "p1")
        (p2,) = c.unpack(_F64, "p2")
        return {
            "engine": _ENGINE_NAMES[engine_id],
            "eps": eps,
            "n": None if design_n == 0 else design_n,
            "policy": policy,
            "seed": seed,
            "phis": phis or None,
            "p1": p1,
            "p2": p2,
        }

    def _load_ring(self, c: _Cursor) -> None:
        (total,) = c.unpack(_U64, "total")
        (dropped,) = c.unpack(_U64, "dropped")
        (n_buckets,) = c.unpack(_U32, "bucket count")
        if n_buckets != self.n_buckets:
            raise StorageError(
                f"ring of {n_buckets} buckets does not fit a "
                f"{self.n_buckets}-bucket configuration"
            )
        for slot in range(n_buckets):
            (idx,) = c.unpack(_I64, "bucket index")
            (size,) = c.unpack(_U32, "bucket payload size")
            if idx < 0:
                if size:
                    raise StorageError("empty bucket with a payload")
                continue
            payload = c.take(size, "bucket payload")
            self._indices[slot] = idx
            self._sketches[slot] = self._spec.loads(bytes(payload))
            if idx > self._max_index:
                self._max_index = idx
        self._total = total
        self._dropped = dropped
        self._version += 1
        self._cache = None

    @classmethod
    def from_bytes(cls, raw: bytes) -> "_TimeBucketedSketch":
        c = _Cursor(bytes(raw))
        cfg = cls._parse_config(c)
        sk = cls._from_config(cfg)
        sk._load_ring(c)
        if c.pos != len(c.buf):
            raise StorageError(
                f"trailing bytes after serialised {cls.__name__}"
            )
        return sk

    @classmethod
    def read_from(cls, fh: BinaryIO) -> "_TimeBucketedSketch":
        """Read one serialised ring from a stream (self-delimiting)."""
        head = bytearray(_read_exact(fh, 8 + 2 + 1 + 8 + 8, "ring header"))
        (policy_len,) = _U16.unpack(_read_exact(fh, 2, "policy length"))
        head += _U16.pack(policy_len)
        head += _read_exact(fh, policy_len + 4, "policy/seed")
        (n_phis,) = _U16.unpack(_read_exact(fh, 2, "phi count"))
        head += _U16.pack(n_phis)
        head += _read_exact(fh, 8 * n_phis + 8 + 8 + 8 + 8, "config/counters")
        (n_buckets,) = _U32.unpack(_read_exact(fh, 4, "bucket count"))
        head += _U32.pack(n_buckets)
        for _ in range(n_buckets):
            bucket_head = _read_exact(fh, 12, "bucket header")
            head += bucket_head
            (size,) = _U32.unpack(bucket_head[8:12])
            if size:
                head += _read_exact(fh, size, "bucket payload")
        return cls.from_bytes(bytes(head))

    @classmethod
    def _from_config(cls, cfg: Dict[str, Any]) -> "_TimeBucketedSketch":
        raise NotImplementedError  # pragma: no cover - abstract

    # -- shared query plumbing --------------------------------------------

    def _merged(self) -> Any:
        """One sketch summarising the live buckets (§4.9 merge, cached).

        Routes through :func:`repro.core.serialize.merge_serialized` on
        the buckets' own wire payloads, so the result -- values *and*
        certified bound -- is bit-identical to an offline merge of those
        payloads.  Queries never mutate the ring; the cache keys on the
        ingest version counter.
        """
        if self._cache is not None and self._cache[0] == self._version:
            return self._cache[1]
        live = self._live()
        if not live or all(sk.n == 0 for _, sk in live):
            raise EmptySummaryError(
                "no data in the current window; ingest first"
            )
        from .core.serialize import merge_serialized

        merged = merge_serialized([self._spec.dumps(sk) for _, sk in live])
        self._cache = (self._version, merged)
        return merged


class WindowedSketch(_TimeBucketedSketch):
    """Tumbling/sliding-window quantiles over a ring of bucket sketches.

    Parameters
    ----------
    eps:
        Per-bucket rank accuracy; the merged window keeps the certified
        bound the inner engine's ``absorb`` accounting produces.
    window:
        Window span -- seconds or a duration string (``"5m"``).
    slide:
        Bucket width; must divide ``window`` evenly.  Defaults to
        ``window`` (a tumbling window, one bucket).
    engine, policy, n, seed, phis:
        Inner-engine knobs, same meanings as the facade's.
    clock:
        Timestamp source for plain ``extend`` (default ``time.time``);
        inject a fake for deterministic tests.
    """

    MAGIC = WINDOW_MAGIC

    def __init__(
        self,
        eps: float = 0.01,
        *,
        window: "str | float",
        slide: "str | float | None" = None,
        engine: str = "paper",
        policy: str = "new",
        n: Optional[int] = None,
        seed: int = 0,
        phis: Optional[Sequence[float]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        window_s = parse_duration(window)
        slide_s = parse_duration(slide) if slide is not None else window_s
        if slide_s > window_s:
            raise ConfigurationError(
                f"slide ({slide_s}s) cannot exceed window ({window_s}s)"
            )
        ratio = window_s / slide_s
        n_buckets = int(round(ratio))
        if abs(ratio - n_buckets) > 1e-9:
            raise ConfigurationError(
                f"slide ({slide_s}s) must divide window ({window_s}s) "
                "evenly"
            )
        if engine == "frugal" and n_buckets > 1:
            raise ConfigurationError(
                "frugal summaries are not mergeable, so frugal windows "
                "must be tumbling (slide == window)"
            )
        self.window_s = window_s
        self.slide_s = slide_s
        super().__init__(
            eps,
            slide_s,
            n_buckets,
            engine=engine,
            policy=policy,
            n=n,
            seed=seed,
            phis=phis,
            clock=clock,
        )

    def _p1(self) -> float:
        return self.window_s

    def _p2(self) -> float:
        return self.slide_s

    @classmethod
    def _from_config(cls, cfg: Dict[str, Any]) -> "WindowedSketch":
        return cls(
            cfg["eps"],
            window=cfg["p1"],
            slide=cfg["p2"],
            engine=cfg["engine"],
            policy=cfg["policy"],
            n=cfg["n"],
            seed=cfg["seed"],
            phis=cfg["phis"],
        )

    # -- queries (all delegate to the merged live window) ------------------

    @property
    def n(self) -> int:
        """Elements inside the current window."""
        return sum(sk.n for _, sk in self._live())

    def quantile(self, phi: float) -> Any:
        return self._merged().quantile(phi)

    def quantiles(self, phis: Sequence[float]) -> List[Any]:
        return self._merged().quantiles(phis)

    def rank(self, value: Any) -> int:
        return self._merged().rank(value)

    def cdf(self, value: Any) -> Any:
        return self._merged().cdf(value)

    def error_bound(self) -> float:
        """The merged window's certified bound -- identical to the §4.9
        offline merge of the live bucket payloads."""
        return float(self._merged().error_bound())

    def describe(self) -> Dict[str, Any]:
        return describe_dict(self)


class ExpDecaySketch(_TimeBucketedSketch):
    """Exponentially time-decayed quantiles.

    Keeps a ring of *generation* buckets of width ``half_life / 4``;
    at query time generation ``g`` (aged ``a_g`` seconds relative to the
    watermark) carries weight ``2 ** (-a_g / half_life)``.  Generations
    older than ``2**-10`` of full weight fall off the ring.  Queries
    invert the weighted rank function ``R(v) = sum_g w_g * rank_g(v)``:

    * ``quantile(phi)`` -- the smallest value with ``R(v) >= phi * W``
      (``W`` the weighted total), found by bisection;
    * ``cdf(v)`` -- ``R(v) / W``;
    * ``error_bound()`` -- ``sum_g w_g * bound_g``, a certified bound on
      the weighted rank error (each bucket's rank is off by at most its
      own bound, and the weighted sum of bounded errors is bounded by
      the weighted sum of bounds).

    ``n`` reports the *effective* (weighted) count ``round(W)`` so rank
    arithmetic -- the service CDF, WATCH definite/possible decisions --
    stays consistent; the raw ingest count is :attr:`raw_n`.
    """

    MAGIC = DECAY_MAGIC

    def __init__(
        self,
        eps: float = 0.01,
        *,
        half_life: "str | float",
        engine: str = "paper",
        policy: str = "new",
        n: Optional[int] = None,
        seed: int = 0,
        phis: Optional[Sequence[float]] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        half_life_s = parse_duration(half_life)
        self.half_life_s = half_life_s
        per_half_life = DECAY_GENERATIONS_PER_HALF_LIFE
        n_buckets = DECAY_MIN_WEIGHT_LOG2 * per_half_life + 1
        super().__init__(
            eps,
            half_life_s / per_half_life,
            n_buckets,
            engine=engine,
            policy=policy,
            n=n,
            seed=seed,
            phis=phis,
            clock=clock,
        )

    def _p1(self) -> float:
        return self.half_life_s

    def _p2(self) -> float:
        return 0.0

    @classmethod
    def _from_config(cls, cfg: Dict[str, Any]) -> "ExpDecaySketch":
        return cls(
            cfg["eps"],
            half_life=cfg["p1"],
            engine=cfg["engine"],
            policy=cfg["policy"],
            n=cfg["n"],
            seed=cfg["seed"],
            phis=cfg["phis"],
        )

    # -- weighted-rank plumbing -------------------------------------------

    def _weighted(self) -> List[Tuple[float, Any]]:
        """Live ``(weight, sketch)`` pairs, oldest first."""
        per_half_life = DECAY_GENERATIONS_PER_HALF_LIFE
        return [
            (2.0 ** (-(self._max_index - idx) / per_half_life), sk)
            for idx, sk in self._live()
            if sk.n > 0
        ]

    def _weighted_total(self) -> float:
        return sum(w * sk.n for w, sk in self._weighted())

    def _weighted_rank(self, value: float) -> float:
        return sum(w * sk.rank(value) for w, sk in self._weighted())

    @property
    def n(self) -> int:
        """Effective (exponentially weighted) element count."""
        return int(round(self._weighted_total()))

    @property
    def raw_n(self) -> int:
        """Raw elements inside the live generations (no decay weights)."""
        return sum(sk.n for _, sk in self._live())

    def rank(self, value: Any) -> int:
        """Weighted rank: decayed count of elements ``<= value``."""
        if not self._weighted():
            raise EmptySummaryError("no data in any live generation")
        return int(round(self._weighted_rank(float(value))))

    def quantile(self, phi: float) -> float:
        pairs = self._weighted()
        if not pairs:
            raise EmptySummaryError("no data in any live generation")
        if not (0.0 <= phi <= 1.0):
            raise ConfigurationError(f"phi must be in [0, 1], got {phi}")
        lo = min(float(sk.quantile(0.0)) for _, sk in pairs)
        hi = max(float(sk.quantile(1.0)) for _, sk in pairs)
        if lo == hi:
            return lo
        target = phi * self._weighted_total()
        # bisect for the smallest value whose weighted rank reaches the
        # target; 64 halvings exhaust float64 resolution
        for _ in range(64):
            mid = 0.5 * (lo + hi)
            if mid <= lo or mid >= hi:
                break
            if self._weighted_rank(mid) >= target:
                hi = mid
            else:
                lo = mid
        return hi

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        return [self.quantile(p) for p in phis]

    def cdf(self, value: Any) -> Any:
        if isinstance(value, (list, tuple, np.ndarray)):
            return [self.cdf(v) for v in value]
        total = self._weighted_total()
        if total <= 0:
            raise EmptySummaryError("no data in any live generation")
        return min(1.0, self._weighted_rank(float(value)) / total)

    def error_bound(self) -> float:
        """Certified bound on the *weighted* rank (inf for frugal)."""
        pairs = self._weighted()
        if not pairs:
            return 0.0
        return float(sum(w * sk.error_bound() for w, sk in pairs))

    def describe(self) -> Dict[str, Any]:
        return describe_dict(self)
