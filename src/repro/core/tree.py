"""Recording and analysing the tree of buffers (Section 4.1).

Every run of a framework algorithm induces a tree: leaves are the buffers
populated by NEW, internal nodes are COLLAPSE outputs, and the root is the
final OUTPUT operation whose children are the remaining full buffers.  The
paper's entire error analysis (Lemmas 1-5) is phrased over this tree.

:class:`TreeRecorder` plugs into :class:`repro.core.framework.QuantileFramework`
and records the tree as it is produced, so that:

* the quantities ``L`` (leaves), ``C`` (collapses), ``W`` (sum of collapse
  weights), ``w_max`` (heaviest child of the root) and ``h`` (height) can be
  measured on *actual* runs and checked against the closed forms of
  Sections 4.3-4.5;
* the a-posteriori error bound ``(W - C - 1)/2 + w_max`` of Lemma 5 can be
  certified for the exact stream that was consumed;
* the trees of Figures 2-4 can be rendered (each node labelled with its
  weight) for visual comparison with the paper.

Recording costs O(1) per operation and O(#buffers-ever-created) memory;
frameworks track the scalar statistics regardless, so attaching a recorder
is only needed when the shape itself matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .buffer import Buffer
from .errors import ReproError

__all__ = [
    "TreeNode",
    "TreeStats",
    "TreeRecorder",
    "canonical_munro_paterson_tree",
    "canonical_alsabti_ranka_singh_tree",
]


@dataclass
class TreeNode:
    """One buffer in the collapse tree."""

    node_id: int
    weight: int
    level: int
    children: List[int] = field(default_factory=list)
    offset: Optional[int] = None  # set on COLLAPSE outputs only

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass(frozen=True)
class TreeStats:
    """The symbols of Figure 5, measured on an actual run."""

    n_leaves: int  #: L -- number of NEW operations
    n_collapses: int  #: C -- number of COLLAPSE operations
    sum_collapse_weights: int  #: W -- sum of weights of all COLLAPSE outputs
    w_max: int  #: weight of the heaviest child of the root
    height: int  #: h -- edges on the longest leaf-to-root-child path, +1 for the root
    sum_offsets: int  #: sum of offsets over all COLLAPSE operations (Lemma 1)

    @property
    def error_bound(self) -> float:
        """Lemma 5: rank error is at most ``(W - C - 1)/2 + w_max``."""
        if self.n_collapses == 0:
            # A single leaf answers exactly (up to padding half-steps).
            return 0.0
        return (
            self.sum_collapse_weights - self.n_collapses - 1
        ) / 2.0 + self.w_max

    def lemma1_lower_bound(self) -> float:
        """Lemma 1's lower bound on the sum of offsets."""
        return (self.sum_collapse_weights + self.n_collapses - 1) / 2.0


class TreeRecorder:
    """Incrementally records the collapse tree of one framework run."""

    def __init__(self) -> None:
        self.nodes: Dict[int, TreeNode] = {}
        self.root_children: List[int] = []
        self._depth: Dict[int, int] = {}  # node -> height above leaves
        self.sum_offsets = 0
        self.n_collapses = 0
        self.sum_collapse_weights = 0

    # -- framework hooks -----------------------------------------------------

    def on_new(self, buf: Buffer) -> None:
        self.nodes[buf.buffer_id] = TreeNode(
            node_id=buf.buffer_id, weight=buf.weight, level=buf.level
        )
        self._depth[buf.buffer_id] = 0

    def on_collapse(
        self, children: Sequence[Buffer], result: Buffer, offset: int
    ) -> None:
        node = TreeNode(
            node_id=result.buffer_id,
            weight=result.weight,
            level=result.level,
            children=[c.buffer_id for c in children],
            offset=offset,
        )
        self.nodes[result.buffer_id] = node
        self._depth[result.buffer_id] = 1 + max(
            self._depth[c.buffer_id] for c in children
        )
        self.sum_offsets += offset
        self.n_collapses += 1
        self.sum_collapse_weights += result.weight

    def on_output(self, children: Sequence[Buffer]) -> None:
        self.root_children = [c.buffer_id for c in children]

    # -- analysis -------------------------------------------------------------

    def stats(self, final_buffers: Optional[Sequence[Buffer]] = None) -> TreeStats:
        """Compute the run's :class:`TreeStats`.

        If OUTPUT has not been recorded yet, *final_buffers* supplies the
        would-be children of the root (the currently full buffers).
        """
        if final_buffers is not None:
            top = [self.nodes[b.buffer_id] for b in final_buffers]
        elif self.root_children:
            top = [self.nodes[i] for i in self.root_children]
        else:
            raise ReproError("no OUTPUT recorded and no final buffers given")
        n_leaves = sum(1 for n in self.nodes.values() if n.is_leaf)
        w_max = max((n.weight for n in top), default=0)
        height = 1 + max((self._depth[n.node_id] for n in top), default=0)
        return TreeStats(
            n_leaves=n_leaves,
            n_collapses=self.n_collapses,
            sum_collapse_weights=self.sum_collapse_weights,
            w_max=w_max,
            height=height,
            sum_offsets=self.sum_offsets,
        )

    # -- rendering (Figures 2-4) ------------------------------------------------

    def render(self, final_buffers: Optional[Sequence[Buffer]] = None) -> str:
        """Render the tree as indented text, each node labelled by weight.

        The root (the OUTPUT operation) is drawn as ``OUTPUT``; its children
        hang below it via the paper's "broken edges".  Matches the content
        of Figures 2-4 (weights), though drawn top-down rather than
        bottom-up.
        """
        if final_buffers is not None:
            top_ids = [b.buffer_id for b in final_buffers]
        elif self.root_children:
            top_ids = list(self.root_children)
        else:
            raise ReproError("no OUTPUT recorded and no final buffers given")
        lines = ["OUTPUT"]

        def walk(node_id: int, prefix: str, is_last: bool) -> None:
            node = self.nodes[node_id]
            branch = "`-- " if is_last else "|-- "
            lines.append(f"{prefix}{branch}{node.weight}")
            child_prefix = prefix + ("    " if is_last else "|   ")
            for i, child in enumerate(node.children):
                walk(child, child_prefix, i == len(node.children) - 1)

        for i, node_id in enumerate(top_ids):
            walk(node_id, "", i == len(top_ids) - 1)
        return "\n".join(lines)

    def weights_by_depth(
        self, final_buffers: Optional[Sequence[Buffer]] = None
    ) -> List[List[int]]:
        """Node weights grouped by distance below the root, top level first.

        ``result[0]`` are the children of the root, ``result[-1]`` contains
        only leaves.  Useful for compact, order-preserving comparison with
        the levels drawn in Figures 2-4.
        """
        if final_buffers is not None:
            top_ids = [b.buffer_id for b in final_buffers]
        elif self.root_children:
            top_ids = list(self.root_children)
        else:
            raise ReproError("no OUTPUT recorded and no final buffers given")
        levels: List[List[int]] = []
        frontier = list(top_ids)
        while frontier:
            levels.append([self.nodes[i].weight for i in frontier])
            nxt: List[int] = []
            for i in frontier:
                nxt.extend(self.nodes[i].children)
            frontier = nxt
        return levels


def _synthetic_recorder() -> "tuple[TreeRecorder, list[int]]":
    return TreeRecorder(), [0]


def _add_leaf(recorder: TreeRecorder, counter: List[int]) -> int:
    counter[0] += 1
    node_id = -counter[0]  # negative ids cannot collide with real buffers
    recorder.nodes[node_id] = TreeNode(node_id=node_id, weight=1, level=0)
    recorder._depth[node_id] = 0
    return node_id


def _add_collapse(
    recorder: TreeRecorder, counter: List[int], children: Sequence[int]
) -> int:
    counter[0] += 1
    node_id = -counter[0]
    weight = sum(recorder.nodes[c].weight for c in children)
    level = 1 + max(recorder.nodes[c].level for c in children)
    offset = (weight + 1) // 2 if weight % 2 else weight // 2
    recorder.nodes[node_id] = TreeNode(
        node_id=node_id,
        weight=weight,
        level=level,
        children=list(children),
        offset=offset,
    )
    recorder._depth[node_id] = 1 + max(recorder._depth[c] for c in children)
    recorder.sum_offsets += offset
    recorder.n_collapses += 1
    recorder.sum_collapse_weights += weight
    return node_id


def canonical_munro_paterson_tree(b: int) -> TreeRecorder:
    """The stipulated Munro-Paterson tree of Figure 2, built symbolically.

    Exactly ``2^(b-1)`` weight-1 leaves merged pairwise into a perfect
    binary tree whose top-level merge is replaced by OUTPUT on two buffers
    of weight ``2^(b-2)`` (Section 4.3).  The runtime policy defers merges
    to exploit all ``b`` slots and therefore produces a slightly cheaper
    tree; this canonical construction exists so the paper's figure and
    closed forms can be reproduced verbatim.
    """
    if b < 2:
        raise ReproError(f"Munro-Paterson needs b >= 2, got {b}")
    recorder, counter = _synthetic_recorder()
    frontier = [_add_leaf(recorder, counter) for _ in range(2 ** (b - 1))]
    while len(frontier) > 2:
        frontier = [
            _add_collapse(recorder, counter, frontier[i : i + 2])
            for i in range(0, len(frontier), 2)
        ]
    recorder.root_children = frontier
    return recorder


def canonical_alsabti_ranka_singh_tree(b: int) -> TreeRecorder:
    """The Alsabti-Ranka-Singh tree of Figure 3, built symbolically.

    ``b/2`` rounds, each collapsing ``b/2`` weight-1 leaves into one
    weight-``b/2`` buffer; OUTPUT reads the ``b/2`` round outputs.
    """
    if b < 2 or b % 2:
        raise ReproError(f"Alsabti-Ranka-Singh needs even b >= 2, got {b}")
    recorder, counter = _synthetic_recorder()
    half = b // 2
    rounds = []
    for _ in range(half):
        leaves = [_add_leaf(recorder, counter) for _ in range(half)]
        rounds.append(_add_collapse(recorder, counter, leaves))
    recorder.root_children = rounds
    return recorder
