"""KLL quantile engine: compactor hierarchy with a certified rank bound.

"Optimal Quantile Approximation in Streams" (Karnin, Lang & Liberty; see
PAPERS.md) replaces the MRL b/k-buffer framework with a hierarchy of
*compactors*: level ``l`` holds items of weight ``2**l``; when a level
overflows its capacity it sorts its items and promotes every second one
(random parity) to the level above.  Capacities decay geometrically with
depth below the top level (``k * c**(H - l)``, ``c = 2/3``), which is
what gives KLL strictly better space than MRL at the same guarantee --
the bench shoot-out (BENCH_engines.json) shows it beating the paper
framework's ``b*k`` footprint at equal ``eps``.

Certified a-posteriori bound
----------------------------

Each compaction at level ``l`` shifts the rank of any fixed value by
``+w``, ``-w`` or ``0`` (``w = 2**l``) with a fair random sign, so the
total rank error is a sum of independent bounded zero-mean terms.  The
sketch tracks ``S2 = sum(m_l * 4**l)`` (``m_l`` = compactions at level
``l``) and :meth:`KLLSketch.error_bound` reports the Hoeffding bound

    ``t = sqrt(2 * S2 * ln(2 / delta))``

which the true rank error exceeds with probability at most ``delta``
(per fixed query).  Unlike MRL's Lemma 5 this is probabilistic, not
worst-case -- the trade KLL makes for its space advantage; ``delta`` is
a constructor knob.  ``k`` is sized from ``(eps, delta)`` so the bound
lands at ``eps * n`` (the closed form below), and the bench checks the
observed error sits inside the certified bound.

Determinism and mergeability
----------------------------

Compaction parities are bits of a counter-indexed hash (the same
splitmix64 streams the Frugal engine uses), so the whole compaction
schedule is a pure function of the stream *content* -- independent of
chunk boundaries.  That makes service journal replay bit-identical and
the ``absorb`` merge deterministic: merging two serialised summaries on
any worker yields byte-identical results, which the cluster fan-in
relies on.
"""

from __future__ import annotations

import io
import math
import struct
from typing import Any, BinaryIO, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import kernels
from .errors import ConfigurationError, EmptySummaryError, StorageError
from .protocols import describe_dict
from ..obs import hooks as _obs

__all__ = ["KLLSketch", "KLL_MAGIC", "k_for_eps"]

KLL_MAGIC = b"KLLSKT01"
KLL_FORMAT_VERSION = 1

# magic, version, k, min_capacity, n_levels, n, n_compactions, seed,
# eps, delta, c, min, max
_HEADER = struct.Struct("<8sHIHHQQQddddd")
# per level: item count, compaction count
_LEVEL_HEADER = struct.Struct("<IQ")

#: capacity decay per level below the top (the KLL paper's constant)
_DEFAULT_C = 2.0 / 3.0
_MIN_CAPACITY = 8

_FINITE_MSG = (
    "numeric streams must be finite: the framework reserves "
    "+/-inf as padding sentinels and NaN has no rank"
)


def _even_ceil(x: float) -> int:
    return 2 * int(math.ceil(x / 2.0))


def k_for_eps(eps: float, delta: float = 0.01) -> int:
    """Smallest even compactor width whose certified bound lands at eps*n.

    From the closed form of the Hoeffding bound over the compaction
    schedule: with capacities ``k * c**(H-l)`` the error variance proxy
    is ``S2 ~= 4 * n**2 / k**2`` (independent of n as a fraction), so

        ``bound / n ~= (2 * sqrt(2 * ln(2/delta))) / k``

    and the smallest adequate ``k`` is that expression over ``eps``,
    rounded up to even.  The bench verifies the prediction a-posteriori.
    """
    if not 0 < eps < 1:
        raise ConfigurationError(f"eps must be in (0, 1), got {eps}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    k = _even_ceil(2.0 * math.sqrt(2.0 * math.log(2.0 / delta)) / eps)
    return max(k, _MIN_CAPACITY)


class KLLSketch:
    """One-pass quantile summary with compactors and a probabilistic bound.

    Answers the uniform :class:`~repro.core.protocols.SketchProtocol`
    quartet.  Mergeable via :meth:`absorb`; serialises to the
    ``KLLSKT01`` wire format (see docs/formats.md).

    Parameters
    ----------
    eps:
        Target rank-accuracy fraction; ``k`` is derived from ``(eps,
        delta)`` unless given explicitly.
    k:
        Explicit top-compactor width (even), overriding *eps*.
    delta:
        Failure probability of the certified bound (per fixed query).
    seed:
        Base of the deterministic compaction-parity hash stream.
    """

    def __init__(
        self,
        eps: float = 0.01,
        *,
        k: Optional[int] = None,
        delta: float = 0.01,
        seed: int = 0,
    ) -> None:
        if k is None:
            k = k_for_eps(eps, delta)
        else:
            k = int(k)
            if k < 2 or k % 2:
                raise ConfigurationError(
                    f"k must be an even integer >= 2, got {k}"
                )
        if not 0 < delta < 1:
            raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
        self.eps = float(eps)
        self.k = k
        self.delta = float(delta)
        self.c = _DEFAULT_C
        self.min_capacity = _MIN_CAPACITY
        self.seed = int(seed)
        self._parity_base = kernels.stream_seed(self.seed, 0)
        #: per-level items in arrival order (level l items weigh 2**l)
        self._levels: List[np.ndarray] = [np.empty(0, dtype=np.float64)]
        #: per-level compaction counts (the m_l of the bound)
        self._compactions: List[int] = [0]
        self._n = 0
        self._n_compactions = 0
        self._s2 = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    # -- capacities --------------------------------------------------------

    def _capacity(self, level: int) -> int:
        """Capacity of *level* relative to the current top level."""
        top = len(self._levels) - 1
        return max(
            self.min_capacity, _even_ceil(self.k * self.c ** (top - level))
        )

    @property
    def n(self) -> int:
        """Genuine elements ingested so far."""
        return self._n

    @property
    def n_levels(self) -> int:
        return len(self._levels)

    @property
    def memory_elements(self) -> int:
        """Summed level capacities -- the design footprint, comparable to
        the paper framework's ``b * k``."""
        return sum(self._capacity(l) for l in range(len(self._levels)))

    @property
    def stored_elements(self) -> int:
        """Items currently held (always <= :attr:`memory_elements`)."""
        return sum(len(lvl) for lvl in self._levels)

    # -- ingest ------------------------------------------------------------

    def extend(self, values: Any) -> None:
        """Ingest *values* (any iterable of finite numbers), in order."""
        if not isinstance(values, (np.ndarray, list, tuple)):
            values = np.fromiter(
                (float(v) for v in values), dtype=np.float64
            )
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-d stream, got shape {arr.shape}"
            )
        if arr.size == 0:
            return
        if not np.isfinite(arr).all():
            raise ConfigurationError(_FINITE_MSG)
        lo = float(arr.min())
        hi = float(arr.max())
        self._min = lo if self._min is None else min(self._min, lo)
        self._max = hi if self._max is None else max(self._max, hi)
        self._n += arr.size
        if _obs.ENABLED:
            _obs.on_ingest(self, int(arr.size), int(arr.nbytes))
        level0 = self._levels[0]
        buf = arr if len(level0) == 0 else np.concatenate([level0, arr])
        self._levels[0] = buf
        self._settle()

    def insert(self, value: float) -> None:
        """Ingest one element."""
        self.extend(np.asarray([value], dtype=np.float64))

    # -- compaction --------------------------------------------------------
    #
    # The settle rule -- "while any level holds at least its capacity,
    # compact the HIGHEST such level; level 0 surrenders its oldest
    # cap(0) items, higher levels compact wholesale (keeping the newest
    # item back when the count is odd)" -- makes the schedule a pure
    # function of arrival counts.  Feeding elements one at a time or in
    # arbitrary chunks visits the exact same sequence of compactions:
    # level-0 blocks are consumed in arrival order and every upward
    # cascade (including capacity shrinks caused by a new top level)
    # completes before the next block, exactly as it would have with
    # single-element arrivals.  The batch-invariance property tests rest
    # on this.

    def _overfull(self) -> int:
        """Highest level at/over capacity, or -1."""
        for level in range(len(self._levels) - 1, -1, -1):
            if len(self._levels[level]) >= self._capacity(level):
                return level
        return -1

    def _settle(self) -> None:
        compacted = 0
        while True:
            level = self._overfull()
            if level < 0:
                break
            self._compact(level)
            compacted += 1
        if compacted and _obs.ENABLED:
            _obs.on_engine_event("kll", "compactions", compacted)

    def _compact(self, level: int) -> None:
        items = self._levels[level]
        if level == 0:
            cap = self._capacity(0)
            block = items[:cap]
            rest = items[cap:]
        else:
            if len(items) % 2:
                # odd count: the newest item stays behind (no error)
                block = items[:-1]
                rest = items[-1:]
            else:
                block = items
                rest = items[:0]
        self._levels[level] = rest
        block = np.sort(block)
        parity = (
            kernels.splitmix64_u01_scalar(
                self._parity_base, self._n_compactions
            )
            >= 0.5
        )
        promoted = block[1::2] if parity else block[0::2]
        self._n_compactions += 1
        self._compactions[level] += 1
        self._s2 += 4.0**level
        if level + 1 == len(self._levels):
            self._levels.append(np.empty(0, dtype=np.float64))
            self._compactions.append(0)
        nxt = self._levels[level + 1]
        self._levels[level + 1] = (
            promoted.copy() if len(nxt) == 0 else np.concatenate([nxt, promoted])
        )

    # -- queries -----------------------------------------------------------

    def _merged(self) -> Tuple[np.ndarray, np.ndarray]:
        """All stored items value-sorted, with cumulative weights."""
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        vals = np.concatenate(self._levels)
        weights = np.concatenate(
            [
                np.full(len(lvl), 1 << l, dtype=np.int64)
                for l, lvl in enumerate(self._levels)
            ]
        )
        order = np.argsort(vals, kind="stable")
        return vals[order], np.cumsum(weights[order])

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        """Approximate quantiles for every fraction in *phis*.

        One merge answers all fractions; ``phi`` 0 and 1 return the
        exactly tracked extremes.
        """
        phi_list = [float(p) for p in phis]
        for phi in phi_list:
            if not 0.0 <= phi <= 1.0:
                raise ConfigurationError(
                    f"quantile fractions must be in [0, 1], got {phi}"
                )
        sv, cw = self._merged()
        if _obs.ENABLED:
            _obs.on_output(self, len(phi_list))
        out: List[float] = []
        total = int(cw[-1])
        for phi in phi_list:
            if phi <= 0.0:
                out.append(float(self._min))
            elif phi >= 1.0:
                out.append(float(self._max))
            else:
                target = min(max(int(math.ceil(phi * total)), 1), total)
                idx = int(np.searchsorted(cw, target, side="left"))
                out.append(float(sv[idx]))
        return out

    def quantile(self, phi: float) -> float:
        """Approximate ``phi``-quantile."""
        return self.quantiles([phi])[0]

    def query(self, phi: float) -> float:
        """Alias of :meth:`quantile` (the pre-facade spelling)."""
        return self.quantile(phi)

    def rank(self, value: Any) -> int:
        """Approximate rank of *value*: how many elements are <= it."""
        sv, cw = self._merged()
        idx = int(np.searchsorted(sv, float(value), side="right"))
        below_eq = int(cw[idx - 1]) if idx else 0
        return min(below_eq, self._n)

    def cdf(self, value: Any) -> Any:
        """Approximate fraction of elements <= *value* (see :meth:`rank`)."""
        if isinstance(value, (list, tuple, np.ndarray)):
            return [self.rank(v) / self._n for v in value]
        return self.rank(value) / self._n

    def describe(self) -> Dict[str, Any]:
        """Summary dict: n, exact extremes, key quantiles, certified bound."""
        return describe_dict(self)

    def min(self) -> float:
        """The exact smallest element seen."""
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        return float(self._min)

    def max(self) -> float:
        """The exact largest element seen."""
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        return float(self._max)

    def error_bound(self) -> float:
        """Certified a-posteriori rank-error bound (absolute elements).

        Hoeffding over the realised compaction schedule: holds for any
        fixed rank query with probability at least ``1 - delta``.  Zero
        while no compaction has happened (the summary is still exact).
        """
        if self._s2 == 0.0:
            return 0.0
        return math.sqrt(2.0 * self._s2 * math.log(2.0 / self.delta))

    # -- merge -------------------------------------------------------------

    def absorb(self, other: "KLLSketch") -> "KLLSketch":
        """Merge *other* into this summary (the §4.9-style fan-in).

        Levels concatenate pairwise (self's items first, preserving each
        side's arrival order), the error accounting adds, and the result
        settles under the combined capacities.  Requires equal ``k`` --
        the summaries must answer the same guarantee.  Deterministic:
        the merged compaction parities continue this summary's hash
        stream at the summed compaction counter.
        """
        if not isinstance(other, KLLSketch):
            raise ConfigurationError(
                f"can only absorb another KLLSketch, got {type(other).__name__}"
            )
        if other.k != self.k:
            raise ConfigurationError(
                f"cannot merge KLL summaries with different k "
                f"({self.k} != {other.k})"
            )
        if other._n == 0:
            return self
        while len(self._levels) < len(other._levels):
            self._levels.append(np.empty(0, dtype=np.float64))
            self._compactions.append(0)
        for l, lvl in enumerate(other._levels):
            if len(lvl):
                mine = self._levels[l]
                self._levels[l] = (
                    lvl.copy() if len(mine) == 0 else np.concatenate([mine, lvl])
                )
            self._compactions[l] += other._compactions[l]
        self._n += other._n
        self._n_compactions += other._n_compactions
        self._s2 += other._s2
        if self._min is None:
            self._min, self._max = other._min, other._max
        else:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        self._settle()
        return self

    # -- serialisation -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the ``KLLSKT01`` wire format (see docs/formats.md)."""
        out = io.BytesIO()
        out.write(
            _HEADER.pack(
                KLL_MAGIC,
                KLL_FORMAT_VERSION,
                self.k,
                self.min_capacity,
                len(self._levels),
                self._n,
                self._n_compactions,
                self.seed,
                self.eps,
                self.delta,
                self.c,
                self._min if self._min is not None else float("nan"),
                self._max if self._max is not None else float("nan"),
            )
        )
        for lvl, m_l in zip(self._levels, self._compactions):
            out.write(_LEVEL_HEADER.pack(len(lvl), m_l))
            out.write(np.ascontiguousarray(lvl, dtype="<f8").tobytes())
        return out.getvalue()

    @classmethod
    def read_from(cls, fh: BinaryIO) -> "KLLSketch":
        """Read one serialised summary from *fh* (self-delimiting)."""
        from .serialize import _read_exact

        raw = _read_exact(fh, _HEADER.size, "kll header")
        (
            magic,
            version,
            k,
            min_cap,
            n_levels,
            n,
            n_compactions,
            seed,
            eps,
            delta,
            c,
            minv,
            maxv,
        ) = _HEADER.unpack(raw)
        if magic != KLL_MAGIC:
            raise StorageError(
                f"bad magic {magic!r}: not a serialised KLL sketch"
            )
        if version != KLL_FORMAT_VERSION:
            raise StorageError(f"unsupported KLL format version {version}")
        if n_levels < 1:
            raise StorageError("corrupt KLL sketch: no levels")
        sk = cls(eps=eps, k=k, delta=delta, seed=seed)
        if min_cap != sk.min_capacity or c != sk.c:
            raise StorageError(
                "corrupt KLL sketch: unsupported capacity schedule"
            )
        sk._n = n
        sk._n_compactions = n_compactions
        sk._min = None if math.isnan(minv) else minv
        sk._max = None if math.isnan(maxv) else maxv
        sk._levels = []
        sk._compactions = []
        s2 = 0.0
        for l in range(n_levels):
            rec = _read_exact(fh, _LEVEL_HEADER.size, "kll level header")
            count, m_l = _LEVEL_HEADER.unpack(rec)
            values = np.frombuffer(
                _read_exact(fh, 8 * count, "kll level payload"), dtype="<f8"
            ).copy()
            sk._levels.append(values)
            sk._compactions.append(m_l)
            s2 += m_l * 4.0**l
        sk._s2 = s2
        return sk

    @classmethod
    def from_bytes(cls, raw: bytes) -> "KLLSketch":
        """Deserialise from bytes produced by :meth:`to_bytes`."""
        fh = io.BytesIO(raw)
        sk = cls.read_from(fh)
        if fh.read(1):
            raise StorageError(
                "corrupt KLL sketch: trailing bytes after payload"
            )
        return sk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KLLSketch(eps={self.eps}, k={self.k}, n={self._n}, "
            f"levels={len(self._levels)})"
        )
