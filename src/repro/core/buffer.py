"""Buffers: the unit of memory in the MRL quantile framework.

The framework of Manku, Rajagopalan and Lindsay (SIGMOD 1998, Section 3)
organises all working memory as ``b`` buffers of ``k`` elements each.  A
buffer is always *sorted*, carries an integer *weight* (how many input
elements each stored element represents) and, for the level-based collapsing
policy, an integer *level*.

The last buffer filled from a stream may be only partially populated; the
paper pads it with an equal number of ``-inf`` and ``+inf`` sentinels.  We
keep explicit counts of those pads (``n_low_pad`` / ``n_high_pad``) so that
rank arithmetic against the *original* (un-augmented) dataset stays exact
even when the deficit is odd.

Two element domains are supported:

* the *numeric* fast path stores a ``numpy.float64`` array and pads with
  ``-numpy.inf`` / ``+numpy.inf``;
* the *generic* path stores a plain Python list of any mutually comparable
  values and pads with the :data:`MINUS_INF` / :data:`PLUS_INF` sentinels
  defined here, which compare below / above every other value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "Buffer",
    "MINUS_INF",
    "PLUS_INF",
    "is_sentinel",
]


class _Extreme:
    """A totally-ordered sentinel comparing below or above everything.

    Instances are singletons (:data:`MINUS_INF`, :data:`PLUS_INF`).  They
    order consistently against arbitrary values, including each other, which
    lets the generic merge code treat padded buffers uniformly.
    """

    __slots__ = ("_sign",)

    def __init__(self, sign: int) -> None:
        self._sign = sign

    def __lt__(self, other: Any) -> bool:
        if other is self:
            return False
        if isinstance(other, _Extreme):
            return self._sign < other._sign
        return self._sign < 0

    def __gt__(self, other: Any) -> bool:
        if other is self:
            return False
        if isinstance(other, _Extreme):
            return self._sign > other._sign
        return self._sign > 0

    def __le__(self, other: Any) -> bool:
        return self is other or self < other

    def __ge__(self, other: Any) -> bool:
        return self is other or self > other

    def __eq__(self, other: Any) -> bool:
        return self is other

    def __hash__(self) -> int:
        return hash(("_Extreme", self._sign))

    def __repr__(self) -> str:
        return "-INF" if self._sign < 0 else "+INF"


MINUS_INF = _Extreme(-1)
PLUS_INF = _Extreme(+1)


def is_sentinel(value: Any) -> bool:
    """Return ``True`` if *value* is one of the padding sentinels."""
    return isinstance(value, _Extreme)


_buffer_ids = itertools.count()


@dataclass
class Buffer:
    """A full, sorted, weighted buffer of ``k`` (logical) elements.

    Parameters
    ----------
    values:
        The sorted contents, *including* any padding sentinels.  Either a
        ``numpy.ndarray`` of ``float64`` or a Python list.
    weight:
        How many original input elements each stored element stands for.
        Leaf buffers have weight 1; collapse outputs carry the sum of their
        inputs' weights.
    level:
        The level assigned by the collapsing policy (0 for fresh leaves
        under the new policy; unused by Munro-Paterson, which keys on
        weight instead).
    n_low_pad / n_high_pad:
        How many leading ``-inf`` / trailing ``+inf`` sentinels the buffer
        holds.  Only the last leaf of a stream is ever padded, and padded
        leaves always have weight 1 when created.
    """

    values: Any
    weight: int = 1
    level: int = 0
    n_low_pad: int = 0
    n_high_pad: int = 0
    buffer_id: int = field(default_factory=lambda: next(_buffer_ids))

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ConfigurationError(
                f"buffer weight must be >= 1, got {self.weight}"
            )
        if self.n_low_pad < 0 or self.n_high_pad < 0:
            raise ConfigurationError("pad counts cannot be negative")

    # -- basic introspection ------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    @property
    def k(self) -> int:
        """The buffer capacity (number of stored elements, pads included)."""
        return len(self.values)

    @property
    def n_real(self) -> int:
        """Number of stored elements that are genuine data, not padding."""
        return len(self.values) - self.n_low_pad - self.n_high_pad

    @property
    def is_numeric(self) -> bool:
        """``True`` when the buffer stores a numpy array (fast path)."""
        return isinstance(self.values, np.ndarray)

    @property
    def weighted_count(self) -> int:
        """Total augmented elements this buffer represents (``weight * k``)."""
        return self.weight * len(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Buffer(id={self.buffer_id}, k={self.k}, weight={self.weight}, "
            f"level={self.level}, pads=({self.n_low_pad},{self.n_high_pad}))"
        )

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_values(
        cls,
        raw: Sequence[Any] | np.ndarray,
        k: int,
        *,
        level: int = 0,
        sort: bool = True,
    ) -> "Buffer":
        """Build a weight-1 leaf buffer of capacity *k* from *raw* values.

        If ``len(raw) < k`` the buffer is padded with an (as equal as
        possible) number of ``-inf`` and ``+inf`` sentinels, exactly as the
        NEW operation of the paper prescribes.  When the deficit is odd the
        extra sentinel goes to the low side; the pad counts keep rank
        arithmetic exact regardless.
        """
        if k <= 0:
            raise ConfigurationError(f"buffer capacity k must be >= 1, got {k}")
        n = len(raw)
        if n > k:
            raise ConfigurationError(
                f"cannot place {n} elements into a buffer of capacity {k}"
            )
        if n == 0:
            raise ConfigurationError("refusing to create an all-padding buffer")
        deficit = k - n
        n_low = (deficit + 1) // 2
        n_high = deficit // 2
        if isinstance(raw, np.ndarray) and raw.dtype.kind in "fiu":
            data = np.asarray(raw, dtype=np.float64)
            if sort:
                data = np.sort(data)
            if deficit:
                data = np.concatenate(
                    [np.full(n_low, -np.inf), data, np.full(n_high, np.inf)]
                )
            return cls(
                values=data,
                weight=1,
                level=level,
                n_low_pad=n_low,
                n_high_pad=n_high,
            )
        data_list = list(raw)
        if sort:
            data_list.sort()
        values = (
            [MINUS_INF] * n_low + data_list + [PLUS_INF] * n_high
            if deficit
            else data_list
        )
        return cls(
            values=values,
            weight=1,
            level=level,
            n_low_pad=n_low,
            n_high_pad=n_high,
        )

    # -- views ------------------------------------------------------------------

    def real_values(self) -> Iterable[Any]:
        """Iterate over the genuine (non-padding) stored elements."""
        hi = len(self.values) - self.n_high_pad
        if self.is_numeric:
            return self.values[self.n_low_pad : hi]
        return self.values[self.n_low_pad : hi]
