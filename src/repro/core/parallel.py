"""The parallel version of the algorithm (Section 4.9).

The new algorithm parallelises by partitioning the input stream among P
workers (statically or dynamically), running an independent framework on
each partition, and concatenating the workers' final full buffers ("root
gates") into the input of a single final OUTPUT.  For very high degrees of
parallelism the paper suggests a two-stage variant: partition the root
buffers onto fewer combiner nodes, collapse there, and finish on a single
node.

Two execution backends are provided:

``backend="sync"`` (default)
    Physical parallelism is irrelevant to the accuracy analysis -- only
    the dataflow matters -- so the sync backend executes workers
    sequentially in-process while reproducing the exact buffer flow.

``backend="process"``
    True multiprocessing: each worker is a separate OS process running its
    own :class:`~repro.core.framework.QuantileFramework` over its stream
    partition, fed chunks through a pipe.  Queries snapshot every worker
    -- the worker returns its summary in the safe binary format of
    :mod:`repro.core.serialize` (never pickled framework objects) -- and
    the parent merges the deserialised summaries through the very same
    root-buffer concatenation / OUTPUT path as the sync backend, so the
    certified Lemma 5 accounting is byte-for-byte the one the sequential
    analysis already covers.  Snapshots do not disturb the workers:
    ingest may continue after a query.  The process backend accepts
    numeric streams only (the wire format stores float64 buffers) and
    named collapse policies (the policy must be reconstructible in the
    worker process).

In either case the error analysis applies unchanged: the combined tree is
just a forest whose roots are merged under one OUTPUT node, and the
certified bound is derived from the summed ``W``/``C`` statistics and the
heaviest surviving buffer, exactly as in Lemma 5 (whose proof only needs
leaves of weight one and internal nodes with at least two children).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, List, Optional, Sequence

import numpy as np

from . import serialize
from .buffer import Buffer
from .errors import ConfigurationError, EmptySummaryError, WorkerError
from .framework import QuantileFramework
from .operations import OffsetSelector, collapse, output

__all__ = ["ParallelQuantileEngine", "merge_frameworks"]

_BACKENDS = ("sync", "process")


def merge_frameworks(
    workers: Sequence[QuantileFramework],
    phis: Sequence[float],
) -> List[Any]:
    """Final OUTPUT over the concatenated root buffers of *workers*.

    Every worker flushes its staged tail (as a real padded buffer) and
    contributes its full buffers; a single weighted OUTPUT over the union
    answers all quantiles.  This is the moderate-parallelism path of
    Section 4.9 (one final phase on a single node).
    """
    buffers: List[Buffer] = []
    n_total = 0
    for fw in workers:
        if fw.n == 0:
            continue
        fw.finish(phis=[0.5])  # flush tail + record OUTPUT locally
        buffers.extend(fw.full_buffers)
        n_total += fw.n
    if n_total == 0:
        raise EmptySummaryError("no worker ingested any elements")
    return output(buffers, list(phis), n_total)


def _worker_main(
    conn,
    b: int,
    k: int,
    policy: str,
    offset_mode: str,
    kernels: Optional[bool] = None,
) -> None:
    """Worker-process loop: ingest chunks, answer snapshot requests.

    ``extend`` commands are fire-and-forget (pipe backpressure throttles
    the parent naturally); the first ingest failure is remembered and
    reported on the next ``snapshot``/``close`` round-trip instead of
    being lost.
    """
    fw = QuantileFramework(
        b, k, policy=policy, offset_mode=offset_mode, kernels=kernels
    )
    error: Optional[str] = None
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        cmd = msg[0]
        if cmd == "extend":
            if error is None:
                try:
                    fw.extend(msg[1])
                except Exception as exc:  # noqa: BLE001 - relayed to parent
                    error = f"{type(exc).__name__}: {exc}"
        elif cmd == "snapshot":
            if error is not None:
                conn.send(("error", error))
            else:
                try:
                    conn.send(("ok", serialize.dumps(fw)))
                except Exception as exc:  # noqa: BLE001 - relayed to parent
                    conn.send(("error", f"{type(exc).__name__}: {exc}"))
        elif cmd == "close":
            conn.send(("ok", error))
            break
    conn.close()


class ParallelQuantileEngine:
    """P-way partitioned quantile computation (Section 4.9).

    Parameters
    ----------
    n_workers:
        The degree of parallelism P.
    b, k:
        Per-worker buffer configuration (every worker gets its own
        ``b * k`` elements, mirroring per-node memory on an MPP system).
        May be omitted when *eps* is given -- the per-worker plan is then
        sized with :func:`~repro.core.parameters.optimal_parameters` for
        ``(eps, n)`` (``n`` defaulting to the library's standard design
        capacity), the facade spelling.
    eps, n:
        Accuracy-first sizing (mutually exclusive with explicit ``b, k``):
        every worker is configured for an ``eps``-approximate summary of
        ``n`` elements.
    policy / offset_mode:
        Forwarded to every worker's framework.
    kernels:
        Per-engine kernel override forwarded to every worker framework
        and the final OUTPUT (``None`` follows the global switch).
    combine_fanin:
        When set (the >100-node regime of Section 4.9), worker root
        buffers are first merged in groups of at most this many workers by
        intermediate COLLAPSE operations before the final OUTPUT, bounding
        the fan-in of the last node.
    backend:
        ``"sync"`` (sequential in-process workers, the default) or
        ``"process"`` (one OS process per worker; see the module
        docstring).  Both produce the identical buffer dataflow for the
        same dispatch sequence.

    Elements are routed round-robin by default (``dispatch``) or appended
    to an explicit worker via ``extend_worker`` for static range
    partitioning experiments.  The engine is a context manager; with the
    process backend, ``close()`` (or leaving the ``with`` block) shuts the
    worker processes down.
    """

    def __init__(
        self,
        n_workers: int,
        b: Optional[int] = None,
        k: Optional[int] = None,
        *,
        policy: str = "new",
        offset_mode: str = "alternate",
        combine_fanin: Optional[int] = None,
        backend: str = "sync",
        eps: Optional[float] = None,
        n: Optional[int] = None,
        kernels: Optional[bool] = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {n_workers}")
        if (b is None) != (k is None):
            raise ConfigurationError("give b and k together, or neither")
        if b is None:
            if eps is None:
                raise ConfigurationError(
                    "give either explicit (b, k) or eps= for accuracy-first "
                    "sizing"
                )
            from .parameters import optimal_parameters
            from .sketch import DEFAULT_DESIGN_N

            plan = optimal_parameters(
                eps, DEFAULT_DESIGN_N if n is None else int(n), policy=policy
            )
            b, k = plan.b, plan.k
        elif eps is not None:
            raise ConfigurationError(
                "explicit (b, k) and eps= sizing are mutually exclusive"
            )
        if combine_fanin is not None and combine_fanin < 2:
            raise ConfigurationError("combine_fanin must be >= 2")
        if backend not in _BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {_BACKENDS}, got {backend!r}"
            )
        if backend == "process" and not isinstance(policy, str):
            raise ConfigurationError(
                "backend='process' needs a named policy (the policy object "
                "must be reconstructible inside the worker process)"
            )
        self.backend = backend
        self.n_workers = n_workers
        self.b = b
        self.k = k
        self.combine_fanin = combine_fanin
        self._kernels = kernels
        self._rr = 0
        self._offsets = OffsetSelector(offset_mode)
        self._closed = False
        if backend == "process":
            self.workers: List[QuantileFramework] = []
            self._n_dispatched = 0
            ctx = multiprocessing.get_context()
            self._procs = []
            self._conns = []
            for _ in range(n_workers):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, b, k, policy, offset_mode, kernels),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        else:
            self.workers = [
                QuantileFramework(
                    b, k, policy=policy, offset_mode=offset_mode, kernels=kernels
                )
                for _ in range(n_workers)
            ]
            self._procs = []
            self._conns = []

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self) -> "ParallelQuantileEngine":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Shut worker processes down (no-op for the sync backend)."""
        if self._closed or self.backend != "process":
            self._closed = True
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(2.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            finally:
                conn.close()
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=1.0)

    def _require_open(self) -> None:
        if self.backend == "process" and self._closed:
            raise ConfigurationError("engine is closed")

    # -- introspection -----------------------------------------------------

    @property
    def n(self) -> int:
        if self.backend == "process":
            return self._n_dispatched
        return sum(fw.n for fw in self.workers)

    @property
    def memory_elements(self) -> int:
        """Aggregate memory across all workers (P * b * k)."""
        return self.n_workers * self.b * self.k

    # -- ingest ------------------------------------------------------------

    def dispatch(self, data: "np.ndarray | Sequence[Any]") -> None:
        """Split *data* into contiguous blocks, one per worker, round-robin.

        Contiguous blocks model the dynamic stream partitioning of a real
        system (each worker sees a contiguous run of the input).
        """
        self._require_open()
        arr = np.asarray(data) if not isinstance(data, np.ndarray) else data
        if len(arr) == 0:
            return
        if self.backend == "process" and arr.dtype.kind not in "fiu":
            raise ConfigurationError(
                "backend='process' supports numeric streams only (worker "
                "summaries travel in the numeric wire format)"
            )
        pieces = np.array_split(arr, self.n_workers)
        for piece in pieces:
            if len(piece):
                self._feed(self._rr, piece)
                self._rr = (self._rr + 1) % self.n_workers

    def extend_worker(self, worker: int, data: "np.ndarray | Sequence[Any]") -> None:
        """Feed *data* to one specific worker (static partitioning)."""
        self._require_open()
        if self.backend == "process":
            arr = np.asarray(data)
            if arr.dtype.kind not in "fiu":
                raise ConfigurationError(
                    "backend='process' supports numeric streams only (worker "
                    "summaries travel in the numeric wire format)"
                )
            if len(arr):
                self._feed(worker, arr)
        else:
            self.workers[worker].extend(data)

    def _feed(self, worker: int, piece: np.ndarray) -> None:
        if self.backend == "process":
            try:
                self._conns[worker].send(("extend", piece))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerError(f"worker {worker} is gone: {exc}") from exc
            self._n_dispatched += len(piece)
        else:
            self.workers[worker].extend(piece)

    # -- collection --------------------------------------------------------

    def _snapshot(self) -> List[QuantileFramework]:
        """Fetch every process worker's summary without disturbing it."""
        for i, conn in enumerate(self._conns):
            try:
                conn.send(("snapshot",))
            except (BrokenPipeError, OSError) as exc:
                raise WorkerError(f"worker {i} is gone: {exc}") from exc
        frameworks = []
        for i, conn in enumerate(self._conns):
            try:
                status, payload = conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerError(f"worker {i} died: {exc}") from exc
            if status != "ok":
                raise WorkerError(f"worker {i} failed: {payload}")
            frameworks.append(serialize.loads(payload))
        return frameworks

    def _frameworks(self) -> List[QuantileFramework]:
        """The worker summaries a query should read.

        Sync backend: the live worker objects (queries flush their tails
        in place, as before).  Process backend: deserialised snapshots --
        the remote workers keep streaming undisturbed.
        """
        if self.backend == "process":
            self._require_open()
            return self._snapshot()
        return self.workers

    @staticmethod
    def _collect_buffers(frameworks: Sequence[QuantileFramework]) -> List[Buffer]:
        buffers: List[Buffer] = []
        for fw in frameworks:
            if fw.n == 0:
                continue
            fw.finish(phis=[0.5])
            buffers.extend(fw.full_buffers)
        return buffers

    # -- queries -----------------------------------------------------------

    def quantiles(self, phis: Sequence[float]) -> List[Any]:
        """Gather root buffers (optionally pre-combining) and OUTPUT."""
        frameworks = self._frameworks()
        n_total = sum(fw.n for fw in frameworks)
        if n_total == 0:
            raise EmptySummaryError("no worker ingested any elements")
        buffers = self._collect_buffers(frameworks)
        if self.combine_fanin is not None:
            buffers = self._pre_combine(buffers)
        return output(
            buffers, list(phis), n_total, use_kernels=self._kernels
        )

    def query(self, phi: float) -> Any:
        return self.quantiles([phi])[0]

    def quantile(self, phi: float) -> Any:
        """Approximate ``phi``-quantile (uniform query-surface alias)."""
        return self.quantiles([phi])[0]

    def rank(self, value: Any) -> int:
        """Approximate combined rank of *value* across all workers."""
        from .operations import weighted_rank

        frameworks = self._frameworks()
        n_total = sum(fw.n for fw in frameworks)
        if n_total == 0:
            raise EmptySummaryError("no worker ingested any elements")
        buffers = self._collect_buffers(frameworks)
        _below, below_eq = weighted_rank(buffers, value)
        return min(below_eq, n_total)

    def cdf(self, value: Any) -> Any:
        """Approximate combined CDF at a scalar or sequence of values."""
        if isinstance(value, (list, tuple, np.ndarray)):
            return [self.rank(v) / self.n for v in value]
        return self.rank(value) / self.n

    def describe(self) -> dict:
        """Summary dict: n, extremes, key quantiles, certified bound."""
        from .protocols import describe_dict

        return describe_dict(self)

    def _pre_combine(self, buffers: List[Buffer]) -> List[Buffer]:
        """Two-stage recombination for very high parallelism (Section 4.9).

        Root buffers are partitioned into groups of at most
        ``combine_fanin`` and each group is COLLAPSEd on an intermediate
        node; the final OUTPUT then sees one buffer per group.
        """
        assert self.combine_fanin is not None
        combined: List[Buffer] = []
        for i in range(0, len(buffers), self.combine_fanin):
            group = buffers[i : i + self.combine_fanin]
            if len(group) == 1:
                combined.append(group[0])
            else:
                weight = sum(b.weight for b in group)
                combined.append(
                    collapse(
                        group,
                        self._offsets.offset_for(weight),
                        use_kernels=self._kernels,
                    )
                )
        return combined

    def error_bound(self) -> float:
        """Certified rank bound for the combined answer (Lemma 5).

        ``W`` and ``C`` add across workers (the union of the trees is one
        forest under the final root); ``w_max`` is the heaviest buffer the
        final OUTPUT reads.  Pre-combining adds its own collapses, which
        are accounted for at query time, so this bound is computed from
        the workers' statistics plus the current surviving buffers.
        """
        frameworks = self._frameworks()
        total_w = sum(fw.sum_collapse_weights for fw in frameworks)
        total_c = sum(fw.n_collapses for fw in frameworks)
        w_max = max(
            (
                buf.weight
                for fw in frameworks
                for buf in fw.full_buffers
            ),
            default=1,
        )
        if total_c == 0:
            return 0.0
        return (total_w - total_c - 1) / 2.0 + w_max
