"""The parallel version of the algorithm (Section 4.9).

The new algorithm parallelises by partitioning the input stream among P
workers (statically or dynamically), running an independent framework on
each partition, and concatenating the workers' final full buffers ("root
gates") into the input of a single final OUTPUT.  For very high degrees of
parallelism the paper suggests a two-stage variant: partition the root
buffers onto fewer combiner nodes, collapse there, and finish on a single
node.

Physical parallelism is irrelevant to the accuracy analysis -- only the
dataflow matters -- so :class:`ParallelQuantileEngine` executes workers
sequentially while reproducing the exact buffer flow.  The error analysis
still applies: the combined tree is just a forest whose roots are merged
under one OUTPUT node, and the certified bound is derived from the summed
``W``/``C`` statistics and the heaviest surviving buffer, exactly as in
Lemma 5 (whose proof only needs leaves of weight one and internal nodes
with at least two children).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from .buffer import Buffer
from .errors import ConfigurationError, EmptySummaryError
from .framework import QuantileFramework
from .operations import OffsetSelector, collapse, output

__all__ = ["ParallelQuantileEngine", "merge_frameworks"]


def merge_frameworks(
    workers: Sequence[QuantileFramework],
    phis: Sequence[float],
) -> List[Any]:
    """Final OUTPUT over the concatenated root buffers of *workers*.

    Every worker flushes its staged tail (as a real padded buffer) and
    contributes its full buffers; a single weighted OUTPUT over the union
    answers all quantiles.  This is the moderate-parallelism path of
    Section 4.9 (one final phase on a single node).
    """
    buffers: List[Buffer] = []
    n_total = 0
    for fw in workers:
        if fw.n == 0:
            continue
        fw.finish(phis=[0.5])  # flush tail + record OUTPUT locally
        buffers.extend(fw.full_buffers)
        n_total += fw.n
    if n_total == 0:
        raise EmptySummaryError("no worker ingested any elements")
    return output(buffers, list(phis), n_total)


class ParallelQuantileEngine:
    """P-way partitioned quantile computation (Section 4.9).

    Parameters
    ----------
    n_workers:
        The degree of parallelism P.
    b, k:
        Per-worker buffer configuration (every worker gets its own
        ``b * k`` elements, mirroring per-node memory on an MPP system).
    policy / offset_mode:
        Forwarded to every worker's framework.
    combine_fanin:
        When set (the >100-node regime of Section 4.9), worker root
        buffers are first merged in groups of at most this many workers by
        intermediate COLLAPSE operations before the final OUTPUT, bounding
        the fan-in of the last node.

    Elements are routed round-robin by default (``dispatch``) or appended
    to an explicit worker via ``extend_worker`` for static range
    partitioning experiments.
    """

    def __init__(
        self,
        n_workers: int,
        b: int,
        k: int,
        *,
        policy: str = "new",
        offset_mode: str = "alternate",
        combine_fanin: Optional[int] = None,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"need >= 1 worker, got {n_workers}")
        if combine_fanin is not None and combine_fanin < 2:
            raise ConfigurationError("combine_fanin must be >= 2")
        self.workers = [
            QuantileFramework(b, k, policy=policy, offset_mode=offset_mode)
            for _ in range(n_workers)
        ]
        self.combine_fanin = combine_fanin
        self._rr = 0
        self._offsets = OffsetSelector(offset_mode)

    @property
    def n(self) -> int:
        return sum(fw.n for fw in self.workers)

    @property
    def memory_elements(self) -> int:
        """Aggregate memory across all workers (P * b * k)."""
        return sum(fw.memory_elements for fw in self.workers)

    def dispatch(self, data: "np.ndarray | Sequence[Any]") -> None:
        """Split *data* into contiguous blocks, one per worker, round-robin.

        Contiguous blocks model the dynamic stream partitioning of a real
        system (each worker sees a contiguous run of the input).
        """
        arr = np.asarray(data) if not isinstance(data, np.ndarray) else data
        n_workers = len(self.workers)
        if len(arr) == 0:
            return
        pieces = np.array_split(arr, n_workers)
        for piece in pieces:
            if len(piece):
                self.workers[self._rr].extend(piece)
                self._rr = (self._rr + 1) % n_workers

    def extend_worker(self, worker: int, data: "np.ndarray | Sequence[Any]") -> None:
        """Feed *data* to one specific worker (static partitioning)."""
        self.workers[worker].extend(data)

    def _collect_buffers(self) -> List[Buffer]:
        buffers: List[Buffer] = []
        for fw in self.workers:
            if fw.n == 0:
                continue
            fw.finish(phis=[0.5])
            buffers.extend(fw.full_buffers)
        return buffers

    def quantiles(self, phis: Sequence[float]) -> List[Any]:
        """Gather root buffers (optionally pre-combining) and OUTPUT."""
        n_total = self.n
        if n_total == 0:
            raise EmptySummaryError("no worker ingested any elements")
        buffers = self._collect_buffers()
        if self.combine_fanin is not None:
            buffers = self._pre_combine(buffers)
        return output(buffers, list(phis), n_total)

    def query(self, phi: float) -> Any:
        return self.quantiles([phi])[0]

    def _pre_combine(self, buffers: List[Buffer]) -> List[Buffer]:
        """Two-stage recombination for very high parallelism (Section 4.9).

        Root buffers are partitioned into groups of at most
        ``combine_fanin`` and each group is COLLAPSEd on an intermediate
        node; the final OUTPUT then sees one buffer per group.
        """
        assert self.combine_fanin is not None
        combined: List[Buffer] = []
        for i in range(0, len(buffers), self.combine_fanin):
            group = buffers[i : i + self.combine_fanin]
            if len(group) == 1:
                combined.append(group[0])
            else:
                weight = sum(b.weight for b in group)
                combined.append(
                    collapse(group, self._offsets.offset_for(weight))
                )
        return combined

    def error_bound(self) -> float:
        """Certified rank bound for the combined answer (Lemma 5).

        ``W`` and ``C`` add across workers (the union of the trees is one
        forest under the final root); ``w_max`` is the heaviest buffer the
        final OUTPUT reads.  Pre-combining adds its own collapses, which
        are accounted for at query time, so this bound is computed from
        the workers' statistics plus the current surviving buffers.
        """
        total_w = sum(fw.sum_collapse_weights for fw in self.workers)
        total_c = sum(fw.n_collapses for fw in self.workers)
        w_max = max(
            (
                buf.weight
                for fw in self.workers
                for buf in fw.full_buffers
            ),
            default=1,
        )
        if total_c == 0:
            return 0.0
        return (total_w - total_c - 1) / 2.0 + w_max
