"""Vectorised hot-path kernels for the MRL framework's numeric fast path.

Every expensive step of the framework funnels through two primitives:
merging the contents of ``c`` buffers into one weighted sorted sequence
(COLLAPSE, OUTPUT, rank queries) and sorting the raw stream into fresh
buffers (NEW).  Both can exploit a structural invariant the generic code
ignores: **every** :class:`~repro.core.buffer.Buffer` is *already sorted*
by construction -- leaves are sorted on creation and COLLAPSE outputs are
selections from a sorted merge.  This module holds the vectorised kernels
that exploit it:

``merge_sorted_runs``
    a stable c-way merge of sorted weighted runs.  Two strategies are
    provided: ``"searchsorted"`` (a pairwise tournament merge -- each round
    computes every element's position in the merged output with two
    ``np.searchsorted`` calls and scatters) and ``"stable"`` (concatenate
    and ``np.sort(kind="stable")``; numpy's stable sort is timsort, whose
    run detection + galloping merge *is* a c-way merge of the pre-sorted
    runs, at a fraction of the Python-call overhead for small runs).
    ``"auto"`` picks by input size: measured on this code base the
    explicit pairwise merge only amortises its extra numpy-call overhead
    for large merges, so small COLLAPSEs take the timsort route.

``weighted_select_runs``
    weighted positional selection straight off sorted runs.  The dominant
    COLLAPSE case (all inputs share one weight -- e.g. every leaf collapse)
    degenerates to pure index arithmetic: position ``t`` of the weighted
    sequence is element ``(t - 1) // w`` of the plain merge, so no weight
    vector, cumsum or binary search is needed at all.  Mixed weights use a
    stable argsort plus a cumulative-weight search, with the per-element
    weight vector derived from the argsort permutation itself (element
    ``order[i]`` came from run ``order[i] // k`` when all runs share a
    length) instead of materialising per-run weight arrays.

``weighted_select_argsort``
    the reference implementation (global stable argsort over the
    concatenated values, exactly the pre-kernel code path).  It is kept
    callable forever: the property tests assert the kernels match it
    bit-for-bit, and it is the automatic fallback whenever a kernel
    precondition does not hold or the kernels are disabled.

``collapse_pad_counts``
    O(1) padding arithmetic for COLLAPSE outputs.  Padding sentinels sort
    to the extremes, so the merged weighted sequence starts with exactly
    ``sum(n_low_pad * weight)`` positions of ``-inf`` and ends with
    ``sum(n_high_pad * weight)`` positions of ``+inf``; counting selected
    targets inside those spans replaces two full ``isinf`` scans of the
    output.

Disabling the kernels (``REPRO_KERNELS=0`` in the environment, or
:func:`set_enabled`) routes every caller through the reference argsort
path; the results are identical either way, which the test suite asserts.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import hooks as _obs

__all__ = [
    "is_enabled",
    "set_enabled",
    "merge_sorted_runs",
    "weighted_select_runs",
    "weighted_select_argsort",
    "collapse_pad_counts",
    "sort_rows",
]

# Pairwise searchsorted merging issues ~6 numpy calls per merge round; below
# this many total elements the timsort route wins on call overhead alone.
_SEARCHSORTED_MIN_ELEMENTS = 1 << 16

_enabled = os.environ.get("REPRO_KERNELS", "1").lower() not in (
    "0",
    "false",
    "off",
)


def is_enabled() -> bool:
    """Whether the vectorised kernels are active (vs the argsort fallback)."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Globally enable/disable the kernels (used by tests and benchmarks)."""
    global _enabled
    _enabled = bool(flag)


# -- merging -----------------------------------------------------------------


def _merge_two(
    va: np.ndarray,
    wa: np.ndarray,
    vb: np.ndarray,
    wb: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable merge of two sorted weighted runs via positional scatter.

    Each element's slot in the merged output is its own index plus the
    number of elements of the *other* run that precede it; ties break
    towards run ``a`` (``side="left"`` / ``"right"``), matching the
    stability of a concatenated ``[a, b]`` argsort.
    """
    na, nb = len(va), len(vb)
    out_v = np.empty(na + nb, dtype=va.dtype)
    out_w = np.empty(na + nb, dtype=np.int64)
    ia = np.arange(na, dtype=np.intp) + np.searchsorted(vb, va, side="left")
    ib = np.arange(nb, dtype=np.intp) + np.searchsorted(va, vb, side="right")
    out_v[ia] = va
    out_w[ia] = wa
    out_v[ib] = vb
    out_w[ib] = wb
    return out_v, out_w


def merge_sorted_runs(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    *,
    strategy: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge sorted *runs* into one sorted sequence with per-element weights.

    Equal values keep run order (run 0 before run 1, ...), exactly like a
    stable argsort over the concatenation, so downstream weighted rank
    arithmetic is bit-identical across strategies.

    Parameters
    ----------
    runs:
        Sorted 1-d float64 arrays (each a buffer's ``values``).
    weights:
        One integer weight per run.
    strategy:
        ``"stable"`` (concatenate + timsort), ``"searchsorted"`` (pairwise
        tournament merge) or ``"auto"``.
    """
    if len(runs) != len(weights) or not runs:
        raise ValueError("need one weight per run and at least one run")
    if len(runs) == 1:
        return runs[0], np.full(len(runs[0]), weights[0], dtype=np.int64)
    total = sum(len(r) for r in runs)
    if strategy == "auto":
        strategy = (
            "searchsorted"
            if total >= _SEARCHSORTED_MIN_ELEMENTS
            else "stable"
        )
    if strategy == "searchsorted":
        items: List[Tuple[np.ndarray, np.ndarray]] = [
            (np.asarray(r), np.full(len(r), w, dtype=np.int64))
            for r, w in zip(runs, weights)
        ]
        # Tournament order pairs neighbours, so equal elements stay grouped
        # by ascending original run index at every round.
        while len(items) > 1:
            merged = [
                _merge_two(*items[i], *items[i + 1])
                for i in range(0, len(items) - 1, 2)
            ]
            if len(items) % 2:
                merged.append(items[-1])
            items = merged
        return items[0]
    if strategy != "stable":
        raise ValueError(f"unknown merge strategy {strategy!r}")
    vals = np.concatenate(runs)
    order = np.argsort(vals, kind="stable")
    lengths = np.fromiter((len(r) for r in runs), dtype=np.int64)
    run_of = np.repeat(np.arange(len(runs), dtype=np.intp), lengths)
    warr = np.asarray(weights, dtype=np.int64)
    return vals[order], warr[run_of[order]]


# -- weighted selection ------------------------------------------------------


def weighted_select_argsort(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    targets: np.ndarray,
) -> np.ndarray:
    """Reference weighted selection: global stable argsort + cumsum.

    This is the pre-kernel implementation, kept verbatim as the fallback
    and as the oracle for the equivalence property tests.
    """
    vals = np.concatenate(runs)
    wts = np.concatenate(
        [np.full(len(r), w, dtype=np.int64) for r, w in zip(runs, weights)]
    )
    order = np.argsort(vals, kind="stable")
    cum = np.cumsum(wts[order])
    idx = np.searchsorted(cum, np.asarray(targets, dtype=np.int64), side="left")
    return vals[order][idx]


def weighted_select_runs(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    targets: np.ndarray,
    *,
    enabled: Optional[bool] = None,
) -> np.ndarray:
    """Select the elements at weighted positions *targets* of sorted *runs*.

    ``targets`` are 1-indexed positions into the sequence obtained by
    repeating each element of run ``i`` ``weights[i]`` times and sorting
    everything together; the repeats are never materialised.  Results are
    identical to :func:`weighted_select_argsort` for any input; the runs
    being sorted only makes it faster (numpy's stable sorts gallop through
    pre-sorted runs), it is not required for correctness of this entry
    point.  *enabled* overrides the global kernel switch for this call
    (``None`` follows it); results are bit-identical either way.
    """
    if not (_enabled if enabled is None else enabled):
        if _obs.ENABLED:
            _obs.on_kernel("weighted_select", "argsort")
        return weighted_select_argsort(runs, weights, targets)
    if _obs.ENABLED:
        _obs.on_kernel("weighted_select", "runs")
    targets = np.asarray(targets, dtype=np.int64)
    w0 = weights[0]
    uniform = True
    for w in weights:
        if w != w0:
            uniform = False
            break
    if uniform:
        # Uniform weight: weighted position t is plain-merge index
        # (t-1) // w -- no weight vector, cumsum or search needed.
        if len(runs) == 1:
            merged = runs[0]
        else:
            merged = np.sort(np.concatenate(runs), kind="stable")
        return merged[(targets - 1) // int(w0)]
    warr = np.asarray(weights, dtype=np.int64)
    vals = np.concatenate(runs)
    order = np.argsort(vals, kind="stable")
    k = len(runs[0])
    if all(len(r) == k for r in runs):
        # Equal-length runs: element order[i] of the concatenation came
        # from run order[i] // k, giving its weight without materialising
        # a per-element weight vector.
        cum = np.cumsum(warr[order // k])
    else:
        lengths = np.fromiter((len(r) for r in runs), dtype=np.int64)
        cum = np.cumsum(np.repeat(warr, lengths)[order])
    idx = np.searchsorted(cum, targets, side="left")
    return vals[order[idx]]


def collapse_select_runs(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    out_weight: int,
    offset: int,
    k: int,
    *,
    enabled: Optional[bool] = None,
) -> np.ndarray:
    """COLLAPSE selection: positions ``j * out_weight + offset``, j < k.

    The equally-spaced target grid lets the dominant uniform-weight case
    (every leaf collapse) reduce to a strided view of the plain merge:
    position ``j*W + offset`` is merge index ``j*c + (offset-1)//w``, so
    no target vector, cumsum or binary search is ever built.  *enabled*
    overrides the global kernel switch for this call (``None`` follows
    it); results are bit-identical either way.
    """
    if not (_enabled if enabled is None else enabled):
        if _obs.ENABLED:
            _obs.on_kernel("collapse_select", "argsort")
        targets = np.arange(k, dtype=np.int64) * out_weight + offset
        return weighted_select_argsort(runs, weights, targets)
    w0 = weights[0]
    uniform = True
    for w in weights:
        if w != w0:
            uniform = False
            break
    if uniform:
        if _obs.ENABLED:
            _obs.on_kernel("collapse_select", "uniform_stride")
        if len(runs) == 1:
            merged = runs[0]
        else:
            merged = np.sort(np.concatenate(runs), kind="stable")
        start = (offset - 1) // w0
        return merged[start :: len(runs)][:k].copy()
    if _obs.ENABLED:
        _obs.on_kernel("collapse_select", "mixed_weights")
    targets = np.arange(k, dtype=np.int64) * out_weight + offset
    return weighted_select_runs(runs, weights, targets, enabled=enabled)


def weighted_rank_runs(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    low_pads: Sequence[int],
    high_pads: Sequence[int],
    value: float,
) -> Tuple[int, int]:
    """Weighted ``(n_below, n_below_or_equal)`` of *value* over sorted runs.

    Counts weighted copies of genuine (non-padding) elements only, using
    one binary-search pair per run -- the inverse-quantile primitive
    behind ``rank``/``cdf`` queries.
    """
    below = 0
    below_eq = 0
    for values, weight, n_low, n_high in zip(
        runs, weights, low_pads, high_pads
    ):
        lo = int(np.searchsorted(values, value, side="left"))
        hi = int(np.searchsorted(values, value, side="right"))
        lo_real = max(lo - n_low, 0)
        hi_real = max(min(hi, len(values) - n_high) - n_low, 0)
        below += weight * lo_real
        below_eq += weight * hi_real
    return below, below_eq


# -- padding arithmetic ------------------------------------------------------


def collapse_pad_counts(
    low_pad_weight: int,
    high_pad_weight: int,
    total_weight: int,
    out_weight: int,
    offset: int,
    k: int,
) -> Tuple[int, int]:
    """Pad counts of a COLLAPSE output, in O(1) arithmetic.

    The merged weighted sequence of the inputs starts with exactly
    *low_pad_weight* positions of ``-inf`` and ends with *high_pad_weight*
    positions of ``+inf`` (sentinels sort to the extremes; real stream
    values are finite by the framework's ingest validation).  COLLAPSE
    selects positions ``j * out_weight + offset`` for ``j = 0..k-1``, so
    the output's pad counts are the number of those targets landing in
    each sentinel span -- no scan of the output values required.
    """
    if low_pad_weight <= 0 and high_pad_weight <= 0:
        return 0, 0
    # j * out_weight + offset <= low_pad_weight
    n_low = 0
    if low_pad_weight >= offset:
        n_low = min(k, (low_pad_weight - offset) // out_weight + 1)
    # j * out_weight + offset > total_weight - high_pad_weight
    n_high = 0
    first_real_w = total_weight - high_pad_weight
    if first_real_w < offset:
        n_high = k
    else:
        j_min = (first_real_w - offset) // out_weight + 1
        n_high = max(0, k - j_min)
    return int(n_low), int(n_high)


# -- batched NEW -------------------------------------------------------------


def sort_rows(arr: np.ndarray, k: int) -> np.ndarray:
    """Sort the leading ``(len(arr) // k) * k`` elements of *arr* as rows.

    Returns a freshly sorted ``(n_full, k)`` matrix (one NEW buffer per
    row) without mutating *arr*.  One ``np.sort(axis=1)`` call replaces a
    Python loop of per-buffer sorts -- the batched half of the NEW fast
    path.
    """
    n_full = len(arr) // k
    return np.sort(arr[: n_full * k].reshape(n_full, k), axis=1)
