"""Vectorised hot-path kernels for the MRL framework's numeric fast path.

Every expensive step of the framework funnels through two primitives:
merging the contents of ``c`` buffers into one weighted sorted sequence
(COLLAPSE, OUTPUT, rank queries) and sorting the raw stream into fresh
buffers (NEW).  Both can exploit a structural invariant the generic code
ignores: **every** :class:`~repro.core.buffer.Buffer` is *already sorted*
by construction -- leaves are sorted on creation and COLLAPSE outputs are
selections from a sorted merge.  This module holds the vectorised kernels
that exploit it:

``merge_sorted_runs``
    a stable c-way merge of sorted weighted runs.  Two strategies are
    provided: ``"searchsorted"`` (a pairwise tournament merge -- each round
    computes every element's position in the merged output with two
    ``np.searchsorted`` calls and scatters) and ``"stable"`` (concatenate
    and ``np.sort(kind="stable")``; numpy's stable sort is timsort, whose
    run detection + galloping merge *is* a c-way merge of the pre-sorted
    runs, at a fraction of the Python-call overhead for small runs).
    ``"auto"`` picks by input size: measured on this code base the
    explicit pairwise merge only amortises its extra numpy-call overhead
    for large merges, so small COLLAPSEs take the timsort route.

``weighted_select_runs``
    weighted positional selection straight off sorted runs.  The dominant
    COLLAPSE case (all inputs share one weight -- e.g. every leaf collapse)
    degenerates to pure index arithmetic: position ``t`` of the weighted
    sequence is element ``(t - 1) // w`` of the plain merge, so no weight
    vector, cumsum or binary search is needed at all.  Mixed weights use a
    stable argsort plus a cumulative-weight search, with the per-element
    weight vector derived from the argsort permutation itself (element
    ``order[i]`` came from run ``order[i] // k`` when all runs share a
    length) instead of materialising per-run weight arrays.

``weighted_select_argsort``
    the reference implementation (global stable argsort over the
    concatenated values, exactly the pre-kernel code path).  It is kept
    callable forever: the property tests assert the kernels match it
    bit-for-bit, and it is the automatic fallback whenever a kernel
    precondition does not hold or the kernels are disabled.

``collapse_pad_counts``
    O(1) padding arithmetic for COLLAPSE outputs.  Padding sentinels sort
    to the extremes, so the merged weighted sequence starts with exactly
    ``sum(n_low_pad * weight)`` positions of ``-inf`` and ends with
    ``sum(n_high_pad * weight)`` positions of ``+inf``; counting selected
    targets inside those spans replaces two full ``isinf`` scans of the
    output.

Disabling the kernels (``REPRO_KERNELS=0`` in the environment, or
:func:`set_enabled`) routes every caller through the reference argsort
path; the results are identical either way, which the test suite asserts.
"""

from __future__ import annotations

import math
import os
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..obs import hooks as _obs

__all__ = [
    "is_enabled",
    "set_enabled",
    "merge_sorted_runs",
    "weighted_select_runs",
    "weighted_select_argsort",
    "collapse_pad_counts",
    "sort_rows",
    "splitmix64_u01",
    "splitmix64_u01_scalar",
    "stream_seed",
    "frugal2u_update",
    "frugal2u_update_scalar",
]

# Pairwise searchsorted merging issues ~6 numpy calls per merge round; below
# this many total elements the timsort route wins on call overhead alone.
_SEARCHSORTED_MIN_ELEMENTS = 1 << 16

_enabled = os.environ.get("REPRO_KERNELS", "1").lower() not in (
    "0",
    "false",
    "off",
)


def is_enabled() -> bool:
    """Whether the vectorised kernels are active (vs the argsort fallback)."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Globally enable/disable the kernels (used by tests and benchmarks)."""
    global _enabled
    _enabled = bool(flag)


# -- merging -----------------------------------------------------------------


def _merge_two(
    va: np.ndarray,
    wa: np.ndarray,
    vb: np.ndarray,
    wb: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable merge of two sorted weighted runs via positional scatter.

    Each element's slot in the merged output is its own index plus the
    number of elements of the *other* run that precede it; ties break
    towards run ``a`` (``side="left"`` / ``"right"``), matching the
    stability of a concatenated ``[a, b]`` argsort.
    """
    na, nb = len(va), len(vb)
    out_v = np.empty(na + nb, dtype=va.dtype)
    out_w = np.empty(na + nb, dtype=np.int64)
    ia = np.arange(na, dtype=np.intp) + np.searchsorted(vb, va, side="left")
    ib = np.arange(nb, dtype=np.intp) + np.searchsorted(va, vb, side="right")
    out_v[ia] = va
    out_w[ia] = wa
    out_v[ib] = vb
    out_w[ib] = wb
    return out_v, out_w


def merge_sorted_runs(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    *,
    strategy: str = "auto",
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge sorted *runs* into one sorted sequence with per-element weights.

    Equal values keep run order (run 0 before run 1, ...), exactly like a
    stable argsort over the concatenation, so downstream weighted rank
    arithmetic is bit-identical across strategies.

    Parameters
    ----------
    runs:
        Sorted 1-d float64 arrays (each a buffer's ``values``).
    weights:
        One integer weight per run.
    strategy:
        ``"stable"`` (concatenate + timsort), ``"searchsorted"`` (pairwise
        tournament merge) or ``"auto"``.
    """
    if len(runs) != len(weights) or not runs:
        raise ValueError("need one weight per run and at least one run")
    if len(runs) == 1:
        return runs[0], np.full(len(runs[0]), weights[0], dtype=np.int64)
    total = sum(len(r) for r in runs)
    if strategy == "auto":
        strategy = (
            "searchsorted"
            if total >= _SEARCHSORTED_MIN_ELEMENTS
            else "stable"
        )
    if strategy == "searchsorted":
        items: List[Tuple[np.ndarray, np.ndarray]] = [
            (np.asarray(r), np.full(len(r), w, dtype=np.int64))
            for r, w in zip(runs, weights)
        ]
        # Tournament order pairs neighbours, so equal elements stay grouped
        # by ascending original run index at every round.
        while len(items) > 1:
            merged = [
                _merge_two(*items[i], *items[i + 1])
                for i in range(0, len(items) - 1, 2)
            ]
            if len(items) % 2:
                merged.append(items[-1])
            items = merged
        return items[0]
    if strategy != "stable":
        raise ValueError(f"unknown merge strategy {strategy!r}")
    vals = np.concatenate(runs)
    order = np.argsort(vals, kind="stable")
    lengths = np.fromiter((len(r) for r in runs), dtype=np.int64)
    run_of = np.repeat(np.arange(len(runs), dtype=np.intp), lengths)
    warr = np.asarray(weights, dtype=np.int64)
    return vals[order], warr[run_of[order]]


# -- weighted selection ------------------------------------------------------


def weighted_select_argsort(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    targets: np.ndarray,
) -> np.ndarray:
    """Reference weighted selection: global stable argsort + cumsum.

    This is the pre-kernel implementation, kept verbatim as the fallback
    and as the oracle for the equivalence property tests.
    """
    vals = np.concatenate(runs)
    wts = np.concatenate(
        [np.full(len(r), w, dtype=np.int64) for r, w in zip(runs, weights)]
    )
    order = np.argsort(vals, kind="stable")
    cum = np.cumsum(wts[order])
    idx = np.searchsorted(cum, np.asarray(targets, dtype=np.int64), side="left")
    return vals[order][idx]


def weighted_select_runs(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    targets: np.ndarray,
    *,
    enabled: Optional[bool] = None,
) -> np.ndarray:
    """Select the elements at weighted positions *targets* of sorted *runs*.

    ``targets`` are 1-indexed positions into the sequence obtained by
    repeating each element of run ``i`` ``weights[i]`` times and sorting
    everything together; the repeats are never materialised.  Results are
    identical to :func:`weighted_select_argsort` for any input; the runs
    being sorted only makes it faster (numpy's stable sorts gallop through
    pre-sorted runs), it is not required for correctness of this entry
    point.  *enabled* overrides the global kernel switch for this call
    (``None`` follows it); results are bit-identical either way.
    """
    if not (_enabled if enabled is None else enabled):
        if _obs.ENABLED:
            _obs.on_kernel("weighted_select", "argsort")
        return weighted_select_argsort(runs, weights, targets)
    if _obs.ENABLED:
        _obs.on_kernel("weighted_select", "runs")
    targets = np.asarray(targets, dtype=np.int64)
    w0 = weights[0]
    uniform = True
    for w in weights:
        if w != w0:
            uniform = False
            break
    if uniform:
        # Uniform weight: weighted position t is plain-merge index
        # (t-1) // w -- no weight vector, cumsum or search needed.
        if len(runs) == 1:
            merged = runs[0]
        else:
            merged = np.sort(np.concatenate(runs), kind="stable")
        return merged[(targets - 1) // int(w0)]
    warr = np.asarray(weights, dtype=np.int64)
    vals = np.concatenate(runs)
    order = np.argsort(vals, kind="stable")
    k = len(runs[0])
    if all(len(r) == k for r in runs):
        # Equal-length runs: element order[i] of the concatenation came
        # from run order[i] // k, giving its weight without materialising
        # a per-element weight vector.
        cum = np.cumsum(warr[order // k])
    else:
        lengths = np.fromiter((len(r) for r in runs), dtype=np.int64)
        cum = np.cumsum(np.repeat(warr, lengths)[order])
    idx = np.searchsorted(cum, targets, side="left")
    return vals[order[idx]]


def collapse_select_runs(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    out_weight: int,
    offset: int,
    k: int,
    *,
    enabled: Optional[bool] = None,
) -> np.ndarray:
    """COLLAPSE selection: positions ``j * out_weight + offset``, j < k.

    The equally-spaced target grid lets the dominant uniform-weight case
    (every leaf collapse) reduce to a strided view of the plain merge:
    position ``j*W + offset`` is merge index ``j*c + (offset-1)//w``, so
    no target vector, cumsum or binary search is ever built.  *enabled*
    overrides the global kernel switch for this call (``None`` follows
    it); results are bit-identical either way.
    """
    if not (_enabled if enabled is None else enabled):
        if _obs.ENABLED:
            _obs.on_kernel("collapse_select", "argsort")
        targets = np.arange(k, dtype=np.int64) * out_weight + offset
        return weighted_select_argsort(runs, weights, targets)
    w0 = weights[0]
    uniform = True
    for w in weights:
        if w != w0:
            uniform = False
            break
    if uniform:
        if _obs.ENABLED:
            _obs.on_kernel("collapse_select", "uniform_stride")
        if len(runs) == 1:
            merged = runs[0]
        else:
            merged = np.sort(np.concatenate(runs), kind="stable")
        start = (offset - 1) // w0
        return merged[start :: len(runs)][:k].copy()
    if _obs.ENABLED:
        _obs.on_kernel("collapse_select", "mixed_weights")
    targets = np.arange(k, dtype=np.int64) * out_weight + offset
    return weighted_select_runs(runs, weights, targets, enabled=enabled)


def weighted_rank_runs(
    runs: Sequence[np.ndarray],
    weights: Sequence[int],
    low_pads: Sequence[int],
    high_pads: Sequence[int],
    value: float,
) -> Tuple[int, int]:
    """Weighted ``(n_below, n_below_or_equal)`` of *value* over sorted runs.

    Counts weighted copies of genuine (non-padding) elements only, using
    one binary-search pair per run -- the inverse-quantile primitive
    behind ``rank``/``cdf`` queries.
    """
    below = 0
    below_eq = 0
    for values, weight, n_low, n_high in zip(
        runs, weights, low_pads, high_pads
    ):
        lo = int(np.searchsorted(values, value, side="left"))
        hi = int(np.searchsorted(values, value, side="right"))
        lo_real = max(lo - n_low, 0)
        hi_real = max(min(hi, len(values) - n_high) - n_low, 0)
        below += weight * lo_real
        below_eq += weight * hi_real
    return below, below_eq


# -- padding arithmetic ------------------------------------------------------


def collapse_pad_counts(
    low_pad_weight: int,
    high_pad_weight: int,
    total_weight: int,
    out_weight: int,
    offset: int,
    k: int,
) -> Tuple[int, int]:
    """Pad counts of a COLLAPSE output, in O(1) arithmetic.

    The merged weighted sequence of the inputs starts with exactly
    *low_pad_weight* positions of ``-inf`` and ends with *high_pad_weight*
    positions of ``+inf`` (sentinels sort to the extremes; real stream
    values are finite by the framework's ingest validation).  COLLAPSE
    selects positions ``j * out_weight + offset`` for ``j = 0..k-1``, so
    the output's pad counts are the number of those targets landing in
    each sentinel span -- no scan of the output values required.
    """
    if low_pad_weight <= 0 and high_pad_weight <= 0:
        return 0, 0
    # j * out_weight + offset <= low_pad_weight
    n_low = 0
    if low_pad_weight >= offset:
        n_low = min(k, (low_pad_weight - offset) // out_weight + 1)
    # j * out_weight + offset > total_weight - high_pad_weight
    n_high = 0
    first_real_w = total_weight - high_pad_weight
    if first_real_w < offset:
        n_high = k
    else:
        j_min = (first_real_w - offset) // out_weight + 1
        n_high = max(0, k - j_min)
    return int(n_low), int(n_high)


# -- batched NEW -------------------------------------------------------------


def sort_rows(arr: np.ndarray, k: int) -> np.ndarray:
    """Sort the leading ``(len(arr) // k) * k`` elements of *arr* as rows.

    Returns a freshly sorted ``(n_full, k)`` matrix (one NEW buffer per
    row) without mutating *arr*.  One ``np.sort(axis=1)`` call replaces a
    Python loop of per-buffer sorts -- the batched half of the NEW fast
    path.
    """
    n_full = len(arr) // k
    return np.sort(arr[: n_full * k].reshape(n_full, k), axis=1)


# -- deterministic counter-based randomness ----------------------------------
#
# The probabilistic engines (Frugal-2U updates, KLL compaction parity) must
# be *replay-deterministic*: the service journals raw ingest batches and
# recovery replays them, possibly with different batch boundaries, and the
# recovered state must be bit-identical to the pre-crash state.  A stateful
# RNG breaks that (its state would depend on batching); instead every random
# draw is a pure hash of ``(stream seed, per-sketch element index)`` --
# splitmix64's output function, which is exactly a counter-mode generator.

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_STREAM_SALT = 0xD1342543DE82EF95


def _finalize_scalar(z: int) -> int:
    z &= _MASK64
    z ^= z >> 30
    z = (z * _MIX_A) & _MASK64
    z ^= z >> 27
    z = (z * _MIX_B) & _MASK64
    z ^= z >> 31
    return z


def stream_seed(seed: int, stream: int) -> int:
    """Derive the per-stream base for :func:`splitmix64_u01` draws.

    *stream* separates logically independent random sequences sharing one
    user seed (e.g. one sequence per tracked quantile fraction).
    """
    return _finalize_scalar((seed + (stream + 1) * _STREAM_SALT) & _MASK64)


def splitmix64_u01_scalar(base: int, index: int) -> float:
    """The ``index``-th uniform [0, 1) draw of stream *base* (scalar path)."""
    z = _finalize_scalar((base + index * _SPLITMIX_GAMMA) & _MASK64)
    return (z >> 11) * 2.0**-53


def splitmix64_u01(base: int, indices: np.ndarray) -> np.ndarray:
    """Vectorised :func:`splitmix64_u01_scalar` over an int64/uint64 array.

    Bit-identical to the scalar spelling for every index -- the property
    suite asserts it, because the scalar and vector Frugal paths must
    consume identical randomness.
    """
    with np.errstate(over="ignore"):
        z = indices.astype(np.uint64) * np.uint64(_SPLITMIX_GAMMA)
        z += np.uint64(base)
        z ^= z >> np.uint64(30)
        z *= np.uint64(_MIX_A)
        z ^= z >> np.uint64(27)
        z *= np.uint64(_MIX_B)
        z ^= z >> np.uint64(31)
    return (z >> np.uint64(11)) * 2.0**-53


# -- bank-wide Frugal-2U update ----------------------------------------------
#
# State layout (shared with core.frugal.FrugalBank): one flat float64 row
# per tracked fraction -- ``m[p, i]`` / ``step[p, i]`` / ``sign[p, i]`` hold
# the Frugal-2U estimate state of fraction ``qs[p]`` for sketch ``i`` --
# plus per-sketch counters ``n_seen`` and exact extremes.  A whole ingest
# chunk, already partitioned into one run per sketch, is applied in
# *rounds*: round ``r`` takes the ``r``-th element of every still-active
# run, so each round is a handful of branchless numpy passes over up to
# n_sketches states instead of a Python loop per element.  With 100k
# uniformly-hit metrics a 1M-element chunk is ~10 wide rounds.

# Below this many runs the fixed per-round numpy call overhead dominates
# and the scalar per-element loop wins.
_FRUGAL_ROUNDS_MIN_RUNS = 32


def _frugal2u_apply(
    q: float,
    cur_m: np.ndarray,
    cur_s: np.ndarray,
    cur_g: np.ndarray,
    x: np.ndarray,
    rand: np.ndarray,
    allow: Optional[np.ndarray] = None,
) -> "Tuple[np.ndarray, np.ndarray, np.ndarray, int]":
    """One vectorised Frugal-2U step for fraction *q* over gathered state.

    Returns the updated ``(m, step, sign)`` plus the number of sketches
    whose step actually adjusted (the obs counter).  *allow* masks lanes
    out of the update entirely (used for first-element initialisation).
    The operation order mirrors :func:`frugal2u_update_scalar` exactly --
    same IEEE ops in the same sequence -- so both paths produce
    bit-identical state.
    """
    up = (x > cur_m) & (rand > 1.0 - q)
    down = (x < cur_m) & (rand > q)
    if allow is not None:
        up &= allow
        down &= allow
    # ascent: step drifts by +/-1, the estimate moves by ceil(step) (>= 1)
    cur_s = np.where(up, cur_s + np.where(cur_g > 0, 1.0, -1.0), cur_s)
    add = np.where(cur_s > 0.0, np.ceil(cur_s), 1.0)
    cur_m = np.where(up, cur_m + add, cur_m)
    over = up & (cur_m > x)
    cur_s = np.where(over, cur_s + (x - cur_m), cur_s)
    cur_m = np.where(over, x, cur_m)
    reset = up & (cur_g < 0) & (cur_s > 1.0)
    cur_s = np.where(reset, 1.0, cur_s)
    # descent: the mirror image
    cur_s = np.where(down, cur_s + np.where(cur_g < 0, 1.0, -1.0), cur_s)
    sub = np.where(cur_s > 0.0, np.ceil(cur_s), 1.0)
    cur_m = np.where(down, cur_m - sub, cur_m)
    under = down & (cur_m < x)
    cur_s = np.where(under, cur_s + (cur_m - x), cur_s)
    cur_m = np.where(under, x, cur_m)
    reset2 = down & (cur_g > 0) & (cur_s > 1.0)
    cur_s = np.where(reset2, 1.0, cur_s)
    cur_g = np.where(up, np.int8(1), np.where(down, np.int8(-1), cur_g))
    adjusted = 0
    if _obs.ENABLED:
        adjusted = int(np.count_nonzero(up) + np.count_nonzero(down))
    return cur_m, cur_s, cur_g, adjusted


def frugal2u_update_scalar(
    qs: np.ndarray,
    m: np.ndarray,
    step: np.ndarray,
    sign: np.ndarray,
    n_seen: np.ndarray,
    minv: np.ndarray,
    maxv: np.ndarray,
    values: np.ndarray,
    run_ids: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    bases: np.ndarray,
) -> int:
    """Reference Frugal-2U: per-element Python loop over each run.

    Kept callable forever as the oracle the vectorised rounds path is
    property-tested against, and as the fast path for few long runs
    (per-round numpy overhead beats per-element Python only when many
    sketches are active per round).
    """
    phis = [float(q) for q in qs]
    nphis = len(phis)
    adjusted = 0
    count_adjust = _obs.ENABLED
    for j in range(len(run_ids)):
        i = int(run_ids[j])
        s0, s1 = int(starts[j]), int(stops[j])
        if s1 <= s0:
            continue
        run = values[s0:s1]
        base_idx = int(n_seen[i])
        pos = 0
        if base_idx == 0:
            x0 = float(run[0])
            for p in range(nphis):
                m[p, i] = x0
            minv[i] = x0
            maxv[i] = x0
            pos = 1
        else:
            rmin = float(np.min(run))
            rmax = float(np.max(run))
            if rmin < minv[i]:
                minv[i] = rmin
            if rmax > maxv[i]:
                maxv[i] = rmax
        if pos and len(run) > 1:
            rmin = float(np.min(run[1:]))
            rmax = float(np.max(run[1:]))
            if rmin < minv[i]:
                minv[i] = rmin
            if rmax > maxv[i]:
                maxv[i] = rmax
        for r in range(pos, len(run)):
            x = float(run[r])
            idx = base_idx + r
            for p in range(nphis):
                q = phis[p]
                rand = splitmix64_u01_scalar(int(bases[p]), idx)
                cur_m = float(m[p, i])
                cur_s = float(step[p, i])
                cur_g = int(sign[p, i])
                if x > cur_m and rand > 1.0 - q:
                    cur_s = cur_s + (1.0 if cur_g > 0 else -1.0)
                    cur_m = cur_m + (math.ceil(cur_s) if cur_s > 0.0 else 1.0)
                    if cur_m > x:
                        cur_s = cur_s + (x - cur_m)
                        cur_m = x
                    if cur_g < 0 and cur_s > 1.0:
                        cur_s = 1.0
                    cur_g = 1
                    if count_adjust:
                        adjusted += 1
                elif x < cur_m and rand > q:
                    cur_s = cur_s + (1.0 if cur_g < 0 else -1.0)
                    cur_m = cur_m - (math.ceil(cur_s) if cur_s > 0.0 else 1.0)
                    if cur_m < x:
                        cur_s = cur_s + (cur_m - x)
                        cur_m = x
                    if cur_g > 0 and cur_s > 1.0:
                        cur_s = 1.0
                    cur_g = -1
                    if count_adjust:
                        adjusted += 1
                else:
                    continue
                m[p, i] = cur_m
                step[p, i] = cur_s
                sign[p, i] = cur_g
        n_seen[i] = base_idx + len(run)
    return adjusted


def _frugal2u_rounds(
    qs: np.ndarray,
    m: np.ndarray,
    step: np.ndarray,
    sign: np.ndarray,
    n_seen: np.ndarray,
    minv: np.ndarray,
    maxv: np.ndarray,
    values: np.ndarray,
    run_ids: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    bases: np.ndarray,
) -> int:
    """Vectorised rounds path: round ``r`` updates every active sketch at once.

    State is gathered from the bank arrays *once* per chunk.  Runs are
    sorted by length, so the lanes still active in round ``r`` are a
    contiguous suffix of the gathered arrays and every round operates on
    plain slices -- no per-round fancy indexing.  The chunk's values are
    scattered into a ``(max_len, n_runs)`` round-major matrix up front so
    round ``r``'s inputs are one contiguous row slice as well.
    """
    lengths = stops - starts
    order = np.argsort(lengths, kind="stable")
    run_ids = run_ids[order]
    starts = starts[order]
    lengths = lengths[order]
    n_runs = len(run_ids)
    max_len = int(lengths[-1])
    nphis = len(qs)
    # gather state once
    mg = m[:, run_ids]
    sg = step[:, run_ids]
    gg = sign[:, run_ids]
    n0 = n_seen[run_ids]
    # concatenate runs in sorted order; per-run extremes in one reduceat pair
    total = int(lengths.sum())
    prefix = np.cumsum(lengths) - lengths
    within = np.arange(total, dtype=np.int64) - np.repeat(prefix, lengths)
    src = np.repeat(starts, lengths) + within
    v_cat = values[src]
    minv[run_ids] = np.minimum(minv[run_ids], np.minimum.reduceat(v_cat, prefix))
    maxv[run_ids] = np.maximum(maxv[run_ids], np.maximum.reduceat(v_cat, prefix))
    # round-major value matrix: X[r, lane] = lane's r-th element
    x_mat = np.empty((max_len, n_runs), dtype=np.float64)
    x_mat.reshape(-1)[within * n_runs + np.repeat(np.arange(n_runs), lengths)] = v_cat
    # first-element initialisation: lanes with no history adopt their
    # first value as the starting estimate (and skip that update)
    fresh = n0 == 0
    if fresh.any():
        mg[:, fresh] = x_mat[0, fresh]
    adjusted = 0
    lo = 0
    for r in range(max_len):
        # runs are sorted by length: drop exhausted lanes from the front
        while lengths[lo] <= r:
            lo += 1
        x = x_mat[r, lo:]
        idx = n0[lo:] + r
        allow = (idx != 0) if r == 0 else None
        for p in range(nphis):
            rand = splitmix64_u01(int(bases[p]), idx)
            cur_m, cur_s, cur_g, adj = _frugal2u_apply(
                float(qs[p]), mg[p, lo:], sg[p, lo:], gg[p, lo:], x, rand, allow
            )
            mg[p, lo:] = cur_m
            sg[p, lo:] = cur_s
            gg[p, lo:] = cur_g
            adjusted += adj
    # scatter state back (run ids are distinct within one call)
    m[:, run_ids] = mg
    step[:, run_ids] = sg
    sign[:, run_ids] = gg
    n_seen[run_ids] = n0 + lengths
    return adjusted


def frugal2u_update(
    qs: np.ndarray,
    m: np.ndarray,
    step: np.ndarray,
    sign: np.ndarray,
    n_seen: np.ndarray,
    minv: np.ndarray,
    maxv: np.ndarray,
    values: np.ndarray,
    run_ids: np.ndarray,
    starts: np.ndarray,
    stops: np.ndarray,
    bases: np.ndarray,
    *,
    enabled: Optional[bool] = None,
) -> int:
    """Apply one partitioned chunk of Frugal-2U updates to bank state.

    ``values[starts[j]:stops[j]]`` is the (arrival-order) run destined for
    sketch ``run_ids[j]``; run ids must be distinct within one call.  The
    per-element randomness is a pure function of ``(bases[p], element
    index within the sketch)``, so the result is bit-identical no matter
    how the stream was batched or partitioned -- the crash-recovery and
    bank-vs-direct property tests rest on this.  Returns the number of
    step adjustments applied (0 when obs is disabled).  *enabled*
    overrides the global kernel switch (``None`` follows it); the scalar
    fallback produces bit-identical state.
    """
    n_runs = len(run_ids)
    if n_runs == 0 or len(values) == 0:
        return 0
    use_rounds = (_enabled if enabled is None else enabled) and (
        n_runs >= _FRUGAL_ROUNDS_MIN_RUNS
    )
    if _obs.ENABLED:
        _obs.on_kernel("frugal2u", "rounds" if use_rounds else "scalar")
    if use_rounds:
        return _frugal2u_rounds(
            qs, m, step, sign, n_seen, minv, maxv,
            values, run_ids, starts, stops, bases,
        )
    return frugal2u_update_scalar(
        qs, m, step, sign, n_seen, minv, maxv,
        values, run_ids, starts, stops, bases,
    )
