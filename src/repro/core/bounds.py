"""Analytic guarantees: Lemma 5 instantiations and space complexity.

This module collects the paper's *a-priori* guarantee arithmetic in one
place so that tests, documentation and the benchmark harness can reference
a single implementation:

* per-policy worst-case rank-error bounds as a function of the
  configuration (Sections 4.3-4.5, all derived from Lemma 5);
* the asymptotic space complexities of Section 4.8 (Theorem 1) and
  Section 5.1 (Theorem 2), which the benchmarks use to draw reference
  curves next to the measured memory figures.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError
from .parameters import (
    alsabti_ranka_singh_stats,
    munro_paterson_stats,
    new_algorithm_stats,
)

__all__ = [
    "error_bound_munro_paterson",
    "error_bound_alsabti_ranka_singh",
    "error_bound_new",
    "theorem1_space",
    "theorem2_space",
    "ars_asymptotic_space",
]


def error_bound_munro_paterson(b: int) -> float:
    """Worst-case rank error for Munro-Paterson with ``b`` buffers.

    Section 4.3 simplifies Lemma 5 to ``(b-2) * 2^(b-2) + 1/2``.
    """
    bound = munro_paterson_stats(b).error_bound
    closed = (b - 2) * 2 ** (b - 2) + 0.5
    assert bound == closed, "closed form drifted from Lemma 5 arithmetic"
    return bound


def error_bound_alsabti_ranka_singh(b: int) -> float:
    """Worst-case rank error for Alsabti-Ranka-Singh with ``b`` buffers.

    Section 4.4 simplifies Lemma 5 to ``b^2/8 + b/4 - 1/2``.
    """
    bound = alsabti_ranka_singh_stats(b).error_bound
    closed = b * b / 8.0 + b / 4.0 - 0.5
    assert bound == closed, "closed form drifted from Lemma 5 arithmetic"
    return bound


def error_bound_new(b: int, h: int) -> float:
    """Worst-case rank error for the new policy at height ``h``.

    Section 4.5's constraint divides the paper's combinatorial expression
    by two: ``[(h-2)C(b+h-2,h-1) - C(b+h-3,h-3) + C(b+h-3,h-2)] / 2``.
    """
    return new_algorithm_stats(b, h).error_bound


def theorem1_space(epsilon: float, n: int) -> float:
    """Theorem 1: the new algorithm needs ``O((1/eps) log^2(eps N))`` memory.

    Returns the un-scaled expression ``(1/eps) * log2(eps*N)^2`` (a guide
    curve, not an exact element count).
    """
    if not 0 < epsilon < 1 or n < 1:
        raise ConfigurationError("need 0 < epsilon < 1 and n >= 1")
    x = max(epsilon * n, 2.0)
    return (1.0 / epsilon) * math.log2(x) ** 2


def theorem2_space(epsilon: float, delta: float) -> float:
    """Theorem 2: sampling + new algorithm memory, independent of N.

    Returns the un-scaled expression
    ``(1/eps) log^2(1/eps) + (1/eps) log^2 log(1/delta)``.
    """
    if not 0 < epsilon < 1 or not 0 < delta < 1:
        raise ConfigurationError("need epsilon and delta in (0, 1)")
    t1 = (1.0 / epsilon) * math.log2(1.0 / epsilon) ** 2
    inner = max(math.log2(1.0 / delta), 2.0)
    t2 = (1.0 / epsilon) * math.log2(inner) ** 2
    return t1 + t2


def ars_asymptotic_space(epsilon: float, n: int) -> float:
    """Section 4.8: Alsabti-Ranka-Singh needs ``O(sqrt(N / eps))`` memory."""
    if not 0 < epsilon < 1 or n < 1:
        raise ConfigurationError("need 0 < epsilon < 1 and n >= 1")
    return math.sqrt(n / epsilon)
