"""The uniform query surface every sketch-like object implements.

:class:`SketchProtocol` is the structural contract -- any object with the
``quantile(phi)`` / ``quantiles(phis)`` / ``cdf(values)`` / ``describe()``
quartet plus ``n`` and ``error_bound()`` satisfies it (checked with
``isinstance`` thanks to ``runtime_checkable``).  The conformance test in
``tests/test_protocol_conformance.py`` parametrizes over every concrete
implementation in the package.

:func:`describe_dict` is the shared ``describe()`` body: one OUTPUT pass
answering the stream extremes (exact where the implementation tracks
them) and a fixed set of interior quantiles, plus the certified
a-posteriori rank bound in absolute and fractional form.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol, Sequence, runtime_checkable

__all__ = [
    "SketchProtocol",
    "ClientProtocol",
    "DESCRIBE_PHIS",
    "describe_dict",
]

#: interior quantile fractions reported by ``describe()``
DESCRIBE_PHIS = (0.25, 0.5, 0.75, 0.9, 0.99)


@runtime_checkable
class SketchProtocol(Protocol):
    """Structural type of the uniform sketch query surface."""

    @property
    def n(self) -> int:
        """Genuine elements ingested so far."""
        ...

    def quantile(self, phi: float) -> Any:
        """Approximate ``phi``-quantile."""
        ...

    def quantiles(self, phis: Sequence[float]) -> List[Any]:
        """Approximate quantiles for every fraction in *phis*."""
        ...

    def cdf(self, value: Any) -> Any:
        """Approximate CDF at a scalar (float) or sequence (list of floats)."""
        ...

    def describe(self) -> Dict[str, Any]:
        """Summary dict: n, extremes, key quantiles, certified bound."""
        ...

    def error_bound(self) -> float:
        """Certified a-posteriori rank-error bound (Lemma 5 family)."""
        ...


@runtime_checkable
class ClientProtocol(Protocol):
    """Structural type of a quantile-service client.

    Both :class:`repro.service.client.QuantileClient` (one node) and
    :class:`repro.cluster.client.ClusterClient` (replicated fan-in)
    satisfy it, which is what lets :func:`repro.connect` return either
    behind one surface.  ``create`` accepts the same ``window=`` /
    ``slide=`` / ``decay=`` kwargs as the local facade.
    """

    def create(self, name: str, **kwargs: Any) -> Any:
        """Declare a metric (idempotent for an identical config)."""
        ...

    def ingest(self, name: str, values: Any) -> Any:
        """Feed a batch of float64 values into *name*."""
        ...

    def quantile(self, name: str, phi: float) -> Any:
        """Approximate ``phi``-quantile of *name*."""
        ...

    def quantiles(self, name: str, phis: Sequence[float]) -> List[Any]:
        """Approximate quantiles of *name* for every fraction."""
        ...

    def cdf(self, name: str, value: Any) -> Any:
        """Approximate CDF of *name* at a scalar or sequence."""
        ...

    def describe(self, name: str) -> Dict[str, Any]:
        """Summary dict for *name*."""
        ...

    def list_metrics(self) -> Any:
        """Names of the declared metrics."""
        ...

    def close(self) -> None:
        """Release the connection(s)."""
        ...


def describe_dict(sketch: Any) -> Dict[str, Any]:
    """The shared ``describe()`` body used by every implementation.

    One ``quantiles`` call answers the extremes and all interior
    fractions together (Section 4.7: extra quantiles are free), so
    ``describe`` costs a single OUTPUT pass.
    """
    n = int(sketch.n)
    phis = [0.0, *DESCRIBE_PHIS, 1.0]
    values = sketch.quantiles(phis)
    bound = float(sketch.error_bound())
    return {
        "n": n,
        "min": values[0],
        "max": values[-1],
        "quantiles": {
            phi: values[i + 1] for i, phi in enumerate(DESCRIBE_PHIS)
        },
        "error_bound": bound,
        "error_bound_fraction": (bound / n) if n else 0.0,
    }
