"""Buffer-collapsing policies (Section 3.4 of the paper).

A policy decides *when* to COLLAPSE and *which* full buffers to feed it;
everything else (NEW, OUTPUT, the merge mechanics) is shared framework
machinery.  The paper presents three policies, all reproduced here:

* :class:`MunroPatersonPolicy` -- NEW while an empty buffer exists,
  otherwise collapse two buffers of equal weight;
* :class:`AlsabtiRankaSinghPolicy` -- fill ``b/2`` buffers, collapse them
  all at once, repeat ``b/2`` times;
* :class:`NewPolicy` -- the paper's contribution: level-tagged buffers,
  always collapsing the full buffers at the lowest level.

The driver (:class:`repro.core.framework.QuantileFramework`) interrogates a
policy through three hooks:

``level_for_new(full, b)``
    which level to stamp on the buffer about to be filled;
``pre_new_collapse(full, b)``
    a group of buffers that must be collapsed *before* another buffer can
    be placed (``None`` when placement can proceed);
``post_new_collapse(full, b)``
    a group to collapse *after* a placement (used by Alsabti-Ranka-Singh,
    whose rounds collapse eagerly even while empty buffers remain).

Each policy is also responsible for remaining well-defined on inputs the
original description did not anticipate (e.g. Munro-Paterson with no
equal-weight pair available, which arises whenever ``N`` is not exactly
``k * 2^(b-1)``); the fallbacks are documented on each class.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .buffer import Buffer
from .errors import ConfigurationError

__all__ = [
    "CollapsePolicy",
    "MunroPatersonPolicy",
    "AlsabtiRankaSinghPolicy",
    "NewPolicy",
    "make_policy",
    "POLICY_NAMES",
]


class CollapsePolicy:
    """Base class for collapse policies.  Subclasses override the hooks."""

    #: short identifier used by :func:`make_policy` and the benchmarks
    name: str = "abstract"

    def reset(self) -> None:
        """Clear any per-stream state (called when a framework is reset)."""

    def level_for_new(self, full: Sequence[Buffer], b: int) -> int:
        """Level to assign to the next NEW buffer (default: 0)."""
        return 0

    def pre_new_collapse(
        self, full: Sequence[Buffer], b: int
    ) -> Optional[List[Buffer]]:
        """Buffers to collapse before another NEW can happen, or ``None``."""
        raise NotImplementedError

    def post_new_collapse(
        self, full: Sequence[Buffer], b: int
    ) -> Optional[List[Buffer]]:
        """Buffers to collapse right after a NEW, or ``None`` (default)."""
        return None


class MunroPatersonPolicy(CollapsePolicy):
    """Munro & Paterson (1980), as framed by Section 3.4.

    *"If there is an empty buffer, invoke NEW; otherwise, invoke COLLAPSE
    on two buffers having the same weight."*

    The original analysis assumes exactly ``2^(b-1)`` leaves, which makes an
    equal-weight pair always available when memory is exhausted.  For
    arbitrary stream lengths a state with all-distinct weights can occur
    (e.g. full buffers of weights ``{4, 2, 1}`` with ``b = 3``); we then
    collapse the two lightest buffers, which keeps the algorithm total while
    preserving the spirit of pairing the cheapest merges first.
    """

    name = "munro-paterson"

    def pre_new_collapse(
        self, full: Sequence[Buffer], b: int
    ) -> Optional[List[Buffer]]:
        if len(full) < b:
            return None
        by_weight: dict[int, List[Buffer]] = {}
        for buf in full:
            by_weight.setdefault(buf.weight, []).append(buf)
        equal_pairs = [w for w, bufs in by_weight.items() if len(bufs) >= 2]
        if equal_pairs:
            lightest = min(equal_pairs)
            return by_weight[lightest][:2]
        ordered = sorted(full, key=lambda buf: buf.weight)
        return ordered[:2]


class AlsabtiRankaSinghPolicy(CollapsePolicy):
    """Alsabti, Ranka & Singh (VLDB 1997), as framed by Section 3.4.

    *"Fill b/2 empty buffers by invoking NEW and then invoke COLLAPSE on
    them.  Repeat this b/2 times and invoke OUTPUT on the resulting
    buffers."*

    Weight-1 buffers are the current round's leaves; as soon as ``b/2`` of
    them exist they are collapsed into a round output of weight ``b/2``.
    A stream longer than the design capacity ``k * b^2 / 4`` is tolerated:
    once every slot holds a round output, further round outputs are merged
    pairwise (lightest first), which degrades accuracy but never deadlocks.
    """

    name = "alsabti-ranka-singh"

    def __init__(self) -> None:
        super().__init__()

    @staticmethod
    def _leaves(full: Sequence[Buffer]) -> List[Buffer]:
        return [buf for buf in full if buf.weight == 1]

    @staticmethod
    def _tail_leaves(full: Sequence[Buffer], stop: int) -> int:
        """Count trailing weight-1 buffers, giving up past *stop*.

        The framework appends both NEW leaves and collapse outputs at the
        end of the buffer list, so the current round's leaves always form a
        contiguous tail; counting backwards with an early exit replaces a
        full O(b) scan on every NEW (the ARS hot-path bottleneck).
        """
        count = 0
        for buf in reversed(full):
            if buf.weight != 1:
                break
            count += 1
            if count > stop:
                break
        return count

    def pre_new_collapse(
        self, full: Sequence[Buffer], b: int
    ) -> Optional[List[Buffer]]:
        if len(full) < b:
            return None
        leaves = self._leaves(full)
        if len(leaves) >= 2:
            return leaves
        ordered = sorted(full, key=lambda buf: buf.weight)
        return ordered[:2]

    def post_new_collapse(
        self, full: Sequence[Buffer], b: int
    ) -> Optional[List[Buffer]]:
        if b < 4:
            # Degenerate configuration: rounds of one leaf make no sense;
            # behave like Munro-Paterson's forced merge when out of space.
            return None
        round_size = b // 2
        if self._tail_leaves(full, round_size) == round_size:
            return list(full[-round_size:])
        return None


class NewPolicy(CollapsePolicy):
    """The paper's new level-based collapsing policy (Section 3.4).

    *"Let l be the smallest among the levels of currently full buffers.
    If there is exactly one empty buffer, invoke NEW and assign it level l.
    If there are at least two empty buffers, invoke NEW on each and assign
    level 0 to each one.  If there are no empty buffers, invoke COLLAPSE on
    the set of buffers with level l.  Assign the output buffer level l+1."*
    """

    name = "new"

    def level_for_new(self, full: Sequence[Buffer], b: int) -> int:
        n_empty = b - len(full)
        if n_empty >= 2 or not full:
            return 0
        return min(buf.level for buf in full)

    def pre_new_collapse(
        self, full: Sequence[Buffer], b: int
    ) -> Optional[List[Buffer]]:
        if len(full) < b:
            return None
        lowest = min(buf.level for buf in full)
        group = [buf for buf in full if buf.level == lowest]
        if len(group) >= 2:
            return group
        # A single buffer at the lowest level cannot be collapsed alone;
        # widen the group to the two lowest levels.  This only happens on
        # undersized configurations (b chosen too small for the stream).
        ordered = sorted(full, key=lambda buf: (buf.level, buf.weight))
        return ordered[:2]


POLICY_NAMES = ("new", "munro-paterson", "alsabti-ranka-singh")

_POLICIES = {
    "new": NewPolicy,
    "munro-paterson": MunroPatersonPolicy,
    "mp": MunroPatersonPolicy,
    "alsabti-ranka-singh": AlsabtiRankaSinghPolicy,
    "ars": AlsabtiRankaSinghPolicy,
}


def make_policy(name_or_policy: "str | CollapsePolicy") -> CollapsePolicy:
    """Resolve a policy instance from a name (or pass an instance through).

    Accepted names: ``"new"``, ``"munro-paterson"`` (alias ``"mp"``) and
    ``"alsabti-ranka-singh"`` (alias ``"ars"``).
    """
    if isinstance(name_or_policy, CollapsePolicy):
        return name_or_policy
    key = str(name_or_policy).lower().strip()
    if key not in _POLICIES:
        raise ConfigurationError(
            f"unknown collapse policy {name_or_policy!r}; "
            f"expected one of {sorted(set(_POLICIES))}"
        )
    return _POLICIES[key]()
