"""High-level public API: :class:`QuantileSketch`.

This is the interface most users want: say how accurate the answer must be
(``epsilon``), how much data is coming (``n``), optionally accept a
probabilistic guarantee (``delta``) to unlock sampling, and let the library
choose the cheapest configuration (Sections 4.5 and 5.2 of the paper).

    >>> sk = QuantileSketch(epsilon=0.01, n=1_000_000)
    >>> sk.extend(values)                      # any number of chunks
    >>> sk.median()
    >>> sk.quantiles([0.25, 0.5, 0.75])        # no extra cost (Section 4.7)
    >>> sk.error_bound_fraction()              # certified rank error / n

Sketches over the same configuration can be :meth:`merge`-d, which is the
building block of the distributed mode (Section 4.9).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from .errors import ConfigurationError
from .framework import QuantileFramework
from .parameters import ParameterPlan, optimal_parameters
from .sampling import SampledQuantileFramework, SamplingPlan, choose_strategy

__all__ = ["QuantileSketch", "approximate_quantiles"]

#: Default design capacity when the caller does not know ``n`` in advance.
#: The SIGMOD'98 algorithm needs N to size its buffers; sizing for 2^30
#: costs little extra memory (the dependence is log^2 N) and the
#: a-posteriori bound stays exact regardless.
DEFAULT_DESIGN_N = 2**30


class QuantileSketch:
    """One-pass, bounded-memory, guaranteed-accuracy quantile summary.

    Parameters
    ----------
    epsilon:
        Approximation guarantee: every answered ``phi``-quantile has rank
        within ``epsilon * n`` of the true ``phi``-quantile.
    n:
        Expected dataset size.  When omitted, the sketch is sized for
        ``DEFAULT_DESIGN_N`` elements (the guarantee then reads "epsilon
        with respect to 2^30"); feeding more than the design size keeps
        working with a gracefully degrading, still-certified bound.
    delta:
        When given, the guarantee may become probabilistic (confidence
        ``1 - delta``) in exchange for memory independent of ``n``; the
        sketch picks sampling only when it is actually cheaper
        (Section 5.2).
    policy:
        Collapse policy (default the paper's new algorithm).
    n_quantiles:
        How many quantiles will be asked simultaneously under the
        *probabilistic* guarantee (Section 5.3 union bound).  Irrelevant
        for the deterministic path, which answers any number for free.
    seed:
        Random seed for the sampling path (ignored otherwise).
    eps:
        Keyword alias for *epsilon* (the facade spelling); give exactly
        one of the two.
    kernels:
        Per-sketch kernel override forwarded to the underlying framework
        (``None`` follows the global switch); results are bit-identical
        either way.
    """

    def __init__(
        self,
        epsilon: Optional[float] = None,
        n: Optional[int] = None,
        *,
        delta: Optional[float] = None,
        policy: str = "new",
        offset_mode: str = "alternate",
        n_quantiles: int = 1,
        seed: Optional[int] = None,
        record_tree: bool = False,
        eps: Optional[float] = None,
        kernels: Optional[bool] = None,
    ) -> None:
        if (epsilon is None) == (eps is None):
            raise ConfigurationError(
                "give exactly one of epsilon (positional) or eps= (keyword)"
            )
        if epsilon is None:
            epsilon = eps
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        design_n = DEFAULT_DESIGN_N if n is None else int(n)
        if design_n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        self.epsilon = epsilon
        self.delta = delta
        self.design_n = design_n
        plan = choose_strategy(
            epsilon, design_n, delta, policy=policy, n_quantiles=n_quantiles
        )
        self.plan: "ParameterPlan | SamplingPlan" = plan
        if isinstance(plan, SamplingPlan):
            self._impl: Any = SampledQuantileFramework(
                epsilon,
                design_n,
                delta if delta is not None else 0.0001,
                n_quantiles=n_quantiles,
                policy=policy,
                seed=seed,
                plan=plan,
                kernels=kernels,
            )
            self.uses_sampling = True
        else:
            self._impl = QuantileFramework(
                plan.b,
                plan.k,
                policy=policy,
                offset_mode=offset_mode,
                designed_n=design_n,
                record_tree=record_tree,
                kernels=kernels,
            )
            self.uses_sampling = False

    # -- ingest ------------------------------------------------------------

    def update(self, value: Any) -> None:
        """Add one element."""
        self._impl.update(value)

    def extend(self, data: "np.ndarray | Sequence[Any]") -> None:
        """Add many elements (numpy arrays take the vectorised path)."""
        self._impl.extend(data)

    # -- queries -----------------------------------------------------------

    def query(self, phi: float) -> Any:
        """The approximate ``phi``-quantile of everything added so far."""
        return self._impl.query(phi)

    def quantile(self, phi: float) -> Any:
        """The approximate ``phi``-quantile (uniform query-surface alias)."""
        return self._impl.query(phi)

    def quantiles(self, phis: Sequence[float]) -> List[Any]:
        """Many quantiles from the same summary (Section 4.7)."""
        return self._impl.quantiles(phis)

    def describe(self) -> dict:
        """Summary dict: n, extremes, key quantiles, certified bound."""
        from .protocols import describe_dict

        return describe_dict(self)

    def median(self) -> Any:
        """The approximate median (``phi = 0.5``)."""
        return self.query(0.5)

    def rank(self, value: Any) -> int:
        """Approximate number of elements ``<=`` *value* (inverse query).

        On the sampling path the sample rank is rescaled to the
        population, inheriting the probabilistic guarantee.
        """
        if self.uses_sampling:
            inner = self._impl.inner
            sample_rank = inner.rank(value)
            if inner.n == 0:
                return 0
            return round(sample_rank / inner.n * self._impl.n_seen)
        return self._impl.rank(value)

    def cdf(self, value: Any) -> Any:
        """Approximate fraction of elements ``<=`` *value*.

        Accepts a scalar (returns one float) or a sequence of values
        (returns a list of floats).
        """
        if isinstance(value, (list, tuple, np.ndarray)):
            n = len(self)
            return [self.rank(v) / n if n else 0.0 for v in value]
        n = len(self)
        return self.rank(value) / n if n else 0.0

    def min(self) -> Any:
        """The exact minimum (deterministic path) or sample minimum."""
        inner = self._impl.inner if self.uses_sampling else self._impl
        return inner.min()

    def max(self) -> Any:
        """The exact maximum (deterministic path) or sample maximum."""
        inner = self._impl.inner if self.uses_sampling else self._impl
        return inner.max()

    def equidepth_boundaries(self, p: int) -> List[Any]:
        """The ``i/p``-quantiles, ``i = 1 .. p-1`` -- equi-depth histogram
        bucket boundaries (Section 1.1)."""
        if p < 2:
            raise ConfigurationError(f"need at least 2 buckets, got {p}")
        return self.quantiles([i / p for i in range(1, p)])

    # -- guarantees ----------------------------------------------------------

    def error_bound(self) -> float:
        """Certified rank-error bound (elements) for answers issued now."""
        return self._impl.error_bound()

    def error_bound_fraction(self) -> float:
        """Certified rank-error bound as a fraction of elements seen."""
        n = len(self)
        return self.error_bound() / n if n else 0.0

    # -- merging (distributed building block) ---------------------------------

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Absorb *other* into this sketch (both must be deterministic and
        share ``(b, k)``); returns ``self``.

        The merged sketch summarises the concatenation of both inputs.  The
        combined collapse forest satisfies Lemma 5's requirements, so
        :meth:`error_bound` remains certified after merging.
        """
        if self.uses_sampling or other.uses_sampling:
            raise ConfigurationError(
                "merging sampling sketches is not supported: sample rates "
                "are tied to each sketch's own population size"
            )
        self._impl.absorb(other._impl)
        return self

    # -- dunder ----------------------------------------------------------------

    def __len__(self) -> int:
        if self.uses_sampling:
            return self._impl.n_seen
        return self._impl.n

    @property
    def n(self) -> int:
        """Genuine elements ingested so far (uniform query surface)."""
        return len(self)

    @property
    def memory_elements(self) -> int:
        """The ``b * k`` element footprint."""
        return self._impl.memory_elements

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "sampling" if self.uses_sampling else "direct"
        return (
            f"QuantileSketch(eps={self.epsilon}, n={self.design_n}, "
            f"mode={mode}, memory={self.memory_elements})"
        )


def approximate_quantiles(
    data: "np.ndarray | Sequence[Any]",
    phis: Sequence[float],
    epsilon: float,
    *,
    policy: str = "new",
    kernels: Optional[bool] = None,
) -> List[Any]:
    """One-shot convenience: ``epsilon``-approximate quantiles of *data*.

    Sizes the summary exactly for ``len(data)`` and answers all *phis* in a
    single pass with ``b * k`` memory -- the library's "hello world".
    ``kernels`` overrides the global vectorised-kernel switch for this
    call (results are bit-identical either way).
    """
    arr = data if isinstance(data, np.ndarray) else list(data)
    n = len(arr)
    if n == 0:
        raise ConfigurationError("data must be non-empty")
    plan = optimal_parameters(epsilon, n, policy=policy)
    fw = QuantileFramework(
        plan.b, plan.k, policy=policy, designed_n=n, kernels=kernels
    )
    fw.extend(arr)
    return fw.quantiles(list(phis))
