"""Unknown-N streams: an adaptive multi-stage sketch.

The SIGMOD'98 algorithm needs the dataset size N up front to size its
buffers (the paper's §7 lists lifting this as future work; the authors'
follow-up, MRL'99, solved it with non-uniform sampling).  This module
provides a deterministic bridge built entirely from the 1998 machinery:

* the stream is consumed in **stages** of geometrically growing capacity
  (``c_j = initial_capacity * 2^j``), each summarised by its own
  :class:`~repro.core.framework.QuantileFramework` sized for
  ``(stage_epsilon, c_j)``;
* when a stage fills, its surviving buffers are collapsed down to one
  (freeing all but ``k_j`` elements) and the next, larger stage opens;
* queries OUTPUT over the union of every stage's buffers -- the
  :func:`~repro.core.operations.weighted_select` primitive never needed
  equal buffer sizes, only COLLAPSE does, so cross-stage reads are exact.

**Guarantee.**  The union of the stage trees is a forest that satisfies
Lemma 5's hypotheses (weight-1 leaves, internal nodes with >= 2 children),
so the rank error of any answer is at most

    sum_j (W_j - C_j + 1)/2  +  w_max - 1

with the sums tracked live per stage -- :meth:`error_bound` certifies every
answer a posteriori, exactly like the fixed-N framework.  A priori: with
``stage_epsilon = epsilon / 4`` and doubling capacities, the total stage
capacity ever allocated is < 4n once n exceeds the first stage, giving an
``epsilon``-approximate answer for *any* stream length beyond the initial
capacity (and better than that in practice -- the bench measures ~epsilon/4).

**Cost.**  Stages never die, so memory grows by one k_j-sized buffer plus
one live framework as the stream doubles: O((1/eps) log^3(eps n)) total --
one log factor worse than the known-N optimum.  That is the honest price
of N-freedom within the 1998 framework; MRL'99's sampler removes it at the
cost of a probabilistic guarantee (see ``repro.core.sampling``).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from .errors import ConfigurationError, EmptySummaryError
from .framework import QuantileFramework
from .operations import output
from .parameters import optimal_parameters

__all__ = ["AdaptiveQuantileSketch"]

#: fraction of the error budget given to each stage; 1/4 makes the
#: geometric total provably <= epsilon (see module docstring)
_STAGE_FRACTION = 0.25


class _ClosedStage:
    """A filled stage: one surviving buffer + its tree statistics."""

    __slots__ = ("buffers", "n", "n_collapses", "sum_collapse_weights")

    def __init__(self, fw: QuantileFramework) -> None:
        fw.finish([0.5])  # flush the tail; record OUTPUT
        # Collapse all surviving buffers into one to free memory; the
        # extra collapse is accounted in the certified statistics.
        while len(fw.full_buffers) > 1:
            group = fw._full[:]
            fw._do_collapse(group)
        self.buffers = fw.full_buffers
        self.n = fw.n
        self.n_collapses = fw.n_collapses
        self.sum_collapse_weights = fw.sum_collapse_weights

    @classmethod
    def from_state(
        cls,
        buffers: List[Any],
        n: int,
        n_collapses: int,
        sum_collapse_weights: int,
    ) -> "_ClosedStage":
        """Rebuild a closed stage from persisted state (snapshot restore)."""
        stage = cls.__new__(cls)
        stage.buffers = buffers
        stage.n = n
        stage.n_collapses = n_collapses
        stage.sum_collapse_weights = sum_collapse_weights
        return stage


class AdaptiveQuantileSketch:
    """One-pass quantiles with a certified bound and **no N required**.

    Parameters
    ----------
    epsilon:
        Target approximation.  Guaranteed a priori for any stream longer
        than *initial_capacity*; certified a posteriori (exactly) always.
    initial_capacity:
        Capacity of the first stage.  Streams shorter than this are
        answered (near-)exactly; each subsequent stage doubles.
    policy:
        Collapse policy for every stage (default: the paper's new policy).

    Examples
    --------
    >>> sk = AdaptiveQuantileSketch(epsilon=0.01)
    >>> sk.extend(values)          # no idea how many will arrive -- fine
    >>> sk.query(0.5)
    >>> sk.error_bound_fraction()  # certified, despite unknown N
    """

    def __init__(
        self,
        epsilon: Optional[float] = None,
        *,
        initial_capacity: int = 4096,
        policy: str = "new",
        eps: Optional[float] = None,
        kernels: Optional[bool] = None,
    ) -> None:
        if (epsilon is None) == (eps is None):
            raise ConfigurationError(
                "give exactly one of epsilon (positional) or eps= (keyword)"
            )
        if epsilon is None:
            epsilon = eps
        if not 0.0 < epsilon < 1.0:
            raise ConfigurationError(
                f"epsilon must be in (0, 1), got {epsilon}"
            )
        if initial_capacity < 4:
            raise ConfigurationError(
                f"initial_capacity must be >= 4, got {initial_capacity}"
            )
        self.epsilon = epsilon
        self.policy = policy
        self.initial_capacity = int(initial_capacity)
        self.stage_epsilon = epsilon * _STAGE_FRACTION
        self._kernels = kernels
        self._closed: List[_ClosedStage] = []
        self._capacity = int(initial_capacity)
        self._active = self._new_stage(self._capacity)
        self._active_n = 0

    @classmethod
    def _restore(
        cls,
        *,
        epsilon: float,
        initial_capacity: int,
        policy: str,
        closed: "List[_ClosedStage]",
        capacity: int,
        active: QuantileFramework,
        active_n: int,
    ) -> "AdaptiveQuantileSketch":
        """Rebuild a sketch from persisted state (snapshot restore).

        The caller supplies exactly the fields the snapshot codec stored;
        the result is bit-identical to the instance that was dumped --
        same buffers, same stage-roll schedule, same certified bounds --
        so further ingest diverges nowhere.
        """
        sk = cls(epsilon, initial_capacity=initial_capacity, policy=policy)
        sk._closed = closed
        sk._capacity = int(capacity)
        sk._active = active
        sk._active_n = int(active_n)
        return sk

    def _new_stage(self, capacity: int) -> QuantileFramework:
        plan = optimal_parameters(
            self.stage_epsilon, capacity, policy=self.policy
        )
        return QuantileFramework(
            plan.b,
            plan.k,
            policy=self.policy,
            designed_n=capacity,
            kernels=self._kernels,
        )

    # -- ingest ------------------------------------------------------------

    @property
    def n(self) -> int:
        """Elements consumed so far."""
        return sum(s.n for s in self._closed) + self._active.n

    def __len__(self) -> int:
        return self.n

    @property
    def memory_elements(self) -> int:
        """Current element footprint: closed-stage buffers + live stage."""
        frozen = sum(
            len(buf.values) for s in self._closed for buf in s.buffers
        )
        return frozen + self._active.memory_elements

    @property
    def n_stages(self) -> int:
        return len(self._closed) + 1

    def _roll_stage(self) -> None:
        rolled = self._active
        self._closed.append(_ClosedStage(rolled))
        # keep the retired stage's observability counts: merge them into
        # sketch-level totals before the framework is dropped
        stats = getattr(rolled, "_obs_stats", None)
        if stats is not None:
            from ..obs.hooks import stats_for

            stats_for(self).merge(stats)
        self._capacity *= 2
        self._active = self._new_stage(self._capacity)
        self._active_n = 0

    def update(self, value: Any) -> None:
        """Add one element."""
        self.extend(np.asarray([value], dtype=np.float64))

    def extend(self, data: "np.ndarray | Sequence[float]") -> None:
        """Add many elements, rolling to larger stages as needed."""
        arr = np.asarray(data, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-d stream, got shape {arr.shape}"
            )
        pos = 0
        while pos < len(arr):
            room = self._capacity - self._active_n
            if room <= 0:
                self._roll_stage()
                continue
            take = min(room, len(arr) - pos)
            self._active.extend(arr[pos : pos + take])
            self._active_n += take
            pos += take

    # -- queries -----------------------------------------------------------

    def _all_buffers(self):
        buffers = [buf for s in self._closed for buf in s.buffers]
        buffers.extend(self._active._snapshot_buffers())
        return buffers

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        """Approximate quantiles of everything seen so far."""
        if self.n == 0:
            raise EmptySummaryError("no elements have been ingested")
        return output(
            self._all_buffers(), list(phis), self.n, use_kernels=self._kernels
        )

    def query(self, phi: float) -> float:
        return self.quantiles([phi])[0]

    def quantile(self, phi: float) -> float:
        """Approximate ``phi``-quantile (uniform query-surface alias)."""
        return self.quantiles([phi])[0]

    def describe(self) -> dict:
        """Summary dict: n, extremes, key quantiles, certified bound."""
        from .protocols import describe_dict

        return describe_dict(self)

    def median(self) -> float:
        return self.query(0.5)

    def rank(self, value: float) -> int:
        """Approximate number of elements ``<=`` *value* (inverse query).

        Same counting argument as the fixed-N framework; the certified
        bound of :meth:`error_bound` covers this estimate too.
        """
        if self.n == 0:
            raise EmptySummaryError("no elements have been ingested")
        from .operations import weighted_rank

        _below, below_eq = weighted_rank(self._all_buffers(), value)
        return min(below_eq, self.n)

    def cdf(self, value: Any) -> Any:
        """Approximate fraction of elements ``<=`` *value*.

        Accepts a scalar (returns one float) or a sequence (list of
        floats).
        """
        if isinstance(value, (list, tuple, np.ndarray)):
            return [self.rank(v) / self.n for v in value]
        return self.rank(value) / self.n

    # -- guarantees ------------------------------------------------------------

    def error_bound(self) -> float:
        """Certified rank bound (Lemma 5 over the union forest).

        Per-tree deficits ``(W_j - C_j + 1)/2`` add across stages; the
        ``w_max`` term appears once, for the heaviest buffer the final
        OUTPUT reads.
        """
        deficit = 0.0
        w_max = 1
        any_collapse = False
        stages = [
            (s.n_collapses, s.sum_collapse_weights, s.buffers)
            for s in self._closed
        ]
        stages.append(
            (
                self._active.n_collapses,
                self._active.sum_collapse_weights,
                self._active.full_buffers,
            )
        )
        for n_collapses, sum_weights, buffers in stages:
            if n_collapses:
                any_collapse = True
                deficit += (sum_weights - n_collapses + 1) / 2.0
            for buf in buffers:
                w_max = max(w_max, buf.weight)
        if not any_collapse:
            return 0.0
        return deficit + w_max - 1

    def error_bound_fraction(self) -> float:
        """Certified rank bound as a fraction of elements seen."""
        n = self.n
        return self.error_bound() / n if n else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveQuantileSketch(eps={self.epsilon}, n={self.n}, "
            f"stages={self.n_stages}, memory={self.memory_elements})"
        )
