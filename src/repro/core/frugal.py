"""Frugal-2U quantile engine: a handful of words per tracked fraction.

"Frugal Streaming for Estimating Quantiles: One (or two) memories
suffice" (Ma, Muthukrishnan & Sandler; see PAPERS.md) tracks one
quantile of a stream with two registers: the running estimate ``m`` and
an adaptive ``step``.  Each element nudges the estimate towards the
tracked fraction with a probabilistic comparison; the step size grows
while the estimate keeps moving in one direction and collapses back to
1 on reversals.  No buffers, no merges -- just O(1) state -- which is
what makes *huge* per-user metric cardinality affordable: at the
default two tracked fractions a :class:`FrugalBank` spends 58 bytes per
metric, against ~16 KiB for the paper's framework at ``eps=0.01``.

The trade-offs, stated up front:

* **no certified bound** -- Frugal-2U converges to the true quantile in
  expectation but ships no a-posteriori rank guarantee, so
  :meth:`FrugalSketch.error_bound` returns ``inf`` (the honest answer;
  the engine-selection table in docs/api.md shows measured accuracy);
* **not mergeable** -- two estimate/step pairs cannot be combined;
  :func:`repro.core.serialize.merge_serialized` refuses frugal payloads;
* untracked fractions are answered by monotone interpolation between
  the tracked estimates, anchored at the exact (tracked) extremes.

Determinism
-----------

Every probabilistic decision consumes a pure hash of ``(stream seed,
per-sketch element index)`` (:func:`repro.core.kernels.splitmix64_u01`)
instead of a stateful RNG.  State after ingesting a stream is therefore
a function of the stream *content* only -- independent of batch
boundaries, of bank-vs-direct feeding, and of journal replay chunking --
which is what lets the service recover frugal metrics bit-identically
after a crash.

Vectorised bank
---------------

:class:`FrugalBank` stores the state of *all* its sketches in flat
numpy arrays (``(n_phis, n_sketches)`` float64 planes) and applies a
whole partitioned ingest chunk with the branchless rounds kernel
(:func:`repro.core.kernels.frugal2u_update`): round ``r`` updates the
``r``-th element of every active run at once, so 100k metrics ingest at
array speed instead of per-object Python dispatch.
"""

from __future__ import annotations

import io
import struct
from typing import Any, BinaryIO, Dict, List, Optional, Sequence, Tuple

import numpy as np

from . import kernels
from .errors import (
    CapacityExceededError,
    ConfigurationError,
    EmptySummaryError,
    StorageError,
)
from .protocols import DESCRIBE_PHIS, describe_dict
from ..obs import hooks as _obs

__all__ = ["FrugalBank", "FrugalSketch", "FRUGAL_MAGIC"]

FRUGAL_MAGIC = b"FRGSKT01"
FRUGAL_FORMAT_VERSION = 1

# magic, version, n_phis, seed, n, min, max
_HEADER = struct.Struct("<8sHHxxxxQQdd")
# per tracked fraction: q, m, step, sign
_PHI_RECORD = struct.Struct("<dddb")

#: default tracked fractions for banks -- the p50/p99 shape of per-user
#: latency metrics, 58 bytes of state per sketch
DEFAULT_BANK_PHIS = (0.5, 0.99)

_FINITE_MSG = (
    "numeric streams must be finite: the framework reserves "
    "+/-inf as padding sentinels and NaN has no rank"
)


def _validate_phis(phis: Sequence[float]) -> np.ndarray:
    arr = np.asarray(sorted(set(float(p) for p in phis)), dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("need at least one tracked fraction")
    if np.any(arr <= 0.0) or np.any(arr >= 1.0):
        raise ConfigurationError(
            f"tracked fractions must be strictly inside (0, 1), got {list(phis)}"
        )
    return arr


class FrugalBank:
    """N Frugal-2U sketches in flat arrays, filled by one vectorised kernel.

    The frugal counterpart of :class:`~repro.core.bank.SketchBank`: same
    ingest surface (``extend`` / ``extend_single`` / ``extend_pairs`` /
    ``extend_runs``), same lazy materialisation by dense integer id, but
    per-sketch state is three scalars per tracked fraction plus a
    counter and the exact extremes -- no buffers at all.

    Parameters
    ----------
    phis:
        Tracked quantile fractions, shared by every sketch in the bank
        (default ``(0.5, 0.99)``).  Other fractions are answered by
        monotone interpolation.
    n_sketches:
        Sketches to materialise eagerly.
    max_sketches:
        Optional hard cap on the number of sketches.
    seed:
        Base of the deterministic per-element randomness, shared by the
        whole bank (one stream per tracked fraction).
    """

    def __init__(
        self,
        phis: Sequence[float] = DEFAULT_BANK_PHIS,
        *,
        n_sketches: int = 0,
        max_sketches: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if n_sketches < 0:
            raise ConfigurationError(
                f"n_sketches must be >= 0, got {n_sketches}"
            )
        if max_sketches is not None and max_sketches < 1:
            raise ConfigurationError(
                f"max_sketches must be >= 1, got {max_sketches}"
            )
        self._qs = _validate_phis(phis)
        self.seed = int(seed)
        self.max_sketches = max_sketches
        self._bases = np.asarray(
            [kernels.stream_seed(self.seed, p) for p in range(len(self._qs))],
            dtype=np.uint64,
        )
        self._count = 0
        cap = max(n_sketches, 1)
        nphis = len(self._qs)
        self._m = np.zeros((nphis, cap), dtype=np.float64)
        self._step = np.ones((nphis, cap), dtype=np.float64)
        self._sign = np.ones((nphis, cap), dtype=np.int8)
        self._n = np.zeros(cap, dtype=np.int64)
        self._min = np.full(cap, np.inf, dtype=np.float64)
        self._max = np.full(cap, -np.inf, dtype=np.float64)
        # scratch reused across chunks by the partition step
        self._scratch_ids = np.empty(0, dtype=np.int64)
        self._scratch_vals = np.empty(0, dtype=np.float64)
        if n_sketches:
            self._count = n_sketches

    # -- sketch management -------------------------------------------------

    @property
    def phis(self) -> Tuple[float, ...]:
        """The tracked fractions (sorted, deduplicated)."""
        return tuple(float(q) for q in self._qs)

    @property
    def n_sketches(self) -> int:
        return self._count

    def __len__(self) -> int:
        return self._count

    def _materialize_through(self, max_id: int) -> None:
        if self.max_sketches is not None and max_id >= self.max_sketches:
            raise CapacityExceededError(
                f"bank capped at {self.max_sketches} sketches; "
                f"sketch id {max_id} would exceed it"
            )
        if max_id < self._count:
            return
        cap = self._m.shape[1]
        if max_id >= cap:
            new_cap = max(max_id + 1, 2 * cap)
            nphis = len(self._qs)

            def grow2(arr: np.ndarray, fill: float) -> np.ndarray:
                out = np.full((nphis, new_cap), fill, dtype=arr.dtype)
                out[:, : self._count] = arr[:, : self._count]
                return out

            def grow1(arr: np.ndarray, fill: float) -> np.ndarray:
                out = np.full(new_cap, fill, dtype=arr.dtype)
                out[: self._count] = arr[: self._count]
                return out

            self._m = grow2(self._m, 0.0)
            self._step = grow2(self._step, 1.0)
            self._sign = grow2(self._sign, 1)
            self._n = grow1(self._n, 0)
            self._min = grow1(self._min, np.inf)
            self._max = grow1(self._max, -np.inf)
        self._count = max_id + 1

    def add_sketch(self) -> int:
        """Materialise one more sketch; returns its id."""
        new_id = self._count
        self._materialize_through(new_id)
        return new_id

    def adopt(self, sketch: "FrugalSketch") -> int:
        """Move an externally built :class:`FrugalSketch` into the bank.

        The sketch's state is copied into the next bank row and the
        sketch becomes a live view onto it (queries and ``extend`` on
        the sketch read and write the bank row), so callers keep their
        handles while ingest is batched bank-wide -- the frugal analogue
        of :meth:`SketchBank.adopt`.  Requires matching tracked
        fractions and seed, or the deterministic update streams would
        diverge from the sketch's pre-adoption history.
        """
        if not isinstance(sketch, FrugalSketch):
            raise ConfigurationError(
                f"adopt() needs a FrugalSketch, got {type(sketch).__name__}"
            )
        src = sketch._bank
        if src is self:
            return sketch._row
        if tuple(src.phis) != tuple(self.phis):
            raise ConfigurationError(
                f"cannot adopt: sketch tracks {src.phis}, bank {self.phis}"
            )
        if src.seed != self.seed:
            raise ConfigurationError(
                f"cannot adopt: sketch seed {src.seed} != bank seed {self.seed}"
            )
        row = self.add_sketch()
        j = sketch._row
        self._m[:, row] = src._m[:, j]
        self._step[:, row] = src._step[:, j]
        self._sign[:, row] = src._sign[:, j]
        self._n[row] = src._n[j]
        self._min[row] = src._min[j]
        self._max[row] = src._max[j]
        sketch._bank = self
        sketch._row = row
        return row

    # -- ingest ------------------------------------------------------------

    def _coerce_values(self, values: Any) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-d stream, got shape {arr.shape}"
            )
        if arr.size and not np.isfinite(arr).all():
            raise ConfigurationError(_FINITE_MSG)
        return arr

    def _apply_runs(
        self,
        run_ids: np.ndarray,
        starts: np.ndarray,
        stops: np.ndarray,
        values: np.ndarray,
    ) -> None:
        if _obs.ENABLED:
            _obs.on_bank_extend(self, int(len(values)), len(run_ids))
        adjusted = kernels.frugal2u_update(
            self._qs,
            self._m,
            self._step,
            self._sign,
            self._n,
            self._min,
            self._max,
            values,
            run_ids,
            starts,
            stops,
            self._bases,
        )
        if _obs.ENABLED:
            _obs.on_engine_event("frugal", "step_adjustments", adjusted)

    def extend_single(
        self,
        i: int,
        values: "np.ndarray | Sequence[float]",
        *,
        validated: bool = False,
    ) -> None:
        """Feed *values* (in order) to sketch *i* alone."""
        if i < 0:
            raise ConfigurationError(f"sketch ids must be >= 0, got {i}")
        arr = values if validated else self._coerce_values(values)
        if arr.size == 0:
            return
        if i >= self._count:
            self._materialize_through(i)
        self._apply_runs(
            np.asarray([i], dtype=np.int64),
            np.asarray([0], dtype=np.int64),
            np.asarray([arr.size], dtype=np.int64),
            np.ascontiguousarray(arr, dtype=np.float64),
        )

    def extend(
        self,
        ids: "np.ndarray | Sequence[int]",
        values: "np.ndarray | Sequence[float]",
    ) -> None:
        """Route ``values[j]`` to sketch ``ids[j]`` for the whole chunk.

        One stable argsort partitions the chunk into per-sketch runs
        (arrival order preserved within each run) and one kernel call
        applies every run -- bit-identical to feeding each sketch its
        subsequence with :meth:`extend_single`.
        """
        values_arr = self._coerce_values(values)
        ids_arr = np.asarray(ids)
        if ids_arr.shape != values_arr.shape:
            raise ConfigurationError(
                f"ids and values must be equal-length 1-d arrays, got "
                f"{ids_arr.shape} and {values_arr.shape}"
            )
        if values_arr.size == 0:
            return
        if ids_arr.dtype.kind not in "iu":
            if ids_arr.dtype.kind == "f" and np.all(ids_arr == np.floor(ids_arr)):
                ids_arr = ids_arr.astype(np.int64)
            else:
                raise ConfigurationError(
                    f"sketch ids must be integers, got dtype {ids_arr.dtype}"
                )
        ids_arr = ids_arr.astype(np.int64, copy=False)
        lo = int(ids_arr.min())
        if lo < 0:
            raise ConfigurationError(f"sketch ids must be >= 0, got {lo}")
        hi = int(ids_arr.max())
        if hi >= self._count:
            self._materialize_through(hi)
        if lo == hi:
            self.extend_single(lo, values_arr, validated=True)
            return
        n = values_arr.size
        if self._scratch_ids.size < n:
            cap = max(n, 2 * self._scratch_ids.size)
            self._scratch_ids = np.empty(cap, dtype=np.int64)
            self._scratch_vals = np.empty(cap, dtype=np.float64)
        order = np.argsort(ids_arr, kind="stable")
        sorted_ids = self._scratch_ids[:n]
        sorted_vals = self._scratch_vals[:n]
        np.take(ids_arr, order, out=sorted_ids)
        np.take(values_arr, order, out=sorted_vals)
        bounds = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
        starts = np.concatenate(([0], bounds))
        stops = np.append(bounds, n)
        run_ids = sorted_ids[starts]
        self._apply_runs(run_ids, starts, stops, sorted_vals)

    def extend_pairs(
        self,
        pairs: "Sequence[tuple[int, np.ndarray]]",
    ) -> int:
        """Ingest many ``(sketch_id, values)`` batches as one kernel chunk.

        Batches naming the same sketch are kept in list order, so each
        sketch still sees its elements in arrival order.  Returns the
        number of elements ingested.
        """
        arrays: List[np.ndarray] = []
        ids: List[int] = []
        lengths: List[int] = []
        for sketch_id, values in pairs:
            arr = self._coerce_values(values)
            if arr.size == 0:
                continue
            arrays.append(arr)
            ids.append(int(sketch_id))
            lengths.append(arr.size)
        if not arrays:
            return 0
        if len(arrays) == 1:
            self.extend_single(ids[0], arrays[0], validated=True)
            return lengths[0]
        values_arr = np.concatenate(arrays)
        ids_arr = np.repeat(
            np.asarray(ids, dtype=np.int64),
            np.asarray(lengths, dtype=np.int64),
        )
        self.extend(ids_arr, values_arr)
        return int(values_arr.size)

    def extend_runs(
        self,
        run_ids: "np.ndarray | Sequence[int]",
        starts: "np.ndarray | Sequence[int]",
        stops: "np.ndarray | Sequence[int]",
        values: np.ndarray,
        *,
        _validated: bool = False,
    ) -> None:
        """Ingest an already-partitioned chunk (see ``SketchBank.extend_runs``).

        Runs must be in each sketch's arrival order.  Duplicate run ids
        (several runs for one sketch) are folded through the pair path so
        the kernel always sees distinct ids.
        """
        run_ids = np.asarray(run_ids, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.int64)
        stops = np.asarray(stops, dtype=np.int64)
        if not _validated:
            values = self._coerce_values(values)
            if len(run_ids):
                lo = int(run_ids.min())
                if lo < 0:
                    raise ConfigurationError(
                        f"sketch ids must be >= 0, got {lo}"
                    )
                hi = int(run_ids.max())
                if hi >= self._count:
                    self._materialize_through(hi)
        keep = stops > starts
        if not np.all(keep):
            run_ids, starts, stops = run_ids[keep], starts[keep], stops[keep]
        if len(run_ids) == 0:
            return
        if len(np.unique(run_ids)) != len(run_ids):
            self.extend_pairs(
                [
                    (int(r), values[int(s) : int(e)])
                    for r, s, e in zip(run_ids, starts, stops)
                ]
            )
            return
        self._apply_runs(run_ids, starts, stops, values)

    # -- queries -----------------------------------------------------------

    def counts(self) -> np.ndarray:
        """Elements ingested per sketch (``int64`` array)."""
        return self._n[: self._count].copy()

    @property
    def n_total(self) -> int:
        """Total elements ingested across all sketches."""
        return int(self._n[: self._count].sum())

    @property
    def memory_bytes(self) -> int:
        """Exact per-sketch state bytes held for the materialised sketches.

        Counts the live state (estimates, steps, signs, counters,
        extremes) -- the number the bench's bytes-per-metric gate
        measures -- not the amortised over-allocation of the growth
        arrays.
        """
        n = self._count
        per_row = (
            self._m.itemsize * len(self._qs)
            + self._step.itemsize * len(self._qs)
            + self._sign.itemsize * len(self._qs)
            + self._n.itemsize
            + self._min.itemsize
            + self._max.itemsize
        )
        return per_row * n

    @property
    def memory_elements(self) -> int:
        """State footprint in float64-equivalents (``memory_bytes / 8``)."""
        return -(-self.memory_bytes // 8)

    def _check_id(self, i: int) -> int:
        if not 0 <= i < self._count:
            raise ConfigurationError(
                f"no sketch {i}; bank holds {self._count}"
            )
        return i

    def n_of(self, i: int) -> int:
        """Elements ingested by sketch *i*."""
        return int(self._n[self._check_id(i)])

    def _anchors(self, i: int) -> Tuple[np.ndarray, np.ndarray]:
        """Monotone (phi, value) interpolation anchors for sketch *i*.

        Tracked estimates are clipped to the exact extremes and made
        non-decreasing in phi order (transient inversions between
        independently tracked fractions must not produce a non-monotone
        quantile function).
        """
        if self._n[i] == 0:
            raise EmptySummaryError("no elements have been ingested")
        lo = self._min[i]
        hi = self._max[i]
        est = np.clip(self._m[:, i], lo, hi)
        est = np.maximum.accumulate(est)
        xp = np.concatenate(([0.0], self._qs, [1.0]))
        fp = np.concatenate(([lo], est, [hi]))
        return xp, fp

    def quantiles(self, i: int, phis: Sequence[float]) -> List[float]:
        """Estimated quantiles of sketch *i* (tracked or interpolated)."""
        i = self._check_id(i)
        phi_arr = np.asarray(list(phis), dtype=np.float64)
        if phi_arr.size and (
            np.any(phi_arr < 0.0) or np.any(phi_arr > 1.0)
        ):
            raise ConfigurationError(
                f"quantile fractions must be in [0, 1], got {list(phis)}"
            )
        xp, fp = self._anchors(i)
        return [float(v) for v in np.interp(phi_arr, xp, fp)]

    def quantile(self, i: int, phi: float) -> float:
        """Estimated ``phi``-quantile of sketch *i*."""
        return self.quantiles(i, [phi])[0]

    def cdf(self, i: int, value: Any) -> Any:
        """Estimated CDF of sketch *i* at *value* (scalar or sequence)."""
        i = self._check_id(i)
        xp, fp = self._anchors(i)
        if isinstance(value, (list, tuple, np.ndarray)):
            vals = np.asarray(value, dtype=np.float64)
            return [float(v) for v in np.interp(vals, fp, xp)]
        return float(np.interp(float(value), fp, xp))

    def rank(self, i: int, value: Any) -> int:
        """Estimated rank of *value* in sketch *i*'s stream."""
        i = self._check_id(i)
        xp, fp = self._anchors(i)
        frac = float(np.interp(float(value), fp, xp))
        return min(int(round(frac * int(self._n[i]))), int(self._n[i]))

    def error_bound(self, i: int) -> float:
        """``inf``: Frugal-2U carries no certified rank bound."""
        self._check_id(i)
        return float("inf")

    def error_bounds(self) -> List[float]:
        return [float("inf")] * self._count

    def quantiles_all(
        self, phis: Sequence[float]
    ) -> List[Optional[List[float]]]:
        """Per-sketch quantiles for every fraction in *phis* (None if empty)."""
        phi_list = list(phis)
        return [
            self.quantiles(i, phi_list) if self._n[i] else None
            for i in range(self._count)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrugalBank(phis={self.phis}, sketches={self._count}, "
            f"seed={self.seed})"
        )


class FrugalSketch:
    """A single Frugal-2U summary: the per-metric face of the engine.

    Internally a one-row :class:`FrugalBank` (so the single-sketch and
    bank ingest paths share one kernel and are bit-identical by
    construction); :meth:`FrugalBank.adopt` re-points the sketch at a
    shared bank row without changing its behaviour.

    Answers the full :class:`~repro.core.protocols.SketchProtocol`
    quartet.  ``error_bound()`` is ``inf`` -- this engine trades the
    certified guarantee for O(1) state; pick the paper or KLL engine
    when a bound is required.
    """

    def __init__(
        self,
        phis: Sequence[float] = DESCRIBE_PHIS,
        *,
        seed: int = 0,
    ) -> None:
        self._bank = FrugalBank(phis, n_sketches=1, seed=seed)
        self._row = 0

    # -- ingest ------------------------------------------------------------

    def extend(self, values: Any) -> None:
        """Ingest *values* (any iterable of finite numbers), in order."""
        if not isinstance(values, (np.ndarray, list, tuple)):
            values = np.fromiter(
                (float(v) for v in values), dtype=np.float64
            )
        self._bank.extend_single(self._row, values)

    def insert(self, value: float) -> None:
        """Ingest one element."""
        self._bank.extend_single(self._row, np.asarray([value], dtype=np.float64))

    # -- queries -----------------------------------------------------------

    @property
    def phis(self) -> Tuple[float, ...]:
        """The tracked fractions."""
        return self._bank.phis

    @property
    def seed(self) -> int:
        return self._bank.seed

    @property
    def n(self) -> int:
        """Elements ingested so far."""
        return self._bank.n_of(self._row)

    @property
    def memory_elements(self) -> int:
        """State footprint in float64-equivalents (a handful of words)."""
        per_row_bytes = self._bank.memory_bytes // max(self._bank.n_sketches, 1)
        return -(-per_row_bytes // 8)

    def quantile(self, phi: float) -> float:
        """Estimated ``phi``-quantile (tracked directly or interpolated)."""
        return self._bank.quantile(self._row, phi)

    def quantiles(self, phis: Sequence[float]) -> List[float]:
        """Estimated quantiles for every fraction in *phis*."""
        return self._bank.quantiles(self._row, phis)

    def query(self, phi: float) -> float:
        """Alias of :meth:`quantile` (the pre-facade spelling)."""
        return self.quantile(phi)

    def cdf(self, value: Any) -> Any:
        """Estimated CDF at a scalar (float) or sequence (list of floats)."""
        return self._bank.cdf(self._row, value)

    def rank(self, value: Any) -> int:
        """Estimated rank of *value* (elements <= it)."""
        return self._bank.rank(self._row, value)

    def describe(self) -> Dict[str, Any]:
        """Summary dict: n, exact extremes, key quantiles, ``inf`` bound."""
        return describe_dict(self)

    def min(self) -> float:
        """The exact smallest element seen."""
        if self.n == 0:
            raise EmptySummaryError("no elements have been ingested")
        return float(self._bank._min[self._row])

    def max(self) -> float:
        """The exact largest element seen."""
        if self.n == 0:
            raise EmptySummaryError("no elements have been ingested")
        return float(self._bank._max[self._row])

    def error_bound(self) -> float:
        """``inf``: Frugal-2U carries no certified rank bound."""
        return float("inf")

    # -- serialisation -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialise to the ``FRGSKT01`` wire format (see docs/formats.md)."""
        bank, row = self._bank, self._row
        out = io.BytesIO()
        n = int(bank._n[row])
        out.write(
            _HEADER.pack(
                FRUGAL_MAGIC,
                FRUGAL_FORMAT_VERSION,
                len(bank._qs),
                bank.seed,
                n,
                float(bank._min[row]) if n else float("nan"),
                float(bank._max[row]) if n else float("nan"),
            )
        )
        for p in range(len(bank._qs)):
            out.write(
                _PHI_RECORD.pack(
                    float(bank._qs[p]),
                    float(bank._m[p, row]),
                    float(bank._step[p, row]),
                    int(bank._sign[p, row]),
                )
            )
        return out.getvalue()

    @classmethod
    def read_from(cls, fh: BinaryIO) -> "FrugalSketch":
        """Read one serialised sketch from *fh* (self-delimiting)."""
        from .serialize import _read_exact

        raw = _read_exact(fh, _HEADER.size, "frugal header")
        magic, version, n_phis, seed, n, minv, maxv = _HEADER.unpack(raw)
        if magic != FRUGAL_MAGIC:
            raise StorageError(
                f"bad magic {magic!r}: not a serialised frugal sketch"
            )
        if version != FRUGAL_FORMAT_VERSION:
            raise StorageError(
                f"unsupported frugal format version {version}"
            )
        if n_phis < 1:
            raise StorageError("corrupt frugal sketch: no tracked fractions")
        qs = np.empty(n_phis, dtype=np.float64)
        ms = np.empty(n_phis, dtype=np.float64)
        steps = np.empty(n_phis, dtype=np.float64)
        signs = np.empty(n_phis, dtype=np.int8)
        for p in range(n_phis):
            rec = _read_exact(fh, _PHI_RECORD.size, "frugal record")
            qs[p], ms[p], steps[p], signs[p] = _PHI_RECORD.unpack(rec)
        sk = cls(qs, seed=seed)
        bank = sk._bank
        if len(bank._qs) != n_phis or not np.array_equal(bank._qs, qs):
            raise StorageError(
                "corrupt frugal sketch: tracked fractions not sorted/unique"
            )
        bank._m[:, 0] = ms
        bank._step[:, 0] = steps
        bank._sign[:, 0] = signs
        bank._n[0] = n
        bank._min[0] = np.inf if np.isnan(minv) else minv
        bank._max[0] = -np.inf if np.isnan(maxv) else maxv
        return sk

    @classmethod
    def from_bytes(cls, raw: bytes) -> "FrugalSketch":
        """Deserialise from bytes produced by :meth:`to_bytes`."""
        fh = io.BytesIO(raw)
        sk = cls.read_from(fh)
        if fh.read(1):
            raise StorageError(
                "corrupt frugal sketch: trailing bytes after payload"
            )
        return sk

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FrugalSketch(phis={self.phis}, n={self.n}, seed={self.seed})"
        )
