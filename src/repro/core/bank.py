"""SketchBank: many logically-independent MRL summaries, one vectorised ingest.

Section 1.2 of the paper motivates computing *many* quantile summaries in a
single scan -- histograms for multiple columns of a table, and GROUP BY
plans that "compute multiple aggregation results concurrently".  Feeding N
independent :class:`~repro.core.framework.QuantileFramework` instances one
at a time from Python is dominated by per-row bucketing and per-call
overhead, not by the summaries themselves.  :class:`SketchBank` removes
that overhead: a whole chunk, tagged with one integer *sketch id* per
element, is routed to all destination summaries with a handful of
vectorised numpy calls.

How a chunk is ingested
-----------------------

1. the caller encodes each element's destination summary as an integer id
   (e.g. ``np.unique(keys, return_inverse=True)`` over GROUP BY keys, or
   the column index for multi-column scans);
2. one *stable* ``np.argsort`` over the ids partitions the chunk into one
   contiguous run per destination sketch (a counting sort by destination);
3. each run is handed to the destination framework's existing batched
   ingest (:meth:`~repro.core.framework.QuantileFramework._ingest_numeric`,
   which sorts all full leaf buffers of the run in a single
   ``np.sort(axis=1)`` and places them via the presorted
   ``_place_values`` fast path from the kernel layer).

Why the partition is *stable* (sorted by id only, not by ``(id, value)``):
a buffer's contents are the sorted k-element windows of each summary's
input stream *in arrival order*.  Sorting a run by value would move
elements across window boundaries and produce different (still
guarantee-respecting, but not identical) buffers.  A stable partition
preserves each summary's arrival order exactly, so the bank is
**bit-identical** to N independently-fed frameworks -- same buffers, same
collapse schedule, same quantile answers, same certified Lemma 5 error
bound, same serialised wire format.  The property-test suite asserts all
of this.  The value sort the lexsort variant would have pre-paid happens
anyway, vectorised, inside the run's batched leaf construction.

Because every summary is logically independent, the per-sketch epsilon
guarantee is untouched: each sketch sees exactly the subsequence of the
stream addressed to it, in order, and Lemma 5 applies per sketch.

Scratch buffers for the partition step are owned by the bank and reused
across chunks; summaries for ids first seen mid-stream are materialised
lazily from a single pre-computed parameter plan (the plan search runs
once per bank, not once per group).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .errors import CapacityExceededError, ConfigurationError
from .framework import QuantileFramework
from .parameters import ParameterPlan, optimal_parameters
from ..obs import hooks as _obs

__all__ = ["SketchBank"]

#: Default design capacity when the caller does not know ``n`` (mirrors
#: :data:`repro.core.sketch.DEFAULT_DESIGN_N`).
_DEFAULT_DESIGN_N = 2**30

_FINITE_MSG = (
    "numeric streams must be finite: the framework reserves "
    "+/-inf as padding sentinels and NaN has no rank"
)


class SketchBank:
    """N independent one-pass quantile summaries filled by vectorised ingest.

    Every sketch in the bank shares one configuration ``(epsilon, n,
    policy, offset_mode)`` -- the GROUP BY / multi-column shape, where all
    groups or columns carry the same guarantee.  Sketches are addressed by
    dense integer ids ``0 .. n_sketches - 1`` and materialised lazily: an
    ingest naming id ``i`` creates sketches up to ``i`` on the spot, so
    groups first seen in the last chunk of a stream cost nothing before
    that.

    Parameters
    ----------
    epsilon:
        Rank guarantee for every sketch, exactly as in
        :class:`~repro.core.sketch.QuantileSketch`.
    n:
        Expected elements *per sketch* (an upper bound is safe and is the
        natural choice for GROUP BY: no group exceeds the table).
    policy / offset_mode:
        Collapse policy and offset handling, shared by all sketches.
    n_sketches:
        Sketches to materialise eagerly (ids ``0 .. n_sketches - 1``).
    max_sketches:
        Optional hard cap on the number of sketches; ingest naming an id
        at or beyond the cap raises
        :class:`~repro.core.errors.CapacityExceededError` (the bank-level
        analogue of a per-sketch capacity error -- memory is bounded by
        ``max_sketches * b * k`` elements).
    eps:
        Keyword alias for *epsilon* (the facade spelling); give exactly
        one of the two.
    kernels:
        Per-bank kernel override forwarded to every materialised
        framework (``None`` follows the global switch).
    """

    def __init__(
        self,
        epsilon: Optional[float] = None,
        n: Optional[int] = None,
        *,
        policy: str = "new",
        offset_mode: str = "alternate",
        n_sketches: int = 0,
        max_sketches: Optional[int] = None,
        eps: Optional[float] = None,
        kernels: Optional[bool] = None,
    ) -> None:
        if (epsilon is None) == (eps is None):
            raise ConfigurationError(
                "give exactly one of epsilon (positional) or eps= (keyword)"
            )
        if epsilon is None:
            epsilon = eps
        if not 0 < epsilon < 1:
            raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
        design_n = _DEFAULT_DESIGN_N if n is None else int(n)
        if design_n < 1:
            raise ConfigurationError(f"n must be >= 1, got {n}")
        if n_sketches < 0:
            raise ConfigurationError(
                f"n_sketches must be >= 0, got {n_sketches}"
            )
        if max_sketches is not None and max_sketches < 1:
            raise ConfigurationError(
                f"max_sketches must be >= 1, got {max_sketches}"
            )
        self.epsilon = epsilon
        self.design_n = design_n
        self.policy = policy
        self.offset_mode = offset_mode
        self.max_sketches = max_sketches
        self._kernels = kernels
        self._plan: Optional[ParameterPlan] = None
        self._sketches: List[QuantileFramework] = []
        # scratch reused across chunks by the partition step
        self._scratch_ids = np.empty(0, dtype=np.int64)
        self._scratch_vals = np.empty(0, dtype=np.float64)
        if n_sketches:
            self._materialize_through(n_sketches - 1)

    # -- sketch management -------------------------------------------------

    @property
    def plan(self) -> ParameterPlan:
        """The shared ``(b, k)`` plan (computed once, lazily)."""
        if self._plan is None:
            self._plan = optimal_parameters(
                self.epsilon, self.design_n, policy=self.policy
            )
        return self._plan

    @property
    def n_sketches(self) -> int:
        return len(self._sketches)

    def __len__(self) -> int:
        return len(self._sketches)

    def _materialize_through(self, max_id: int) -> None:
        if self.max_sketches is not None and max_id >= self.max_sketches:
            raise CapacityExceededError(
                f"bank capped at {self.max_sketches} sketches; "
                f"sketch id {max_id} would exceed it"
            )
        plan = self.plan
        while len(self._sketches) <= max_id:
            fw = QuantileFramework(
                plan.b,
                plan.k,
                policy=self.policy,
                offset_mode=self.offset_mode,
                designed_n=self.design_n,
                kernels=self._kernels,
            )
            fw._mode = "numeric"  # banks are numeric-only by construction
            self._sketches.append(fw)

    def add_sketch(self) -> int:
        """Materialise one more sketch; returns its id."""
        new_id = len(self._sketches)
        self._materialize_through(new_id)
        return new_id

    def adopt(self, fw: QuantileFramework) -> int:
        """Register an externally built framework as the next sketch id.

        Lets callers that already own :class:`QuantileFramework` instances
        (e.g. :class:`~repro.core.sketch.QuantileSketch` wrappers) route
        their ingest through the bank while keeping their own handles.
        """
        if not isinstance(fw, QuantileFramework):
            raise ConfigurationError(
                f"adopt() needs a QuantileFramework, got {type(fw).__name__}"
            )
        if fw._mode == "generic":
            raise ConfigurationError(
                "banks are numeric-only; cannot adopt a generic-mode summary"
            )
        if self.max_sketches is not None and len(self._sketches) >= self.max_sketches:
            raise CapacityExceededError(
                f"bank capped at {self.max_sketches} sketches"
            )
        fw._mode = "numeric"
        self._sketches.append(fw)
        return len(self._sketches) - 1

    def sketch(self, i: int) -> QuantileFramework:
        """The underlying framework for sketch *i* (shared reference)."""
        if not 0 <= i < len(self._sketches):
            raise ConfigurationError(
                f"no sketch {i}; bank holds {len(self._sketches)}"
            )
        return self._sketches[i]

    # -- ingest ------------------------------------------------------------

    def _coerce_values(self, values: Any) -> np.ndarray:
        arr = np.asarray(values, dtype=np.float64)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-d stream, got shape {arr.shape}"
            )
        if arr.size and not np.isfinite(arr).all():
            raise ConfigurationError(_FINITE_MSG)
        return arr

    def extend_single(
        self,
        i: int,
        values: "np.ndarray | Sequence[float]",
        *,
        validated: bool = False,
    ) -> None:
        """Feed *values* (in order) to sketch *i* alone.

        The single-destination fast path: no id vector, no partition --
        identical overhead to feeding the framework directly, so single
        group / single column workloads pay nothing for the bank.

        ``validated=True`` skips the coercion/finiteness scan for
        callers that already validated this exact float64 array (the
        service validates at frame decode, before journaling -- the
        O(batch) ``isfinite`` scan must not be charged twice).
        """
        if i < 0:
            raise ConfigurationError(f"sketch ids must be >= 0, got {i}")
        arr = values if validated else self._coerce_values(values)
        if arr.size == 0:
            return
        if i >= len(self._sketches):
            self._materialize_through(i)
        if _obs.ENABLED:
            _obs.on_bank_extend(self, int(arr.size), 1)
        self._sketches[i]._ingest_numeric(arr)

    def extend(
        self,
        ids: "np.ndarray | Sequence[int]",
        values: "np.ndarray | Sequence[float]",
    ) -> None:
        """Route ``values[j]`` to sketch ``ids[j]`` for the whole chunk.

        One stable ``np.argsort`` over *ids* partitions the chunk into
        per-sketch runs (arrival order preserved within each run), then
        each run takes the destination framework's batched ingest path.
        The result is bit-identical to feeding each sketch its
        subsequence with ``extend`` -- the property suite asserts it.
        """
        values_arr = self._coerce_values(values)
        ids_arr = np.asarray(ids)
        if ids_arr.shape != values_arr.shape:
            raise ConfigurationError(
                f"ids and values must be equal-length 1-d arrays, got "
                f"{ids_arr.shape} and {values_arr.shape}"
            )
        if values_arr.size == 0:
            return
        if ids_arr.dtype.kind not in "iu":
            if ids_arr.dtype.kind == "f" and np.all(ids_arr == np.floor(ids_arr)):
                ids_arr = ids_arr.astype(np.int64)
            else:
                raise ConfigurationError(
                    f"sketch ids must be integers, got dtype {ids_arr.dtype}"
                )
        ids_arr = ids_arr.astype(np.int64, copy=False)
        lo = int(ids_arr.min())
        if lo < 0:
            raise ConfigurationError(f"sketch ids must be >= 0, got {lo}")
        hi = int(ids_arr.max())
        if hi >= len(self._sketches):
            self._materialize_through(hi)
        if lo == hi:
            # single destination: skip the partition entirely
            if _obs.ENABLED:
                _obs.on_bank_extend(self, int(values_arr.size), 1)
            self._sketches[lo]._ingest_numeric(values_arr)
            return
        n = values_arr.size
        if self._scratch_ids.size < n:
            cap = max(n, 2 * self._scratch_ids.size)
            self._scratch_ids = np.empty(cap, dtype=np.int64)
            self._scratch_vals = np.empty(cap, dtype=np.float64)
        order = np.argsort(ids_arr, kind="stable")
        sorted_ids = self._scratch_ids[:n]
        sorted_vals = self._scratch_vals[:n]
        np.take(ids_arr, order, out=sorted_ids)
        np.take(values_arr, order, out=sorted_vals)
        bounds = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
        starts = np.concatenate(([0], bounds))
        stops = np.append(bounds, n)
        run_ids = sorted_ids[starts]
        self.extend_runs(run_ids, starts, stops, sorted_vals, _validated=True)

    def extend_pairs(
        self,
        pairs: "Sequence[tuple[int, np.ndarray]]",
    ) -> int:
        """Ingest many ``(sketch_id, values)`` batches as one vectorised chunk.

        The batched entry point for callers that accumulate per-destination
        micro-batches -- e.g. a server shard draining ingest frames queued
        by many connections.  Batches are concatenated in list order (so
        each sketch still sees its elements in arrival order), ids are
        expanded with one ``np.repeat``, and the whole chunk takes the
        standard :meth:`extend` partition path -- bit-identical to feeding
        every batch to its sketch one at a time.  Returns the number of
        elements ingested.
        """
        arrays: List[np.ndarray] = []
        ids: List[int] = []
        lengths: List[int] = []
        for sketch_id, values in pairs:
            arr = self._coerce_values(values)
            if arr.size == 0:
                continue
            arrays.append(arr)
            ids.append(int(sketch_id))
            lengths.append(arr.size)
        if not arrays:
            return 0
        if len(arrays) == 1:
            self.extend_single(ids[0], arrays[0])
            return lengths[0]
        values_arr = np.concatenate(arrays)
        ids_arr = np.repeat(
            np.asarray(ids, dtype=np.int64),
            np.asarray(lengths, dtype=np.int64),
        )
        self.extend(ids_arr, values_arr)
        return int(values_arr.size)

    def extend_runs(
        self,
        run_ids: "np.ndarray | Sequence[int]",
        starts: "np.ndarray | Sequence[int]",
        stops: "np.ndarray | Sequence[int]",
        values: np.ndarray,
        *,
        _validated: bool = False,
    ) -> None:
        """Ingest an already-partitioned chunk: run ``j`` is
        ``values[starts[j]:stops[j]]``, destined for sketch ``run_ids[j]``.

        The entry point for callers that computed the partition themselves
        (the GROUP BY executor partitions once and reuses the permutation
        for every aggregated column; multi-column scans are contiguous by
        construction and need no sort at all).  Runs must be in each
        sketch's arrival order; empty runs are skipped.
        """
        if not _validated:
            values = self._coerce_values(values)
            run_ids = np.asarray(run_ids, dtype=np.int64)
            if len(run_ids):
                lo = int(run_ids.min())
                if lo < 0:
                    raise ConfigurationError(
                        f"sketch ids must be >= 0, got {lo}"
                    )
                hi = int(run_ids.max())
                if hi >= len(self._sketches):
                    self._materialize_through(hi)
        sketches = self._sketches
        if _obs.ENABLED:
            _obs.on_bank_extend(self, int(len(values)), len(run_ids))
        run_list = (
            run_ids.tolist() if isinstance(run_ids, np.ndarray) else list(run_ids)
        )
        start_list = (
            starts.tolist() if isinstance(starts, np.ndarray) else list(starts)
        )
        stop_list = (
            stops.tolist() if isinstance(stops, np.ndarray) else list(stops)
        )
        for rid, s, e in zip(run_list, start_list, stop_list):
            if e > s:
                sketches[rid]._ingest_numeric(values[s:e])

    # -- queries -----------------------------------------------------------

    def counts(self) -> np.ndarray:
        """Elements ingested per sketch (``int64`` array)."""
        return np.fromiter(
            (fw.n for fw in self._sketches),
            dtype=np.int64,
            count=len(self._sketches),
        )

    @property
    def n_total(self) -> int:
        """Total elements ingested across all sketches."""
        return sum(fw.n for fw in self._sketches)

    @property
    def memory_elements(self) -> int:
        """Summed ``b * k`` footprint of every materialised sketch."""
        return sum(fw.memory_elements for fw in self._sketches)

    def quantiles(self, i: int, phis: Sequence[float]) -> List[Any]:
        """Approximate quantiles of sketch *i* (one snapshot, all phis)."""
        return self.sketch(i).quantiles(phis)

    def query(self, i: int, phi: float) -> Any:
        """Approximate ``phi``-quantile of sketch *i*."""
        return self.sketch(i).query(phi)

    def quantile(self, i: int, phi: float) -> Any:
        """Approximate ``phi``-quantile of sketch *i* (uniform alias)."""
        return self.sketch(i).quantile(phi)

    def cdf(self, i: int, value: Any) -> Any:
        """Approximate CDF of sketch *i* at *value* (scalar or sequence)."""
        return self.sketch(i).cdf(value)

    def describe(self, i: int) -> dict:
        """Summary dict for sketch *i* (see ``QuantileFramework.describe``)."""
        return self.sketch(i).describe()

    def quantiles_all(
        self, phis: Sequence[float]
    ) -> List[Optional[List[Any]]]:
        """Per-sketch quantiles for every fraction in *phis*.

        Each sketch answers all fractions off a single buffer snapshot
        (Section 4.7: extra quantiles are free); sketches that have seen
        no elements yield ``None``.
        """
        phi_list = list(phis)
        return [
            fw.quantiles(phi_list) if fw.n else None
            for fw in self._sketches
        ]

    def error_bound(self, i: int) -> float:
        """Certified Lemma 5 rank-error bound (elements) for sketch *i*."""
        return self.sketch(i).error_bound()

    def error_bounds(self) -> List[float]:
        """Certified per-sketch rank-error bounds, id order."""
        return [fw.error_bound() for fw in self._sketches]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SketchBank(eps={self.epsilon}, n={self.design_n}, "
            f"policy={self.policy!r}, sketches={len(self._sketches)})"
        )
