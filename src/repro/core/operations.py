"""The three primitive operations of the MRL framework: NEW, COLLAPSE, OUTPUT.

Section 3 of the paper composes every algorithm in the framework from an
interleaved sequence of three operations:

``NEW``
    populate an empty buffer with the next ``k`` stream elements (weight 1,
    padding the final partial buffer with ``±inf`` sentinels);

``COLLAPSE``
    merge ``c >= 2`` full buffers into a single buffer of ``k`` equally
    spaced elements of the weighted merged sequence, with the *offset
    alternation* rule for even output weights that Lemma 1 relies on;

``OUTPUT``
    select the element at the weighted rank corresponding to the requested
    quantile(s) from the final set of full buffers.

Both COLLAPSE and OUTPUT reduce to one shared primitive implemented here,
:func:`weighted_select`: pick the elements at given 1-indexed positions of
the sequence obtained by sorting all buffer contents together with each
element duplicated ``weight`` times.  The duplicates are never materialised
-- the numeric path runs the sorted-run merge kernels of
:mod:`repro.core.kernels` (buffers are sorted by construction, so a full
argsort is never needed; the argsort reference remains as the automatic
fallback), the generic path uses the counting merge described in Section
3.2 of the paper.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Sequence

import numpy as np

from . import kernels
from .buffer import MINUS_INF, PLUS_INF, Buffer
from .errors import ConfigurationError

__all__ = [
    "OffsetSelector",
    "weighted_select",
    "collapse",
    "output",
    "weighted_rank",
    "augmented_phi",
]


class OffsetSelector:
    """Chooses the COLLAPSE offset, alternating on even output weights.

    For an output buffer of weight ``w``:

    * odd ``w``  -> offset ``(w + 1) / 2`` (the midpoint);
    * even ``w`` -> alternately ``w / 2`` and ``(w + 2) / 2`` on successive
      even-weight invocations (Section 3.2).  Lemma 1's lower bound on the
      sum of offsets -- and therefore the paper's error guarantee -- depends
      on this alternation.

    The ``mode`` parameter exists for the ablation benchmarks: ``"low"`` or
    ``"high"`` pin the even-weight choice instead of alternating, which
    weakens the guarantee and measurably skews the output.
    """

    _MODES = ("alternate", "low", "high")

    def __init__(self, mode: str = "alternate") -> None:
        if mode not in self._MODES:
            raise ConfigurationError(
                f"offset mode must be one of {self._MODES}, got {mode!r}"
            )
        self.mode = mode
        self._next_even_is_high = False

    def offset_for(self, weight: int) -> int:
        """Return the 1-indexed offset for a collapse of output *weight*."""
        if weight < 2:
            raise ConfigurationError(
                f"collapse output weight must be >= 2, got {weight}"
            )
        if weight % 2 == 1:
            return (weight + 1) // 2
        if self.mode == "low":
            return weight // 2
        if self.mode == "high":
            return (weight + 2) // 2
        high = self._next_even_is_high
        self._next_even_is_high = not high
        return (weight + 2) // 2 if high else weight // 2


def _weighted_select_numeric(
    buffers: Sequence[Buffer],
    targets: Sequence[int],
    use_kernels: "bool | None" = None,
) -> np.ndarray:
    """Vectorised weighted positional selection over numpy-backed buffers.

    Buffer values are sorted by construction, so selection runs on the
    sorted-run kernels; element i of the merged order covers the half-open
    weighted position interval (cum[i-1], cum[i]].  With the kernels
    disabled this is exactly the reference global-argsort path.
    """
    runs = [b.values for b in buffers]
    weights = [b.weight for b in buffers]
    return kernels.weighted_select_runs(
        runs,
        weights,
        np.asarray(targets, dtype=np.int64),
        enabled=use_kernels,
    )


def _weighted_select_generic(
    buffers: Sequence[Buffer], targets: Sequence[int]
) -> List[Any]:
    """Counting-merge weighted selection for arbitrary comparable values."""
    # Tag each stream with its buffer index so heapq never compares values
    # of equal keys across buffers (ties resolve on the integer tag).
    def stream(values, tag, weight):
        for value in values:
            yield value, tag, weight

    streams = [
        stream(b.values, i, b.weight) for i, b in enumerate(buffers)
    ]
    merged = heapq.merge(*streams, key=lambda item: (item[0], item[1]))
    selected: List[Any] = []
    remaining = iter(sorted(targets))
    target = next(remaining, None)
    cum = 0
    for value, _tag, weight in merged:
        if target is None:
            break
        cum += weight
        while target is not None and target <= cum:
            selected.append(value)
            target = next(remaining, None)
    if target is not None:
        raise ConfigurationError(
            f"selection position {target} exceeds weighted size {cum}"
        )
    return selected


def weighted_select(
    buffers: Sequence[Buffer],
    targets: Sequence[int],
    *,
    use_kernels: "bool | None" = None,
) -> Sequence[Any]:
    """Select elements at 1-indexed *targets* of the weighted merged order.

    Conceptually, each element of each buffer is duplicated ``weight``
    times, all copies are sorted together, and the elements at the given
    positions are returned (in the order of the *sorted* targets).  The
    duplication is purely logical.  *use_kernels* overrides the global
    kernel switch for this call (``None`` follows it).
    """
    if not buffers:
        raise ConfigurationError("weighted_select needs at least one buffer")
    total = sum(b.weighted_count for b in buffers)
    targets = list(targets)
    if not targets:
        return []
    if min(targets) < 1 or max(targets) > total:
        raise ConfigurationError(
            f"selection positions must lie in [1, {total}], got "
            f"[{min(targets)}, {max(targets)}]"
        )
    if all(b.is_numeric for b in buffers):
        return _weighted_select_numeric(buffers, sorted(targets), use_kernels)
    return _weighted_select_generic(buffers, targets)


def _count_pads(values: Any) -> tuple[int, int]:
    """Count leading ``-inf`` and trailing ``+inf`` pads in sorted *values*."""
    if isinstance(values, np.ndarray):
        return int(np.isneginf(values).sum()), int(np.isposinf(values).sum())
    n_low = 0
    for v in values:
        if v is MINUS_INF:
            n_low += 1
        else:
            break
    n_high = 0
    for v in reversed(values):
        if v is PLUS_INF:
            n_high += 1
        else:
            break
    return n_low, n_high


def collapse(
    buffers: Sequence[Buffer],
    offset: "int | OffsetSelector",
    *,
    level: int | None = None,
    use_kernels: "bool | None" = None,
) -> Buffer:
    """COLLAPSE ``c >= 2`` full buffers into one (Section 3.2).

    The output holds the ``k`` elements at positions
    ``j * w(Y) + offset(Y)`` for ``j = 0 .. k-1`` of the weighted merged
    sequence, where ``w(Y)`` is the sum of the input weights.  *offset* may
    be given directly (the framework pre-computes it so it can also be
    recorded in the collapse tree) or as an :class:`OffsetSelector` to
    consult.  The returned buffer's pad counts are recomputed from its
    contents so that padding sentinels keep propagating correctly through
    further collapses.
    """
    if len(buffers) < 2:
        raise ConfigurationError(
            f"COLLAPSE requires at least 2 buffers, got {len(buffers)}"
        )
    k = len(buffers[0].values)
    if any(len(b.values) != k for b in buffers):
        raise ConfigurationError("COLLAPSE inputs must share a capacity k")
    weight = 0
    low_w = 0
    high_w = 0
    numeric = True
    weights = []
    for b in buffers:
        w = b.weight
        weight += w
        weights.append(w)
        if b.n_low_pad:
            low_w += b.n_low_pad * w
        if b.n_high_pad:
            high_w += b.n_high_pad * w
        if numeric and not isinstance(b.values, np.ndarray):
            numeric = False
    if isinstance(offset, OffsetSelector):
        offset = offset.offset_for(weight)
    if not 1 <= offset <= weight + 1:
        raise ConfigurationError(
            f"offset {offset} out of range for output weight {weight}"
        )
    if numeric:
        # Numeric fast path: kernel selection over the sorted runs and O(1)
        # pad arithmetic (valid because ingest validation keeps real stream
        # values finite, so the only +/-inf stored are padding sentinels).
        total = weight * k
        if (k - 1) * weight + offset > total:
            raise ConfigurationError(
                f"selection positions must lie in [1, {total}], got "
                f"[{offset}, {(k - 1) * weight + offset}]"
            )
        out_values: Any = kernels.collapse_select_runs(
            [b.values for b in buffers],
            weights,
            weight,
            offset,
            k,
            enabled=use_kernels,
        )
        n_low, n_high = kernels.collapse_pad_counts(
            low_w, high_w, total, weight, offset, k
        )
        return Buffer(
            values=out_values,
            weight=weight,
            level=buffers[0].level + 1 if level is None else level,
            n_low_pad=n_low,
            n_high_pad=n_high,
        )
    targets = [j * weight + offset for j in range(k)]
    values = weighted_select(buffers, targets, use_kernels=use_kernels)
    if isinstance(values, np.ndarray):
        out_values = values
    else:
        out_values = list(values)
    n_low, n_high = _count_pads(out_values)
    return Buffer(
        values=out_values,
        weight=weight,
        level=buffers[0].level + 1 if level is None else level,
        n_low_pad=n_low,
        n_high_pad=n_high,
    )


def output(
    buffers: Sequence[Buffer],
    phis: Sequence[float],
    n_real: int,
    *,
    use_kernels: "bool | None" = None,
) -> List[Any]:
    """OUTPUT: read the approximate quantiles off the final full buffers.

    Parameters
    ----------
    buffers:
        The remaining full buffers (the children of the tree root).  The
        paper requires ``c >= 2``; we additionally permit ``c == 1`` so that
        very small inputs (a single leaf) still answer queries.
    phis:
        Quantile fractions in ``[0, 1]``.  Per Section 4.7, any number of
        quantiles can be read off simultaneously at no extra cost.
    n_real:
        The number of *genuine* input elements (excluding padding).  The
        selection position is the paper's ``ceil(phi' * k * W)`` expressed
        in exact integer arithmetic: ``ceil(phi * N)`` plus the weighted
        count of ``-inf`` pads below the data.
    """
    if not buffers:
        raise ConfigurationError("OUTPUT requires at least one full buffer")
    if n_real < 1:
        raise ConfigurationError("OUTPUT requires at least one real element")
    low_pad_weighted = sum(b.n_low_pad * b.weight for b in buffers)
    targets = []
    for phi in phis:
        if not 0.0 <= phi <= 1.0:
            raise ConfigurationError(f"quantile fraction {phi} not in [0, 1]")
        rank = min(max(int(np.ceil(phi * n_real)), 1), n_real)
        targets.append(rank + low_pad_weighted)
    order = np.argsort(targets, kind="stable")
    selected = weighted_select(
        buffers, [targets[i] for i in order], use_kernels=use_kernels
    )
    results: List[Any] = [None] * len(targets)
    for out_pos, orig_pos in enumerate(order):
        results[orig_pos] = selected[out_pos]
    return results


def augmented_phi(phi: float, beta: float) -> float:
    """Map a quantile of the original dataset to the augmented one.

    Section 3.1: if the augmented dataset (original plus an equal number of
    ``-inf`` / ``+inf`` pads) has ``beta * N`` elements, the ``phi``-quantile
    of the original corresponds to the ``phi'``-quantile of the augmented
    dataset with ``phi' = (2 phi + beta - 1) / (2 beta)``.

    The runtime code uses exact integer ranks instead (see :func:`output`);
    this helper exists for parity with the paper and for the analysis tests.
    """
    if beta < 1.0:
        raise ConfigurationError(f"beta must be >= 1, got {beta}")
    return (2.0 * phi + beta - 1.0) / (2.0 * beta)


def weighted_rank(buffers: Sequence[Buffer], value: Any) -> tuple[int, int]:
    """Weighted rank interval of *value* against the summary's contents.

    Returns ``(n_below, n_below_or_equal)`` counting weighted copies of
    genuine (non-padding) stored elements.  This is the inverse-quantile
    primitive: by the same definitely-small/definitely-large argument as
    Lemma 5, the true rank of *value* in the original dataset lies within
    the summary's certified error bound of this interval.
    """
    if not buffers:
        raise ConfigurationError("weighted_rank needs at least one buffer")
    if all(b.is_numeric for b in buffers):
        return kernels.weighted_rank_runs(
            [b.values for b in buffers],
            [b.weight for b in buffers],
            [b.n_low_pad for b in buffers],
            [b.n_high_pad for b in buffers],
            value,
        )
    below = 0
    below_eq = 0
    for buf in buffers:
        if buf.is_numeric:
            lo = int(np.searchsorted(buf.values, value, side="left"))
            hi = int(np.searchsorted(buf.values, value, side="right"))
        else:
            lo = 0
            for v in buf.values:
                if v < value:
                    lo += 1
                else:
                    break
            hi = lo
            for v in buf.values[lo:]:
                if not value < v and v is not PLUS_INF:
                    hi += 1
                else:
                    break
        # -inf pads always sort below `value`; exclude them from the count
        lo_real = max(lo - buf.n_low_pad, 0)
        hi_real = max(min(hi, len(buf.values) - buf.n_high_pad) - buf.n_low_pad, 0)
        below += buf.weight * lo_real
        below_eq += buf.weight * hi_real
    return below, below_eq
