"""The streaming driver tying buffers, operations and policies together.

:class:`QuantileFramework` is the runnable embodiment of the paper's
uniform framework (Section 3): ``b`` buffers of ``k`` elements, a collapse
policy deciding the schedule, NEW/COLLAPSE interleaved over a single pass
of the input, and OUTPUT answering any number of quantile queries at the
end (Section 4.7: multiple quantiles cost nothing extra).

Typical use::

    fw = QuantileFramework(b=10, k=600, policy="new")
    fw.extend(big_numpy_chunk)          # vectorised ingest
    fw.update(3.14)                     # scalar ingest
    median = fw.query(0.5)
    p10, p90 = fw.quantiles([0.1, 0.9])
    fw.error_bound()                    # certified a-posteriori rank bound

Sizing ``b`` and ``k`` for a target guarantee is the job of
:mod:`repro.core.parameters`; :meth:`QuantileFramework.from_accuracy` wires
the two together.

Querying is allowed at any point of the stream.  A query needs the not yet
buffer-aligned tail of the input to participate, so the framework builds a
temporary padded buffer for it; when all ``b`` slots are occupied the
framework instead makes room with policy collapses and places the tail as a
real buffer (this is exactly what OUTPUT at end-of-stream would do, and the
pad bookkeeping keeps all rank arithmetic exact either way).
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

from . import kernels
from .buffer import Buffer
from .errors import (
    CapacityExceededError,
    ConfigurationError,
    EmptySummaryError,
)
from .operations import OffsetSelector, collapse, output, weighted_rank
from .policies import CollapsePolicy, make_policy
from .tree import TreeRecorder, TreeStats
from ..obs import hooks as _obs

__all__ = ["QuantileFramework"]

_SCALAR_FLUSH = 512  # scalars buffered before joining the numeric remainder


class QuantileFramework:
    """One-pass approximate quantile summary with ``b * k`` memory.

    Parameters
    ----------
    b, k:
        Number of buffers and buffer capacity.  The memory footprint is
        ``b * k`` stored elements (plus O(b) bookkeeping), as in the paper.
    policy:
        Collapse policy name or instance -- ``"new"`` (default, the paper's
        algorithm), ``"munro-paterson"`` or ``"alsabti-ranka-singh"``.
    offset_mode:
        ``"alternate"`` (paper behaviour, default) or ``"low"`` / ``"high"``
        to pin the even-weight collapse offset (ablation only).
    record_tree:
        Attach a :class:`~repro.core.tree.TreeRecorder` so the full collapse
        tree can be inspected/rendered afterwards.
    designed_n:
        The dataset size the configuration was sized for.  Purely
        informational unless *strict_capacity* is set.
    strict_capacity:
        Raise :class:`~repro.core.errors.CapacityExceededError` when more
        than *designed_n* elements arrive instead of degrading gracefully.
    kernels:
        Per-instance override for the vectorised selection kernels:
        ``True``/``False`` force them on/off for this summary's COLLAPSE
        and OUTPUT calls, ``None`` (default) follows the global
        :func:`repro.core.kernels.is_enabled` switch.  Results are
        bit-identical either way.
    """

    def __init__(
        self,
        b: int,
        k: int,
        *,
        policy: "str | CollapsePolicy" = "new",
        offset_mode: str = "alternate",
        record_tree: bool = False,
        designed_n: Optional[int] = None,
        strict_capacity: bool = False,
        kernels: Optional[bool] = None,
    ) -> None:
        if b < 2:
            raise ConfigurationError(f"need at least b=2 buffers, got {b}")
        if k < 1:
            raise ConfigurationError(f"buffer capacity k must be >= 1, got {k}")
        if strict_capacity and designed_n is None:
            raise ConfigurationError(
                "strict_capacity requires designed_n to be set"
            )
        self.b = b
        self.k = k
        self.policy = make_policy(policy)
        self.designed_n = designed_n
        self.strict_capacity = strict_capacity
        self._kernels = kernels
        self._offsets = OffsetSelector(offset_mode)
        self.recorder: Optional[TreeRecorder] = (
            TreeRecorder() if record_tree else None
        )
        self._full: List[Buffer] = []
        self._n = 0  # genuine elements ingested
        self._n_collapses = 0
        self._sum_collapse_weights = 0
        self._mode: Optional[str] = None  # "numeric" | "generic"
        self._remainder: Any = None  # np.ndarray or list, matching mode
        self._pending_scalars: List[Any] = []
        self._finished = False
        self._min: Any = None  # exact stream extremes (O(1) bookkeeping)
        self._max: Any = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_accuracy(
        cls,
        epsilon: float,
        n: int,
        *,
        policy: "str | CollapsePolicy" = "new",
        **kwargs: Any,
    ) -> "QuantileFramework":
        """Size ``(b, k)`` for an ``epsilon``-approximate answer on ``n`` items.

        Uses the per-policy optimisers of :mod:`repro.core.parameters`
        (Sections 4.3-4.5) to minimise ``b * k`` subject to the guarantee.
        """
        from .parameters import optimal_parameters

        plan = optimal_parameters(
            epsilon, n, policy=make_policy(policy).name
        )
        kwargs.setdefault("designed_n", n)
        return cls(plan.b, plan.k, policy=policy, **kwargs)

    # -- introspection ----------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of genuine elements ingested so far (pending included)."""
        return self._n + len(self._pending_scalars)

    @property
    def memory_elements(self) -> int:
        """The ``b * k`` element footprint of the configuration."""
        return self.b * self.k

    @property
    def n_collapses(self) -> int:
        """``C``: COLLAPSE operations performed so far."""
        return self._n_collapses

    @property
    def sum_collapse_weights(self) -> int:
        """``W``: sum of weights of all COLLAPSE outputs so far."""
        return self._sum_collapse_weights

    def error_bound(self) -> float:
        """Certified rank-error bound for answers issued *now* (Lemma 5).

        Computed from the actual run history: ``(W - C - 1)/2 + w_max``
        where ``w_max`` is the heaviest buffer OUTPUT would currently read.
        Unlike the a-priori sizing bound this is exact for the stream seen,
        so it remains meaningful even if the summary is overfilled past its
        design capacity.
        """
        self._flush_scalars()
        if self._n_collapses == 0:
            return 0.0
        w_max = max((buf.weight for buf in self._full), default=1)
        return (
            self._sum_collapse_weights - self._n_collapses - 1
        ) / 2.0 + w_max

    def tree_stats(self) -> TreeStats:
        """Tree statistics (requires ``record_tree=True``)."""
        if self.recorder is None:
            raise ConfigurationError(
                "tree statistics need record_tree=True at construction"
            )
        return self.recorder.stats(final_buffers=self._snapshot_buffers())

    # -- ingest -----------------------------------------------------------------

    def update(self, value: Any) -> None:
        """Ingest a single element."""
        self._pending_scalars.append(value)
        if len(self._pending_scalars) >= _SCALAR_FLUSH:
            self._flush_scalars()

    def extend(self, data: "Iterable[Any] | np.ndarray") -> None:
        """Ingest many elements (numpy arrays take the vectorised path)."""
        self._flush_scalars()
        if not isinstance(data, (np.ndarray, list, tuple)):
            # Materialise one-shot iterables (generators, map objects, ...)
            # exactly once; mode detection below must not consume them.
            data = list(data)
        if self._mode is None:
            self._mode = self._detect_mode(data)
        if self._mode == "numeric":
            arr = np.asarray(data, dtype=np.float64)
            if arr.ndim != 1:
                raise ConfigurationError(
                    f"expected a 1-d stream, got shape {arr.shape}"
                )
            if arr.size and not np.isfinite(arr).all():
                raise ConfigurationError(
                    "numeric streams must be finite: the framework reserves "
                    "+/-inf as padding sentinels and NaN has no rank"
                )
            self._ingest_numeric(arr)
        else:
            self._ingest_generic(list(data))

    def extend_weighted(
        self,
        values: "np.ndarray | Sequence[float]",
        counts: "np.ndarray | Sequence[int]",
        *,
        chunk_elements: int = 1 << 20,
    ) -> None:
        """Ingest ``values[i]`` repeated ``counts[i]`` times.

        The natural fit for pre-aggregated inputs (``value, frequency``
        rows).  Repeats are materialised in bounded slices of at most
        *chunk_elements*, so memory stays flat; time is proportional to
        the total count.  The guarantee is identical to feeding the
        repeats one by one -- they *are* fed, just vectorised.
        """
        vals = np.asarray(values, dtype=np.float64)
        cnts = np.asarray(counts, dtype=np.int64)
        if vals.shape != cnts.shape or vals.ndim != 1:
            raise ConfigurationError(
                f"values and counts must be equal-length 1-d arrays, got "
                f"{vals.shape} and {cnts.shape}"
            )
        if len(cnts) and int(cnts.min()) < 0:
            raise ConfigurationError("counts cannot be negative")
        if len(cnts) and int(cnts.min()) == 0:
            # Zero-count rows contribute nothing; drop them up front so the
            # chunking loop below never materialises or scans them.
            keep = cnts > 0
            vals = vals[keep]
            cnts = cnts[keep]
        if not len(vals):
            return
        start = 0
        while start < len(vals):
            stop = start
            budget = 0
            while stop < len(vals) and budget + cnts[stop] <= chunk_elements:
                budget += int(cnts[stop])
                stop += 1
            if stop == start:  # single huge count: split it
                huge = int(cnts[start])
                value = float(vals[start])
                while huge > 0:
                    take = min(huge, chunk_elements)
                    self.extend(np.full(take, value))
                    huge -= take
                start += 1
                continue
            piece = np.repeat(vals[start:stop], cnts[start:stop])
            if len(piece):
                self.extend(piece)
            start = stop

    def _detect_mode(self, data: Any) -> str:
        if isinstance(data, np.ndarray):
            return "numeric" if data.dtype.kind in "fiu" else "generic"
        probe = list(data) if not isinstance(data, (list, tuple)) else data
        if isinstance(probe, (list, tuple)) and probe:
            first = probe[0]
            if isinstance(first, (int, float, np.integer, np.floating)):
                return "numeric"
            return "generic"
        return "numeric"

    def _flush_scalars(self) -> None:
        if not self._pending_scalars:
            return
        pending, self._pending_scalars = self._pending_scalars, []
        if self._mode is None:
            self._mode = self._detect_mode(pending)
        if self._mode == "numeric":
            for v in pending:
                if not isinstance(v, (int, float, np.integer, np.floating)):
                    raise ConfigurationError(
                        f"non-numeric value {v!r} in a numeric stream"
                    )
            arr = np.asarray(pending, dtype=np.float64)
            if arr.size and not np.isfinite(arr).all():
                raise ConfigurationError(
                    "numeric streams must be finite: the framework reserves "
                    "+/-inf as padding sentinels and NaN has no rank"
                )
            self._ingest_numeric(arr)
        else:
            self._ingest_generic(pending)

    def _check_capacity(self, incoming: int) -> None:
        if (
            self.strict_capacity
            and self.designed_n is not None
            and self._n + incoming > self.designed_n
        ):
            raise CapacityExceededError(
                f"summary sized for n={self.designed_n} received "
                f"{self._n + incoming} elements"
            )

    def _ingest_numeric(self, arr: np.ndarray) -> None:
        if arr.size == 0:
            return
        self._check_capacity(int(arr.size))
        self._n += int(arr.size)
        if _obs.ENABLED:
            _obs.on_ingest(self, int(arr.size), int(arr.nbytes))
        lo, hi = float(arr.min()), float(arr.max())
        self._min = lo if self._min is None else min(self._min, lo)
        self._max = hi if self._max is None else max(self._max, hi)
        k = self.k
        rem = self._remainder
        if rem is not None and len(rem):
            # Complete the staged partial buffer with just enough elements
            # instead of concatenating the whole chunk onto it.
            need = k - len(rem)
            if arr.size < need:
                self._remainder = np.concatenate([rem, arr])
                return
            self._place_values(np.concatenate([rem, arr[:need]]))
            arr = arr[need:]
        n_full = arr.size // k
        if n_full:
            # Batched NEW: sort every full buffer of the chunk in one
            # vectorised call, then place the pre-sorted rows.
            mat = kernels.sort_rows(arr, k)
            place = self._place_values
            for i in range(n_full):
                place(mat[i], presorted=True)
        self._remainder = arr[n_full * k :].copy()

    def _ingest_generic(self, items: List[Any]) -> None:
        if not items:
            return
        self._check_capacity(len(items))
        self._n += len(items)
        if _obs.ENABLED:
            _obs.on_ingest(self, len(items), 0)
        lo, hi = min(items), max(items)
        self._min = lo if self._min is None or lo < self._min else self._min
        self._max = hi if self._max is None or hi > self._max else self._max
        staged = (
            list(self._remainder) if isinstance(self._remainder, list) else []
        )
        staged.extend(items)
        k = self.k
        n_full = len(staged) // k
        for i in range(n_full):
            self._place_values(staged[i * k : (i + 1) * k])
        self._remainder = staged[n_full * k :]

    # -- NEW / COLLAPSE scheduling ----------------------------------------------

    def _place_values(self, values: Any, *, presorted: bool = False) -> None:
        """NEW: place *values* (exactly k, or fewer for the final flush).

        With ``presorted=True`` the caller guarantees a full, already
        sorted row of exactly ``k`` numeric values (the batched ingest
        path), so the buffer is built directly without re-sorting or pad
        bookkeeping.
        """
        while True:
            group = self.policy.pre_new_collapse(self._full, self.b)
            if group is None:
                break
            self._do_collapse(group)
        level = self.policy.level_for_new(self._full, self.b)
        if presorted:
            # Copy the row so buffers never pin the chunk-sized sort matrix.
            buf = Buffer(values=values.copy(), weight=1, level=level)
        else:
            buf = Buffer.from_values(values, self.k, level=level)
        self._full.append(buf)
        if self.recorder is not None:
            self.recorder.on_new(buf)
        if _obs.ENABLED:
            _obs.on_new(self, level)
        while True:
            group = self.policy.post_new_collapse(self._full, self.b)
            if not group:
                break
            self._do_collapse(group)

    def _do_collapse(self, group: Sequence[Buffer]) -> None:
        weight = sum(buf.weight for buf in group)
        offset = self._offsets.offset_for(weight)
        result = collapse(group, offset, use_kernels=self._kernels)
        group_ids = {buf.buffer_id for buf in group}
        self._full = [
            buf for buf in self._full if buf.buffer_id not in group_ids
        ]
        self._full.append(result)
        self._n_collapses += 1
        self._sum_collapse_weights += weight
        if self.recorder is not None:
            self.recorder.on_collapse(group, result, offset)
        if _obs.ENABLED:
            _obs.on_collapse(self, group, result, weight, offset)

    # -- queries -----------------------------------------------------------------

    def _snapshot_buffers(self) -> List[Buffer]:
        """Current full buffers plus (if needed) the staged tail as a buffer.

        Never mutates: the tail rides along as a temporary weight-1
        buffer even when every slot is full, so reads commute with
        serialization -- two replicas of the same stream stay
        bit-identical no matter which of them served the queries.
        Only :meth:`finish` (the terminal OUTPUT) places the tail for
        real.
        """
        self._flush_scalars()
        tail = self._remainder
        has_tail = tail is not None and len(tail) > 0
        if not has_tail:
            return list(self._full)
        level = self.policy.level_for_new(self._full, self.b)
        temp = Buffer.from_values(tail, self.k, level=level)
        return list(self._full) + [temp]

    def quantiles(self, phis: Sequence[float]) -> List[Any]:
        """Approximate ``phi``-quantiles for every fraction in *phis*.

        All quantiles are read off the same final buffers, so asking for
        many is no more expensive than asking for one (Section 4.7).
        """
        self._flush_scalars()
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        bufs = self._snapshot_buffers()
        answers = output(bufs, list(phis), self._n, use_kernels=self._kernels)
        if _obs.ENABLED:
            _obs.on_output(self, len(answers))
        # the stream extremes are tracked exactly (O(1)); answer the end
        # points with them rather than the summary's approximation
        for i, phi in enumerate(phis):
            if phi == 0.0:
                answers[i] = self._min
            elif phi == 1.0:
                answers[i] = self._max
        return answers

    def query(self, phi: float) -> Any:
        """Approximate ``phi``-quantile of everything ingested so far."""
        return self.quantiles([phi])[0]

    def quantile(self, phi: float) -> Any:
        """Approximate ``phi``-quantile (uniform query-surface alias)."""
        return self.quantiles([phi])[0]

    def describe(self) -> dict:
        """A summary dict: n, exact extremes, key quantiles, certified bound."""
        from .protocols import describe_dict

        return describe_dict(self)

    def min(self) -> Any:
        """The exact smallest element seen (tracked in O(1))."""
        self._flush_scalars()
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        return self._min

    def max(self) -> Any:
        """The exact largest element seen (tracked in O(1))."""
        self._flush_scalars()
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        return self._max

    def rank(self, value: Any) -> int:
        """Approximate rank of *value*: how many elements are <= it.

        The inverse of :meth:`query`.  By the same counting argument as
        Lemma 5, the true count is within :meth:`error_bound` of the
        returned midpoint estimate.
        """
        self._flush_scalars()
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        bufs = self._snapshot_buffers()
        _below, below_eq = weighted_rank(bufs, value)
        return min(below_eq, self._n)

    def cdf(self, value: Any) -> Any:
        """Approximate fraction of elements <= *value* (see :meth:`rank`).

        Accepts a scalar (returns one float) or a sequence of values
        (returns a list of floats, one per value).
        """
        if isinstance(value, (list, tuple, np.ndarray)):
            return [self.rank(v) / self._n for v in value]
        return self.rank(value) / self._n

    def finish(self, phis: Sequence[float] = (0.5,)) -> List[Any]:
        """Terminal OUTPUT: flush the tail, record the root, answer *phis*.

        After ``finish`` the summary remains queryable and can even keep
        ingesting, but the recorded tree considers this the OUTPUT point.
        """
        self._flush_scalars()
        if self._n == 0:
            raise EmptySummaryError("no elements have been ingested")
        tail = self._remainder
        if tail is not None and len(tail) > 0:
            self._place_values(tail)
            self._remainder = tail[:0]
        self._finished = True
        if self.recorder is not None:
            self.recorder.on_output(self._full)
        if _obs.ENABLED:
            _obs.on_output(self, len(phis))
        return output(self._full, list(phis), self._n, use_kernels=self._kernels)

    # -- merging ------------------------------------------------------------------

    def absorb(self, other: "QuantileFramework") -> "QuantileFramework":
        """Merge *other*'s summary into this one (distributed building block).

        Both frameworks must share ``k`` (buffer capacity).  The other's
        staged tail is re-ingested as ordinary stream elements, its full
        buffers join this framework's buffer set, and policy collapses
        shrink the set back to ``b`` slots.  The union of the two collapse
        trees plus the new collapses is still a forest meeting Lemma 5's
        requirements, so :meth:`error_bound` stays certified.  *other* is
        left empty.
        """
        if other is self:
            raise ConfigurationError("cannot absorb a framework into itself")
        if other.k != self.k:
            raise ConfigurationError(
                f"cannot merge summaries with different k ({self.k} vs {other.k})"
            )
        if (self.recorder is None) != (other.recorder is None):
            raise ConfigurationError(
                "absorb needs record_tree set identically on both summaries "
                "(otherwise the combined tree statistics would dangle)"
            )
        other._flush_scalars()
        if self._mode is None:
            self._mode = other._mode
        if other._min is not None:
            self._min = (
                other._min
                if self._min is None or other._min < self._min
                else self._min
            )
            self._max = (
                other._max
                if self._max is None or other._max > self._max
                else self._max
            )
        tail = other._remainder
        n_tail = len(tail) if tail is not None else 0
        n_buffered = other._n - n_tail
        # Adopt the other's full buffers and statistics wholesale.
        self._n += n_buffered
        self._n_collapses += other._n_collapses
        self._sum_collapse_weights += other._sum_collapse_weights
        if self.recorder is not None and other.recorder is not None:
            self.recorder.nodes.update(other.recorder.nodes)
            self.recorder._depth.update(other.recorder._depth)
            self.recorder.sum_offsets += other.recorder.sum_offsets
            self.recorder.n_collapses += other.recorder.n_collapses
            self.recorder.sum_collapse_weights += (
                other.recorder.sum_collapse_weights
            )
        self._full.extend(other._full)
        other._full = []
        other._n = 0
        other._n_collapses = 0
        other._sum_collapse_weights = 0
        # Re-ingest the other's loose tail as ordinary elements.
        if n_tail:
            other._remainder = tail[:0]
            if isinstance(tail, np.ndarray):
                self._ingest_numeric(tail)
            else:
                self._ingest_generic(list(tail))
        # Shrink back under the b-slot budget with policy collapses.
        while len(self._full) > self.b:
            group = self.policy.pre_new_collapse(self._full, len(self._full))
            if group is None:
                group = sorted(self._full, key=lambda buf: buf.weight)[:2]
            self._do_collapse(group)
        return self

    # -- inspection of raw state (used by parallel mode and merging) -------------

    @property
    def full_buffers(self) -> List[Buffer]:
        """The current full buffers (shared references; do not mutate)."""
        return list(self._full)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuantileFramework(b={self.b}, k={self.k}, "
            f"policy={self.policy.name!r}, n={self._n})"
        )
