"""Sampling in front of the deterministic algorithm (Section 5).

For very large ``N`` the paper couples the deterministic framework with
random sampling: split the error budget ``eps = eps1 + eps2``, draw a
sample big enough (Lemma 7, via Hoeffding's inequality) that sample ranks
within ``eps1`` translate to population ranks within ``eps``, then run the
deterministic algorithm on the sample with accuracy ``eps1``.  The sample
size -- and therefore the memory -- is *independent of N*; the price is a
probabilistic guarantee (confidence ``1 - delta``).

This module provides:

* :func:`hoeffding_sample_size` -- Lemma 7 (with the Section 5.3 union
  bound for ``p`` simultaneous quantiles);
* :func:`optimize_alpha` -- the Section 5.1 grid search over
  ``alpha = eps1/eps`` in ``[0.2, 0.8]`` (step 0.001) minimising total
  memory; reproduces the structure of Table 2;
* :func:`sampling_threshold` -- the Section 5.2 cross-over: the dataset
  size above which sampling beats the direct algorithm (Figure 8);
* :class:`SampledQuantileFramework` -- the runnable combination, using
  online Bernoulli sampling so no per-index state is kept.

Reproduction note (documented in EXPERIMENTS.md): the sample sizes printed
in the paper's Table 2 are consistent with ``S = ln(2/delta) / (2 eps^2)``
-- the *full* error budget in the exponent -- rather than the
``eps2 = (1-alpha) eps`` that Lemma 7 as stated requires.  We default to
the faithful Lemma 7 sizing and expose the table's convention as
``rule="table2"`` so both columns can be compared.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence

import numpy as np

from .errors import ConfigurationError, EmptySummaryError
from .framework import QuantileFramework
from .parameters import ParameterPlan, optimal_parameters

__all__ = [
    "hoeffding_sample_size",
    "SamplingPlan",
    "optimize_alpha",
    "sampling_threshold",
    "choose_strategy",
    "SampledQuantileFramework",
]


def hoeffding_sample_size(
    eps2: float,
    delta: float,
    *,
    n_quantiles: int = 1,
    rule: str = "lemma7",
    epsilon: Optional[float] = None,
) -> int:
    """Sample size guaranteeing rank transfer from sample to population.

    Lemma 7: ``S >= log(2/delta) / (2 eps2^2)`` samples ensure, with
    probability at least ``1 - delta``, that elements within ``eps1`` of a
    quantile in the sample are within ``eps = eps1 + eps2`` of it in the
    population.  For ``p`` simultaneous quantiles Section 5.3 replaces
    ``delta`` by ``delta / p`` (union bound).

    ``rule="table2"`` reproduces the paper's printed Table 2 instead,
    which sizes the sample with the *full* budget ``epsilon`` (see module
    docstring); it requires the ``epsilon`` argument.
    """
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    if n_quantiles < 1:
        raise ConfigurationError("n_quantiles must be >= 1")
    if rule == "lemma7":
        if not 0 < eps2 < 1:
            raise ConfigurationError(f"eps2 must be in (0, 1), got {eps2}")
        width = eps2
    elif rule == "table2":
        if epsilon is None or not 0 < epsilon < 1:
            raise ConfigurationError("rule='table2' needs epsilon in (0, 1)")
        width = epsilon
    else:
        raise ConfigurationError(f"unknown sampling rule {rule!r}")
    return math.ceil(
        math.log(2.0 * n_quantiles / delta) / (2.0 * width * width)
    )


@dataclass(frozen=True)
class SamplingPlan:
    """A fully specified sampling + deterministic configuration."""

    epsilon: float
    delta: float
    alpha: float  #: fraction of the budget given to the deterministic stage
    eps1: float  #: accuracy stipulated of the deterministic algorithm
    eps2: float  #: rank-transfer slack covered by the sample size
    sample_size: int  #: S
    inner: ParameterPlan  #: the deterministic (b, k) plan sized for (eps1, S)
    n_quantiles: int = 1
    rule: str = "lemma7"

    @property
    def b(self) -> int:
        return self.inner.b

    @property
    def k(self) -> int:
        return self.inner.k

    @property
    def memory(self) -> int:
        """Total element footprint ``b * k`` (independent of N)."""
        return self.inner.memory

    def __str__(self) -> str:
        return (
            f"sampling(eps={self.epsilon}, delta={self.delta}): "
            f"alpha*eps={self.eps1:.4f}, S={self.sample_size}, "
            f"b={self.b}, k={self.k}, bk={self.memory}"
        )


def optimize_alpha(
    epsilon: float,
    delta: float,
    *,
    n_quantiles: int = 1,
    policy: str = "new",
    rule: str = "lemma7",
    alpha_grid: Optional[Sequence[float]] = None,
) -> SamplingPlan:
    """Section 5.1: grid-search ``alpha`` in ``[0.2, 0.8]`` to minimise memory.

    As ``alpha -> 1`` the sample explodes (``eps2 -> 0``); as ``alpha -> 0``
    the deterministic stage must be nearly exact.  Somewhere in between the
    total ``b * k`` is minimal; the paper scans in increments of 0.001.
    """
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if alpha_grid is None:
        alpha_grid = np.arange(0.2, 0.8 + 1e-9, 0.001)
    best: Optional[SamplingPlan] = None
    for alpha in alpha_grid:
        alpha = float(alpha)
        eps1 = alpha * epsilon
        eps2 = (1.0 - alpha) * epsilon
        sample = hoeffding_sample_size(
            eps2,
            delta,
            n_quantiles=n_quantiles,
            rule=rule,
            epsilon=epsilon,
        )
        inner = optimal_parameters(eps1, sample, policy=policy)
        plan = SamplingPlan(
            epsilon=epsilon,
            delta=delta,
            alpha=alpha,
            eps1=eps1,
            eps2=eps2,
            sample_size=sample,
            inner=inner,
            n_quantiles=n_quantiles,
            rule=rule,
        )
        if best is None or plan.memory < best.memory:
            best = plan
    assert best is not None
    return best


def sampling_threshold(
    epsilon: float,
    delta: float,
    *,
    policy: str = "new",
    n_quantiles: int = 1,
    rule: str = "lemma7",
    n_max: int = 10**15,
) -> int:
    """Section 5.2 / Figure 8: the N above which sampling uses less memory.

    Sampling memory is independent of N while the direct algorithm's grows,
    so there is a threshold dataset size at which the curves cross.  Found
    by doubling + binary search on the direct algorithm's memory.
    """
    target = optimize_alpha(
        epsilon, delta, n_quantiles=n_quantiles, policy=policy, rule=rule
    ).memory

    def direct_memory(n: int) -> int:
        return optimal_parameters(epsilon, n, policy=policy).memory

    lo = 1
    hi = 2
    while hi <= n_max and direct_memory(hi) <= target:
        lo, hi = hi, hi * 2
    if hi > n_max:
        return n_max
    # invariant: direct_memory(lo) <= target < direct_memory(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if direct_memory(mid) <= target:
            lo = mid
        else:
            hi = mid
    return hi


def choose_strategy(
    epsilon: float,
    n: int,
    delta: Optional[float] = None,
    *,
    policy: str = "new",
    n_quantiles: int = 1,
    rule: str = "lemma7",
) -> "ParameterPlan | SamplingPlan":
    """Pick direct vs sampling for ``(epsilon, N)`` as Section 5.2 advises.

    With ``delta=None`` sampling is ruled out (deterministic guarantee
    required) and the direct plan is returned.  Otherwise the cheaper of
    the two configurations wins; this reproduces the fourth sub-table of
    Table 1, where small N run the direct algorithm and large N sample.
    """
    direct = optimal_parameters(epsilon, n, policy=policy)
    if delta is None:
        return direct
    sampled = optimize_alpha(
        epsilon, delta, n_quantiles=n_quantiles, policy=policy, rule=rule
    )
    if sampled.sample_size >= n or direct.memory <= sampled.memory:
        return direct
    return sampled


class SampledQuantileFramework:
    """Bernoulli sampling feeding the deterministic framework (Section 5).

    Each arriving element is independently kept with probability
    ``S / N`` (``N`` must be known, as everywhere in the paper) and fed to
    an inner :class:`~repro.core.framework.QuantileFramework` sized for
    ``(eps1, S)``.  Every quantile answered is, with probability at least
    ``1 - delta``, an ``epsilon``-approximate quantile of the *population*.

    Bernoulli (rather than index-based) sampling keeps the memory overhead
    at O(1): no reservoir, no stored index set.  The realised sample size
    concentrates sharply around ``S``; the inner framework tolerates the
    fluctuation because its guarantee degrades continuously (and
    :meth:`error_bound` reports the certified a-posteriori bound).
    """

    def __init__(
        self,
        epsilon: Optional[float] = None,
        n: int = 0,
        delta: float = 0.0001,
        *,
        n_quantiles: int = 1,
        policy: str = "new",
        rule: str = "lemma7",
        seed: Optional[int] = None,
        plan: Optional[SamplingPlan] = None,
        eps: Optional[float] = None,
        kernels: Optional[bool] = None,
    ) -> None:
        if epsilon is not None and eps is not None:
            raise ConfigurationError(
                "give exactly one of epsilon (positional) or eps= (keyword)"
            )
        if epsilon is None:
            epsilon = eps
        if epsilon is None and plan is None:
            raise ConfigurationError(
                "give exactly one of epsilon (positional) or eps= (keyword)"
            )
        if n < 1:
            raise ConfigurationError(f"population size N must be >= 1, got {n}")
        self.plan = plan or optimize_alpha(
            epsilon, delta, n_quantiles=n_quantiles, policy=policy, rule=rule
        )
        self.population_n = n
        # Oversample slightly so a realised shortfall does not eat into the
        # eps2 slack; the inner framework's bound degrades gracefully anyway.
        self.keep_probability = min(1.0, self.plan.sample_size / n)
        self._rng = np.random.default_rng(seed)
        self.inner = QuantileFramework(
            self.plan.b, self.plan.k, policy=policy, kernels=kernels
        )
        self._n_seen = 0

    @property
    def n_seen(self) -> int:
        """Population elements observed so far."""
        return self._n_seen

    @property
    def n_sampled(self) -> int:
        """Elements actually retained in the sample."""
        return self.inner.n

    @property
    def memory_elements(self) -> int:
        return self.inner.memory_elements

    def update(self, value: Any) -> None:
        """Observe one population element (kept with probability S/N)."""
        self._n_seen += 1
        if self._rng.random() < self.keep_probability:
            self.inner.update(value)

    def extend(self, data: "Iterable[Any] | np.ndarray") -> None:
        """Observe many population elements (vectorised coin flips)."""
        if not isinstance(data, (np.ndarray, list, tuple)):
            # Materialise one-shot iterables (generators, map objects, ...)
            # exactly once, as framework.extend does -- np.asarray would
            # otherwise produce a useless 0-d object array.
            data = list(data)
        arr = np.asarray(data)
        if arr.ndim != 1:
            raise ConfigurationError(
                f"expected a 1-d stream, got shape {arr.shape}"
            )
        self._n_seen += len(arr)
        if len(arr) == 0:
            return
        mask = self._rng.random(len(arr)) < self.keep_probability
        kept = arr[mask]
        if len(kept):
            self.inner.extend(kept)

    def quantiles(self, phis: Sequence[float]) -> List[Any]:
        """Sample quantiles -- ``epsilon``-approximate population quantiles
        with probability at least ``1 - delta``."""
        if self.inner.n == 0:
            raise EmptySummaryError(
                "the sample is empty (population too small or unlucky coins)"
            )
        return self.inner.quantiles(phis)

    def query(self, phi: float) -> Any:
        return self.quantiles([phi])[0]

    def quantile(self, phi: float) -> Any:
        """Approximate ``phi``-quantile (uniform query-surface alias)."""
        return self.quantiles([phi])[0]

    @property
    def n(self) -> int:
        """Population elements observed (uniform query surface)."""
        return self._n_seen

    def rank(self, value: Any) -> int:
        """Approximate population rank: sample rank rescaled by N/S."""
        if self.inner.n == 0:
            return 0
        return round(self.inner.rank(value) / self.inner.n * self._n_seen)

    def cdf(self, value: Any) -> Any:
        """Approximate population CDF at a scalar or sequence of values."""
        if isinstance(value, (list, tuple, np.ndarray)):
            n = self._n_seen
            return [self.rank(v) / n if n else 0.0 for v in value]
        n = self._n_seen
        return self.rank(value) / n if n else 0.0

    def describe(self) -> dict:
        """Summary dict: n, sample extremes, key quantiles, sample bound."""
        from .protocols import describe_dict

        return describe_dict(self)

    def error_bound(self) -> float:
        """Certified rank bound *within the sample* (Lemma 5 on the run)."""
        return self.inner.error_bound()
