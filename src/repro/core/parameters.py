"""Closed-form tree statistics and optimal ``(b, k)`` selection.

Sections 4.3-4.5 of the paper derive, for each collapsing policy, the tree
quantities ``L`` (leaves), ``C`` (collapses), ``W`` (sum of collapse
weights) and ``w_max`` (heaviest child of the root) as functions of the
buffer count ``b`` (and, for the new policy, the tree height ``h``).
Plugging them into Lemma 5 turns the approximation requirement into an
arithmetic constraint, and minimising ``b * k`` under

* ``(W - C - 1)/2 + w_max <= epsilon * N``   (accuracy), and
* ``k * L >= N``                              (coverage)

yields the numbers of Table 1.  This module implements those closed forms
and optimisers exactly as the paper prescribes:

* Munro-Paterson: largest ``b`` with ``(b-2) * 2^(b-2) <= eps*N``, then the
  smallest ``k`` with ``k * 2^(b-1) >= N`` (Section 4.3);
* Alsabti-Ranka-Singh: largest even ``b`` with
  ``b^2/8 + b/4 - 1/2 <= eps*N``, then ``k = ceil(4N / b^2)`` (Section 4.4);
* New algorithm: try every ``b`` in a small range, take the largest
  feasible height ``h`` and the smallest covering ``k``, keep the ``(b, k)``
  minimising ``b * k`` (Section 4.5).

Every optimiser also considers the trivial *no-collapse* fallback
``(b=2, k=ceil(N/2))`` -- two buffers cover the whole input with zero
collapses, so any ``(epsilon, N)`` is feasible, however tiny ``epsilon * N``
may be.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from .errors import ConfigurationError

__all__ = [
    "ClosedFormStats",
    "ParameterPlan",
    "munro_paterson_stats",
    "alsabti_ranka_singh_stats",
    "new_algorithm_stats",
    "optimal_parameters",
    "best_over_policies",
    "NEW_POLICY_MAX_B",
]

#: Section 4.5: "optimal values for b and k can be computed by trying out
#: different values of b in the range 1 and 30".  We scan a little further
#: for safety at extreme ``epsilon * N``.
NEW_POLICY_MAX_B = 40

_MAX_HEIGHT = 64  # the accuracy constraint explodes well before this


@dataclass(frozen=True)
class ClosedFormStats:
    """Worst-case tree quantities for a policy configuration."""

    n_leaves: int  #: L
    n_collapses: int  #: C
    sum_collapse_weights: int  #: W
    w_max: int  #: weight of the heaviest child of the root

    @property
    def error_bound(self) -> float:
        """Lemma 5: worst-case rank error ``(W - C - 1)/2 + w_max``."""
        if self.n_collapses == 0:
            return 0.5
        return (
            self.sum_collapse_weights - self.n_collapses - 1
        ) / 2.0 + self.w_max


@dataclass(frozen=True)
class ParameterPlan:
    """A fully specified configuration for a target ``(epsilon, N)``."""

    policy: str
    epsilon: float
    n: int
    b: int
    k: int
    height: Optional[int] = None  # only meaningful for the new policy
    error_bound: float = 0.0  # guaranteed worst-case rank error (elements)

    @property
    def memory(self) -> int:
        """Total element footprint ``b * k``."""
        return self.b * self.k

    def __str__(self) -> str:
        h = f", h={self.height}" if self.height is not None else ""
        return (
            f"{self.policy}: b={self.b}, k={self.k}{h}, "
            f"bk={self.memory} (eps={self.epsilon}, N={self.n})"
        )


def _validate(epsilon: float, n: int) -> None:
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(f"epsilon must be in (0, 1), got {epsilon}")
    if n < 1:
        raise ConfigurationError(f"dataset size N must be >= 1, got {n}")


# ---------------------------------------------------------------------------
# Closed-form tree statistics (the symbols of Figure 5, per policy)
# ---------------------------------------------------------------------------


def munro_paterson_stats(b: int) -> ClosedFormStats:
    """Section 4.3: the Munro-Paterson tree with ``2^(b-1)`` leaves."""
    if b < 2:
        raise ConfigurationError(f"Munro-Paterson needs b >= 2, got {b}")
    leaves = 2 ** (b - 1)
    n_collapses = leaves - 2
    sum_weights = (b - 2) * leaves
    w_max = 2 ** (b - 2)
    return ClosedFormStats(leaves, n_collapses, sum_weights, w_max)


def alsabti_ranka_singh_stats(b: int) -> ClosedFormStats:
    """Section 4.4: the two-level Alsabti-Ranka-Singh tree (``b`` even)."""
    if b < 2 or b % 2:
        raise ConfigurationError(f"Alsabti-Ranka-Singh needs even b >= 2, got {b}")
    half = b // 2
    leaves = half * half
    n_collapses = half
    sum_weights = half * half
    w_max = half
    return ClosedFormStats(leaves, n_collapses, sum_weights, w_max)


def new_algorithm_stats(b: int, h: int) -> ClosedFormStats:
    """Section 4.5: the new policy's tree of height ``h >= 3``.

    ``L = C(b+h-2, h-1)``, ``C = C(b+h-3, h-2) - 1``,
    ``W = (h-2) * C(b+h-2, h-1) - C(b+h-3, h-3)`` and
    ``w_max = C(b+h-3, h-2)``.
    """
    if b < 2:
        raise ConfigurationError(f"the new policy needs b >= 2, got {b}")
    if h < 3:
        raise ConfigurationError(f"closed forms require height h >= 3, got {h}")
    leaves = math.comb(b + h - 2, h - 1)
    n_collapses = math.comb(b + h - 3, h - 2) - 1
    sum_weights = (h - 2) * leaves - math.comb(b + h - 3, h - 3)
    w_max = math.comb(b + h - 3, h - 2)
    return ClosedFormStats(leaves, n_collapses, sum_weights, w_max)


# ---------------------------------------------------------------------------
# Optimisers (minimise b*k subject to accuracy + coverage)
# ---------------------------------------------------------------------------


def _no_collapse_plan(policy: str, epsilon: float, n: int) -> ParameterPlan:
    """The universal fallback: two buffers, no collapse, exact answers."""
    return ParameterPlan(
        policy=policy,
        epsilon=epsilon,
        n=n,
        b=2,
        k=max(1, (n + 1) // 2),
        height=None,
        error_bound=0.5,
    )


def _optimal_munro_paterson(epsilon: float, n: int) -> ParameterPlan:
    budget = epsilon * n
    best_b = None
    for b in range(3, 80):
        if (b - 2) * 2 ** (b - 2) + 0.5 <= budget:
            best_b = b
        else:
            break
    fallback = _no_collapse_plan("munro-paterson", epsilon, n)
    if best_b is None:
        return fallback
    k = max(1, math.ceil(n / 2 ** (best_b - 1)))
    stats = munro_paterson_stats(best_b)
    plan = ParameterPlan(
        policy="munro-paterson",
        epsilon=epsilon,
        n=n,
        b=best_b,
        k=k,
        error_bound=stats.error_bound,
    )
    return plan if plan.memory <= fallback.memory else fallback


def _optimal_alsabti_ranka_singh(epsilon: float, n: int) -> ParameterPlan:
    budget = epsilon * n
    # b^2/8 + b/4 - 1/2 <= budget  =>  b <= -1 + sqrt(1 + 8*(2*budget + 1)) / ...
    # solve directly by scanning downwards from the real root.
    b_real = (-1 + math.sqrt(1 + 8 * (2 * budget + 1))) * 1.0
    b = int(b_real) + 2
    b -= b % 2  # even
    while b >= 2 and b * b / 8.0 + b / 4.0 - 0.5 > budget:
        b -= 2
    fallback = _no_collapse_plan("alsabti-ranka-singh", epsilon, n)
    if b < 2:
        return fallback
    k = max(1, math.ceil(4 * n / (b * b)))
    stats = alsabti_ranka_singh_stats(b)
    plan = ParameterPlan(
        policy="alsabti-ranka-singh",
        epsilon=epsilon,
        n=n,
        b=b,
        k=k,
        error_bound=stats.error_bound,
    )
    return plan if plan.memory <= fallback.memory else fallback


def _optimal_new(epsilon: float, n: int) -> ParameterPlan:
    budget = 2.0 * epsilon * n
    best: Optional[ParameterPlan] = None
    for b in range(2, NEW_POLICY_MAX_B + 1):
        feasible_h = None
        for h in range(3, _MAX_HEIGHT):
            # Section 4.5's first constraint, equivalent to
            # (W - C - 1)/2 + w_max <= eps*N:
            #   (h-2)C(b+h-2,h-1) - C(b+h-3,h-3) + C(b+h-3,h-2) <= 2*eps*N
            paper_lhs = (
                (h - 2) * math.comb(b + h - 2, h - 1)
                - math.comb(b + h - 3, h - 3)
                + math.comb(b + h - 3, h - 2)
            )
            if paper_lhs <= budget:
                feasible_h = h
            else:
                break
        if feasible_h is None:
            continue
        stats = new_algorithm_stats(b, feasible_h)
        k = max(1, math.ceil(n / stats.n_leaves))
        plan = ParameterPlan(
            policy="new",
            epsilon=epsilon,
            n=n,
            b=b,
            k=k,
            height=feasible_h,
            error_bound=stats.error_bound,
        )
        if best is None or plan.memory < best.memory:
            best = plan
    fallback = _no_collapse_plan("new", epsilon, n)
    if best is None or fallback.memory < best.memory:
        return fallback
    return best


_OPTIMISERS = {
    "new": _optimal_new,
    "munro-paterson": _optimal_munro_paterson,
    "mp": _optimal_munro_paterson,
    "alsabti-ranka-singh": _optimal_alsabti_ranka_singh,
    "ars": _optimal_alsabti_ranka_singh,
}


def optimal_parameters(
    epsilon: float, n: int, *, policy: str = "new"
) -> ParameterPlan:
    """Minimise ``b * k`` for an ``epsilon``-approximate summary of ``n`` items.

    Reproduces the per-policy procedures of Sections 4.3-4.5 (and therefore
    the ``b``/``k``/``bk`` entries of Table 1).
    """
    _validate(epsilon, n)
    key = policy.lower().strip()
    if key not in _OPTIMISERS:
        raise ConfigurationError(
            f"unknown policy {policy!r}; expected one of "
            f"{sorted(set(_OPTIMISERS))}"
        )
    return _OPTIMISERS[key](epsilon, n)


def best_over_policies(
    epsilon: float, n: int, policies: Iterable[str] = ("new", "mp", "ars")
) -> ParameterPlan:
    """The cheapest plan across *policies* (the new policy always wins)."""
    plans = [optimal_parameters(epsilon, n, policy=p) for p in policies]
    return min(plans, key=lambda p: p.memory)


def parameter_table(
    epsilons: Iterable[float],
    ns: Iterable[int],
    *,
    policy: str = "new",
) -> Dict[Tuple[float, int], ParameterPlan]:
    """Compute a Table-1-style grid of plans keyed by ``(epsilon, N)``."""
    return {
        (eps, n): optimal_parameters(eps, n, policy=policy)
        for eps in epsilons
        for n in ns
    }
